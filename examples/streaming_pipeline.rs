//! End-to-end streaming pipeline on an elongated FP64 accelerator field:
//! parallel in-situ compression, then a consumer that previews, selects,
//! and fetches — without ever materializing the full decompressed data.
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```

use stz::data::{metrics, synth};
use stz::prelude::*;

fn main() {
    // WarpX-like FP64 field: a laser pulse in a long channel.
    let dims = Dims::d3(32, 32, 256);
    let field: Field<f64> = synth::warpx_like(dims, 9);

    // In-situ compression would run alongside the simulation: use the
    // parallel path (bit-identical to serial).
    let archive = StzCompressor::new(StzConfig::three_level_relative(1e-4))
        .compress_parallel(&field)
        .expect("compression");
    println!(
        "in-situ: {} compressed to {} bytes (CR {:.0}x)",
        dims,
        archive.compressed_len(),
        archive.compression_ratio()
    );

    // Consumer step 1: coarse preview to locate the pulse along x.
    let preview = archive.decompress_level(1).expect("preview");
    let pd = preview.dims();
    let mut best_x = 0;
    let mut best_amp = f64::NEG_INFINITY;
    for x in 0..pd.nx() {
        let mut amp: f64 = 0.0;
        for z in 0..pd.nz() {
            for y in 0..pd.ny() {
                amp = amp.max(preview.get(z, y, x).abs());
            }
        }
        if amp > best_amp {
            best_amp = amp;
            best_x = x;
        }
    }
    let scale = dims.nx() / pd.nx();
    println!(
        "preview ({} points) localizes the pulse near x = {}",
        preview.len(),
        best_x * scale
    );

    // Consumer step 2: fetch a window around the pulse at full resolution.
    let x0 = (best_x * scale).saturating_sub(24);
    let x1 = (best_x * scale + 24).min(dims.nx());
    let window = Region::d3(0..dims.nz(), 0..dims.ny(), x0..x1);
    let pulse = archive.decompress_region(&window).expect("window");
    println!("fetched pulse window {}..{} = {} points", x0, x1, pulse.len());

    // Verify: the window matches the full reconstruction, which obeys the
    // relative error bound.
    let full = archive.decompress().expect("full");
    assert_eq!(pulse, full.extract_region(&window));
    let (lo, hi) = field.value_range();
    let eb = 1e-4 * (hi - lo);
    assert!(metrics::max_abs_error(&field, &full) <= eb);
    println!("window matches full reconstruction; bound {eb:.2e} holds ✓");
}
