//! End-to-end out-of-core streaming pipeline on an elongated FP64
//! accelerator field: in-situ compression packs time steps into an on-disk
//! container; a consumer then previews, selects, and fetches a
//! full-resolution window through the unified access API — reading only
//! the byte ranges each query needs, never materializing the full
//! decompressed data.
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```

use stz::data::{metrics, synth};
use stz::prelude::*;
use stz::stream::{ContainerWriter, CountingSource, FileSource};

fn main() {
    // WarpX-like FP64 field: a laser pulse in a long channel.
    let dims = Dims::d3(32, 32, 256);
    let field: Field<f64> = synth::warpx_like(dims, 9);

    // In-situ side: compression runs alongside the simulation (the parallel
    // path is bit-identical to serial), and each step streams straight into
    // the container — one archive resident at a time, bounded memory.
    let path = std::env::temp_dir().join(format!("stz_pipeline_{}.stzc", std::process::id()));
    let file = std::fs::File::create(&path).expect("create container");
    let mut writer = ContainerWriter::new(std::io::BufWriter::new(file)).expect("header");
    let archive = StzCompressor::new(StzConfig::three_level_relative(1e-4))
        .compress_parallel(&field)
        .expect("compression");
    let payload = archive.compressed_len();
    println!(
        "in-situ: {} compressed to {} bytes (CR {:.0}x), packed as \"pulse\"",
        dims,
        payload,
        archive.compression_ratio()
    );
    writer.add_archive("pulse", &archive).expect("add entry");
    drop(archive); // the consumer below works purely out-of-core
    writer.finish().expect("finish container");

    // Consumer side: reopen the file as a unified-API FileStore over a
    // byte-counting source — the same Store/Entry calls would work
    // verbatim against a MemStore or a remote stz:// server, but here
    // every query also reports exactly what it cost in disk traffic.
    let store = FileStore::open_source(
        CountingSource::new(FileSource::open(&path).expect("open container")),
        path.display().to_string(),
    )
    .expect("parse container");
    let counter = || store.reader().source();
    println!("consumer: opened container with {} bytes of index reads", counter().bytes_read());
    let entry = store.open(&EntrySel::Name("pulse".into())).expect("entry");

    // Step 1: coarse preview (level 1 = 1/64 of the points) to locate the
    // pulse along x.
    counter().reset();
    let preview: Field<f64> =
        entry.fetch(&Fetch::Level(1)).expect("preview").into_field().expect("typed preview");
    let preview_bytes = counter().bytes_read();
    let pd = preview.dims();
    let mut best_x = 0;
    let mut best_amp = f64::NEG_INFINITY;
    for x in 0..pd.nx() {
        let mut amp: f64 = 0.0;
        for z in 0..pd.nz() {
            for y in 0..pd.ny() {
                amp = amp.max(preview.get(z, y, x).abs());
            }
        }
        if amp > best_amp {
            best_amp = amp;
            best_x = x;
        }
    }
    let scale = dims.nx() / pd.nx();
    println!(
        "preview ({} points) localizes the pulse near x = {} — {} of {} payload bytes read ({:.1}%)",
        preview.len(),
        best_x * scale,
        preview_bytes,
        payload,
        100.0 * preview_bytes as f64 / payload as f64
    );

    // Step 2: full-resolution longitudinal cut through the pulse. A 2-D
    // slice matches the sub-lattice parity structure (paper §3.3): finer-
    // level sub-blocks of the other z-parity are skipped, and skipped
    // sub-blocks are byte ranges the disk never serves.
    let mid_z = dims.nz() / 2;
    let window = Region::slice_z(dims, mid_z);
    counter().reset();
    let pulse: Field<f64> = entry
        .fetch(&Fetch::Region(window.clone()))
        .expect("slice")
        .into_field()
        .expect("typed slice");
    let window_bytes = counter().bytes_read();
    println!(
        "fetched full-res slice z = {mid_z} ({} points) — {} of {} payload bytes read ({:.1}%)",
        pulse.len(),
        window_bytes,
        payload,
        100.0 * window_bytes as f64 / payload as f64
    );
    assert!(
        window_bytes < payload as u64,
        "slice fetch must read strictly less than the whole archive"
    );

    // Verify out-of-core results against the full decode: the window
    // matches the full reconstruction, which obeys the relative error bound.
    let full: Field<f64> =
        entry.fetch(&Fetch::Full).expect("full fetch").into_field().expect("typed full");
    assert_eq!(pulse, full.extract_region(&window));
    let (lo, hi) = field.value_range();
    let eb = 1e-4 * (hi - lo);
    assert!(metrics::max_abs_error(&field, &full) <= eb);
    println!("window matches full reconstruction; bound {eb:.2e} holds ✓");

    let _ = std::fs::remove_file(&path);
}
