//! Progressive decompression: reconstruct coarse previews of a large field
//! from a fraction of the archive, then refine to full resolution — the
//! paper's Fig. 13 workflow.
//!
//! ```text
//! cargo run --release --example progressive_preview
//! ```

use stz::data::{metrics, synth};
use stz::prelude::*;

fn main() {
    let dims = Dims::d3(96, 96, 96);
    let field: Field<f32> = synth::miranda_like(dims, 7);

    let archive =
        StzCompressor::new(StzConfig::three_level(5e-3)).compress(&field).expect("compression");
    println!(
        "archive: {} bytes for {} (CR {:.1}x)",
        archive.compressed_len(),
        dims,
        archive.compression_ratio()
    );

    // Walk the hierarchy coarse-to-fine with the incremental decoder. Each
    // step costs only that level's decode; the coarsest preview reads ~2% of
    // the archive bytes.
    let mut decoder = archive.progressive();
    while let Some(next_dims) = decoder.next_dims() {
        let extra_bytes = decoder.next_bytes();
        let preview = decoder.next_level().expect("decode").expect("level");
        assert_eq!(preview.dims(), next_dims);

        // Quality of the preview against the matching downsample of the
        // original (what a viewer would compare it to).
        let stride = dims.nx() / next_dims.nx();
        let reference = field.downsample(stride);
        let ssim = metrics::ssim(&reference, &preview);
        println!(
            "level {}: {next_dims} ({:5.1}% of points), +{extra_bytes} bytes, SSIM {ssim:.3}",
            decoder.levels_decoded(),
            100.0 * preview.len() as f64 / field.len() as f64,
        );
    }

    // The final refinement equals a direct full decompression.
    let mut decoder = archive.progressive();
    let full = decoder.decode_to(archive.num_levels()).expect("full");
    assert_eq!(full, archive.decompress().expect("decompress"));
    println!("progressive refinement converges to the full reconstruction ✓");
}
