//! Random-access decompression with ROI selection: the paper's flexible
//! scientific workflow (§3.3, Fig. 10) — preview coarsely, find the
//! interesting region, fetch only that region at full resolution.
//!
//! ```text
//! cargo run --release --example roi_extract
//! ```

use stz::core::roi::{self, RoiCriterion, RoiStat};
use stz::data::synth;
use stz::prelude::*;

fn main() {
    // A cosmology-like field: quiet background plus a few dense halos.
    let dims = Dims::d3(64, 64, 64);
    let field: Field<f32> = synth::nyx_like(dims, 11);
    let archive =
        StzCompressor::new(StzConfig::three_level(1e-2)).compress(&field).expect("compression");

    // 1. Coarse preview (levels 1–2 = 1/8 of the points).
    let preview = archive.decompress_level(2).expect("preview");
    let stride = 2; // preview is the stride-2 grid

    // 2. Select high-density tiles on the preview (halo threshold from the
    //    paper's Nyx analysis, with a margin for preview attenuation).
    let tiles = roi::select_regions(
        &preview,
        [2, 2, 2],
        RoiCriterion::Threshold(RoiStat::MaxValue, 81.66 * 0.5),
    );
    println!("selected {} ROI tiles on the {} preview", tiles.len(), preview.dims());

    // 3. Fetch each ROI at full resolution without touching the rest.
    let mut fetched_points = 0;
    let mut peak = f32::NEG_INFINITY;
    for tile in &tiles {
        let region = roi::upscale_region(&tile.dilate(1, preview.dims()), stride, dims);
        let (roi_field, breakdown) =
            archive.decompress_region_with_breakdown(&region).expect("random access");
        fetched_points += roi_field.len();
        let (_, hi) = roi_field.value_range();
        peak = peak.max(hi as f32);
        // Verify against the ground truth region.
        assert_eq!(roi_field, {
            let full = archive.decompress().expect("full");
            full.extract_region(&region)
        });
        let _ = breakdown;
    }
    println!(
        "fetched {fetched_points} points ({:.2}% of the field), peak density {peak:.0}",
        100.0 * fetched_points as f64 / field.len() as f64
    );

    // A 2-D slice fetch shows the decode savings: only the sub-blocks whose
    // z-parity matches the slice are entropy-decoded.
    let slice = Region::slice_z(dims, dims.nz() / 2);
    let (_, bd) = archive.decompress_region_with_breakdown(&slice).expect("slice");
    let finest = bd.levels.last().expect("levels");
    println!(
        "2-D slice: decoded {} finest-level sub-blocks, skipped {}",
        finest.decoded_blocks, finest.skipped_blocks
    );
}
