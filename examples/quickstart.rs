//! Quickstart: compress a scientific field with STZ, decompress it, and
//! verify the error bound.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stz::data::{metrics, synth};
use stz::prelude::*;

fn main() {
    // A turbulence-like 64³ field (a miniature of the paper's Miranda
    // dataset).
    let dims = Dims::d3(64, 64, 64);
    let field: Field<f32> = synth::miranda_like(dims, 2025);
    println!("original: {dims} = {} bytes", field.nbytes());

    // Compress with the paper's default configuration: 3-level hierarchy,
    // cubic interpolation, adaptive error bounds. The bound is point-wise
    // absolute.
    let eb = 1e-3;
    let compressor = StzCompressor::new(StzConfig::three_level(eb));
    let archive = compressor.compress(&field).expect("compression");
    println!(
        "compressed: {} bytes (CR {:.1}x)",
        archive.compressed_len(),
        archive.compression_ratio()
    );

    // Full decompression.
    let restored = archive.decompress().expect("decompression");
    let max_err = metrics::max_abs_error(&field, &restored);
    let psnr = metrics::psnr(&field, &restored);
    println!("max error: {max_err:.2e} (bound {eb:.0e}) — PSNR {psnr:.1} dB");
    assert!(max_err <= eb);

    // The archive is just bytes: write it anywhere, parse it back later.
    let bytes = archive.into_bytes();
    let reparsed = StzArchive::<f32>::from_bytes(bytes).expect("parse");
    assert_eq!(reparsed.decompress().expect("decompression"), restored);
    println!("archive round-trips through raw bytes ✓");
}
