//! Compare all five compressors of the paper's evaluation on one workload:
//! rate-distortion and wall-clock speed (a miniature of Fig. 11 + Table 3).
//!
//! ```text
//! cargo run --release --example compare_compressors
//! ```

use std::time::Instant;
use stz::data::{metrics, synth};
use stz::prelude::*;

fn main() {
    let dims = Dims::d3(64, 64, 64);
    let field: Field<f32> = synth::magrec_like(dims, 3);
    let (lo, hi) = field.value_range();
    let eb = 1e-3 * (hi - lo);
    println!("workload: magnetic-reconnection-like {dims}, abs eb {eb:.2e}");
    println!(
        "{:<8} {:>8} {:>10} {:>8} {:>10} {:>10}",
        "codec", "CR", "PSNR(dB)", "SSIM", "comp(s)", "decomp(s)"
    );

    // STZ (this crate).
    run(
        "STZ",
        &field,
        eb,
        |f, e| {
            StzCompressor::new(StzConfig::three_level(e))
                .compress(f)
                .expect("compress")
                .into_bytes()
        },
        |b| StzArchive::<f32>::from_bytes(b.to_vec()).and_then(|a| a.decompress()),
    );

    // SZ3-style baseline.
    run(
        "SZ3",
        &field,
        eb,
        |f, e| stz::sz3::compress(f, &stz::sz3::Sz3Config::absolute(e)),
        stz::sz3::decompress,
    );

    // SPERR-style baseline.
    run(
        "SPERR",
        &field,
        eb,
        |f, e| stz::sperr::compress(f, &stz::sperr::SperrConfig::new(e)),
        stz::sperr::decompress,
    );

    // ZFP-style baseline.
    run(
        "ZFP",
        &field,
        eb,
        |f, e| stz::zfp::compress(f, &stz::zfp::ZfpConfig::new(e)),
        stz::zfp::decompress,
    );

    // MGARD-style baseline.
    run(
        "MGARD",
        &field,
        eb,
        |f, e| stz::mgard::compress(f, &stz::mgard::MgardConfig::new(e)),
        stz::mgard::decompress,
    );
}

fn run(
    name: &str,
    field: &Field<f32>,
    eb: f64,
    compress: impl Fn(&Field<f32>, f64) -> Vec<u8>,
    decompress: impl Fn(&[u8]) -> Result<Field<f32>, stz::codec::CodecError>,
) {
    let t = Instant::now();
    let bytes = compress(field, eb);
    let comp_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let recon = decompress(&bytes).expect("decompress");
    let decomp_s = t.elapsed().as_secs_f64();
    let q = metrics::summarize(field, &recon, bytes.len());
    assert!(q.max_err <= eb * (1.0 + 1e-6), "{name} violated the bound");
    println!(
        "{name:<8} {:>8.1} {:>10.1} {:>8.3} {comp_s:>10.3} {decomp_s:>10.3}",
        q.compression_ratio, q.psnr, q.ssim
    );
}
