//! One read surface, three transports: the same `Store`/`Entry` calls
//! served by a resident archive (`MemStore`), an on-disk container
//! (`FileStore`), and a live STZP server (`RemoteStore`) — with
//! byte-identical results, verified here request by request.
//!
//! ```text
//! cargo run --release --example unified_access
//! ```

use stz::prelude::*;
use stz::serve::{ServeOptions, Server};
use stz::stream::pack_to_file;

fn main() {
    // A turbulence-like field, compressed once.
    let dims = Dims::d3(48, 48, 48);
    let field: Field<f32> = stz::data::synth::miranda_like(dims, 7);
    let archive =
        StzCompressor::new(StzConfig::three_level(1e-3)).compress(&field).expect("compression");
    println!(
        "compressed {dims} to {} bytes (CR {:.1}x)",
        archive.compressed_len(),
        archive.compression_ratio()
    );

    // Transport 1: resident in this process.
    let mut mem = MemStore::new();
    mem.add("density", archive.clone());

    // Transport 2: packed into an on-disk container.
    let dir = std::env::temp_dir().join(format!("stz_unified_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let container = dir.join("run.stzc");
    pack_to_file(&container, &[("density", &archive)]).expect("pack");

    // Transport 3: hosted by an archive server on an ephemeral port.
    let server = Server::bind(ServeOptions {
        root: dir.clone(),
        addr: "127.0.0.1:0".into(),
        ..ServeOptions::default()
    })
    .expect("bind server");
    let addr = server.local_addr().expect("bound address");
    let handle = server.spawn().expect("serve");

    // `open_store` turns a location string into the right store — the
    // consumer code below never mentions a transport again.
    let file_store = open_store(&container.display().to_string()).expect("file store");
    let remote_store = open_store(&format!("stz://{addr}/run")).expect("remote store");
    let stores: Vec<(&str, &dyn Store)> =
        vec![("mem", &mem), ("file", &*file_store), ("remote", &*remote_store)];

    let requests = [
        ("full decode", Fetch::Full),
        ("coarse preview", Fetch::Level(1)),
        ("refined preview", Fetch::Progressive(2)),
        ("region of interest", Fetch::Region(Region::d3(8..24, 8..24, 8..24))),
        ("raw payload", Fetch::RawSection(0)),
    ];
    for (label, fetch) in &requests {
        let mut results: Vec<FetchedField> = Vec::new();
        for (name, store) in &stores {
            let entry = store.open(&EntrySel::Name("density".into())).expect("open entry");
            let fetched = entry.fetch(fetch).unwrap_or_else(|e| panic!("{name} {label}: {e}"));
            println!(
                "  {label:<20} via {name:<6} -> {:>9} bytes from {}",
                fetched.data.len(),
                fetched.provenance
            );
            results.push(fetched);
        }
        assert!(
            results.windows(2).all(|w| w[0].data == w[1].data && w[0].dims == w[1].dims),
            "{label}: transports must agree byte-for-byte"
        );
        println!("  {label:<20} byte-identical across all three transports ✓");
    }

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
    println!("every transport served every request identically");
}
