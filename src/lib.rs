//! # STZ — Streaming Lossy Compression for Scientific Data
//!
//! Umbrella crate re-exporting the whole STZ workspace: the streaming
//! compressor itself ([`core`]), the four baseline compressors evaluated in
//! the paper, the field/codec substrates, and the synthetic dataset
//! generators and quality metrics used by the benchmark harness.
//!
//! ## Quick start
//!
//! ```
//! use stz::prelude::*;
//!
//! // A small synthetic 3-D field.
//! let field: Field<f32> = stz::data::synth::miranda_like(Dims::d3(32, 32, 32), 7);
//!
//! // Compress with the 3-level streaming configuration.
//! let config = StzConfig::three_level(1e-2);
//! let archive = StzCompressor::new(config).compress(&field).unwrap();
//!
//! // Full decompression honours the error bound...
//! let restored = archive.decompress().unwrap();
//! assert!(stz::data::metrics::max_abs_error(&field, &restored) <= 1e-2 + 1e-12);
//!
//! // ...and a coarse preview needs only level 1 (1/64 of the data in 3-D).
//! let preview = archive.decompress_level(1).unwrap();
//! assert_eq!(preview.dims(), field.dims().coarsened(4));
//! ```

pub use stz_access as access;
pub use stz_backend as backend;
pub use stz_codec as codec;
pub use stz_core as core;
pub use stz_data as data;
pub use stz_field as field;
pub use stz_mgard as mgard;
pub use stz_mutate as mutate;
pub use stz_serve as serve;
pub use stz_simd as simd;
pub use stz_sperr as sperr;
pub use stz_stream as stream;
pub use stz_sz3 as sz3;
pub use stz_telemetry as telemetry;
pub use stz_zfp as zfp;

/// The most common imports in one place.
pub mod prelude {
    pub use stz_access::{
        open_store, open_store_mut, Entry, EntryDesc, EntryMut, EntrySel, Fetch, FetchedField,
        FileStore, MemStore, RemoteStore, Store, StoreMut,
    };
    pub use stz_backend::{registry, Codec};
    pub use stz_core::{ConfigError, SectionSource, StzArchive, StzCompressor, StzConfig};
    pub use stz_field::{Dims, Field, Region, Scalar};
}
