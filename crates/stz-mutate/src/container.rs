//! The mutable container: staged mutations, atomic generation commits,
//! and crash-safe compaction.
//!
//! ## Commit protocol
//!
//! A v3 container holds two 48-byte generation slots right after the
//! header (see `stz_stream::format`). All mutation staging — appended
//! payloads, replacement payloads — lands strictly *past* the committed
//! tail, so no committed byte is ever overwritten. [`commit`] then:
//!
//! 1. writes the new footer at the staging tail and **syncs** — the new
//!    generation now exists in full, but nothing points at it;
//! 2. writes the *inactive* generation slot (the only in-place overwrite
//!    in the whole protocol, and it never touches the active slot) and
//!    **syncs** — the flip is the single 48-byte slot write, made valid or
//!    invalid atomically by its own CRC.
//!
//! A crash before step 2 completes leaves the previous generation's slot
//! untouched: readers open the old generation, byte-identical to what was
//! last committed. A crash *during* step 2 leaves a torn slot, which fails
//! its CRC and is ignored. There is no interrupted state that reads as a
//! mixture.
//!
//! ## Compaction
//!
//! [`compact`] rewrites only live payloads into a fresh image (payloads
//! back to back from the data start, then the footer, generation slot 0
//! pointing at it) and swaps it in via
//! [`MutBacking::replace_with`] — for files, a sibling write + `fsync` +
//! atomic `rename(2)`. Concurrent readers holding the old file descriptor
//! keep the old inode alive and finish their queries on the old,
//! still-complete generation; new opens see the compacted one.
//!
//! [`commit`]: MutableContainer::commit
//! [`compact`]: MutableContainer::compact

use crate::backing::{FileBacking, MutBacking};
use crate::metrics::metrics;
use std::io::Write;
use std::path::Path;
use stz_field::Scalar;
use stz_stream::crc::{crc32, Crc32};
use stz_stream::format::{
    encode_footer, encode_gen_slot, parse_footer_bounded, parse_gen_slot, EntryDetail, EntryRecord,
    GenSlot, SectionLoc, StzDetail, CONTAINER_MAGIC, GEN_SLOT_LEN, GEN_SLOT_OFFSETS, HEADER_LEN,
    MUTABLE_CONTAINER_VERSION, MUTABLE_DATA_START,
};
use stz_stream::{
    index_pack_entry, run_pipelined, ByteSource, ContainerReader, MemorySource, PackEntry, Result,
    StreamError,
};

/// Chunk size for payload copies during compaction and upgrade.
const COPY_CHUNK: usize = 1 << 20;

/// Point-in-time accounting of a mutable container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutStats {
    /// Committed generation number.
    pub generation: u64,
    /// Entries in the current (possibly uncommitted) index.
    pub entries: usize,
    /// Committed bytes (header through footer of the committed generation).
    pub committed_len: u64,
    /// Uncommitted staging bytes past the committed tail.
    pub staged_bytes: u64,
    /// Committed payload bytes the current index still references.
    pub live_payload_bytes: u64,
    /// Committed payload-region bytes no longer referenced — superseded
    /// payloads and stale footers, reclaimable by compaction.
    pub dead_payload_bytes: u64,
}

/// Outcome of one [`MutableContainer::compact`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Generation number of the compacted image.
    pub generation: u64,
    /// Committed bytes before compaction.
    pub before_bytes: u64,
    /// Committed bytes after compaction.
    pub after_bytes: u64,
    /// Dead bytes reclaimed (`before - after`).
    pub reclaimed_bytes: u64,
}

/// A writable v3 container over any [`MutBacking`].
///
/// One `MutableContainer` is the single writer of its backing; any number
/// of [`ContainerReader`]s may read the same bytes concurrently, each
/// pinned to the generation it opened.
#[derive(Debug)]
pub struct MutableContainer<B: MutBacking> {
    backing: B,
    entries: Vec<EntryRecord>,
    generation: u64,
    /// Index into [`GEN_SLOT_OFFSETS`] of the committed generation's slot.
    active_slot: usize,
    /// Footer offset of the committed generation.
    footer_off: u64,
    committed_len: u64,
    /// End of staged bytes; the next payload or footer lands here.
    staged_len: u64,
    dirty: bool,
}

impl MutableContainer<FileBacking> {
    /// Open the container file at `path` for mutation, creating an empty
    /// one if the file does not exist and transparently upgrading a
    /// write-once (v1/v2) container to the mutable layout first (see
    /// [`upgrade_path`]).
    pub fn open_path(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        if !path.exists() {
            return Self::create(FileBacking::create(path)?);
        }
        upgrade_path(path)?;
        Self::open(FileBacking::open(path)?)
    }
}

impl<B: MutBacking> MutableContainer<B> {
    /// Initialize `backing` as an empty mutable container (generation 1,
    /// zero entries) and open it.
    pub fn create(mut backing: B) -> Result<Self> {
        backing.set_len(0)?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[0..4].copy_from_slice(&CONTAINER_MAGIC);
        header[4] = MUTABLE_CONTAINER_VERSION;
        backing.write_all_at(0, &header)?;
        // Zero both slots so stale bytes from a recycled backing can never
        // parse as a generation.
        backing.write_all_at(HEADER_LEN, &[0u8; 2 * GEN_SLOT_LEN as usize])?;
        let footer = encode_footer(&[]);
        backing.write_all_at(MUTABLE_DATA_START, &footer)?;
        backing.sync()?;
        let slot = GenSlot {
            generation: 1,
            footer_off: MUTABLE_DATA_START,
            footer_len: footer.len() as u64,
            committed_len: MUTABLE_DATA_START + footer.len() as u64,
            footer_crc: crc32(&footer),
        };
        backing.write_all_at(GEN_SLOT_OFFSETS[0], &encode_gen_slot(&slot))?;
        backing.sync()?;
        metrics().generation.set(1);
        Ok(MutableContainer {
            backing,
            entries: Vec::new(),
            generation: 1,
            active_slot: 0,
            footer_off: slot.footer_off,
            committed_len: slot.committed_len,
            staged_len: slot.committed_len,
            dirty: false,
        })
    }

    /// Open an existing mutable container: pick the valid generation slot
    /// with the highest generation, load its index, and truncate any torn
    /// staging bytes past the committed tail (left by a crashed writer;
    /// they belong to no generation).
    pub fn open(mut backing: B) -> Result<Self> {
        let file_len = backing.len();
        if file_len < MUTABLE_DATA_START {
            return Err(StreamError::corrupt(format!(
                "file of {file_len} bytes is too short for a mutable container"
            )));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        backing.read_exact_at(0, &mut header)?;
        if header[0..4] != CONTAINER_MAGIC {
            return Err(StreamError::corrupt("bad container magic"));
        }
        let version = header[4];
        if version != MUTABLE_CONTAINER_VERSION {
            return Err(StreamError::unsupported(format!(
                "container format version {version} is not mutable; upgrade it first"
            )));
        }
        let mut best: Option<(usize, GenSlot)> = None;
        for (i, off) in GEN_SLOT_OFFSETS.iter().enumerate() {
            let mut raw = [0u8; GEN_SLOT_LEN as usize];
            backing.read_exact_at(*off, &mut raw)?;
            if let Some(slot) = parse_gen_slot(&raw) {
                if slot.plausible(file_len)
                    && best.map_or(true, |(_, b)| slot.generation > b.generation)
                {
                    best = Some((i, slot));
                }
            }
        }
        let (active_slot, slot) = best.ok_or_else(|| {
            StreamError::corrupt("torn mutable container: no valid generation slot")
        })?;
        let mut footer = vec![0u8; slot.footer_len as usize];
        backing.read_exact_at(slot.footer_off, &mut footer)?;
        if crc32(&footer) != slot.footer_crc {
            return Err(StreamError::corrupt("footer checksum mismatch"));
        }
        let entries = parse_footer_bounded(
            &footer,
            MUTABLE_DATA_START,
            slot.footer_off,
            MUTABLE_CONTAINER_VERSION,
        )?;
        if file_len > slot.committed_len {
            backing.set_len(slot.committed_len)?;
        }
        metrics().generation.set(slot.generation as i64);
        Ok(MutableContainer {
            backing,
            entries,
            generation: slot.generation,
            active_slot,
            footer_off: slot.footer_off,
            committed_len: slot.committed_len,
            staged_len: slot.committed_len,
            dirty: false,
        })
    }

    /// Committed generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether uncommitted mutations are staged.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Entries in the current (possibly uncommitted) index.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Index of the entry named `name` in the current index.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// Names in the current index, in container order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// The current (possibly uncommitted) index records, in container
    /// order.
    pub fn records(&self) -> &[EntryRecord] {
        &self.entries
    }

    /// The underlying backing (e.g. to snapshot a recording journal).
    pub fn backing(&self) -> &B {
        &self.backing
    }

    /// Consume the container, returning the backing. Uncommitted staging
    /// is discarded by the next [`open`](MutableContainer::open).
    pub fn into_backing(self) -> B {
        self.backing
    }

    /// Open a read-only snapshot of the *committed* generation over a
    /// borrowed backing (staged bytes are invisible to it by
    /// construction).
    pub fn snapshot(&self) -> Result<ContainerReader<&B>> {
        ContainerReader::open(&self.backing)
    }

    /// Point-in-time accounting. Dead bytes reflect the current index:
    /// an uncommitted replace/delete already counts its superseded
    /// payload as dead.
    pub fn stats(&self) -> MutStats {
        let live: u64 = self
            .entries
            .iter()
            .filter(|e| e.payload.off < self.footer_off)
            .map(|e| e.payload.len)
            .sum();
        MutStats {
            generation: self.generation,
            entries: self.entries.len(),
            committed_len: self.committed_len,
            staged_bytes: self.staged_len - self.committed_len,
            live_payload_bytes: live,
            dead_payload_bytes: (self.footer_off - MUTABLE_DATA_START).saturating_sub(live),
        }
    }

    /// Stage one entry's payload at the tail and add it to the index.
    fn stage<T: Scalar>(&mut self, name: &str, entry: &PackEntry<T>) -> Result<EntryRecord> {
        let (record, bytes) = index_pack_entry(name, entry, self.staged_len)?;
        self.backing.write_all_at(self.staged_len, bytes)?;
        self.staged_len += bytes.len() as u64;
        self.dirty = true;
        Ok(record)
    }

    /// Append a new entry. The payload is staged past the committed tail
    /// and invisible to readers until [`commit`](MutableContainer::commit).
    /// Names are unique in a mutable container: appending an existing name
    /// is an error (use [`replace`](MutableContainer::replace)).
    pub fn append<T: Scalar>(&mut self, name: &str, entry: &PackEntry<T>) -> Result<()> {
        if self.find(name).is_some() {
            return Err(StreamError::unsupported(format!(
                "entry {name:?} already exists; replace or delete it first"
            )));
        }
        let record = self.stage(name, entry)?;
        self.entries.push(record);
        metrics().appends.inc();
        Ok(())
    }

    /// Append many entries with pipelined ingestion: `run` compresses jobs
    /// on `threads` worker threads while this thread stages each finished
    /// entry **in job order** (same engine as
    /// [`pack_pipelined`](stz_stream::pack_pipelined), so the staged bytes
    /// are identical to a serial append loop). Returns the number of
    /// entries appended. Nothing becomes visible until
    /// [`commit`](MutableContainer::commit).
    pub fn append_pipelined<T, J, F>(
        &mut self,
        jobs: Vec<J>,
        threads: usize,
        run: F,
    ) -> Result<usize>
    where
        T: Scalar,
        J: Send,
        F: Fn(J) -> Result<(String, PackEntry<T>)> + Sync,
    {
        let mut appended = 0usize;
        run_pipelined(jobs, threads, run, |name, entry| {
            self.append(&name, &entry)?;
            appended += 1;
            Ok(())
        })?;
        Ok(appended)
    }

    /// Replace the entry named `name` with a new payload. The old payload
    /// bytes stay where they are (dead after the next commit, reclaimable
    /// by compaction); readers of the committed generation are unaffected.
    pub fn replace<T: Scalar>(&mut self, name: &str, entry: &PackEntry<T>) -> Result<()> {
        let index = self
            .find(name)
            .ok_or_else(|| StreamError::corrupt(format!("no entry named {name:?}")))?;
        let record = self.stage(name, entry)?;
        self.entries[index] = record;
        Ok(())
    }

    /// Remove the entry named `name` from the index. Its payload bytes
    /// become dead at the next commit.
    pub fn delete(&mut self, name: &str) -> Result<()> {
        let index = self
            .find(name)
            .ok_or_else(|| StreamError::corrupt(format!("no entry named {name:?}")))?;
        self.entries.remove(index);
        self.dirty = true;
        Ok(())
    }

    /// Commit all staged mutations as the next generation (see the module
    /// docs for the two-sync protocol) and return its number. A no-op
    /// (returning the current generation) when nothing is staged.
    pub fn commit(&mut self) -> Result<u64> {
        if !self.dirty {
            return Ok(self.generation);
        }
        let footer = encode_footer(&self.entries);
        let footer_off = self.staged_len;
        self.backing.write_all_at(footer_off, &footer)?;
        self.backing.sync()?;
        let slot = GenSlot {
            generation: self.generation + 1,
            footer_off,
            footer_len: footer.len() as u64,
            committed_len: footer_off + footer.len() as u64,
            footer_crc: crc32(&footer),
        };
        let inactive = 1 - self.active_slot;
        self.backing.write_all_at(GEN_SLOT_OFFSETS[inactive], &encode_gen_slot(&slot))?;
        self.backing.sync()?;
        self.generation = slot.generation;
        self.active_slot = inactive;
        self.footer_off = footer_off;
        self.committed_len = slot.committed_len;
        self.staged_len = slot.committed_len;
        self.dirty = false;
        metrics().generation.set(self.generation as i64);
        Ok(self.generation)
    }

    /// Compact the container: commit any staged mutations, then rewrite
    /// only the live payloads into a fresh image and atomically swap it in
    /// (sibling file + `rename(2)` for file backings). Every payload is
    /// CRC-verified as it is copied. Concurrent readers pinned to the old
    /// generation are unaffected; the compacted image is the next
    /// generation.
    pub fn compact(&mut self) -> Result<CompactStats> {
        self.commit()?;
        let started = std::time::Instant::now();
        let before = self.committed_len;
        let generation = self.generation + 1;
        let new_entries = remap_entries(&self.entries);
        let footer = encode_footer(&new_entries);
        let slot = slot_for(generation, &new_entries, &footer);
        let old_entries = &self.entries;
        self.backing
            .replace_with(&mut |src, out| write_v3_image(src, old_entries, &footer, &slot, out))?;
        self.entries = new_entries;
        self.generation = generation;
        self.active_slot = 0;
        self.footer_off = slot.footer_off;
        self.committed_len = slot.committed_len;
        self.staged_len = slot.committed_len;
        self.dirty = false;
        let reclaimed = before.saturating_sub(self.committed_len);
        let m = metrics();
        m.generation.set(generation as i64);
        m.reclaimed.add(reclaimed);
        m.compact.record_duration(started.elapsed());
        Ok(CompactStats {
            generation,
            before_bytes: before,
            after_bytes: self.committed_len,
            reclaimed_bytes: reclaimed,
        })
    }
}

/// Shift one record so its payload begins at `new_off` (sections keep
/// their lengths and CRCs — bytes are copied verbatim).
fn remap_record(r: &EntryRecord, new_off: u64) -> EntryRecord {
    let shift = |s: &SectionLoc| SectionLoc {
        off: new_off + (s.off - r.payload.off),
        len: s.len,
        crc: s.crc,
    };
    let detail = match &r.detail {
        EntryDetail::Stz(d) => EntryDetail::Stz(StzDetail {
            header: d.header.clone(),
            l1: shift(&d.l1),
            blocks: d.blocks.iter().map(|lv| lv.iter().map(shift).collect()).collect(),
        }),
        EntryDetail::Foreign(d) => EntryDetail::Foreign(*d),
    };
    EntryRecord { name: r.name.clone(), codec: r.codec, payload: shift(&r.payload), detail }
}

/// Lay the records' payloads back to back from the v3 data start.
fn remap_entries(old: &[EntryRecord]) -> Vec<EntryRecord> {
    let mut cursor = MUTABLE_DATA_START;
    old.iter()
        .map(|r| {
            let record = remap_record(r, cursor);
            cursor += r.payload.len;
            record
        })
        .collect()
}

/// The generation slot describing a dense image of `entries` + `footer`.
fn slot_for(generation: u64, entries: &[EntryRecord], footer: &[u8]) -> GenSlot {
    let footer_off = MUTABLE_DATA_START + entries.iter().map(|e| e.payload.len).sum::<u64>();
    GenSlot {
        generation,
        footer_off,
        footer_len: footer.len() as u64,
        committed_len: footer_off + footer.len() as u64,
        footer_crc: crc32(footer),
    }
}

/// Stream a complete v3 image — header, slot 0 = `slot`, slot 1 zeroed,
/// every payload of `old` copied (CRC-verified) back to back, `footer` —
/// into `out`.
fn write_v3_image(
    src: &dyn ByteSource,
    old: &[EntryRecord],
    footer: &[u8],
    slot: &GenSlot,
    out: &mut dyn Write,
) -> Result<()> {
    let mut head = [0u8; MUTABLE_DATA_START as usize];
    head[0..4].copy_from_slice(&CONTAINER_MAGIC);
    head[4] = MUTABLE_CONTAINER_VERSION;
    head[HEADER_LEN as usize..(HEADER_LEN + GEN_SLOT_LEN) as usize]
        .copy_from_slice(&encode_gen_slot(slot));
    out.write_all(&head)?;
    let mut buf = vec![0u8; COPY_CHUNK];
    for record in old {
        let mut crc = Crc32::new();
        let mut off = record.payload.off;
        let mut remaining = record.payload.len;
        while remaining > 0 {
            let take = remaining.min(COPY_CHUNK as u64) as usize;
            src.read_exact_at(off, &mut buf[..take])?;
            crc.update(&buf[..take]);
            out.write_all(&buf[..take])?;
            off += take as u64;
            remaining -= take as u64;
        }
        if crc.finish() != record.payload.crc {
            return Err(StreamError::corrupt(format!(
                "entry {:?} payload checksum mismatch during rewrite",
                record.name
            )));
        }
    }
    out.write_all(footer)?;
    Ok(())
}

/// Rewrite a write-once (v1/v2) container image into the mutable v3
/// layout: same entries, same payload bytes (and therefore the same
/// section CRCs), laid out densely after the generation slots, committed
/// as generation 1. A v3 image is returned unchanged.
pub fn upgrade_image(image: &[u8]) -> Result<Vec<u8>> {
    let reader = ContainerReader::open(MemorySource::new(image.to_vec()))?;
    if reader.version() == MUTABLE_CONTAINER_VERSION {
        return Ok(image.to_vec());
    }
    let new_entries = remap_entries(reader.records());
    let footer = encode_footer(&new_entries);
    let slot = slot_for(1, &new_entries, &footer);
    let mut out = Vec::with_capacity(slot.committed_len as usize);
    write_v3_image(reader.source(), reader.records(), &footer, &slot, &mut out)?;
    Ok(out)
}

/// Upgrade the container file at `path` to the mutable v3 layout in
/// place, via a sibling file and atomic rename (a crash leaves either the
/// original or the complete upgrade). Returns `false` (no-op) when the
/// file is already v3.
pub fn upgrade_path(path: impl AsRef<Path>) -> Result<bool> {
    let path = path.as_ref();
    let reader = ContainerReader::open_path(path)?;
    if reader.version() == MUTABLE_CONTAINER_VERSION {
        return Ok(false);
    }
    let new_entries = remap_entries(reader.records());
    let footer = encode_footer(&new_entries);
    let slot = slot_for(1, &new_entries, &footer);

    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".upgrade.tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    let result = (|| -> Result<()> {
        let file = std::fs::File::create(&tmp)?;
        let mut out = std::io::BufWriter::new(file);
        write_v3_image(reader.source(), reader.records(), &footer, &slot, &mut out)?;
        out.flush()?;
        out.into_inner().map_err(|e| StreamError::Io(e.into_error()))?.sync_all()?;
        Ok(())
    })();
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;
    use stz_core::{StzArchive, StzCompressor, StzConfig};
    use stz_field::{Dims, Field};

    fn archive(seed: f32) -> StzArchive<f32> {
        let f = Field::from_fn(Dims::d3(12, 12, 12), |z, y, x| {
            ((z as f32) * 0.2 + seed).sin() + ((y as f32) * 0.1).cos() + x as f32 * 0.01
        });
        StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap()
    }

    fn entry(seed: f32) -> PackEntry<f32> {
        archive(seed).into()
    }

    #[test]
    fn create_append_commit_reopen() {
        let mut mc = MutableContainer::create(MemBacking::empty()).unwrap();
        assert_eq!(mc.generation(), 1);
        mc.append("a", &entry(0.0)).unwrap();
        mc.append("b", &entry(1.0)).unwrap();
        // Staged but uncommitted: a fresh reader sees generation 1, empty.
        let snap = mc.snapshot().unwrap();
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.entry_count(), 0);
        drop(snap);
        assert_eq!(mc.commit().unwrap(), 2);
        assert_eq!(mc.commit().unwrap(), 2, "clean commit is a no-op");

        let image = mc.into_backing().into_bytes();
        let mc = MutableContainer::open(MemBacking::new(image)).unwrap();
        assert_eq!(mc.generation(), 2);
        assert_eq!(mc.entry_count(), 2);
        let snap = mc.snapshot().unwrap();
        let got = snap.entry_by_name::<f32>("a").unwrap().decompress().unwrap();
        assert_eq!(got, archive(0.0).decompress().unwrap());
    }

    #[test]
    fn duplicate_append_rejected_and_replace_delete_roundtrip() {
        let mut mc = MutableContainer::create(MemBacking::empty()).unwrap();
        mc.append("x", &entry(0.0)).unwrap();
        assert!(mc.append("x", &entry(1.0)).is_err());
        mc.commit().unwrap();

        mc.replace("x", &entry(2.0)).unwrap();
        mc.append("y", &entry(3.0)).unwrap();
        mc.commit().unwrap();
        let snap = mc.snapshot().unwrap();
        let got = snap.entry_by_name::<f32>("x").unwrap().decompress().unwrap();
        assert_eq!(got, archive(2.0).decompress().unwrap());
        drop(snap);

        mc.delete("x").unwrap();
        assert!(mc.delete("x").is_err());
        mc.commit().unwrap();
        let snap = mc.snapshot().unwrap();
        assert_eq!(snap.entry_count(), 1);
        assert!(snap.find("x").is_none());
        assert!(snap.find("y").is_some());
    }

    #[test]
    fn compact_reclaims_dead_bytes_and_preserves_payloads() {
        let mut mc = MutableContainer::create(MemBacking::empty()).unwrap();
        mc.append("keep", &entry(0.0)).unwrap();
        mc.append("churn", &entry(1.0)).unwrap();
        mc.commit().unwrap();
        mc.replace("churn", &entry(2.0)).unwrap();
        mc.commit().unwrap();
        let dead = mc.stats().dead_payload_bytes;
        assert!(dead > 0, "superseded payload must count as dead");

        let report = mc.compact().unwrap();
        assert!(report.reclaimed_bytes >= dead);
        assert_eq!(report.before_bytes - report.reclaimed_bytes, report.after_bytes);
        assert_eq!(mc.stats().dead_payload_bytes, 0);

        let snap = mc.snapshot().unwrap();
        assert_eq!(snap.generation(), mc.generation());
        let keep = snap.entry_by_name::<f32>("keep").unwrap();
        assert_eq!(keep.read_archive().unwrap().as_bytes(), archive(0.0).as_bytes());
        let churn = snap.entry_by_name::<f32>("churn").unwrap();
        assert_eq!(churn.read_archive().unwrap().as_bytes(), archive(2.0).as_bytes());
    }

    #[test]
    fn torn_staging_is_truncated_on_open() {
        let mut mc = MutableContainer::create(MemBacking::empty()).unwrap();
        mc.append("a", &entry(0.0)).unwrap();
        mc.commit().unwrap();
        mc.append("lost", &entry(1.0)).unwrap(); // staged, never committed
        let committed = mc.stats().committed_len;
        let image = mc.into_backing().into_bytes();
        assert!(image.len() as u64 > committed);
        let mc = MutableContainer::open(MemBacking::new(image)).unwrap();
        assert_eq!(mc.backing().len(), committed, "torn tail discarded");
        assert_eq!(mc.entry_count(), 1);
    }

    #[test]
    fn pipelined_append_matches_serial() {
        let mut serial = MutableContainer::create(MemBacking::empty()).unwrap();
        for i in 0..5 {
            serial.append(&format!("t{i}"), &entry(i as f32)).unwrap();
        }
        serial.commit().unwrap();
        let mut piped = MutableContainer::create(MemBacking::empty()).unwrap();
        let n = piped
            .append_pipelined((0..5).collect::<Vec<usize>>(), 4, |i| {
                Ok((format!("t{i}"), entry(i as f32)))
            })
            .unwrap();
        assert_eq!(n, 5);
        piped.commit().unwrap();
        assert_eq!(
            serial.into_backing().into_bytes(),
            piped.into_backing().into_bytes(),
            "pipelined ingestion must stage byte-identical containers"
        );
    }

    #[test]
    fn upgrade_v2_image_preserves_entries() {
        let a = archive(0.0);
        let b = archive(1.0);
        let v2 = stz_stream::pack_to_vec(&[("a", &a), ("b", &b)]).unwrap();
        let v3 = upgrade_image(&v2).unwrap();
        assert_eq!(upgrade_image(&v3).unwrap(), v3, "v3 upgrade is idempotent");
        let reader = ContainerReader::open(MemorySource::new(v3.clone())).unwrap();
        assert_eq!(reader.version(), MUTABLE_CONTAINER_VERSION);
        assert_eq!(reader.generation(), 1);
        assert_eq!(reader.entry_count(), 2);
        assert_eq!(
            reader.entry_by_name::<f32>("b").unwrap().read_archive().unwrap().as_bytes(),
            b.as_bytes()
        );
        // And the upgraded image is mutable.
        let mut mc = MutableContainer::open(MemBacking::new(v3)).unwrap();
        mc.append("c", &entry(2.0)).unwrap();
        assert_eq!(mc.commit().unwrap(), 2);
    }
}
