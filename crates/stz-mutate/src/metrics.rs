//! Mutation telemetry, registered in the process-wide
//! [`stz_telemetry::global`] registry (visible through `stz stats` and the
//! server's METRICS frame).

use std::sync::{Arc, OnceLock};
use stz_telemetry::{Counter, Gauge, Histogram};

pub(crate) struct MutMetrics {
    /// `stz_mutate_appends_total` — entries staged by append.
    pub appends: Arc<Counter>,
    /// `stz_mutate_bytes_reclaimed` — dead bytes reclaimed by compaction.
    pub reclaimed: Arc<Counter>,
    /// `stz_mutate_generation` — latest committed generation number.
    pub generation: Arc<Gauge>,
    /// `stz_mutate_compact_ns` — compaction wall-clock latency.
    pub compact: Arc<Histogram>,
}

pub(crate) fn metrics() -> &'static MutMetrics {
    static M: OnceLock<MutMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = stz_telemetry::global();
        MutMetrics {
            appends: reg.counter("stz_mutate_appends_total", &[]),
            reclaimed: reg.counter("stz_mutate_bytes_reclaimed", &[]),
            generation: reg.gauge("stz_mutate_generation", &[]),
            compact: reg.latency("stz_mutate_compact_ns", &[]),
        }
    })
}
