//! Writable storage behind a mutable container.
//!
//! [`MutBacking`] extends [`ByteSource`] with the four primitives the
//! commit protocol needs: positioned writes, truncation, durability
//! barriers, and whole-image replacement (compaction's sibling-file +
//! atomic-rename step). Three implementations:
//!
//! * [`FileBacking`] — a real container file (positioned writes, `fsync`,
//!   rename-based replacement);
//! * [`MemBacking`] — an in-memory image for tests and staging;
//! * [`RecordingBacking`] — wraps a [`MemBacking`] and journals every
//!   mutation, so crash-safety tests can replay an *arbitrary byte prefix*
//!   of the write stream and open the result — simulating power loss at
//!   every offset without ever touching a disk.
//!
//! The crash model the journal encodes: writes persist in the order they
//! were issued, a crash cuts the stream at any byte, and a partially
//! persisted write applies an arbitrary prefix of its bytes. [`sync`]
//! records a barrier (cost 0 — it persists nothing new); replacement is
//! atomic (`rename(2)` semantics: old image or new image, never a mix).
//!
//! [`sync`]: MutBacking::sync

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use stz_stream::{ByteSource, Result, StreamError};

/// Writable random-access storage for a mutable container.
///
/// Write methods take `&mut self` — there is exactly one writer per
/// container — while reads stay `&self` (inherited from [`ByteSource`]),
/// so the commit path can re-verify what it wrote.
pub trait MutBacking: ByteSource {
    /// Write all of `buf` at absolute `offset`, extending the backing
    /// (zero-filled) if the write lands past the current end.
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> Result<()>;

    /// Truncate or zero-extend the backing to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> Result<()>;

    /// Durability barrier: all preceding writes are persisted before any
    /// later write may be.
    fn sync(&mut self) -> Result<()>;

    /// Atomically replace the entire backing with the bytes `build`
    /// streams into the writer, reading the *old* content through the
    /// supplied source. Either the old image or the complete new image
    /// survives a crash — never a mixture (file implementation: write a
    /// sibling, fsync, `rename(2)` over the original).
    fn replace_with(
        &mut self,
        build: &mut dyn FnMut(&dyn ByteSource, &mut dyn Write) -> Result<()>,
    ) -> Result<()>;
}

/// A mutable container file on disk.
///
/// Reads use positioned I/O (no shared cursor); writes, truncation and
/// `fsync` go through the same handle. [`replace_with`] writes a
/// `<path>.compact.tmp` sibling, fsyncs it, renames it over the original
/// (atomic on POSIX — concurrent readers holding the old file descriptor
/// keep reading the old, still-complete image), and best-effort fsyncs the
/// parent directory so the rename itself is durable.
///
/// [`replace_with`]: MutBacking::replace_with
#[derive(Debug)]
pub struct FileBacking {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
    path: PathBuf,
    len: AtomicU64,
}

impl FileBacking {
    /// Create (or truncate) the file at `path` for read-write access.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(Self::wrap(file, path.as_ref().to_path_buf(), 0))
    }

    /// Open the existing file at `path` for read-write access.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path.as_ref())?;
        let len = file.metadata()?.len();
        Ok(Self::wrap(file, path.as_ref().to_path_buf(), len))
    }

    fn wrap(file: File, path: PathBuf, len: u64) -> Self {
        #[cfg(not(unix))]
        let file = std::sync::Mutex::new(file);
        FileBacking { file, path, len: AtomicU64::new(len) }
    }

    /// The path this backing writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn sync_parent_dir(&self) {
        // Durability of the rename itself; failure only costs durability
        // of the *latest* image on power loss, never consistency.
        if let Some(parent) = self.path.parent() {
            let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
}

impl ByteSource for FileBacking {
    fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    #[cfg(unix)]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock().expect("file lock poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }
}

impl MutBacking for FileBacking {
    #[cfg(unix)]
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, offset)?;
        self.len.fetch_max(offset + buf.len() as u64, Ordering::AcqRel);
        Ok(())
    }

    #[cfg(not(unix))]
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        use std::io::{Seek, SeekFrom};
        let mut file = self.file.lock().expect("file lock poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(buf)?;
        self.len.fetch_max(offset + buf.len() as u64, Ordering::AcqRel);
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        #[cfg(unix)]
        self.file.set_len(len)?;
        #[cfg(not(unix))]
        self.file.lock().expect("file lock poisoned").set_len(len)?;
        self.len.store(len, Ordering::Release);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        #[cfg(unix)]
        self.file.sync_data()?;
        #[cfg(not(unix))]
        self.file.lock().expect("file lock poisoned").sync_data()?;
        Ok(())
    }

    fn replace_with(
        &mut self,
        build: &mut dyn FnMut(&dyn ByteSource, &mut dyn Write) -> Result<()>,
    ) -> Result<()> {
        let mut tmp_name = self.path.as_os_str().to_os_string();
        tmp_name.push(".compact.tmp");
        let tmp = PathBuf::from(tmp_name);

        let result = (|| -> Result<u64> {
            let file = File::create(&tmp)?;
            let mut out = io::BufWriter::new(file);
            build(&*self, &mut out)?;
            out.flush()?;
            let file = out.into_inner().map_err(|e| StreamError::Io(e.into_error()))?;
            let len = file.metadata()?.len();
            file.sync_all()?;
            Ok(len)
        })();
        let new_len = match result {
            Ok(len) => len,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };

        std::fs::rename(&tmp, &self.path)?;
        self.sync_parent_dir();
        // The old handle now points at the unlinked inode; reopen.
        let file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        #[cfg(not(unix))]
        let file = std::sync::Mutex::new(file);
        self.file = file;
        self.len.store(new_len, Ordering::Release);
        Ok(())
    }
}

/// Borrowed read-only view used to hand a backing's current bytes to a
/// [`replace_with`](MutBacking::replace_with) builder.
struct SliceSource<'a>(&'a [u8]);

impl ByteSource for SliceSource<'_> {
    fn len(&self) -> u64 {
        self.0.len() as u64
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset beyond buffer"))?;
        let end = start
            .checked_add(buf.len())
            .filter(|&e| e <= self.0.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "read beyond buffer"))?;
        buf.copy_from_slice(&self.0[start..end]);
        Ok(())
    }
}

/// An in-memory mutable container image.
#[derive(Debug, Clone, Default)]
pub struct MemBacking {
    bytes: Vec<u8>,
}

impl MemBacking {
    /// An empty backing.
    pub fn empty() -> Self {
        MemBacking { bytes: Vec::new() }
    }

    /// Wrap an existing image.
    pub fn new(bytes: Vec<u8>) -> Self {
        MemBacking { bytes }
    }

    /// The current image bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Unwrap into the image bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl ByteSource for MemBacking {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        SliceSource(&self.bytes).read_exact_at(offset, buf)
    }
}

impl MutBacking for MemBacking {
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        let start = usize::try_from(offset)
            .map_err(|_| StreamError::corrupt("write offset beyond addressable memory"))?;
        let end = start
            .checked_add(buf.len())
            .ok_or_else(|| StreamError::corrupt("write range overflow"))?;
        if end > self.bytes.len() {
            self.bytes.resize(end, 0);
        }
        self.bytes[start..end].copy_from_slice(buf);
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        let len = usize::try_from(len)
            .map_err(|_| StreamError::corrupt("length beyond addressable memory"))?;
        self.bytes.resize(len, 0);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn replace_with(
        &mut self,
        build: &mut dyn FnMut(&dyn ByteSource, &mut dyn Write) -> Result<()>,
    ) -> Result<()> {
        let mut new = Vec::with_capacity(self.bytes.len());
        build(&SliceSource(&self.bytes), &mut new)?;
        self.bytes = new;
        Ok(())
    }
}

/// One journaled mutation of a [`RecordingBacking`].
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Positioned write of `bytes` at `offset`. A crash may persist any
    /// byte prefix of it.
    Write {
        /// Absolute offset of the write.
        offset: u64,
        /// The bytes written.
        bytes: Vec<u8>,
    },
    /// Truncation / extension to a new length (applied atomically).
    SetLen(u64),
    /// Durability barrier (persists nothing new; cost 0 in the replay).
    Sync,
    /// Whole-image replacement (rename semantics: all-or-nothing).
    Replace(Vec<u8>),
}

/// Replay cost of one op in bytes: how far the crash cursor must advance
/// for the op to be fully persisted.
pub fn op_cost(op: &WriteOp) -> u64 {
    match op {
        WriteOp::Write { bytes, .. } => bytes.len() as u64,
        WriteOp::SetLen(_) | WriteOp::Replace(_) => 1,
        WriteOp::Sync => 0,
    }
}

/// Total replay cost of a journal — the number of distinct crash points
/// `cut + 1` (every value of `budget` in `0..=journal_cost`).
pub fn journal_cost(ops: &[WriteOp]) -> u64 {
    ops.iter().map(op_cost).sum()
}

/// Apply the first `budget` cost units of `ops` on top of `base`,
/// returning the image a crash at that point would leave on disk. A
/// [`WriteOp::Write`] whose cost exceeds the remaining budget applies only
/// that prefix of its bytes (a torn write); `SetLen` and `Replace` are
/// all-or-nothing.
pub fn replay_prefix(base: &[u8], ops: &[WriteOp], mut budget: u64) -> Vec<u8> {
    let mut image = base.to_vec();
    for op in ops {
        let cost = op_cost(op);
        let torn = cost > budget;
        match op {
            WriteOp::Write { offset, bytes } => {
                let take = if torn { budget as usize } else { bytes.len() };
                let start = *offset as usize;
                let end = start + take;
                if end > image.len() {
                    image.resize(end, 0);
                }
                image[start..end].copy_from_slice(&bytes[..take]);
            }
            WriteOp::SetLen(len) => {
                if !torn {
                    image.resize(*len as usize, 0);
                }
            }
            WriteOp::Sync => {}
            WriteOp::Replace(bytes) => {
                if !torn {
                    image = bytes.clone();
                }
            }
        }
        if torn {
            break;
        }
        budget -= cost;
    }
    image
}

/// A [`MemBacking`] that journals every mutation for crash replay.
///
/// Construction snapshots the base image; every subsequent write op is
/// appended to the journal *and* applied to the live image. A test then
/// drives real container mutations through it, takes
/// [`into_parts`](RecordingBacking::into_parts), and sweeps
/// [`replay_prefix`] over every crash point.
#[derive(Debug, Default)]
pub struct RecordingBacking {
    inner: MemBacking,
    base: Vec<u8>,
    journal: Vec<WriteOp>,
}

impl RecordingBacking {
    /// Start recording on top of `image` (often empty).
    pub fn new(image: Vec<u8>) -> Self {
        RecordingBacking { base: image.clone(), inner: MemBacking::new(image), journal: Vec::new() }
    }

    /// The mutations journaled so far, in issue order.
    pub fn journal(&self) -> &[WriteOp] {
        &self.journal
    }

    /// The live (fully applied) image.
    pub fn image(&self) -> &[u8] {
        self.inner.as_bytes()
    }

    /// Unwrap into `(base_image, journal)` for crash replay.
    pub fn into_parts(self) -> (Vec<u8>, Vec<WriteOp>) {
        (self.base, self.journal)
    }
}

impl ByteSource for RecordingBacking {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact_at(offset, buf)
    }
}

impl MutBacking for RecordingBacking {
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        self.journal.push(WriteOp::Write { offset, bytes: buf.to_vec() });
        self.inner.write_all_at(offset, buf)
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        self.journal.push(WriteOp::SetLen(len));
        self.inner.set_len(len)
    }

    fn sync(&mut self) -> Result<()> {
        self.journal.push(WriteOp::Sync);
        self.inner.sync()
    }

    fn replace_with(
        &mut self,
        build: &mut dyn FnMut(&dyn ByteSource, &mut dyn Write) -> Result<()>,
    ) -> Result<()> {
        self.inner.replace_with(build)?;
        self.journal.push(WriteOp::Replace(self.inner.as_bytes().to_vec()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backing_extends_on_far_write() {
        let mut b = MemBacking::empty();
        b.write_all_at(4, &[7, 8]).unwrap();
        assert_eq!(b.as_bytes(), &[0, 0, 0, 0, 7, 8]);
        b.set_len(3).unwrap();
        assert_eq!(b.as_bytes(), &[0, 0, 0]);
    }

    #[test]
    fn replay_prefix_tears_writes_at_byte_granularity() {
        let ops = vec![
            WriteOp::Write { offset: 0, bytes: vec![1, 2, 3] },
            WriteOp::Sync,
            WriteOp::Write { offset: 1, bytes: vec![9, 9] },
        ];
        assert_eq!(journal_cost(&ops), 5);
        assert_eq!(replay_prefix(&[], &ops, 0), Vec::<u8>::new());
        assert_eq!(replay_prefix(&[], &ops, 2), vec![1, 2]);
        assert_eq!(replay_prefix(&[], &ops, 3), vec![1, 2, 3]);
        assert_eq!(replay_prefix(&[], &ops, 4), vec![1, 9, 3]);
        assert_eq!(replay_prefix(&[], &ops, 5), vec![1, 9, 9]);
    }

    #[test]
    fn replay_set_len_and_replace_are_atomic() {
        let ops = vec![WriteOp::SetLen(2), WriteOp::Replace(vec![5, 5, 5])];
        assert_eq!(replay_prefix(&[1, 2, 3, 4], &ops, 0), vec![1, 2, 3, 4]);
        assert_eq!(replay_prefix(&[1, 2, 3, 4], &ops, 1), vec![1, 2]);
        assert_eq!(replay_prefix(&[1, 2, 3, 4], &ops, 2), vec![5, 5, 5]);
    }

    #[test]
    fn recording_backing_journal_replays_to_live_image() {
        let mut b = RecordingBacking::new(vec![0; 4]);
        b.write_all_at(0, &[1, 2]).unwrap();
        b.sync().unwrap();
        b.write_all_at(6, &[3]).unwrap();
        b.set_len(5).unwrap();
        let live = b.image().to_vec();
        let (base, ops) = b.into_parts();
        assert_eq!(replay_prefix(&base, &ops, journal_cost(&ops)), live);
    }

    #[test]
    fn file_backing_roundtrip_and_replace() {
        let path =
            std::env::temp_dir().join(format!("stz_mutate_backing_{}.bin", std::process::id()));
        let mut b = FileBacking::create(&path).unwrap();
        b.write_all_at(0, b"hello world").unwrap();
        b.sync().unwrap();
        let mut buf = [0u8; 5];
        b.read_exact_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        b.replace_with(&mut |src, out| {
            let mut old = vec![0u8; src.len() as usize];
            src.read_exact_at(0, &mut old)?;
            out.write_all(b"new:")?;
            out.write_all(&old[..5])?;
            Ok(())
        })
        .unwrap();
        assert_eq!(b.len(), 9);
        let mut buf = vec![0u8; 9];
        b.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"new:hello");
        assert_eq!(std::fs::read(&path).unwrap(), b"new:hello");
        let _ = std::fs::remove_file(&path);
    }
}
