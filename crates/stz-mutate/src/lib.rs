//! # stz-mutate — live ingestion and atomic updates for STZC archives
//!
//! The container format (see `stz-stream`, `docs/FORMAT.md`) is write-once
//! through v2: a trailer at EOF is the only pointer to the index, so the
//! file is complete exactly when the writer finishes, and never before.
//! Long-running ingestion — a simulation emitting time steps, a server
//! accepting uploads — needs the opposite: a container that *stays valid
//! at every instant* while entries are appended, replaced, and deleted.
//!
//! This crate adds that as format v3 (`docs/MUTABILITY.md` for the full
//! treatment):
//!
//! * [`MutableContainer`] — the single writer. Payloads stage strictly
//!   past the committed tail; [`commit`](MutableContainer::commit) writes
//!   the new footer, syncs, then flips a single 48-byte *shadow generation
//!   slot* (write the inactive slot, never the active one). A crash at any
//!   byte offset leaves the previous generation intact or the flip-slot
//!   torn-and-ignored — readers always see a complete generation.
//! * [`MutableContainer::append_pipelined`] — parallel ingestion through
//!   the same pipelined engine as `pack_pipelined`, staging byte-identical
//!   to a serial append loop.
//! * [`MutableContainer::compact`] — rewrite live payloads into a fresh
//!   image and atomically swap it in (sibling file + `rename(2)`),
//!   reclaiming dead bytes while concurrent readers finish on the old
//!   inode.
//! * [`upgrade_image`] / [`upgrade_path`] — lift a write-once v1/v2
//!   container into the mutable layout (same payload bytes, same CRCs).
//! * [`RecordingBacking`] + [`replay_prefix`] — the crash-safety harness:
//!   journal every write a real mutation sequence performs, then replay
//!   arbitrary byte prefixes and prove each one opens as a committed
//!   generation or a cleanly detected torn file.
//!
//! ## Quick start
//!
//! ```
//! use stz_core::{StzCompressor, StzConfig};
//! use stz_field::{Dims, Field};
//! use stz_mutate::{MemBacking, MutableContainer};
//!
//! let field = Field::from_fn(Dims::d3(12, 12, 12), |z, y, x| {
//!     (z as f32 * 0.3).sin() + (y as f32 * 0.2).cos() + x as f32 * 0.01
//! });
//! let archive = StzCompressor::new(StzConfig::three_level(1e-3))
//!     .compress(&field)
//!     .unwrap();
//!
//! // Normally `MutableContainer::open_path("data.stzc")`.
//! let mut mc = MutableContainer::create(MemBacking::empty()).unwrap();
//! mc.append("t0", &archive.clone().into()).unwrap();
//! let generation = mc.commit().unwrap(); // now visible to readers
//! assert_eq!(generation, 2);
//! mc.replace("t0", &archive.into()).unwrap();
//! mc.commit().unwrap();
//! let reclaimed = mc.compact().unwrap().reclaimed_bytes;
//! assert!(reclaimed > 0);
//! ```

#![warn(missing_docs)]

pub mod backing;
pub mod container;
mod metrics;

pub use backing::{
    journal_cost, op_cost, replay_prefix, FileBacking, MemBacking, MutBacking, RecordingBacking,
    WriteOp,
};
pub use container::{upgrade_image, upgrade_path, CompactStats, MutStats, MutableContainer};
