//! Linear error-bounded quantization with an unpredictable-value escape.
//!
//! This is the loss-introduction stage of the SZ-family pipeline (paper
//! §2.1 step 2): the difference between the predicted and actual value is
//! mapped to an integer code `q = round(diff / (2·eb))`, so that the
//! reconstruction `pred + 2·eb·q` is within `eb` of the original.
//! Differences whose code would exceed the quantizer radius — or whose
//! reconstruction fails the bound due to floating-point rounding — are
//! *escaped*: the symbol [`ESCAPE_SYMBOL`] is emitted and the exact value is
//! stored losslessly on a side channel.

/// Symbol emitted for unpredictable (escaped) values.
///
/// Code symbols are `zigzag(q) + 1`, so 0 is free for the escape marker and
/// small-magnitude codes stay small (good for Huffman).
pub const ESCAPE_SYMBOL: u32 = 0;

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantOutcome {
    /// The value was representable: `symbol` to encode and the reconstructed
    /// value the decompressor will see (which the compressor must use for any
    /// further predictions).
    Code { symbol: u32, reconstructed: f64 },
    /// The value must be stored exactly.
    Escape,
}

/// Error-bounded linear quantizer.
#[derive(Debug, Clone, Copy)]
pub struct LinearQuantizer {
    eb: f64,
    /// Maximum |q| representable before escaping.
    radius: i64,
}

impl LinearQuantizer {
    /// Create a quantizer for absolute error bound `eb > 0`.
    ///
    /// `radius` bounds the symbol alphabet (the reference SZ3 uses 2^15 by
    /// default); larger radii trade Huffman-table size for fewer escapes.
    pub fn new(eb: f64, radius: i64) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive and finite");
        assert!(radius > 0);
        LinearQuantizer { eb, radius }
    }

    /// Quantizer with the SZ3 default radius of 2^15.
    pub fn with_default_radius(eb: f64) -> Self {
        LinearQuantizer::new(eb, 1 << 15)
    }

    #[inline]
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    #[inline]
    pub fn radius(&self) -> i64 {
        self.radius
    }

    /// Quantize `actual` against `pred`.
    #[inline]
    pub fn quantize(&self, actual: f64, pred: f64) -> QuantOutcome {
        if !actual.is_finite() || !pred.is_finite() {
            return QuantOutcome::Escape;
        }
        let diff = actual - pred;
        let q = (diff / (2.0 * self.eb)).round();
        if q.abs() > self.radius as f64 {
            return QuantOutcome::Escape;
        }
        let q = q as i64;
        let reconstructed = pred + 2.0 * self.eb * q as f64;
        // Floating-point guard: the bound must hold on the actual arithmetic
        // the decompressor performs.
        if (reconstructed - actual).abs() > self.eb {
            return QuantOutcome::Escape;
        }
        QuantOutcome::Code { symbol: Self::symbol_of(q), reconstructed }
    }

    /// Reconstruct a value from a non-escape symbol.
    #[inline]
    pub fn reconstruct(&self, symbol: u32, pred: f64) -> f64 {
        debug_assert_ne!(symbol, ESCAPE_SYMBOL);
        pred + 2.0 * self.eb * Self::code_of(symbol) as f64
    }

    /// Map a signed code to its stream symbol (`zigzag + 1`).
    #[inline]
    pub fn symbol_of(q: i64) -> u32 {
        (crate::varint::zigzag(q) + 1) as u32
    }

    /// Inverse of [`LinearQuantizer::symbol_of`].
    #[inline]
    pub fn code_of(symbol: u32) -> i64 {
        debug_assert_ne!(symbol, ESCAPE_SYMBOL);
        crate::varint::unzigzag(symbol as u64 - 1)
    }

    /// Upper bound (exclusive) of the symbol alphabet this quantizer emits.
    pub fn alphabet_size(&self) -> usize {
        // zigzag(±radius) + 1 = 2*radius + 1 at most.
        2 * self.radius as usize + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_diff_gives_symbol_one() {
        let q = LinearQuantizer::new(0.1, 1 << 15);
        match q.quantize(5.0, 5.0) {
            QuantOutcome::Code { symbol, reconstructed } => {
                assert_eq!(symbol, LinearQuantizer::symbol_of(0));
                assert_eq!(reconstructed, 5.0);
            }
            _ => panic!("escape unexpected"),
        }
    }

    #[test]
    fn bound_holds_over_range() {
        let eb = 1e-3;
        let q = LinearQuantizer::new(eb, 1 << 15);
        let pred = 1.0;
        let mut checked = 0;
        for i in -2000..2000 {
            let actual = pred + i as f64 * 3.7e-4;
            if let QuantOutcome::Code { symbol, reconstructed } = q.quantize(actual, pred) {
                assert!((reconstructed - actual).abs() <= eb);
                assert_eq!(q.reconstruct(symbol, pred), reconstructed);
                checked += 1;
            }
        }
        assert!(checked > 3900, "almost all values should be codable");
    }

    #[test]
    fn escape_on_radius_overflow() {
        let q = LinearQuantizer::new(1e-6, 8);
        assert_eq!(q.quantize(1.0, 0.0), QuantOutcome::Escape);
        // Just inside the radius codes fine.
        assert!(matches!(q.quantize(8.0 * 2e-6, 0.0), QuantOutcome::Code { .. }));
    }

    #[test]
    fn escape_on_nonfinite() {
        let q = LinearQuantizer::new(0.1, 1 << 15);
        assert_eq!(q.quantize(f64::NAN, 0.0), QuantOutcome::Escape);
        assert_eq!(q.quantize(f64::INFINITY, 0.0), QuantOutcome::Escape);
        assert_eq!(q.quantize(0.0, f64::NAN), QuantOutcome::Escape);
    }

    #[test]
    fn symbol_mapping_roundtrip() {
        for code in [-100i64, -1, 0, 1, 2, 77, 32768, -32768] {
            let s = LinearQuantizer::symbol_of(code);
            assert_ne!(s, ESCAPE_SYMBOL);
            assert_eq!(LinearQuantizer::code_of(s), code);
        }
    }

    #[test]
    fn small_codes_get_small_symbols() {
        assert_eq!(LinearQuantizer::symbol_of(0), 1);
        assert_eq!(LinearQuantizer::symbol_of(-1), 2);
        assert_eq!(LinearQuantizer::symbol_of(1), 3);
    }

    #[test]
    fn reconstruction_matches_compressor_view() {
        // The reconstructed value returned at compression time must equal the
        // decompressor's arithmetic exactly — this is what prevents error
        // propagation across hierarchy levels.
        let q = LinearQuantizer::new(0.05, 1 << 15);
        let pred = std::f64::consts::PI;
        let actual = 3.3;
        if let QuantOutcome::Code { symbol, reconstructed } = q.quantize(actual, pred) {
            assert_eq!(q.reconstruct(symbol, pred).to_bits(), reconstructed.to_bits());
        } else {
            panic!("should be codable");
        }
    }

    #[test]
    fn alphabet_is_bounded() {
        let q = LinearQuantizer::new(0.1, 4);
        for i in -400..400 {
            if let QuantOutcome::Code { symbol, .. } = q.quantize(i as f64 * 0.01, 0.0) {
                assert!((symbol as usize) < q.alphabet_size());
            }
        }
    }
}
