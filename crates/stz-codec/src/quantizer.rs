//! Linear error-bounded quantization with an unpredictable-value escape.
//!
//! This is the loss-introduction stage of the SZ-family pipeline (paper
//! §2.1 step 2): the difference between the predicted and actual value is
//! mapped to an integer code `q = round(diff / (2·eb))`, so that the
//! reconstruction `pred + 2·eb·q` is within `eb` of the original.
//! Differences whose code would exceed the quantizer radius — or whose
//! reconstruction fails the bound due to floating-point rounding — are
//! *escaped*: the symbol [`ESCAPE_SYMBOL`] is emitted and the exact value is
//! stored losslessly on a side channel.

/// Symbol emitted for unpredictable (escaped) values.
///
/// Code symbols are `zigzag(q) + 1`, so 0 is free for the escape marker and
/// small-magnitude codes stay small (good for Huffman).
pub const ESCAPE_SYMBOL: u32 = 0;

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantOutcome {
    /// The value was representable: `symbol` to encode and the reconstructed
    /// value the decompressor will see (which the compressor must use for any
    /// further predictions).
    Code { symbol: u32, reconstructed: f64 },
    /// The value must be stored exactly.
    Escape,
}

/// Error-bounded linear quantizer.
#[derive(Debug, Clone, Copy)]
pub struct LinearQuantizer {
    eb: f64,
    /// Maximum |q| representable before escaping.
    radius: i64,
}

impl LinearQuantizer {
    /// Create a quantizer for absolute error bound `eb > 0`.
    ///
    /// `radius` bounds the symbol alphabet (the reference SZ3 uses 2^15 by
    /// default); larger radii trade Huffman-table size for fewer escapes.
    pub fn new(eb: f64, radius: i64) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive and finite");
        assert!(radius > 0);
        LinearQuantizer { eb, radius }
    }

    /// Quantizer with the SZ3 default radius of 2^15.
    pub fn with_default_radius(eb: f64) -> Self {
        LinearQuantizer::new(eb, 1 << 15)
    }

    #[inline]
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    #[inline]
    pub fn radius(&self) -> i64 {
        self.radius
    }

    /// Quantize `actual` against `pred`.
    #[inline]
    pub fn quantize(&self, actual: f64, pred: f64) -> QuantOutcome {
        if !actual.is_finite() || !pred.is_finite() {
            return QuantOutcome::Escape;
        }
        let diff = actual - pred;
        let q = (diff / (2.0 * self.eb)).round();
        if q.abs() > self.radius as f64 {
            return QuantOutcome::Escape;
        }
        let q = q as i64;
        let reconstructed = pred + 2.0 * self.eb * q as f64;
        // Floating-point guard: the bound must hold on the actual arithmetic
        // the decompressor performs.
        if (reconstructed - actual).abs() > self.eb {
            return QuantOutcome::Escape;
        }
        QuantOutcome::Code { symbol: Self::symbol_of(q), reconstructed }
    }

    /// Reconstruct a value from a non-escape symbol.
    #[inline]
    pub fn reconstruct(&self, symbol: u32, pred: f64) -> f64 {
        debug_assert_ne!(symbol, ESCAPE_SYMBOL);
        pred + 2.0 * self.eb * Self::code_of(symbol) as f64
    }

    /// Map a signed code to its stream symbol (`zigzag + 1`).
    #[inline]
    pub fn symbol_of(q: i64) -> u32 {
        (crate::varint::zigzag(q) + 1) as u32
    }

    /// Inverse of [`LinearQuantizer::symbol_of`].
    #[inline]
    pub fn code_of(symbol: u32) -> i64 {
        debug_assert_ne!(symbol, ESCAPE_SYMBOL);
        crate::varint::unzigzag(symbol as u64 - 1)
    }

    /// Branchless batch [`code_of`](Self::code_of):
    /// `codes[i] = code_of(symbols[i]) as f64` for every coded symbol.
    /// Escape slots (`symbols[i] == 0`) receive `i64::MIN as f64` — a
    /// finite placeholder the caller must overwrite, chosen so the decode
    /// batch path can convert a whole row without a per-symbol branch.
    pub fn codes_of_run(symbols: &[u32], codes: &mut [f64]) {
        assert!(symbols.len() == codes.len());
        for (c, &s) in codes.iter_mut().zip(symbols) {
            let u = (s as u64).wrapping_sub(1);
            *c = crate::varint::unzigzag(u) as f64;
        }
    }

    /// Upper bound (exclusive) of the symbol alphabet this quantizer emits.
    pub fn alphabet_size(&self) -> usize {
        // zigzag(±radius) + 1 = 2*radius + 1 at most.
        2 * self.radius as usize + 2
    }

    /// Batch [`quantize`](Self::quantize) on a SIMD lane.
    ///
    /// For each point: `q_out[i]` holds the signed code as an `f64` (exact
    /// for any in-radius code — pass it to [`Self::symbol_of`] as
    /// `q_out[i] as i64`), `recon_out[i]` the reconstruction, and
    /// `escape_out[i]` is 1 where the point escapes (its `q_out`/`recon_out`
    /// are then meaningless). Bit-identical to the per-point method on every
    /// lane.
    pub fn quantize_run_f64(
        &self,
        lane: stz_simd::Lane,
        actuals: &[f64],
        preds: &[f64],
        q_out: &mut [f64],
        recon_out: &mut [f64],
        escape_out: &mut [u8],
    ) {
        stz_simd::quantize_run_f64(
            lane,
            actuals,
            preds,
            self.eb,
            2.0 * self.eb,
            self.radius as f64,
            q_out,
            recon_out,
            escape_out,
        );
    }

    /// [`quantize_run_f64`](Self::quantize_run_f64) with the reconstruction
    /// rounded through `f32` and re-checked against the bound, mirroring the
    /// `T = f32` compressor path.
    pub fn quantize_run_f32(
        &self,
        lane: stz_simd::Lane,
        actuals: &[f64],
        preds: &[f64],
        q_out: &mut [f64],
        recon_out: &mut [f64],
        escape_out: &mut [u8],
    ) {
        stz_simd::quantize_run_f32(
            lane,
            actuals,
            preds,
            self.eb,
            2.0 * self.eb,
            self.radius as f64,
            q_out,
            recon_out,
            escape_out,
        );
    }

    /// Batch [`reconstruct`](Self::reconstruct) on a SIMD lane:
    /// `out[i] = preds[i] + 2·eb·codes[i]`, where `codes[i]` is the signed
    /// code as an `f64` ([`Self::code_of`]` as f64`). Bit-identical to the
    /// per-point method on every lane.
    pub fn reconstruct_run_f64(
        &self,
        lane: stz_simd::Lane,
        preds: &[f64],
        codes: &[f64],
        out: &mut [f64],
    ) {
        stz_simd::recon_run_f64(lane, preds, codes, 2.0 * self.eb, out);
    }

    /// Fused interior predict + [`reconstruct_run_f64`](Self::reconstruct_run_f64):
    /// `out[i]` reconstructs the grid point at `base + 2*i` without
    /// materializing the predictions.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_reconstruct_run_f64(
        &self,
        lane: stz_simd::Lane,
        gbuf: &[f64],
        base: usize,
        st: &stz_simd::Stencil,
        codes: &[f64],
        out: &mut [f64],
    ) {
        stz_simd::predict_recon_run_f64(lane, gbuf, base, st, codes, 2.0 * self.eb, out);
    }

    /// [`predict_reconstruct_run_f64`](Self::predict_reconstruct_run_f64)
    /// rounded through `f32`.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_reconstruct_run_f32(
        &self,
        lane: stz_simd::Lane,
        gbuf: &[f64],
        base: usize,
        st: &stz_simd::Stencil,
        codes: &[f64],
        out: &mut [f64],
    ) {
        stz_simd::predict_recon_run_f32(lane, gbuf, base, st, codes, 2.0 * self.eb, out);
    }

    /// [`reconstruct_run_f64`](Self::reconstruct_run_f64) rounded through
    /// `f32`, mirroring the `T = f32` decompressor path.
    pub fn reconstruct_run_f32(
        &self,
        lane: stz_simd::Lane,
        preds: &[f64],
        codes: &[f64],
        out: &mut [f64],
    ) {
        stz_simd::recon_run_f32(lane, preds, codes, 2.0 * self.eb, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_diff_gives_symbol_one() {
        let q = LinearQuantizer::new(0.1, 1 << 15);
        match q.quantize(5.0, 5.0) {
            QuantOutcome::Code { symbol, reconstructed } => {
                assert_eq!(symbol, LinearQuantizer::symbol_of(0));
                assert_eq!(reconstructed, 5.0);
            }
            _ => panic!("escape unexpected"),
        }
    }

    #[test]
    fn bound_holds_over_range() {
        let eb = 1e-3;
        let q = LinearQuantizer::new(eb, 1 << 15);
        let pred = 1.0;
        let mut checked = 0;
        for i in -2000..2000 {
            let actual = pred + i as f64 * 3.7e-4;
            if let QuantOutcome::Code { symbol, reconstructed } = q.quantize(actual, pred) {
                assert!((reconstructed - actual).abs() <= eb);
                assert_eq!(q.reconstruct(symbol, pred), reconstructed);
                checked += 1;
            }
        }
        assert!(checked > 3900, "almost all values should be codable");
    }

    #[test]
    fn escape_on_radius_overflow() {
        let q = LinearQuantizer::new(1e-6, 8);
        assert_eq!(q.quantize(1.0, 0.0), QuantOutcome::Escape);
        // Just inside the radius codes fine.
        assert!(matches!(q.quantize(8.0 * 2e-6, 0.0), QuantOutcome::Code { .. }));
    }

    #[test]
    fn escape_on_nonfinite() {
        let q = LinearQuantizer::new(0.1, 1 << 15);
        assert_eq!(q.quantize(f64::NAN, 0.0), QuantOutcome::Escape);
        assert_eq!(q.quantize(f64::INFINITY, 0.0), QuantOutcome::Escape);
        assert_eq!(q.quantize(0.0, f64::NAN), QuantOutcome::Escape);
    }

    #[test]
    fn symbol_mapping_roundtrip() {
        for code in [-100i64, -1, 0, 1, 2, 77, 32768, -32768] {
            let s = LinearQuantizer::symbol_of(code);
            assert_ne!(s, ESCAPE_SYMBOL);
            assert_eq!(LinearQuantizer::code_of(s), code);
        }
    }

    #[test]
    fn small_codes_get_small_symbols() {
        assert_eq!(LinearQuantizer::symbol_of(0), 1);
        assert_eq!(LinearQuantizer::symbol_of(-1), 2);
        assert_eq!(LinearQuantizer::symbol_of(1), 3);
    }

    #[test]
    fn reconstruction_matches_compressor_view() {
        // The reconstructed value returned at compression time must equal the
        // decompressor's arithmetic exactly — this is what prevents error
        // propagation across hierarchy levels.
        let q = LinearQuantizer::new(0.05, 1 << 15);
        let pred = std::f64::consts::PI;
        let actual = 3.3;
        if let QuantOutcome::Code { symbol, reconstructed } = q.quantize(actual, pred) {
            assert_eq!(q.reconstruct(symbol, pred).to_bits(), reconstructed.to_bits());
        } else {
            panic!("should be codable");
        }
    }

    #[test]
    fn batch_matches_per_point_on_every_lane() {
        let q = LinearQuantizer::new(1e-3, 1 << 15);
        let preds: Vec<f64> = (0..300).map(|i| (i as f64 * 0.731).sin()).collect();
        let actuals: Vec<f64> = preds
            .iter()
            .enumerate()
            .map(|(i, &p)| match i % 7 {
                0 => p + i as f64 * 1.9e-4,
                1 => f64::NAN,
                2 => p - 0.5, // large code
                3 => p + 1e6, // radius escape
                4 => -0.0,
                _ => p * 1.0000003,
            })
            .collect();
        let n = actuals.len();
        for lane in stz_simd::available_lanes() {
            let mut qs = vec![0.0; n];
            let mut rs = vec![0.0; n];
            let mut es = vec![0u8; n];
            q.quantize_run_f64(lane, &actuals, &preds, &mut qs, &mut rs, &mut es);
            for i in 0..n {
                match q.quantize(actuals[i], preds[i]) {
                    QuantOutcome::Escape => assert_eq!(es[i], 1, "escape[{i}] on {lane}"),
                    QuantOutcome::Code { symbol, reconstructed } => {
                        assert_eq!(es[i], 0, "code[{i}] on {lane}");
                        assert_eq!(LinearQuantizer::symbol_of(qs[i] as i64), symbol);
                        assert_eq!(rs[i].to_bits(), reconstructed.to_bits());
                        // And the batch reconstruction agrees too.
                        let code = [LinearQuantizer::code_of(symbol) as f64];
                        let mut out = [0.0];
                        q.reconstruct_run_f64(lane, &preds[i..i + 1], &code, &mut out);
                        assert_eq!(out[0].to_bits(), reconstructed.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn alphabet_is_bounded() {
        let q = LinearQuantizer::new(0.1, 4);
        for i in -400..400 {
            if let QuantOutcome::Code { symbol, .. } = q.quantize(i as f64 * 0.01, 0.0) {
                assert!((symbol as usize) < q.alphabet_size());
            }
        }
    }
}
