//! Entropy-coding substrate shared by every compressor in the STZ workspace.
//!
//! The STZ paper's pipeline (§2.1) is *predict → quantize → Huffman encode*;
//! this crate implements the last two stages plus the low-level plumbing:
//!
//! * [`bits`] — MSB-first bit writer/reader over byte buffers.
//! * [`huffman`] — canonical, length-limited Huffman coding with a compact
//!   serialized table, used for the quantization-code streams of STZ, SZ3 and
//!   MGARD.
//! * [`quantizer`] — the linear error-bounded quantizer with an
//!   unpredictable-value escape path (bit-exact outliers).
//! * [`varint`] / [`byteio`] / [`rle`] — integer and byte-level serialization
//!   helpers for archive headers and tables.
//! * [`guard`] — the decode-allocation cap: hostile declared geometry is
//!   rejected before any dimension-sized buffer is reserved.
//!
//! All decoding paths return [`CodecError`] on malformed input; they never
//! panic on untrusted bytes.

pub mod bits;
pub mod byteio;
pub mod error;
pub mod guard;
pub mod huffman;
pub mod quantizer;
pub mod rle;
pub mod varint;

pub use bits::{BitReader, BitWriter};
pub use byteio::{ByteReader, ByteWriter};
pub use error::CodecError;
pub use guard::{check_decode_alloc, max_decode_bytes, set_max_decode_bytes};
pub use huffman::{HuffmanDecoder, HuffmanEncoder};
pub use quantizer::{LinearQuantizer, QuantOutcome, ESCAPE_SYMBOL};

/// Result alias for decoding paths.
pub type Result<T> = std::result::Result<T, CodecError>;
