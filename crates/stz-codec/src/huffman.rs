//! Canonical, length-limited Huffman coding.
//!
//! This is the lossless-encoding stage shared by STZ, SZ3 and MGARD (paper
//! §2.1 step 3). Codes are *canonical*: they are fully determined by the code
//! lengths plus the symbol ordering, so the serialized table stores only
//! `(symbol, length)` pairs. Lengths are limited to [`MAX_CODE_LEN`] bits by
//! a Kraft-sum repair pass, which keeps the decoder's fast path a single
//! table lookup.
//!
//! Decoding uses a one-level lookup table covering codes up to
//! [`TABLE_BITS`] bits (the overwhelmingly common case for quantization-code
//! streams, whose distribution is sharply peaked at zero), falling back to
//! canonical first-code walking for longer codes.

use crate::bits::{BitReader, BitWriter};
use crate::byteio::{ByteReader, ByteWriter};
use crate::{CodecError, Result};
use std::collections::BinaryHeap;

/// Maximum permitted code length in bits.
pub const MAX_CODE_LEN: u32 = 32;
/// Width of the one-level decode lookup table.
pub const TABLE_BITS: u32 = 12;

/// Canonical Huffman encoder over a dense `u32` symbol alphabet.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    /// Per-symbol `(code, length)`; length 0 means the symbol never occurs.
    codes: Vec<(u32, u8)>,
}

impl HuffmanEncoder {
    /// Build an encoder from per-symbol frequencies (`freqs[s]` is the count
    /// of symbol `s`). Symbols with zero frequency get no code.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let lengths = code_lengths(freqs, MAX_CODE_LEN);
        let codes = assign_canonical(&lengths);
        HuffmanEncoder { codes }
    }

    /// Build an encoder directly from a symbol stream.
    pub fn from_symbols(symbols: &[u32]) -> Self {
        let alphabet = symbols.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        Self::from_frequencies(&freqs)
    }

    /// Append the code for one symbol.
    #[inline]
    pub fn encode_symbol(&self, symbol: u32, w: &mut BitWriter) {
        let (code, len) = self.codes[symbol as usize];
        debug_assert!(len > 0, "symbol {symbol} has no code (zero frequency)");
        w.put(code as u64, len as u32);
    }

    /// Append codes for a whole stream.
    pub fn encode_into(&self, symbols: &[u32], w: &mut BitWriter) {
        for &s in symbols {
            self.encode_symbol(s, w);
        }
    }

    /// Exact encoded size in bits for a frequency histogram.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * self.codes.get(s).map_or(0, |&(_, l)| l as u64))
            .sum()
    }

    /// Serialize the code table (lengths only — codes are canonical).
    pub fn serialize_table(&self, w: &mut ByteWriter) {
        let entries: Vec<(u32, u8)> = self
            .codes
            .iter()
            .enumerate()
            .filter(|(_, &(_, len))| len > 0)
            .map(|(sym, &(_, len))| (sym as u32, len))
            .collect();
        w.put_uvarint(entries.len() as u64);
        let mut prev = 0u32;
        for &(sym, len) in &entries {
            w.put_uvarint((sym - prev) as u64);
            w.put_u8(len);
            prev = sym;
        }
    }

    /// Number of symbols that have a code.
    pub fn coded_symbols(&self) -> usize {
        self.codes.iter().filter(|&&(_, l)| l > 0).count()
    }

    /// Code length of `symbol` in bits (0 if uncoded).
    pub fn code_len(&self, symbol: u32) -> u8 {
        self.codes.get(symbol as usize).map_or(0, |&(_, l)| l)
    }
}

/// Canonical Huffman decoder.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// Fast path: `table[prefix] = (symbol, len)` for codes of length
    /// `<= table_bits`; `len == 0` marks a long code.
    table: Vec<(u32, u8)>,
    /// `min(max_len, TABLE_BITS)` — sizing the fast table to the actual
    /// longest code keeps the per-table build cost proportional to the
    /// alphabet, which matters when many small blocks each carry their own
    /// table.
    table_bits: u32,
    /// Canonical walk state for long codes, indexed by length `1..=max_len`.
    first_code: [u64; MAX_CODE_LEN as usize + 1],
    offset: [u32; MAX_CODE_LEN as usize + 1],
    count: [u32; MAX_CODE_LEN as usize + 1],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    max_len: u32,
}

impl HuffmanDecoder {
    /// Deserialize a table written by [`HuffmanEncoder::serialize_table`].
    pub fn deserialize(r: &mut ByteReader<'_>) -> Result<Self> {
        let n = r.get_uvarint()?;
        if n > (u32::MAX as u64) {
            return Err(CodecError::corrupt("huffman table too large"));
        }
        // Each entry consumes at least two input bytes (delta varint +
        // length), so a declared count beyond that is a lie — reject it
        // before reserving the entries vector.
        if n > r.remaining() as u64 / 2 {
            return Err(CodecError::corrupt("huffman table larger than its input"));
        }
        let n = n as usize;
        let mut entries = Vec::with_capacity(n);
        let mut sym = 0u32;
        for i in 0..n {
            let delta = r.get_uvarint()?;
            let len = r.get_u8()?;
            if len == 0 || len as u32 > MAX_CODE_LEN {
                return Err(CodecError::corrupt(format!("invalid code length {len}")));
            }
            sym = sym
                .checked_add(delta as u32)
                .ok_or_else(|| CodecError::corrupt("huffman symbol overflow"))?;
            if i > 0 && delta == 0 {
                return Err(CodecError::corrupt("duplicate symbol in huffman table"));
            }
            entries.push((sym, len));
        }
        Self::from_entries(&entries)
    }

    /// Build a decoder from `(symbol, length)` pairs (ascending symbols).
    pub fn from_entries(entries: &[(u32, u8)]) -> Result<Self> {
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        let mut max_len = 0u32;
        for &(_, len) in entries {
            count[len as usize] += 1;
            max_len = max_len.max(len as u32);
        }
        // Kraft inequality check: the table must be decodable.
        let mut kraft: u64 = 0;
        for (len, &c) in count.iter().enumerate().skip(1) {
            kraft += (c as u64) << (MAX_CODE_LEN as usize - len);
        }
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(CodecError::corrupt("huffman table violates Kraft inequality"));
        }

        // Symbols sorted by (length, symbol): entries are already sorted by
        // symbol, so a stable distribution by length suffices.
        let mut offset = [0u32; MAX_CODE_LEN as usize + 1];
        let mut acc = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            offset[len] = acc;
            acc += count[len];
        }
        let mut symbols = vec![0u32; entries.len()];
        let mut cursor = offset;
        for &(sym, len) in entries {
            symbols[cursor[len as usize] as usize] = sym;
            cursor[len as usize] += 1;
        }

        // Canonical first codes.
        let mut first_code = [0u64; MAX_CODE_LEN as usize + 1];
        let mut code = 0u64;
        for len in 1..=MAX_CODE_LEN as usize {
            code <<= 1;
            first_code[len] = code;
            code += count[len] as u64;
        }

        // Fast table for short codes.
        let table_bits = TABLE_BITS.min(max_len);
        let table_len = 1usize << table_bits;
        let mut table = vec![(0u32, 0u8); table_len];
        for len in 1..=table_bits {
            let len_us = len as usize;
            for k in 0..count[len_us] {
                let code = first_code[len_us] + k as u64;
                let sym = symbols[(offset[len_us] + k) as usize];
                let shift = table_bits - len;
                let base = (code << shift) as usize;
                for fill in 0..(1usize << shift) {
                    table[base + fill] = (sym, len as u8);
                }
            }
        }

        Ok(HuffmanDecoder { table, table_bits, first_code, offset, count, symbols, max_len })
    }

    /// Decode a single symbol.
    #[inline]
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let prefix = r.peek(self.table_bits) as usize;
        let (sym, len) = self.table[prefix];
        if len > 0 {
            // peek() buffered >= len bits (or hit true EOF), so the cheap
            // consume path is exact.
            r.consume_buffered(len as u32)?;
            return Ok(sym);
        }
        self.decode_long(r)
    }

    #[cold]
    fn decode_long(&self, r: &mut BitReader<'_>) -> Result<u32> {
        if self.max_len <= self.table_bits {
            return Err(CodecError::corrupt("invalid huffman prefix"));
        }
        let window = r.peek(self.max_len);
        for len in (self.table_bits + 1)..=self.max_len {
            let code = window >> (self.max_len - len);
            let len_us = len as usize;
            if code >= self.first_code[len_us]
                && code - self.first_code[len_us] < self.count[len_us] as u64
            {
                let idx = self.offset[len_us] as u64 + (code - self.first_code[len_us]);
                r.consume(len)?;
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(CodecError::corrupt("undecodable huffman code"))
    }

    /// Decode exactly `n` symbols.
    pub fn decode_n(&self, r: &mut BitReader<'_>, n: usize) -> Result<Vec<u32>> {
        // `n` is caller-declared, but each decoded symbol consumes at least
        // one input bit, so clamping the reservation to the real input size
        // bounds the allocation even when the declared count lies — while an
        // honest `n` gets its exact capacity up front (no growth copies in
        // the decode hot loop).
        let cap = n.min(r.bits_remaining() as usize);
        let mut out = Vec::with_capacity(cap);
        let table = &self.table[..];
        let tb = self.table_bits;
        if tb > 0 && table.len() == 1usize << tb {
            // Hot loop: reader state lives in registers, the table index is
            // masked to the (length-checked) table size so no per-symbol
            // bounds check or `Result` survives, and refills use the 8-byte
            // fast path. The last few bytes of input — where the fast refill
            // no longer applies — and long codes fall back to
            // `decode_symbol`, which reproduces the exact same bit stream
            // semantics (the fast loop merely batches its state updates).
            let data = r.data;
            let (mut pos, mut acc, mut nbits) = (r.pos, r.acc, r.nbits);
            while out.len() < n {
                if nbits < tb {
                    if pos + 8 > data.len() {
                        break;
                    }
                    let take = ((64 - nbits) >> 3) as usize;
                    let word = u64::from_be_bytes(data[pos..pos + 8].try_into().unwrap());
                    acc = if take == 8 {
                        word
                    } else {
                        (acc << (8 * take)) | (word >> (64 - 8 * take as u32))
                    };
                    pos += take;
                    nbits += 8 * take as u32;
                }
                let prefix = (acc >> (nbits - tb)) as usize & (table.len() - 1);
                let (sym, len) = table[prefix];
                if len == 0 {
                    // Long code: hand the reader back and take the cold path.
                    (r.pos, r.acc, r.nbits) = (pos, acc, nbits);
                    out.push(self.decode_long(r)?);
                    (pos, acc, nbits) = (r.pos, r.acc, r.nbits);
                    continue;
                }
                nbits -= len as u32;
                out.push(sym);
            }
            (r.pos, r.acc, r.nbits) = (pos, acc, nbits);
        }
        for _ in out.len()..n {
            out.push(self.decode_symbol(r)?);
        }
        Ok(out)
    }

    /// Number of symbols in the table.
    pub fn alphabet_len(&self) -> usize {
        self.symbols.len()
    }
}

/// Compute optimal (then length-limited) code lengths from frequencies.
fn code_lengths(freqs: &[u64], limit: u32) -> Vec<u8> {
    let nonzero: Vec<usize> =
        freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(s, _)| s).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match nonzero.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs one bit so the payload is framed.
            lengths[nonzero[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap-based Huffman over (freq, node). Ties broken by node id for
    // determinism across platforms.
    #[derive(PartialEq, Eq)]
    struct Item {
        freq: u64,
        node: u32,
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap.
            other.freq.cmp(&self.freq).then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = nonzero.len();
    // parent[i] for all 2n-1 tree nodes; leaves are 0..n.
    let mut parent = vec![u32::MAX; 2 * n - 1];
    let mut heap: BinaryHeap<Item> =
        nonzero.iter().enumerate().map(|(i, &s)| Item { freq: freqs[s], node: i as u32 }).collect();
    let mut next = n as u32;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.node as usize] = next;
        parent[b.node as usize] = next;
        heap.push(Item { freq: a.freq.saturating_add(b.freq), node: next });
        next += 1;
    }

    // Depth of each leaf = chain length to the root.
    let mut depths = vec![0u32; n];
    for (i, depth) in depths.iter_mut().enumerate() {
        let mut node = i as u32;
        while parent[node as usize] != u32::MAX {
            node = parent[node as usize];
            *depth += 1;
        }
    }

    limit_lengths(&mut depths, &nonzero, freqs, limit);
    for (i, &s) in nonzero.iter().enumerate() {
        lengths[s] = depths[i] as u8;
    }
    lengths
}

/// Clamp code lengths to `limit` and repair the Kraft sum by deepening the
/// lowest-frequency shallow codes.
fn limit_lengths(depths: &mut [u32], nonzero: &[usize], freqs: &[u64], limit: u32) {
    let over = depths.iter().any(|&d| d > limit);
    if !over {
        return;
    }
    for d in depths.iter_mut() {
        if *d > limit {
            *d = limit;
        }
    }
    let target = 1u64 << limit;
    let mut kraft: u64 = depths.iter().map(|&d| 1u64 << (limit - d)).sum();
    // Deepen lowest-frequency symbols first to minimize the cost of repair.
    let mut order: Vec<usize> = (0..depths.len()).collect();
    order.sort_by_key(|&i| freqs[nonzero[i]]);
    while kraft > target {
        let mut progressed = false;
        for &i in &order {
            if depths[i] < limit {
                kraft -= 1u64 << (limit - depths[i] - 1);
                depths[i] += 1;
                progressed = true;
                if kraft <= target {
                    break;
                }
            }
        }
        assert!(progressed, "cannot satisfy Kraft inequality at limit {limit}");
    }
}

/// Assign canonical codes from lengths.
fn assign_canonical(lengths: &[u8]) -> Vec<(u32, u8)> {
    let mut count = [0u32; MAX_CODE_LEN as usize + 1];
    for &l in lengths {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut next_code = [0u64; MAX_CODE_LEN as usize + 2];
    let mut code = 0u64;
    for len in 1..=MAX_CODE_LEN as usize {
        code = (code + count[len - 1] as u64) << 1;
        next_code[len] = code;
    }
    let mut out = vec![(0u32, 0u8); lengths.len()];
    for (sym, &len) in lengths.iter().enumerate() {
        if len > 0 {
            out[sym] = (next_code[len as usize] as u32, len);
            next_code[len as usize] += 1;
        }
    }
    out
}

/// One-shot helper: encode a symbol stream into a self-contained block
/// (table + count + payload).
///
/// A run-length post-pass is applied to the Huffman payload when it helps —
/// the light-weight analogue of the lossless (zstd) stage the reference SZ3
/// stacks after Huffman coding. It matters in the high-compression regime:
/// with a sharply peaked code distribution Huffman floors at 1 bit/symbol,
/// while the payload bytes become long constant runs that RLE collapses.
pub fn encode_block(symbols: &[u32]) -> Vec<u8> {
    let enc = HuffmanEncoder::from_symbols(symbols);
    let mut w = ByteWriter::new();
    enc.serialize_table(&mut w);
    w.put_uvarint(symbols.len() as u64);
    let mut bw = BitWriter::with_capacity(symbols.len() / 2);
    enc.encode_into(symbols, &mut bw);
    let payload = bw.finish();
    let rle = crate::rle::encode(&payload);
    if rle.len() < payload.len() {
        w.put_u8(1);
        w.put_block(&rle);
    } else {
        w.put_u8(0);
        w.put_block(&payload);
    }
    w.finish()
}

/// Inverse of [`encode_block`].
pub fn decode_block(data: &[u8]) -> Result<Vec<u32>> {
    let mut r = ByteReader::new(data);
    let dec = HuffmanDecoder::deserialize(&mut r)?;
    let n = r.get_uvarint()? as usize;
    crate::guard::check_decode_alloc(n as u64, 4, "huffman symbol stream")?;
    if n > 0 && dec.alphabet_len() == 0 {
        return Err(CodecError::corrupt("payload with empty huffman table"));
    }
    let rle_flag = match r.get_u8()? {
        0 => false,
        1 => true,
        f => return Err(CodecError::corrupt(format!("invalid RLE flag {f}"))),
    };
    let block = r.get_block()?;
    let payload;
    let payload_ref: &[u8] = if rle_flag {
        payload = crate::rle::decode(block)?;
        &payload
    } else {
        block
    };
    let mut br = BitReader::new(payload_ref);
    dec.decode_n(&mut br, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let block = encode_block(symbols);
        let back = decode_block(&block).unwrap();
        assert_eq!(back, symbols);
    }

    #[test]
    fn empty_stream() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_repeated() {
        roundtrip(&[7u32; 1000]);
    }

    #[test]
    fn constant_stream_collapses_via_rle() {
        // The RLE post-pass must break the 1-bit/symbol Huffman floor for
        // constant streams (the >200x compression-ratio regime of the paper).
        let syms = vec![3u32; 100_000];
        let block = encode_block(&syms);
        assert!(block.len() < 64, "constant stream took {} bytes", block.len());
        assert_eq!(decode_block(&block).unwrap(), syms);
    }

    #[test]
    fn two_symbols() {
        let syms: Vec<u32> = (0..500).map(|i| (i % 2) as u32).collect();
        roundtrip(&syms);
    }

    #[test]
    fn skewed_distribution() {
        // Mimics quantization codes: sharply peaked at one value.
        let mut syms = vec![100u32; 10_000];
        for i in 0..100 {
            syms[i * 97] = (i % 40) as u32;
        }
        roundtrip(&syms);
        // The block must be much smaller than 4 bytes/symbol.
        let block = encode_block(&syms);
        assert!(block.len() < syms.len() / 2, "block {} bytes", block.len());
    }

    #[test]
    fn wide_alphabet() {
        let syms: Vec<u32> = (0..5000u32).map(|i| i.wrapping_mul(2654435761) % 1024).collect();
        roundtrip(&syms);
    }

    #[test]
    fn sparse_alphabet_large_symbols() {
        let syms = vec![0u32, 1_000_000, 5, 1_000_000, 0, 999_999];
        roundtrip(&syms);
    }

    #[test]
    fn exponential_freqs_hit_length_limit() {
        // Fibonacci-like frequencies force deep trees; lengths must clamp.
        let mut freqs = vec![0u64; 64];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        for s in 0..64u32 {
            assert!(enc.code_len(s) as u32 <= MAX_CODE_LEN);
            assert!(enc.code_len(s) > 0);
        }
        // And it still roundtrips.
        let mut syms = Vec::new();
        for (s, &f) in freqs.iter().enumerate() {
            for _ in 0..(f.min(3)) {
                syms.push(s as u32);
            }
        }
        let mut w = ByteWriter::new();
        enc.serialize_table(&mut w);
        let mut bw = BitWriter::new();
        enc.encode_into(&syms, &mut bw);
        w.put_block(&bw.finish());
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let dec = HuffmanDecoder::deserialize(&mut r).unwrap();
        let payload = r.get_block().unwrap();
        let mut br = BitReader::new(payload);
        assert_eq!(dec.decode_n(&mut br, syms.len()).unwrap(), syms);
    }

    #[test]
    fn decoder_rejects_bad_tables() {
        // Kraft violation: three 1-bit codes.
        let entries = [(0u32, 1u8), (1, 1), (2, 1)];
        assert!(HuffmanDecoder::from_entries(&entries).is_err());
    }

    #[test]
    fn decoder_rejects_zero_length_entry() {
        let mut w = ByteWriter::new();
        w.put_uvarint(1);
        w.put_uvarint(0);
        w.put_u8(0); // invalid length
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(HuffmanDecoder::deserialize(&mut r).is_err());
    }

    #[test]
    fn truncated_block_is_error() {
        let syms: Vec<u32> = (0..100).map(|i| (i % 7) as u32).collect();
        let block = encode_block(&syms);
        for cut in [0, 1, block.len() / 2, block.len() - 1] {
            assert!(decode_block(&block[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn optimality_sanity_two_to_one() {
        // freq {a: 1000, b: 1} -> a gets a 1-bit code.
        let enc = HuffmanEncoder::from_frequencies(&[1000, 1]);
        assert_eq!(enc.code_len(0), 1);
        assert_eq!(enc.code_len(1), 1);
    }

    #[test]
    fn optimality_sanity_uniform_four() {
        let enc = HuffmanEncoder::from_frequencies(&[10, 10, 10, 10]);
        for s in 0..4 {
            assert_eq!(enc.code_len(s), 2);
        }
    }

    #[test]
    fn entropy_close_for_geometric() {
        // Encoded size should be within ~5% of the entropy bound + 1 bit/sym.
        let mut freqs = vec![0u64; 33];
        for (k, f) in freqs.iter_mut().enumerate() {
            *f = 1u64 << (32 - k.min(31));
        }
        let total: u64 = freqs.iter().sum();
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        let bits = enc.encoded_bits(&freqs) as f64;
        let entropy: f64 = freqs
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / total as f64;
                -(f as f64) * p.log2()
            })
            .sum();
        assert!(bits <= entropy + total as f64, "bits {bits} vs entropy {entropy}");
    }

    #[test]
    fn long_codes_fall_back_to_walk() {
        // Build an alphabet where some codes exceed TABLE_BITS bits.
        let mut freqs = vec![1u64; 1 << 13]; // 8192 symbols, uniform -> 13-bit codes
        freqs[0] = 1 << 20; // one dominant symbol
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        let max = (0..freqs.len() as u32).map(|s| enc.code_len(s) as u32).max().unwrap();
        assert!(max > TABLE_BITS, "test needs long codes, got max {max}");
        let syms: Vec<u32> = (0..(1 << 13)).map(|i| i as u32).collect();
        roundtrip(&syms);
    }
}
