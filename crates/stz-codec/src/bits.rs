//! MSB-first bit-level I/O over byte buffers.
//!
//! The bit order is most-significant-bit first within each byte, which makes
//! canonical Huffman decoding a simple left-shift accumulate and matches the
//! convention of the reference SZ3 implementation's encoder.

use crate::{CodecError, Result};

/// Accumulating bit writer. Bits are packed MSB-first; [`BitWriter::finish`]
/// pads the final partial byte with zero bits.
#[derive(Default, Debug, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u64,
    /// Number of valid bits currently in `acc` (0..=63).
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter { buf: Vec::with_capacity(bytes), acc: 0, nbits: 0 }
    }

    /// Append the low `len` bits of `code` (MSB of the code first).
    /// `len` must be `<= 57` per call (callers split longer codes).
    #[inline]
    pub fn put(&mut self, code: u64, len: u32) {
        debug_assert!(len <= 57, "put() supports at most 57 bits per call");
        debug_assert!(len == 64 || code < (1u64 << len), "code wider than len");
        self.acc = (self.acc << len) | code;
        self.nbits += len;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.put(bit as u64, 1);
    }

    /// Append up to 64 bits, splitting internally as needed.
    pub fn put_wide(&mut self, code: u64, len: u32) {
        debug_assert!(len <= 64);
        if len > 57 {
            let hi = len - 32;
            self.put(code >> 32, hi);
            self.put(code & 0xFFFF_FFFF, 32);
        } else {
            self.put(code, len);
        }
    }

    /// Number of complete bytes written so far (excludes pending bits).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Total number of bits appended so far.
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Flush pending bits (zero-padded) and return the byte buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.buf.push(self.acc as u8);
            self.nbits = 0;
        }
        self.buf
    }
}

/// Bit reader over a byte slice, mirroring [`BitWriter`]'s MSB-first order.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    /// Crate-visible so the Huffman hot loop can keep the reader state in
    /// registers (see `HuffmanDecoder::decode_n`); the invariants are
    /// documented on [`BitReader::refill`].
    pub(crate) data: &'a [u8],
    /// Index of the next byte to load.
    pub(crate) pos: usize,
    pub(crate) acc: u64,
    /// Number of valid bits in `acc`.
    pub(crate) nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, acc: 0, nbits: 0 }
    }

    /// Top up the accumulator from the buffer, loading as many whole bytes
    /// as fit. Away from the end of the buffer this is a single 8-byte
    /// big-endian load instead of a byte-at-a-time loop — appending `k`
    /// bytes of one big-endian word is bit-identical to appending them one
    /// by one, so the stream semantics are unchanged. Leaves fewer than
    /// `want` bits buffered only when the input is exhausted.
    #[inline]
    fn refill(&mut self, want: u32) {
        if self.pos + 8 <= self.data.len() {
            // Callers refill only when `nbits < want <= 57`, so 1..=8 bytes fit.
            debug_assert!(self.nbits <= 56);
            let take = ((64 - self.nbits) >> 3) as usize;
            let word = u64::from_be_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
            self.acc = if take == 8 {
                word
            } else {
                (self.acc << (8 * take)) | (word >> (64 - 8 * take as u32))
            };
            self.pos += take;
            self.nbits += 8 * take as u32;
        } else {
            while self.nbits < want && self.pos < self.data.len() {
                self.acc = (self.acc << 8) | self.data[self.pos] as u64;
                self.pos += 1;
                self.nbits += 8;
            }
        }
    }

    /// Read `len` bits (`len <= 57`). Reading past the end of the buffer is
    /// an error; note zero-pad bits at the very end are indistinguishable
    /// from data, so callers track element counts themselves.
    #[inline]
    pub fn get(&mut self, len: u32) -> Result<u64> {
        debug_assert!(len <= 57);
        if len == 0 {
            return Ok(0);
        }
        if self.nbits < len {
            self.refill(len);
            if self.nbits < len {
                return Err(CodecError::UnexpectedEof { context: "bitstream" });
            }
        }
        self.nbits -= len;
        Ok((self.acc >> self.nbits) & ((1u64 << len) - 1))
    }

    /// Read a single bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool> {
        Ok(self.get(1)? == 1)
    }

    /// Read up to 64 bits.
    pub fn get_wide(&mut self, len: u32) -> Result<u64> {
        debug_assert!(len <= 64);
        if len > 57 {
            let hi = self.get(len - 32)?;
            let lo = self.get(32)?;
            Ok((hi << 32) | lo)
        } else {
            self.get(len)
        }
    }

    /// Number of bits consumed so far.
    pub fn bits_consumed(&self) -> u64 {
        self.pos as u64 * 8 - self.nbits as u64
    }

    /// Number of unread bits remaining in the buffer.
    pub fn bits_remaining(&self) -> u64 {
        (self.data.len() - self.pos) as u64 * 8 + self.nbits as u64
    }

    /// Look at the next `len` bits (`len <= 57`) without consuming them.
    /// Past the end of the buffer the value is zero-padded; use
    /// [`BitReader::consume`] to enforce bounds.
    #[inline]
    pub fn peek(&mut self, len: u32) -> u64 {
        debug_assert!(len <= 57);
        if len == 0 {
            return 0;
        }
        if self.nbits < len {
            self.refill(len);
        }
        let mask = (1u64 << len) - 1;
        if self.nbits >= len {
            (self.acc >> (self.nbits - len)) & mask
        } else {
            // Zero-pad virtually past the end.
            (self.acc << (len - self.nbits)) & mask
        }
    }

    /// Consume `len` bits that a preceding [`BitReader::peek`] of at least
    /// `len` bits already buffered. After such a peek the accumulator holds
    /// either `>= len` bits or every remaining real bit, so `nbits < len`
    /// here means a true end-of-stream — exactly when
    /// [`BitReader::consume`] would fail.
    #[inline]
    pub fn consume_buffered(&mut self, len: u32) -> Result<()> {
        if self.nbits < len {
            return Err(CodecError::UnexpectedEof { context: "bitstream consume" });
        }
        self.nbits -= len;
        Ok(())
    }

    /// Consume `len` bits previously inspected with [`BitReader::peek`].
    /// Fails if fewer than `len` real bits remain.
    #[inline]
    pub fn consume(&mut self, len: u32) -> Result<()> {
        if self.bits_remaining() < len as u64 {
            return Err(CodecError::UnexpectedEof { context: "bitstream consume" });
        }
        // peek() already buffered at least `min(len, remaining)` bits when the
        // caller inspected them, but consume() may be called cold too.
        if self.nbits < len {
            self.refill(len);
        }
        self.nbits -= len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_fields_roundtrip() {
        let mut w = BitWriter::new();
        let fields: &[(u64, u32)] =
            &[(0b101, 3), (0xFFFF, 16), (0, 1), (0x1234_5678_9ABC, 48), (1, 1), (0x7F, 7)];
        for &(v, n) in fields {
            w.put(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            assert_eq!(r.get(n).unwrap(), v, "field of {n} bits");
        }
    }

    #[test]
    fn wide_64bit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bit(true); // misalign
        w.put_wide(u64::MAX, 64);
        w.put_wide(0xDEAD_BEEF_CAFE_F00D, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bit().unwrap());
        assert_eq!(r.get_wide(64).unwrap(), u64::MAX);
        assert_eq!(r.get_wide(64).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn eof_is_error_not_panic() {
        let bytes = [0xABu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(8).unwrap(), 0xAB);
        assert!(matches!(r.get(1), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn msb_first_byte_layout() {
        let mut w = BitWriter::new();
        w.put(0b1, 1);
        w.put(0b0, 1);
        w.put(0b111111, 6);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1011_1111]);
    }

    #[test]
    fn bit_len_counts() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.put(0xFF, 8);
        assert_eq!(w.bit_len(), 11);
        assert_eq!(w.byte_len(), 1);
    }

    #[test]
    fn bits_consumed_tracks() {
        let mut w = BitWriter::new();
        w.put(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.get(5).unwrap();
        assert_eq!(r.bits_consumed(), 5);
        r.get(11).unwrap();
        assert_eq!(r.bits_consumed(), 16);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.put(0b1010_1100, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek(4), 0b1010);
        assert_eq!(r.peek(4), 0b1010);
        r.consume(2).unwrap();
        assert_eq!(r.peek(4), 0b1011);
        assert_eq!(r.get(6).unwrap(), 0b101100);
    }

    #[test]
    fn peek_zero_pads_past_end() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek(12), 0b1111_1111_0000);
        assert_eq!(r.bits_remaining(), 8);
        assert!(r.consume(9).is_err());
        r.consume(8).unwrap();
        assert_eq!(r.bits_remaining(), 0);
    }

    #[test]
    fn zero_len_get_is_zero() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(0).unwrap(), 0);
        assert_eq!(r.bits_consumed(), 0);
    }
}
