//! LEB128 variable-length integers and zigzag mapping.

use crate::{CodecError, Result};

/// Append `v` as unsigned LEB128.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 integer, returning `(value, bytes_consumed)`.
pub fn get_uvarint(data: &[u8]) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::corrupt("uvarint overflows u64"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(CodecError::UnexpectedEof { context: "uvarint" })
}

/// Map a signed integer to an unsigned one with small magnitudes first:
/// `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
#[inline(always)]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline(always)]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed integer as zigzag LEB128.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Read a zigzag LEB128 signed integer.
pub fn get_ivarint(data: &[u8]) -> Result<(i64, usize)> {
    let (u, n) = get_uvarint(data)?;
    Ok((unzigzag(u), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let (back, n) = get_uvarint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn zigzag_order() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(2), 4);
        for v in [-1000i64, -1, 0, 1, 12345, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn ivarint_roundtrip() {
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let (back, n) = get_ivarint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn truncated_is_eof() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        buf.pop();
        assert!(matches!(get_uvarint(&buf), Err(CodecError::UnexpectedEof { .. })));
        assert!(matches!(get_uvarint(&[]), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn overlong_is_corrupt() {
        // 11 continuation bytes can't fit in u64.
        let buf = [0xFFu8; 11];
        assert!(matches!(get_uvarint(&buf), Err(CodecError::Corrupt(_))));
    }
}
