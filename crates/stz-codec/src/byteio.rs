//! Cursor-style byte-level serialization for archive headers and tables.

use crate::varint;
use crate::{CodecError, Result};

/// Append-only little-endian byte writer.
#[derive(Default, Debug, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        ByteWriter { buf: Vec::with_capacity(n) }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_uvarint(&mut self, v: u64) {
        varint::put_uvarint(&mut self.buf, v);
    }

    pub fn put_ivarint(&mut self, v: i64) {
        varint::put_ivarint(&mut self.buf, v);
    }

    /// Append a length-prefixed byte block.
    pub fn put_block(&mut self, bytes: &[u8]) {
        self.put_uvarint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Append raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a byte slice; every read checks bounds and fails with
/// [`CodecError::UnexpectedEof`] rather than panicking.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { context });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8, "f64")?.try_into().unwrap()))
    }

    pub fn get_uvarint(&mut self) -> Result<u64> {
        let (v, n) = varint::get_uvarint(&self.data[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    pub fn get_ivarint(&mut self) -> Result<i64> {
        let (v, n) = varint::get_ivarint(&self.data[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Read a length-prefixed byte block written by [`ByteWriter::put_block`].
    pub fn get_block(&mut self) -> Result<&'a [u8]> {
        let len = self.get_uvarint()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::UnexpectedEof { context: "length-prefixed block" });
        }
        self.take(len as usize, "length-prefixed block")
    }

    /// Read `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n, "raw bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-1234.5678);
        w.put_uvarint(300);
        w.put_ivarint(-42);
        w.put_block(b"hello");
        let bytes = w.finish();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), -1234.5678);
        assert_eq!(r.get_uvarint().unwrap(), 300);
        assert_eq!(r.get_ivarint().unwrap(), -42);
        assert_eq!(r.get_block().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u32().is_err());
        // Failed read must not consume.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u16().unwrap(), 0x0201);
    }

    #[test]
    fn block_with_huge_length_is_eof_not_panic() {
        let mut w = ByteWriter::new();
        w.put_uvarint(u64::MAX);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_block(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn position_tracking() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        w.put_u32(8);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.position(), 0);
        r.get_u32().unwrap();
        assert_eq!(r.position(), 4);
    }
}
