//! Decode-allocation guard: reject hostile dims/lengths **before** any
//! dimension-sized buffer is allocated.
//!
//! Every archive header in the workspace declares its decoded geometry
//! (dims, symbol counts, run totals) in attacker-controllable fields. The
//! structural caps on those fields (`MAX_POINTS` = 2^40 points) bound the
//! address space, not the allocation: a 40-byte hostile header can declare
//! an 8 TB output and drive the decoder straight into an aborting
//! `Vec::with_capacity`. This module is the shared gate: decoders call
//! [`check_decode_alloc`] with the declared element count before reserving,
//! and the declared size is checked against a process-wide cap.
//!
//! The cap defaults to [`DEFAULT_MAX_DECODE_BYTES`] (4 GiB — comfortably
//! above any field this workspace round-trips, far below an abort-the-host
//! reservation) and can be tuned per process via the `STZ_MAX_DECODE_BYTES`
//! environment variable or [`set_max_decode_bytes`] (fuzz harnesses pin it
//! to a few MiB so hostile-geometry inputs are rejected cheaply). This is
//! the same discipline as `stz-serve`'s 256 MiB frame cap, extended to the
//! decode side: lengths are validated against a stated bound before memory
//! is committed.

use crate::{CodecError, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default cap on a single declared decode allocation: 4 GiB.
pub const DEFAULT_MAX_DECODE_BYTES: u64 = 4 << 30;

/// 0 = not yet resolved (first read consults `STZ_MAX_DECODE_BYTES`).
static CAP: AtomicU64 = AtomicU64::new(0);

/// The active cap in bytes.
///
/// Resolved once per process: `STZ_MAX_DECODE_BYTES` if set to a positive
/// integer, else [`DEFAULT_MAX_DECODE_BYTES`]; later changes to the
/// environment are not observed. [`set_max_decode_bytes`] overrides it.
pub fn max_decode_bytes() -> u64 {
    match CAP.load(Ordering::Relaxed) {
        0 => {
            let v = std::env::var("STZ_MAX_DECODE_BYTES")
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(DEFAULT_MAX_DECODE_BYTES);
            CAP.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// Override the cap for this process (tests and fuzz harnesses).
pub fn set_max_decode_bytes(bytes: u64) {
    CAP.store(bytes.max(1), Ordering::Relaxed);
}

/// Check that decoding may allocate `count` elements of `bytes_per` bytes.
///
/// Returns [`CodecError::Unsupported`] when the declared size exceeds the
/// cap — the input may be a perfectly valid archive that this process
/// refuses to materialize, which is a capability limit, not corruption.
pub fn check_decode_alloc(count: u64, bytes_per: u32, what: &str) -> Result<()> {
    let cap = max_decode_bytes();
    let need = count.saturating_mul(bytes_per as u64);
    if need > cap {
        return Err(CodecError::unsupported(format!(
            "{what}: declared decoded size {need} B exceeds the decode cap of {cap} B \
             (raise STZ_MAX_DECODE_BYTES to allow it)"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_cap_passes() {
        check_decode_alloc(1024, 8, "test buffer").unwrap();
    }

    #[test]
    fn over_cap_is_unsupported() {
        let err = check_decode_alloc(u64::MAX / 2, 8, "huge buffer").unwrap_err();
        match err {
            CodecError::Unsupported(msg) => assert!(msg.contains("decode cap")),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn overflow_saturates_and_rejects() {
        assert!(check_decode_alloc(u64::MAX, u32::MAX, "overflowing").is_err());
    }
}
