//! Byte-oriented run-length encoding.
//!
//! Used for significance maps and sign planes in the transform-based
//! baselines (ZFP/SPERR analogues), where long zero runs dominate.

use crate::byteio::{ByteReader, ByteWriter};
use crate::Result;

/// Run-length encode `data` as `(byte, run_len)` pairs with varint run
/// lengths.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(data.len() / 4 + 16);
    w.put_uvarint(data.len() as u64);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        w.put_u8(b);
        w.put_uvarint(run as u64);
        i += run;
    }
    w.finish()
}

/// Inverse of [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<u8>> {
    let mut r = ByteReader::new(data);
    let total = r.get_uvarint()? as usize;
    crate::guard::check_decode_alloc(total as u64, 1, "rle payload")?;
    // Reserve incrementally: `total` is attacker-declared; the resize loop
    // below only commits memory that decoded runs actually account for.
    let mut out = Vec::with_capacity(total.min(1 << 16));
    while out.len() < total {
        let b = r.get_u8()?;
        let run = r.get_uvarint()? as usize;
        if run == 0 || out.len() + run > total {
            return Err(crate::CodecError::corrupt("invalid RLE run"));
        }
        out.resize(out.len() + run, b);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn all_same() {
        let data = vec![7u8; 100_000];
        let enc = encode(&data);
        assert!(enc.len() < 16);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn alternating_worst_case() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn mixed_runs() {
        let mut data = Vec::new();
        for (i, run) in [(1u8, 5usize), (0, 300), (255, 1), (0, 2), (9, 129)].iter().enumerate() {
            let _ = i;
            data.extend(std::iter::repeat_n(run.0, run.1));
        }
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn truncated_fails() {
        let data = vec![3u8; 50];
        let enc = encode(&data);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn zero_run_rejected() {
        let mut w = ByteWriter::new();
        w.put_uvarint(5);
        w.put_u8(1);
        w.put_uvarint(0); // invalid zero run
        let bytes = w.finish();
        assert!(decode(&bytes).is_err());
    }
}
