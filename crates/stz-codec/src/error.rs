//! Error type for all decoding paths in the workspace.

use std::fmt;

/// Failure while decoding a compressed stream or archive.
///
/// Decoders in this workspace are total over arbitrary byte input: malformed
/// or truncated data yields a `CodecError`, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a complete value could be read.
    UnexpectedEof {
        /// What was being read when the input ran out.
        context: &'static str,
    },
    /// The input is structurally invalid (bad magic, impossible table,
    /// inconsistent counts, …).
    Corrupt(String),
    /// The input encodes a feature this build does not support (e.g. an
    /// unknown format version or element type).
    Unsupported(String),
}

impl CodecError {
    pub fn corrupt(msg: impl Into<String>) -> Self {
        CodecError::Corrupt(msg.into())
    }

    pub fn unsupported(msg: impl Into<String>) -> Self {
        CodecError::Unsupported(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            CodecError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            CodecError::Unsupported(msg) => write!(f, "unsupported stream: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CodecError::UnexpectedEof { context: "huffman table" };
        assert!(e.to_string().contains("huffman table"));
        let e = CodecError::corrupt("bad magic");
        assert!(e.to_string().contains("bad magic"));
        let e = CodecError::unsupported("version 9");
        assert!(e.to_string().contains("version 9"));
    }
}
