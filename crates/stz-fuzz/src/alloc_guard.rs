//! Allocation-tracking global allocator — the "allocation bounded" oracle.
//!
//! The harness binaries (and the corpus replay test) install
//! [`TrackingAlloc`] as their `#[global_allocator]`. It forwards to the
//! system allocator and records the **largest single allocation** since
//! the last [`reset_peak`], plus a running net-bytes balance. The engine
//! resets the peak before each target execution and asserts afterwards
//! that no single allocation exceeded the configured cap: a parser that
//! reserves a dims-sized buffer *before* validating hostile geometry
//! trips this oracle even when the subsequent read fails cleanly.
//!
//! In processes that do not install the allocator (ordinary unit tests),
//! [`peak_single`] stays 0 and the engine skips the oracle.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

static PEAK_SINGLE: AtomicUsize = AtomicUsize::new(0);
static NET_BYTES: AtomicIsize = AtomicIsize::new(0);

/// Forwarding allocator that records allocation sizes.
pub struct TrackingAlloc;

fn record(size: usize) {
    PEAK_SINGLE.fetch_max(size, Ordering::Relaxed);
    NET_BYTES.fetch_add(size as isize, Ordering::Relaxed);
}

// SAFETY: pure forwarding to `System`; the atomics add no aliasing or
// reentrancy (no allocation happens inside the hooks).
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        PEAK_SINGLE.fetch_max(new_size, Ordering::Relaxed);
        NET_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Clear the single-allocation high-water mark (call before a measured
/// region).
pub fn reset_peak() {
    PEAK_SINGLE.store(0, Ordering::Relaxed);
}

/// Largest single allocation since the last [`reset_peak`]; 0 when
/// [`TrackingAlloc`] is not installed as the global allocator.
pub fn peak_single() -> usize {
    PEAK_SINGLE.load(Ordering::Relaxed)
}

/// Net allocated-minus-freed bytes since process start (drifts only with
/// live data: corpus growth, lazily initialized registries, …).
pub fn net_bytes() -> isize {
    NET_BYTES.load(Ordering::Relaxed)
}
