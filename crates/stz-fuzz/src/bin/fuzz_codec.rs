//! Fuzz harness: codec-registry decompress via magic sniffing.

use std::process::ExitCode;

#[global_allocator]
static ALLOC: stz_fuzz::alloc_guard::TrackingAlloc = stz_fuzz::alloc_guard::TrackingAlloc;

fn main() -> ExitCode {
    stz_fuzz::run_main(&stz_fuzz::CodecTarget)
}
