//! Regenerate the curated hostile-input corpus under
//! `tests/corpus/regressions/`.
//!
//! Each case is written as a reproducer file whose `signature` header
//! records the *current* classification (minus the message hash), so
//! `tests/fuzz_regressions.rs` can assert that replaying the input keeps
//! landing in the same error class. Inputs come from three sources: the
//! hand-written hostile cases of `tests/serve.rs` ported to file form,
//! structurally hostile containers/codec headers built with the real
//! encoders, and the minimized inputs of bugs the fuzzer actually found
//! (pinned as byte literals so they survive any encoder change).
//!
//! Usage: `gen_corpus [DIR]` (default `tests/corpus/regressions`, i.e.
//! run it from the repository root).

use std::path::PathBuf;
use std::process::ExitCode;
use stz_backend::{registry, ErrorBound};
use stz_field::{Dims, Field};
use stz_fuzz::corpus::Reproducer;
use stz_fuzz::mutate::{refix_container, refix_frame};
use stz_fuzz::targets::{CodecTarget, ContainerTarget, FuzzTarget, ProtoTarget};
use stz_mutate::{upgrade_image, MemBacking, MutableContainer};
use stz_serve::proto::{
    self, write_frame, Enc, EntrySel, FetchReq, FetchedField, FrameType, RequestKind,
};
use stz_stream::{ContainerWriter, ForeignArchive, PackEntry};

fn frame(kind: FrameType, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, kind, payload).expect("vec write");
    buf
}

/// A small valid container to corrupt.
fn valid_container() -> Vec<u8> {
    let field = stz_data::synth::miranda_like(Dims::d3(6, 5, 4), 7);
    let archive = stz_core::StzCompressor::new(stz_core::StzConfig::three_level(1e-3))
        .compress(&field)
        .expect("compress");
    stz_stream::pack_to_vec(&[("t0", &archive)]).expect("pack")
}

fn proto_cases() -> Vec<(&'static str, &'static str, Vec<u8>)> {
    let mut cases = Vec::new();

    cases.push((
        "proto_bad_magic_http",
        "an HTTP request instead of an STZP frame must be rejected at the magic",
        b"GET / HTTP/1.1\r\nHost: stz\r\n\r\n".to_vec(),
    ));

    // Frame header whose length field is u32::MAX.
    let mut huge_len = frame(FrameType::List, &[]);
    huge_len[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    cases.push((
        "proto_len_u32_max",
        "length prefix u32::MAX must be rejected before any allocation",
        huge_len,
    ));

    // Frame header declaring exactly cap + 1 bytes.
    let mut over_cap = frame(FrameType::List, &[]);
    over_cap[8..12].copy_from_slice(&(proto::MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    cases.push((
        "proto_len_cap_plus_one",
        "length prefix one past MAX_FRAME_PAYLOAD must be rejected at the header",
        over_cap,
    ));

    // Header passes, declared payload never arrives.
    let hello_frame = {
        let mut e = Enc::new();
        e.u8(proto::PROTO_VERSION);
        frame(FrameType::Hello, &e.finish())
    };
    cases.push((
        "proto_truncated_payload",
        "declared payload cut short mid-read must fail as a truncated frame",
        hello_frame[..hello_frame.len() - 1].to_vec(),
    ));

    // CRC-corrupted HELLO.
    let mut bad_crc = hello_frame.clone();
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0x01;
    cases.push((
        "proto_hello_bad_crc",
        "payload byte flipped without refixing the CRC must fail the integrity check",
        bad_crc,
    ));

    // HELLO_OK carrying a protocol version this build does not speak.
    let mut mismatch = Enc::new();
    mismatch.u8(42);
    mismatch.string("stz-serve/future");
    cases.push((
        "proto_hello_ok_version_mismatch",
        "handshake reply with version 42 must be refused by the client",
        frame(FrameType::HelloOk, &mismatch.finish()),
    ));

    // FETCH_OK whose dims promise more scalars than the payload carries:
    // drop one f32 and restamp length + CRC so only the dims check can
    // catch it.
    let field = stz_data::synth::miranda_like(Dims::d3(4, 3, 5), 21);
    let fetched = FetchedField {
        kind_tag: RequestKind::Full.tag(),
        type_tag: 0,
        dims: field.dims(),
        data: field.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect(),
    };
    let mut lying = frame(FrameType::FetchOk, &fetched.encode());
    lying.truncate(lying.len() - 4);
    assert!(refix_frame(&mut lying));
    cases.push((
        "proto_fetch_ok_lying_dims",
        "FETCH_OK with valid CRC but one scalar short of its dims must be rejected",
        lying,
    ));

    // Hostile METRICS_OK variants (valid frame CRC, hostile payload).
    let metrics = proto::encode_metrics_ok("stzp_requests_total 1\n");
    let mut wrong_version = metrics.clone();
    wrong_version[0] = 99;
    cases.push((
        "proto_metrics_bad_version",
        "METRICS_OK with exposition version 99 must be refused",
        frame(FrameType::MetricsOk, &wrong_version),
    ));
    cases.push((
        "proto_metrics_truncated",
        "METRICS_OK whose string is cut short must fail the payload decode",
        frame(FrameType::MetricsOk, &metrics[..metrics.len() - 3]),
    ));
    let mut trailing = metrics.clone();
    trailing.push(0xEE);
    cases.push((
        "proto_metrics_trailing_byte",
        "METRICS_OK with a trailing byte after the string must be rejected",
        frame(FrameType::MetricsOk, &trailing),
    ));

    // Hostile TRACE_OK variants (valid frame CRC, hostile payload).
    let trace_ok = proto::encode_trace_ok(&[stz_telemetry::trace::TraceRecord {
        trace_id: 7,
        kind: "full".into(),
        error: false,
        duration_ns: 1_000,
        dropped_spans: 0,
        spans: vec![stz_telemetry::trace::SpanRecord {
            id: 1,
            parent: 0,
            name: "request".into(),
            start_ns: 0,
            duration_ns: 1_000,
            attrs: vec![],
        }],
    }]);
    let mut trace_bad_version = trace_ok.clone();
    trace_bad_version[0] = 99;
    cases.push((
        "proto_trace_bad_version",
        "TRACE_OK with wire version 99 must be refused",
        frame(FrameType::TraceOk, &trace_bad_version),
    ));
    cases.push((
        "proto_trace_truncated_span_table",
        "TRACE_OK whose span table is cut short must fail the payload decode",
        frame(FrameType::TraceOk, &trace_ok[..trace_ok.len() - 6]),
    ));
    let mut trace_lying = trace_ok.clone();
    trace_lying[1..5].copy_from_slice(&1000u32.to_le_bytes());
    cases.push((
        "proto_trace_lying_count",
        "TRACE_OK claiming 1000 traces in a one-trace payload must be rejected",
        frame(FrameType::TraceOk, &trace_lying),
    ));

    // Fetch request whose trace-context extension lies about its version.
    let traced_req = FetchReq {
        container: "steps".into(),
        entry: EntrySel::Index(0),
        kind: RequestKind::Full,
        trace: Some(proto::TraceContextExt { trace_id: 5, parent_span: 6 }),
    };
    let mut bad_ext = traced_req.encode();
    let at = bad_ext.len() - 17;
    bad_ext[at] = 99;
    cases.push((
        "proto_fetch_trace_ext_bad_version",
        "fetch whose trace-context suffix claims version 99 must be a clean protocol error",
        frame(FrameType::FetchFull, &bad_ext),
    ));

    // Unknown frame kind with a valid header.
    let mut unknown = frame(FrameType::List, &[]);
    unknown[5] = 0x55;
    cases.push(("proto_unknown_kind", "kind byte 0x55 is not a known frame type", unknown));

    // Fetch request whose entry-selector tag is garbage.
    let req = FetchReq {
        container: "steps".into(),
        entry: EntrySel::Index(0),
        kind: RequestKind::Full,
        trace: None,
    };
    let mut payload = req.encode();
    // The selector follows the container string ("steps" = 1 length byte
    // + 5 bytes); smash everything after it to an invalid tag value.
    let split = 6.min(payload.len());
    for b in &mut payload[split..] {
        *b = 0xEF;
    }
    cases.push((
        "proto_fetch_bad_selector",
        "fetch request with a mangled entry selector must be a clean protocol error",
        frame(FrameType::FetchFull, &payload),
    ));

    cases
}

fn container_cases() -> Vec<(&'static str, &'static str, Vec<u8>)> {
    let valid = valid_container();
    let mut cases = Vec::new();

    let mut bad_header = valid.clone();
    bad_header[0] = b'X';
    cases.push((
        "container_bad_header_magic",
        "first magic byte corrupted must be rejected at open",
        bad_header,
    ));

    let mut bad_trailer = valid.clone();
    let n = bad_trailer.len();
    bad_trailer[n - 1] = b'X';
    cases.push((
        "container_bad_trailer_magic",
        "trailer magic corrupted must be rejected at open",
        bad_trailer,
    ));

    // Footer byte flipped without refixing the trailer CRC.
    let mut bad_footer_crc = valid.clone();
    let trailer_at = bad_footer_crc.len() - stz_stream::format::TRAILER_LEN as usize;
    let footer_off =
        u64::from_le_bytes(bad_footer_crc[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
    bad_footer_crc[footer_off + 2] ^= 0xFF;
    cases.push((
        "container_footer_crc_mismatch",
        "footer corruption must be caught by the trailer CRC",
        bad_footer_crc,
    ));

    cases.push((
        "container_truncated_trailer",
        "container cut inside the trailer must be rejected as truncated",
        valid[..valid.len() - 7].to_vec(),
    ));

    // Entry whose declared dims describe 8 TiB: the decode guard must
    // reject it before any buffer is sized from it.
    let zfp = registry().by_name("zfp").expect("zfp registered");
    let mut w = ContainerWriter::new(Vec::new()).expect("vec write");
    let huge = Dims::d3(1 << 13, 1 << 13, 1 << 13);
    w.add_foreign("huge", &ForeignArchive::new::<f32>(zfp.id(), huge, 1e-3, vec![0u8; 64]))
        .expect("add foreign");
    cases.push((
        "container_huge_dims_entry",
        "entry declaring 2^39 points must be refused by the decode-allocation guard",
        w.finish().expect("finish"),
    ));

    // Foreign payload truncated, then deep-refixed so every CRC gate
    // passes and the codec itself must reject the bytes.
    let field = stz_data::synth::miranda_like(Dims::d3(8, 6, 10), 31);
    let zbytes =
        stz_backend::compress(zfp, &field, &ErrorBound::Absolute(1e-3)).expect("zfp compress");
    let mut w = ContainerWriter::new(Vec::new()).expect("vec write");
    w.add_foreign("z", &ForeignArchive::new::<f32>(zfp.id(), Dims::d3(8, 6, 10), 1e-3, zbytes))
        .expect("add foreign");
    let packed = w.finish().expect("finish");
    let mut cut = packed.clone();
    // Zero a run of payload bytes (the payload starts right after the
    // 8-byte header) and restamp all section CRCs over the damage.
    for b in &mut cut[16..32] {
        *b = 0;
    }
    let refixed = refix_container(&cut, true).expect("container-shaped");
    cases.push((
        "container_foreign_damaged_deep_refix",
        "payload damage hidden behind restamped CRCs must still fail in the codec",
        refixed,
    ));

    // --- Mutable (v3) containers: generation slots, dead sections, torn
    // tails. Built through the real commit protocol so the pinned bytes
    // track the writer exactly.
    let compressor = stz_core::StzCompressor::new(stz_core::StzConfig::three_level(1e-3));
    let g0 = compressor
        .compress(&stz_data::synth::miranda_like(Dims::d3(6, 5, 4), 8))
        .expect("compress");
    let g1 = compressor
        .compress(&stz_data::synth::miranda_like(Dims::d3(6, 5, 4), 9))
        .expect("compress");
    let mut m = MutableContainer::create(MemBacking::empty()).expect("mem container");
    m.append("g0", &PackEntry::from(g0)).expect("append");
    m.append("g1", &PackEntry::from(g1.clone())).expect("append");
    m.commit().expect("commit generation 2");
    let len_gen2 = m.backing().as_bytes().len();
    m.delete("g1").expect("delete");
    m.append("g2", &PackEntry::from(g1)).expect("append");
    m.commit().expect("commit generation 3");
    let v3 = m.into_backing().into_bytes();

    cases.push((
        "container_v3_multi_generation_live",
        "three-generation container with dead sections must read cleanly at its newest generation",
        v3.clone(),
    ));

    // Cut mid-way through generation 3's staged bytes: the newest slot
    // points past EOF, so the reader must fall back to generation 2.
    let torn_tail = v3[..len_gen2 + (v3.len() - len_gen2) / 2].to_vec();
    cases.push((
        "container_v3_torn_tail_recovers_previous_generation",
        "a tail torn mid-commit must fall back to the previous committed generation",
        torn_tail,
    ));

    let mut both_torn = v3.clone();
    for b in &mut both_torn[stz_stream::format::GEN_SLOT_OFFSETS[0] as usize
        ..stz_stream::format::MUTABLE_DATA_START as usize]
    {
        *b ^= 0xFF;
    }
    cases.push((
        "container_v3_both_slots_torn",
        "both generation slots corrupted must be a clean torn-container error",
        both_torn,
    ));

    // Damage confined to dead bytes — the orphaned generation-2 footer,
    // whose last byte sits at len_gen2 - 1 — must not affect reads of the
    // live generation.
    let mut dead_damaged = v3.clone();
    dead_damaged[len_gen2 - 10] ^= 0xFF;
    cases.push((
        "container_v3_dead_region_damaged",
        "damage confined to the orphaned previous footer must not affect the live generation",
        dead_damaged,
    ));

    cases.push((
        "container_v3_upgraded_from_v2",
        "a v2 container upgraded in place must read identically under the v3 slot protocol",
        upgrade_image(&valid).expect("upgrade v2 image"),
    ));

    cases
}

fn codec_cases() -> Vec<(String, &'static str, Vec<u8>)> {
    let mut cases = Vec::new();

    // Huge-dims headers for every registered codec: compress a tiny field,
    // then splice absurd extents into the varint dims the headers share
    // (magic[4] version type ndim, then three uvarint extents). A 5-byte
    // varint (0xFF 0xFF 0xFF 0xFF 0x0F) encodes 2^32-1 per axis.
    let field: Field<f32> = stz_data::synth::miranda_like(Dims::d3(4, 4, 4), 17);
    for codec in registry().all() {
        let valid =
            stz_backend::compress(codec, &field, &ErrorBound::Absolute(1e-3)).expect("compress");
        let mut hostile = valid[..7].to_vec(); // magic + version + type_tag
        hostile.push(3); // ndim
        for _ in 0..3 {
            hostile.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
        }
        // Carry the rest of the real archive so parsing continues past dims
        // if the guard were ever skipped.
        hostile.extend_from_slice(&valid[11..]);
        let name = format!("codec_{}_huge_dims", codec.name());
        cases.push((name, "declared 2^96 points must be rejected before allocation", hostile));
    }

    // Fuzzer-found: ZFP header with ndim=1 but nz/ny != 1 used to panic in
    // Dims::from_parts instead of returning Corrupt. Minimized input from
    // seed 0x1, iteration 332.
    cases.push((
        "codec_zfp_ndim_dims_mismatch".to_string(),
        "ndim=1 with 3-D extents must be Corrupt, not a Dims assert panic",
        vec![0x5A, 0x46, 0x50, 0x52, 0x01, 0x01, 0x01, 0x03, 0x06, 0x62],
    ));

    // Fuzzer-found: SZ3 archive whose embedded huffman table declares
    // 2^30-1 entries (8 GiB reservation) while the input holds a few dozen
    // bytes. Minimized input from seed 0x1, iteration 622.
    let mut sz3_lying_table = vec![
        0x53, 0x5A, 0x33, 0x52, // "SZ3R"
        0x01, 0x01, 0x03, // version, f64, ndim=3
        0x04, 0x05, 0x06, // dims 4x5x6
        0xFC, 0xA9, 0xF1, 0xD2, 0x4D, 0x62, 0x50, 0x3F, // eb
        0x60, // radius
        0x01, // cubic
        0x50, // code block length 80
        0xFF, 0xFF, 0xFF, 0xFF, 0x03, // huffman table count 2^30-1
    ];
    sz3_lying_table.resize(101, 0x42);
    cases.push((
        "codec_sz3_lying_huffman_table".to_string(),
        "huffman table count far beyond the input size must be Corrupt, not an 8 GiB reserve",
        sz3_lying_table,
    ));

    cases
}

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("tests/corpus/regressions"));

    let container = ContainerTarget;
    let proto_t = ProtoTarget;
    let codec = CodecTarget;
    type Cases = Vec<(String, &'static str, Vec<u8>)>;
    let own = |v: Vec<(&'static str, &'static str, Vec<u8>)>| -> Cases {
        v.into_iter().map(|(n, d, b)| (n.to_string(), d, b)).collect()
    };
    let groups: Vec<(&dyn FuzzTarget, Cases)> = vec![
        (&proto_t, own(proto_cases())),
        (&container, own(container_cases())),
        (&codec, codec_cases()),
    ];

    let mut wrote = 0usize;
    for (target, cases) in groups {
        for (name, note, bytes) in cases {
            // Classify with the current parsers; replaying later asserts the
            // class is stable. A pinned hostile case must never classify as
            // a clean full success.
            let outcome = match stz_fuzz::replay(target, &bytes) {
                Ok(o) => o,
                Err(panic_msg) => {
                    eprintln!("{name}: input PANICS ({panic_msg}) — fix the parser first");
                    return ExitCode::FAILURE;
                }
            };
            let rep = Reproducer {
                target: target.name().into(),
                seed: 0,
                iteration: 0,
                signature: outcome.signature(target.name()),
                note: note.into(),
                bytes,
            };
            match rep.write_to(&dir, &name) {
                Ok(path) => {
                    println!("{} <- {}", path.display(), rep.signature);
                    wrote += 1;
                }
                Err(e) => {
                    eprintln!("{name}: write failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!("{wrote} corpus cases written to {}", dir.display());
    ExitCode::SUCCESS
}
