//! The mutation loop, its oracles, input minimization, and the shared
//! harness `main`.
//!
//! Determinism is the design constraint: the whole run — seeds,
//! mutations, corpus growth, minimization — replays bit-identically from
//! one `u64`, so CI can assert "identical corpus signatures across two
//! runs of the same seed" and a reproducer header is all a developer
//! needs to re-derive a finding.

use crate::alloc_guard;
use crate::corpus::{Corpus, Reproducer};
use crate::mutate::mutate;
use crate::rng::FuzzRng;
use crate::targets::{FuzzTarget, Outcome};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

/// One fuzzing run's parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Master seed (every derived decision flows from it).
    pub seed: u64,
    /// Mutation iterations to run.
    pub iterations: u64,
    /// Largest tolerated single allocation during one execution, in
    /// bytes; 0 disables the oracle (no tracking allocator installed).
    pub alloc_cap: usize,
    /// Run transport/classification deep checks on corpus-new inputs.
    pub deep_checks: bool,
    /// Where minimized reproducers for violations are written (`None` =
    /// don't write files).
    pub reproducer_dir: Option<PathBuf>,
    /// Print per-discovery progress to stderr.
    pub verbose: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: 1,
            iterations: 10_000,
            alloc_cap: 64 << 20,
            deep_checks: true,
            reproducer_dir: None,
            verbose: false,
        }
    }
}

/// An oracle violation found during a run.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which oracle tripped: `panic`, `alloc`, `nondeterminism`,
    /// `deep-check`.
    pub oracle: String,
    /// Violation detail (panic message, allocation size, …).
    pub detail: String,
    /// Iteration at which it was found (`u64::MAX` for seed inputs).
    pub iteration: u64,
    /// The minimized offending input.
    pub input: Vec<u8>,
    /// Reproducer path, when one was written.
    pub reproducer: Option<PathBuf>,
}

/// What a run observed.
#[derive(Debug)]
pub struct Summary {
    /// Target name.
    pub target: String,
    /// Iterations executed.
    pub iterations: u64,
    /// Sorted corpus signatures — the determinism fingerprint.
    pub signatures: Vec<String>,
    /// Oracle violations (empty on a healthy run).
    pub violations: Vec<Violation>,
}

/// Last caught panic (message + location), captured by the run's panic
/// hook. A `Mutex` rather than a thread-local: a panic may surface on a
/// pool worker before propagating to the harness thread.
static LAST_PANIC: Mutex<Option<String>> = Mutex::new(None);

fn capture_panics() {
    std::panic::set_hook(Box::new(|info| {
        let msg = match info.payload().downcast_ref::<&str>() {
            Some(s) => (*s).to_string(),
            None => info
                .payload()
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic payload".into()),
        };
        let site = info.location().map(|l| format!("{}:{}", l.file(), l.line()));
        *LAST_PANIC.lock().unwrap() =
            Some(format!("{msg} @ {}", site.unwrap_or_else(|| "?".into())));
    }));
}

/// One guarded execution: outcome or panic text, plus the peak single
/// allocation observed.
fn execute(target: &dyn FuzzTarget, input: &[u8]) -> (Result<Outcome, String>, usize) {
    *LAST_PANIC.lock().unwrap() = None;
    alloc_guard::reset_peak();
    let result = catch_unwind(AssertUnwindSafe(|| target.exec(input)));
    let peak = alloc_guard::peak_single();
    match result {
        Ok(outcome) => (Ok(outcome), peak),
        Err(payload) => {
            let hooked = LAST_PANIC.lock().unwrap().take();
            let msg = hooked.unwrap_or_else(|| match payload.downcast_ref::<&str>() {
                Some(s) => (*s).to_string(),
                None => payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_else(|| "non-string panic payload".into()),
            });
            (Err(msg), peak)
        }
    }
}

/// Replay one input outside a full run (corpus regression tests): the
/// outcome, or `Err(panic message)`.
pub fn replay(target: &dyn FuzzTarget, input: &[u8]) -> Result<Outcome, String> {
    catch_unwind(AssertUnwindSafe(|| target.exec(input))).map_err(|payload| {
        match payload.downcast_ref::<&str>() {
            Some(s) => (*s).to_string(),
            None => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic payload".into()),
        }
    })
}

/// Greedy chunk-removal minimization: repeatedly delete the largest
/// removable chunks while `still_fails` keeps returning `true`.
/// Deterministic; terminates in `O(len log len)` probes.
pub fn minimize_input(input: Vec<u8>, mut still_fails: impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut cur = input;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i + chunk <= cur.len() {
            let mut cand = Vec::with_capacity(cur.len() - chunk);
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[i + chunk..]);
            if still_fails(&cand) {
                cur = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    cur
}

fn violation_matches(target: &dyn FuzzTarget, cand: &[u8], oracle: &str, alloc_cap: usize) -> bool {
    let (result, peak) = execute(target, cand);
    match oracle {
        "panic" => result.is_err(),
        "alloc" => alloc_cap > 0 && peak > alloc_cap,
        _ => false,
    }
}

/// Run the fuzzer.
pub fn run(target: &dyn FuzzTarget, cfg: &Config) -> Summary {
    let prev_hook = std::panic::take_hook();
    capture_panics();
    let mut rng = FuzzRng::new(cfg.seed);
    let mut corpus = Corpus::new();
    let mut violations: Vec<Violation> = Vec::new();
    let seeds = target.seeds();
    assert!(!seeds.is_empty(), "target must provide at least one seed");

    // Warm up on the seeds: lazily initialized registries and pools
    // allocate on first touch; doing it here keeps iteration
    // measurements clean. Seeds join the corpus like any other input.
    for seed_input in &seeds {
        let (result, _peak) = execute(target, seed_input);
        if let Ok(outcome) = result {
            corpus.insert(&outcome.signature(target.name()), seed_input);
        }
    }

    let max_len = target.max_input_len();
    for iteration in 0..cfg.iterations {
        let base: &[u8] = if corpus.is_empty() || rng.chance(1, 4) {
            rng.pick(&seeds).as_slice()
        } else {
            let inputs = corpus.inputs();
            inputs[rng.below(inputs.len() as u64) as usize]
        };
        let input = mutate(&mut rng, base, max_len);

        let (first, peak) = execute(target, &input);
        let outcome = match first {
            Err(panic_msg) => {
                record_violation(
                    target,
                    cfg,
                    &mut violations,
                    "panic",
                    panic_msg,
                    iteration,
                    input,
                );
                continue;
            }
            Ok(outcome) => outcome,
        };

        if cfg.alloc_cap > 0 && peak > cfg.alloc_cap {
            record_violation(
                target,
                cfg,
                &mut violations,
                "alloc",
                format!("single allocation of {peak} B exceeds the {} B cap", cfg.alloc_cap),
                iteration,
                input,
            );
            continue;
        }

        // Parse-twice determinism.
        let (second, _peak2) = execute(target, &input);
        match second {
            Ok(o2) if o2 == outcome => {}
            other => {
                record_violation(
                    target,
                    cfg,
                    &mut violations,
                    "nondeterminism",
                    format!("first run {outcome:?}, second run {other:?}"),
                    iteration,
                    input,
                );
                continue;
            }
        }

        let sig = outcome.signature(target.name());
        if corpus.insert(&sig, &input) {
            if cfg.verbose {
                eprintln!("[{}] iter {iteration}: new signature {sig}", target.name());
            }
            if cfg.deep_checks {
                if let Err(detail) = target.deep_check(&input) {
                    record_violation(
                        target,
                        cfg,
                        &mut violations,
                        "deep-check",
                        detail,
                        iteration,
                        input,
                    );
                }
            }
        }
    }

    std::panic::set_hook(prev_hook);
    Summary {
        target: target.name().into(),
        iterations: cfg.iterations,
        signatures: corpus.signatures(),
        violations,
    }
}

#[allow(clippy::too_many_arguments)]
fn record_violation(
    target: &dyn FuzzTarget,
    cfg: &Config,
    violations: &mut Vec<Violation>,
    oracle: &str,
    detail: String,
    iteration: u64,
    input: Vec<u8>,
) {
    // Minimize panics and allocation blowups (the reproducible-on-replay
    // oracles); keep nondeterminism/deep-check inputs as found.
    let minimized = match oracle {
        "panic" | "alloc" => {
            let cap = cfg.alloc_cap;
            minimize_input(input, |cand| violation_matches(target, cand, oracle, cap))
        }
        _ => input,
    };
    let signature = crate::corpus::signature(target.name(), oracle, &detail);
    let reproducer = cfg.reproducer_dir.as_ref().and_then(|dir| {
        let rep = Reproducer {
            target: target.name().into(),
            seed: cfg.seed,
            iteration,
            signature: signature.clone(),
            note: format!("{oracle}: {detail}"),
            bytes: minimized.clone(),
        };
        let name = format!("found_{}_{}_{iteration}", target.name(), oracle);
        match rep.write_to(dir, &name) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("failed to write reproducer {name}: {e}");
                None
            }
        }
    });
    eprintln!(
        "[{}] iter {iteration}: {oracle} VIOLATION ({} byte input): {detail}",
        target.name(),
        minimized.len(),
    );
    violations.push(Violation {
        oracle: oracle.into(),
        detail,
        iteration,
        input: minimized,
        reproducer,
    });
}

/// Shared harness `main`: parse CLI args, size the decode cap to the
/// allocation oracle, run (twice under `--selfcheck`), print the summary,
/// and return the process exit code.
///
/// Flags: `--iterations N`, `--seed S` (else `STZ_FUZZ_SEED`, else 1),
/// `--reproducer-dir DIR`, `--selfcheck`, `--verbose`.
pub fn run_main(target: &dyn FuzzTarget) -> std::process::ExitCode {
    let mut cfg = Config {
        seed: crate::rng::seed_from_env(1),
        reproducer_dir: Some(PathBuf::from("tests/corpus/regressions")),
        ..Config::default()
    };
    let mut selfcheck = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} requires {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--iterations" => {
                cfg.iterations = take("a count").parse().unwrap_or_else(|e| {
                    eprintln!("bad --iterations: {e}");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                cfg.seed = crate::rng::parse_seed(&take("a seed")).unwrap_or_else(|| {
                    eprintln!("bad --seed (decimal or 0x hex)");
                    std::process::exit(2);
                })
            }
            "--reproducer-dir" => cfg.reproducer_dir = Some(PathBuf::from(take("a directory"))),
            "--selfcheck" => selfcheck = true,
            "--verbose" => cfg.verbose = true,
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: fuzz_{} [--iterations N] [--seed S] \
                     [--reproducer-dir DIR] [--selfcheck] [--verbose]",
                    target.name()
                );
                return std::process::ExitCode::from(2);
            }
        }
    }

    // The harness cap: hostile declared geometry must be rejected well
    // below the allocation oracle's threshold.
    stz_codec::set_max_decode_bytes((cfg.alloc_cap / 2) as u64);

    let summary = run(target, &cfg);
    println!(
        "target={} seed={:#x} iterations={} signatures={} violations={}",
        summary.target,
        cfg.seed,
        summary.iterations,
        summary.signatures.len(),
        summary.violations.len()
    );
    for sig in &summary.signatures {
        println!("  {sig}");
    }

    if selfcheck {
        let second = run(target, &cfg);
        if second.signatures != summary.signatures {
            eprintln!("SELFCHECK FAILED: corpus signatures differ between identical runs");
            return std::process::ExitCode::FAILURE;
        }
        println!("selfcheck: corpus signatures identical across two runs");
    }

    if summary.violations.is_empty() {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("{} oracle violation(s); reproducers written", summary.violations.len());
        std::process::ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic target for engine unit tests: panics on inputs
    /// containing 0xBAD byte pair, errors on odd lengths.
    struct Synthetic;

    impl FuzzTarget for Synthetic {
        fn name(&self) -> &'static str {
            "synthetic"
        }

        fn seeds(&self) -> Vec<Vec<u8>> {
            vec![vec![1, 2, 3, 4]]
        }

        fn exec(&self, input: &[u8]) -> Outcome {
            if input.windows(2).any(|w| w == [0xBA, 0xD0]) {
                panic!("synthetic panic");
            }
            if input.len() % 2 == 1 {
                Outcome { class: "odd".into(), site: "odd length".into() }
            } else {
                Outcome { class: "ok".into(), site: String::new() }
            }
        }
    }

    #[test]
    fn minimize_shrinks_to_essential_bytes() {
        let mut input = vec![0u8; 300];
        input[137] = 0x7F;
        let out = minimize_input(input, |cand| cand.contains(&0x7F));
        assert_eq!(out, vec![0x7F]);
    }

    #[test]
    fn minimize_preserves_multi_byte_predicates() {
        let mut input = vec![0u8; 64];
        input[10] = 0xBA;
        input[11] = 0xD0;
        let out = minimize_input(input, |cand| cand.windows(2).any(|w| w == [0xBA, 0xD0]));
        assert_eq!(out, vec![0xBA, 0xD0]);
    }

    #[test]
    fn run_is_deterministic_and_catches_panics() {
        let cfg = Config {
            seed: 5,
            iterations: 400,
            alloc_cap: 0,
            deep_checks: false,
            reproducer_dir: None,
            verbose: false,
        };
        let a = run(&Synthetic, &cfg);
        let b = run(&Synthetic, &cfg);
        assert_eq!(a.signatures, b.signatures);
        assert_eq!(a.violations.len(), b.violations.len());
        // The panic input contains two specific adjacent bytes; 400
        // mutations of a 4-byte seed reliably find it, and every found
        // panic minimizes to exactly those two bytes.
        for v in &a.violations {
            assert_eq!(v.oracle, "panic");
            assert_eq!(v.input, vec![0xBA, 0xD0]);
        }
    }

    #[test]
    fn replay_reports_panics_as_errors() {
        assert!(replay(&Synthetic, &[1, 2]).is_ok());
        let err = replay(&Synthetic, &[0xBA, 0xD0]).unwrap_err();
        assert!(err.contains("synthetic panic"), "{err}");
    }
}
