//! Deterministic, structure-aware mutation fuzzing for the STZ parse
//! surfaces.
//!
//! Three byte-parsing surfaces ingest attacker-controlled input on every
//! remote fetch, and this crate fuzzes each of them with **zero external
//! dependencies** (no cargo-fuzz, no registry crates — the same offline
//! discipline as the workspace's shims):
//!
//! * **container** — STZC open/list/fetch through
//!   [`stz_access::FileStore`] over an in-memory byte source;
//! * **proto** — STZP frame decode in both directions: server-side
//!   request parsing and [`stz_serve::Client`] response validation
//!   against a scripted hostile peer;
//! * **codec** — codec-registry archive sniffing and decompression
//!   ([`stz_backend::Registry::detect`] → `decompress`).
//!
//! # How it works
//!
//! The [`engine`] seeds from **valid artifacts generated in-process**
//! (packed containers, encoded frames, compressed archives), then mutates
//! them with the structure-aware operators in [`mutate`] — bit/byte
//! flips, truncations, splices, length-field and dims targeting, and
//! CRC-refixup variants so mutations penetrate past the checksum gates
//! into deep parse code. Interesting inputs are deduplicated by an
//! error-signature coverage proxy (error class × normalized failure
//! site, see [`corpus::signature`]) into an in-memory corpus that feeds
//! later mutations.
//!
//! Per-iteration oracles:
//!
//! * **no panic** — every execution runs under `catch_unwind`;
//! * **bounded allocation** — the [`alloc_guard`] tracking allocator
//!   records the largest single allocation; hostile dims/lengths must be
//!   rejected *before* memory is committed (the decode-side extension of
//!   the 256 MiB frame-cap discipline, enforced via
//!   [`stz_codec::guard`]);
//! * **parse-twice determinism** — the same input must classify
//!   identically on repeated runs;
//! * **classification stability** — for the container target, an input
//!   must classify the same through the in-memory and on-disk
//!   transports.
//!
//! Runs are reproducible from a single seed (`STZ_FUZZ_SEED` or
//! `--seed`); any oracle violation is minimized ([`engine::minimize_input`])
//! and written as a reproducer file (seed and iteration in the header,
//! see [`corpus::Reproducer`]) under `tests/corpus/regressions/`, where
//! `tests/fuzz_regressions.rs` replays it forever after.

#![warn(missing_docs)]

pub mod alloc_guard;
pub mod corpus;
pub mod engine;
pub mod mutate;
pub mod rng;
pub mod targets;

pub use corpus::{signature, Corpus, Reproducer};
pub use engine::{minimize_input, replay, run, run_main, Config, Summary, Violation};
pub use rng::{seed_from_env, FuzzRng};
pub use targets::{CodecTarget, ContainerTarget, FuzzTarget, Outcome, ProtoTarget};
