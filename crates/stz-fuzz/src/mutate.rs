//! Structure-aware mutation operators.
//!
//! Plain bit-level corruption of a checksummed format mostly tests the
//! checksum: the STZP frame CRC and the STZC footer/section CRCs reject
//! the input before the deep parse code runs. The mutators here therefore
//! come in two flavors — raw corruption (bit/byte flips, truncations,
//! splices, targeted length/dims fields) *and* CRC-refixup variants
//! ([`refix_frame`], [`refix_container`]) that recompute the checksums
//! over the mutated bytes so the corruption penetrates past the integrity
//! gates into the structural validators behind them.

use crate::rng::FuzzRng;
use stz_stream::crc::crc32;
use stz_stream::format::{
    encode_footer, encode_trailer, parse_footer, EntryDetail, HEADER_LEN, TRAILER_LEN,
};

/// Boundary-prone 32-bit values patched into random offsets: 0, 1, the
/// STZP payload cap ±1, `u32::MAX`, and the container entry/name caps.
const INTERESTING_U32: &[u32] =
    &[0, 1, 0xFF, (256 << 20) - 1, 256 << 20, (256 << 20) + 1, u32::MAX, 1 << 20, 4096, 4097];

/// Produce one mutated child of `base`: 1–4 stacked operators, output
/// capped at `max_len` bytes.
pub fn mutate(rng: &mut FuzzRng, base: &[u8], max_len: usize) -> Vec<u8> {
    let mut buf = base.to_vec();
    let ops = 1 + rng.below(4);
    for _ in 0..ops {
        apply_one(rng, &mut buf);
        if buf.len() > max_len {
            buf.truncate(max_len);
        }
    }
    // Half the time, repair the outermost checksum so the mutation reaches
    // the parser behind the integrity gate.
    if rng.chance(1, 2) {
        if refix_frame(&mut buf) {
            // STZP frame: done.
        } else if let Some(fixed) = refix_container(&buf, rng.chance(1, 2)) {
            buf = fixed;
        }
    }
    buf
}

fn apply_one(rng: &mut FuzzRng, buf: &mut Vec<u8>) {
    if buf.is_empty() {
        buf.extend((0..8).map(|_| rng.next_u64() as u8));
        return;
    }
    match rng.below(8) {
        // Bit flip.
        0 => {
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] ^= 1 << rng.below(8);
        }
        // Byte overwrite.
        1 => {
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] = rng.next_u64() as u8;
        }
        // Truncate to a random prefix.
        2 => {
            let keep = rng.below(buf.len() as u64 + 1) as usize;
            buf.truncate(keep);
        }
        // Insert a short random burst.
        3 => {
            let i = rng.below(buf.len() as u64 + 1) as usize;
            let n = 1 + rng.below(8) as usize;
            let burst: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            buf.splice(i..i, burst);
        }
        // Remove a random chunk.
        4 => {
            let i = rng.below(buf.len() as u64) as usize;
            let n = (1 + rng.below(16) as usize).min(buf.len() - i);
            buf.drain(i..i + n);
        }
        // Splice: copy one internal range over another (dims/length fields
        // collide with unrelated values).
        5 => {
            let src = rng.below(buf.len() as u64) as usize;
            let dst = rng.below(buf.len() as u64) as usize;
            let n = (1 + rng.below(12) as usize).min(buf.len() - src.max(dst));
            let chunk: Vec<u8> = buf[src..src + n].to_vec();
            buf[dst..dst + n].copy_from_slice(&chunk);
        }
        // Targeted 32-bit little-endian boundary value (length fields,
        // counts, CRC slots).
        6 => {
            if buf.len() >= 4 {
                let i = rng.below(buf.len() as u64 - 3) as usize;
                let v = *rng.pick(INTERESTING_U32);
                buf[i..i + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Small-integer nudge: varint-coded dims/counts move to adjacent
        // values without being rewritten wholesale.
        _ => {
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] = buf[i].wrapping_add(if rng.chance(1, 2) { 1 } else { 0xFF });
        }
    }
}

/// If `buf` looks like an STZP frame (magic + full header), rewrite the
/// length field to the actual payload length and the CRC over that
/// payload. Returns `false` when the buffer is not frame-shaped.
pub fn refix_frame(buf: &mut [u8]) -> bool {
    if buf.len() < 16 || &buf[0..4] != b"STZP" {
        return false;
    }
    let payload_len = buf.len() - 16;
    let crc = crc32(&buf[16..]);
    buf[8..12].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[12..16].copy_from_slice(&crc.to_le_bytes());
    true
}

/// Recompute an STZC container's integrity metadata over (possibly
/// mutated) bytes so corruption penetrates the checksum gates.
///
/// Shallow mode re-CRCs the footer into the trailer. Deep mode
/// additionally re-parses the footer, re-stamps every section CRC from
/// the current payload bytes, and re-encodes footer + trailer — letting a
/// mutated *payload* travel through section verification into the codec
/// parsers. Returns `None` when the buffer is not container-shaped (or
/// the mutated footer no longer parses, in deep mode).
pub fn refix_container(bytes: &[u8], deep: bool) -> Option<Vec<u8>> {
    let min_len = (HEADER_LEN + TRAILER_LEN) as usize;
    if bytes.len() < min_len || &bytes[0..4] != b"STZC" {
        return None;
    }
    let trailer_at = bytes.len() - TRAILER_LEN as usize;
    let t = &bytes[trailer_at..];
    if &t[20..24] != b"STZE" {
        return None;
    }
    let footer_off = u64::from_le_bytes(t[0..8].try_into().unwrap()) as usize;
    let footer_len = u64::from_le_bytes(t[8..16].try_into().unwrap()) as usize;
    if footer_off.checked_add(footer_len)? > trailer_at {
        return None;
    }
    let footer = &bytes[footer_off..footer_off + footer_len];

    if !deep {
        let mut out = bytes.to_vec();
        let trailer = encode_trailer(footer_off as u64, footer_len as u64, crc32(footer));
        out[trailer_at..].copy_from_slice(&trailer);
        return Some(out);
    }

    // Deep: reparse, re-stamp section CRCs from current bytes, re-encode.
    let version = bytes[4];
    let mut records = parse_footer(footer, bytes.len() as u64, version).ok()?;
    for rec in &mut records {
        let fix = |loc: &mut stz_stream::format::SectionLoc| {
            let (off, len) = (loc.off as usize, loc.len as usize);
            if off + len <= bytes.len() {
                loc.crc = crc32(&bytes[off..off + len]);
            }
        };
        fix(&mut rec.payload);
        if let EntryDetail::Stz(d) = &mut rec.detail {
            fix(&mut d.l1);
            for level in &mut d.blocks {
                for b in level {
                    fix(b);
                }
            }
        }
    }
    let new_footer = encode_footer(&records);
    let mut out = bytes[..footer_off].to_vec();
    out.extend_from_slice(&new_footer);
    let trailer = encode_trailer(footer_off as u64, new_footer.len() as u64, crc32(&new_footer));
    out.extend_from_slice(&trailer);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutate_is_deterministic_per_seed() {
        let base = b"STZP deterministic mutation base buffer".to_vec();
        let a: Vec<Vec<u8>> = {
            let mut rng = FuzzRng::new(9);
            (0..20).map(|_| mutate(&mut rng, &base, 1 << 12)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = FuzzRng::new(9);
            (0..20).map(|_| mutate(&mut rng, &base, 1 << 12)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mutate_respects_max_len() {
        let base = vec![7u8; 100];
        let mut rng = FuzzRng::new(3);
        for _ in 0..200 {
            assert!(mutate(&mut rng, &base, 64).len() <= 64);
        }
    }

    #[test]
    fn refix_frame_repairs_crc() {
        let payload = b"hello frame";
        let mut frame = Vec::new();
        stz_serve::proto::write_frame(&mut frame, stz_serve::proto::FrameType::Hello, payload)
            .unwrap();
        // Corrupt the payload, then refix: the frame must parse again.
        frame[20] ^= 0xFF;
        assert!(refix_frame(&mut frame));
        let parsed =
            stz_serve::proto::read_frame(&mut std::io::Cursor::new(&frame)).unwrap().unwrap();
        assert_eq!(parsed.payload.len(), payload.len());
    }

    #[test]
    fn refix_container_shallow_repairs_footer_crc() {
        let field = stz_data::synth::miranda_like(stz_field::Dims::d3(6, 5, 4), 11);
        let archive = stz_core::StzCompressor::new(stz_core::StzConfig::three_level(1e-3))
            .compress(&field)
            .unwrap();
        let bytes = stz_stream::pack_to_vec(&[("t", &archive)]).unwrap();
        // Corrupt one footer byte, refix the trailer CRC: the container
        // must open again (footer content is CRC-gated, not re-validated
        // bytewise).
        let trailer_at = bytes.len() - TRAILER_LEN as usize;
        let footer_off =
            u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
        let mut mutated = bytes.clone();
        // Flip a name byte inside the footer (names are length-prefixed).
        mutated[footer_off + 8] ^= 0x01;
        let fixed = refix_container(&mutated, false).unwrap();
        // CRC now matches the mutated footer: open gets past the CRC gate
        // (whether the footer then parses depends on what was flipped).
        let t = &fixed[fixed.len() - TRAILER_LEN as usize..];
        let off = u64::from_le_bytes(t[0..8].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(t[8..16].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(t[16..20].try_into().unwrap());
        assert_eq!(crc, crc32(&fixed[off..off + len]));
    }

    #[test]
    fn refix_container_deep_roundtrips_valid_input() {
        let field = stz_data::synth::miranda_like(stz_field::Dims::d3(8, 6, 10), 12);
        let archive = stz_core::StzCompressor::new(stz_core::StzConfig::three_level(1e-3))
            .compress(&field)
            .unwrap();
        let bytes = stz_stream::pack_to_vec(&[("t", &archive)]).unwrap();
        let fixed = refix_container(&bytes, true).unwrap();
        // Re-stamping an untouched container must keep it readable.
        let reader =
            stz_stream::ContainerReader::open(stz_stream::MemorySource::new(fixed)).unwrap();
        assert_eq!(reader.entries().count(), 1);
    }
}
