//! Error-signature coverage proxy, the in-memory corpus, and the
//! reproducer file format.
//!
//! Without instrumentation-based coverage, the engine needs another
//! measure of "this input reached somewhere new". The proxy is the
//! **error signature**: `target:class:site`, where `class` is the error
//! taxonomy variant the input provoked (or `ok`) and `site` is a short
//! hash of the error message with digits stripped — two inputs failing
//! the same check with different offsets share a signature, while inputs
//! failing *different* checks do not. One (smallest-seen) input per
//! signature is kept and fed back into mutation.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Build a signature from a target name, an error class, and the failure
/// site (typically the error's `Display` text).
pub fn signature(target: &str, class: &str, site: &str) -> String {
    format!("{target}:{class}:{:08x}", site_hash(site))
}

/// FNV-1a over the site text with ASCII digits removed, folded to 32
/// bits: offsets, lengths and dims vary per input, the failing check does
/// not.
fn site_hash(site: &str) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        if b.is_ascii_digit() {
            continue;
        }
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// The in-memory corpus: one representative input per signature.
#[derive(Debug, Default)]
pub struct Corpus {
    entries: BTreeMap<String, Vec<u8>>,
}

impl Corpus {
    /// Empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Record `input` under `sig`. Returns `true` when the signature is
    /// new; an existing signature keeps its smaller representative.
    pub fn insert(&mut self, sig: &str, input: &[u8]) -> bool {
        match self.entries.get_mut(sig) {
            None => {
                self.entries.insert(sig.to_string(), input.to_vec());
                true
            }
            Some(existing) => {
                if input.len() < existing.len() {
                    *existing = input.to_vec();
                }
                false
            }
        }
    }

    /// Signatures in sorted order (the determinism-check fingerprint).
    pub fn signatures(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// The stored inputs, in signature order.
    pub fn inputs(&self) -> Vec<&[u8]> {
        self.entries.values().map(|v| v.as_slice()).collect()
    }

    /// Number of distinct signatures seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no signature has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A replayable failing (or pinned hostile) input: text format, hex
/// payload, provenance in `#` header comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// Harness the input belongs to: `container`, `proto`, or `codec`.
    pub target: String,
    /// Engine seed of the run that found it (0 for hand-pinned cases).
    pub seed: u64,
    /// Iteration within that run (0 for hand-pinned cases).
    pub iteration: u64,
    /// Signature (or expected classification) of the input.
    pub signature: String,
    /// Free-form one-line note (why this input is pinned).
    pub note: String,
    /// The input bytes.
    pub bytes: Vec<u8>,
}

impl Reproducer {
    /// Serialize to the reproducer text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("# stz-fuzz reproducer v1\n");
        let _ = writeln!(s, "# target: {}", self.target);
        let _ = writeln!(s, "# seed: {:#018x}", self.seed);
        let _ = writeln!(s, "# iteration: {}", self.iteration);
        let _ = writeln!(s, "# signature: {}", self.signature);
        if !self.note.is_empty() {
            let _ = writeln!(s, "# note: {}", self.note);
        }
        let _ = writeln!(s, "# len: {}", self.bytes.len());
        for chunk in self.bytes.chunks(32) {
            for (i, b) in chunk.iter().enumerate() {
                if i > 0 && i % 4 == 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{b:02x}");
            }
            s.push('\n');
        }
        s
    }

    /// Parse the reproducer text format.
    pub fn parse(text: &str) -> Result<Reproducer, String> {
        let mut r = Reproducer {
            target: String::new(),
            seed: 0,
            iteration: 0,
            signature: String::new(),
            note: String::new(),
            bytes: Vec::new(),
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some((key, value)) = rest.split_once(':') {
                    let value = value.trim();
                    match key.trim() {
                        "target" => r.target = value.to_string(),
                        "seed" => {
                            r.seed = crate::rng::parse_seed(value)
                                .ok_or_else(|| format!("bad seed {value:?}"))?
                        }
                        "iteration" => {
                            r.iteration =
                                value.parse().map_err(|e| format!("bad iteration: {e}"))?
                        }
                        "signature" => r.signature = value.to_string(),
                        "note" => r.note = value.to_string(),
                        _ => {} // forward-compatible: unknown headers skip
                    }
                }
                continue;
            }
            let mut nibbles = line.chars().filter(|c| !c.is_whitespace());
            while let Some(hi) = nibbles.next() {
                let lo = nibbles.next().ok_or("odd hex digit count")?;
                let byte = (hi.to_digit(16).ok_or("bad hex digit")? * 16
                    + lo.to_digit(16).ok_or("bad hex digit")?) as u8;
                r.bytes.push(byte);
            }
        }
        if r.target.is_empty() {
            return Err("missing '# target:' header".into());
        }
        Ok(r)
    }

    /// Write to `dir/<name>.hex`.
    pub fn write_to(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.hex"));
        std::fs::write(&path, self.to_text())?;
        Ok(path)
    }

    /// Read and parse one reproducer file.
    pub fn read_from(path: &Path) -> Result<Reproducer, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Reproducer::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_strips_digits() {
        let a = signature("proto", "protocol", "frame length prefix 4096 exceeds cap");
        let b = signature("proto", "protocol", "frame length prefix 123456 exceeds cap");
        assert_eq!(a, b);
        let c = signature("proto", "protocol", "bad frame magic");
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_keeps_smallest() {
        let mut c = Corpus::new();
        assert!(c.insert("s", &[1, 2, 3]));
        assert!(!c.insert("s", &[1, 2, 3, 4]));
        assert!(!c.insert("s", &[9]));
        assert_eq!(c.inputs(), vec![&[9][..]]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reproducer_roundtrip() {
        let r = Reproducer {
            target: "container".into(),
            seed: 0xDEAD_BEEF,
            iteration: 417,
            signature: "container:corrupt:ab12cd34".into(),
            note: "hand-pinned hostile case".into(),
            bytes: (0u16..300).map(|i| (i % 251) as u8).collect(),
        };
        let back = Reproducer::parse(&r.to_text()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn reproducer_rejects_garbage() {
        assert!(Reproducer::parse("no headers at all").is_err());
        assert!(Reproducer::parse("# target: proto\nzz").is_err());
        assert!(Reproducer::parse("# target: proto\nabc").is_err());
    }
}
