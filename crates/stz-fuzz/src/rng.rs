//! Deterministic pseudo-random source for the fuzz engine.
//!
//! SplitMix64: tiny, fast, and fully reproducible from one `u64` seed —
//! the whole run (mutations, corpus picks, minimization probes) replays
//! bit-identically from `STZ_FUZZ_SEED`.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift: bias is negligible for the small ranges the
        // engine draws, and it keeps the stream portable.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Pick one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Resolve the run seed: `STZ_FUZZ_SEED` (decimal or `0x…` hex) if set,
/// else `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("STZ_FUZZ_SEED") {
        Ok(s) => parse_seed(s.trim()).unwrap_or(default),
        Err(_) => default,
    }
}

/// Parse a seed string (decimal or `0x…` hexadecimal).
pub fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = FuzzRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }
}
