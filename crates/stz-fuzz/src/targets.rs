//! The three fuzz targets: container, proto, codec.
//!
//! A target turns raw input bytes into an [`Outcome`] — an error-taxonomy
//! class plus a failure-site string — without ever panicking (the engine
//! still wraps every call in `catch_unwind`, because "never panics" is
//! exactly the property under test). All seeds are generated in-process
//! from real encoders, so the corpus starts deep inside the valid-input
//! grammar instead of at random bytes.

use crate::corpus::signature;
use std::io::{Cursor, Read, Write};
use stz_access::{AccessError, Entry, EntrySel as AccessSel, Fetch, FileStore, Store};
use stz_backend::{registry, ErrorBound};
use stz_core::{StzCompressor, StzConfig};
use stz_field::{Dims, Field, Region};
use stz_mutate::{upgrade_image, MemBacking, MutableContainer};
use stz_serve::proto::{
    self, write_frame, ContainerInfo, Enc, EntryInfo, EntrySel, FetchReq, FetchedField, FrameType,
    RequestKind, ServerStats, TraceContextExt,
};
use stz_serve::{Client, ServeError};
use stz_stream::{ContainerWriter, ForeignArchive, MemorySource, PackEntry};

/// Classification of one execution: the error-taxonomy class the input
/// landed in and the failure site (error text; empty for success).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Error class (`ok`, `corrupt`, `protocol`, …).
    pub class: String,
    /// Failure-site detail, normalized into the signature hash.
    pub site: String,
}

impl Outcome {
    fn ok(site: impl Into<String>) -> Outcome {
        Outcome { class: "ok".into(), site: site.into() }
    }

    /// The corpus signature of this outcome under `target`.
    pub fn signature(&self, target: &str) -> String {
        signature(target, &self.class, &self.site)
    }
}

/// One fuzzable parse surface.
pub trait FuzzTarget {
    /// Short name (`container`, `proto`, `codec`) — the first signature
    /// component and the reproducer `target` header.
    fn name(&self) -> &'static str;

    /// Valid in-process artifacts that seed the corpus.
    fn seeds(&self) -> Vec<Vec<u8>>;

    /// Execute the parse surface on `input` and classify the result.
    fn exec(&self, input: &[u8]) -> Outcome;

    /// Extra cross-validation run on corpus-new inputs only (e.g. mem/file
    /// classification stability). `Err` describes the oracle violation.
    fn deep_check(&self, _input: &[u8]) -> Result<(), String> {
        Ok(())
    }

    /// Mutated inputs are clamped to this many bytes.
    fn max_input_len(&self) -> usize {
        1 << 16
    }
}

fn small_dims() -> Dims {
    Dims::d3(8, 6, 10)
}

fn classify_access(e: &AccessError) -> (&'static str, String) {
    let class = match e {
        AccessError::NotFound { .. } => "not-found",
        AccessError::Unsupported(_) => "unsupported",
        AccessError::BadRequest(_) => "bad-request",
        AccessError::Corrupt(_) => "corrupt",
        AccessError::BadUri(_) => "bad-uri",
        AccessError::Io(_) => "io",
        AccessError::Remote { .. } => "remote",
        AccessError::Protocol(_) => "protocol",
    };
    (class, e.to_string())
}

fn classify_serve(e: &ServeError) -> (&'static str, String) {
    let class = match e {
        ServeError::Io(_) => "io",
        ServeError::Protocol(_) => "protocol",
        ServeError::Remote { .. } => "remote",
        ServeError::Stream(_) => "stream",
    };
    (class, e.to_string())
}

// ---------------------------------------------------------------------------
// Container target.
// ---------------------------------------------------------------------------

/// STZC container open/list/fetch through [`FileStore`].
#[derive(Debug, Default)]
pub struct ContainerTarget;

/// Run the full container access script over any opened store; the
/// classification is the first error (or `ok`).
fn container_script<S: stz_stream::ByteSource + 'static>(
    store: &FileStore<S>,
) -> Result<String, AccessError> {
    let descs = store.list()?;
    let mut fetched = 0usize;
    for desc in descs.iter().take(4) {
        let entry = store.open(&AccessSel::Index(desc.index))?;
        fetch_entry(entry.as_ref())?;
        fetched += 1;
    }
    // Entry/fetch-count shape, digit-free so the signature hash (which
    // strips digits) still distinguishes container populations.
    Ok(format!("open-ok/{}/{}", "e".repeat(descs.len().min(8)), "f".repeat(fetched.min(8))))
}

fn fetch_entry(entry: &dyn Entry) -> Result<(), AccessError> {
    entry.fetch(&Fetch::Full)?;
    if entry.desc().levels > 0 {
        entry.fetch(&Fetch::Level(1))?;
    }
    let d = entry.desc().dims;
    let region = Region::d3(
        0..d.as_array()[0].clamp(1, 2),
        0..d.as_array()[1].clamp(1, 2),
        0..d.as_array()[2].clamp(1, 2),
    );
    entry.fetch(&Fetch::Region(region))?;
    entry.fetch(&Fetch::RawSection(0))?;
    Ok(())
}

impl FuzzTarget for ContainerTarget {
    fn name(&self) -> &'static str {
        "container"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        let dims = small_dims();
        let f32_fields: Vec<Field<f32>> =
            (0..2).map(|i| stz_data::synth::miranda_like(dims, 40 + i)).collect();
        let compressor = StzCompressor::new(StzConfig::three_level(1e-3));

        // Seed 1: mixed container — two native entries + one zfp foreign.
        let mut w = ContainerWriter::new(Vec::new()).expect("vec write");
        w.add_archive("t0", &compressor.compress(&f32_fields[0]).expect("compress")).expect("add");
        w.add_archive("t1", &compressor.compress(&f32_fields[1]).expect("compress")).expect("add");
        let zfp = registry().by_name("zfp").expect("zfp registered");
        let zbytes = stz_backend::compress(zfp, &f32_fields[0], &ErrorBound::Absolute(1e-3))
            .expect("zfp compress");
        w.add_foreign("zfp0", &ForeignArchive::new::<f32>(zfp.id(), dims, 1e-3, zbytes))
            .expect("add foreign");
        let mixed = w.finish().expect("finish");

        // Seed 2: a single f64 entry.
        let f64_field = Field::from_fn(Dims::d3(5, 4, 6), |z, y, x| {
            (z as f64 * 0.3).sin() + (y as f64 * 0.2).cos() + x as f64 * 0.01
        });
        let archive = compressor.compress(&f64_field).expect("compress f64");
        let single = stz_stream::pack_to_vec(&[("p", &archive)]).expect("pack");

        // Seed 3: a mutable (v3) container grown through three committed
        // generations — replace + delete leave dead payload and an
        // orphaned footer in the body, and the alternating generation
        // slots sit in the header. Mutating this seed explores the slot
        // plausibility/CRC checks and the dead-region skip logic, which
        // the write-once seeds never reach.
        let a0 = compressor.compress(&f32_fields[0]).expect("compress");
        let a1 = compressor.compress(&f32_fields[1]).expect("compress");
        let mut m = MutableContainer::create(MemBacking::empty()).expect("mem container");
        m.append("m0", &PackEntry::from(a0)).expect("append");
        m.append("m1", &PackEntry::from(a1.clone())).expect("append");
        m.commit().expect("commit");
        m.replace("m0", &PackEntry::from(a1)).expect("replace");
        m.delete("m1").expect("delete");
        m.commit().expect("commit");
        let multi_generation = m.into_backing().into_bytes();

        // Seed 4: the v2 seed upgraded in place to the v3 slot protocol,
        // so mutation also covers a freshly-upgraded generation-1 image.
        let upgraded = upgrade_image(&single).expect("upgrade v2 image");

        vec![mixed, single, multi_generation, upgraded]
    }

    fn exec(&self, input: &[u8]) -> Outcome {
        let opened = FileStore::open_source(MemorySource::new(input.to_vec()), "fuzz-mem");
        match opened.and_then(|store| container_script(&store)) {
            Ok(site) => Outcome::ok(site),
            Err(e) => {
                let (class, site) = classify_access(&e);
                Outcome { class: class.into(), site }
            }
        }
    }

    /// Classification stability: the same bytes through the on-disk
    /// transport must land in the same error class as through memory.
    fn deep_check(&self, input: &[u8]) -> Result<(), String> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mem = self.exec(input);
        let path = std::env::temp_dir().join(format!(
            "stz_fuzz_{}_{}.stzc",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, input).map_err(|e| format!("temp write: {e}"))?;
        let file = match FileStore::open_path(&path) {
            Ok(store) => match container_script(&store) {
                Ok(site) => Outcome::ok(site),
                Err(e) => {
                    let (class, site) = classify_access(&e);
                    Outcome { class: class.into(), site }
                }
            },
            Err(e) => {
                let (class, site) = classify_access(&e);
                Outcome { class: class.into(), site }
            }
        };
        let _ = std::fs::remove_file(&path);
        if mem.class != file.class {
            return Err(format!(
                "classification differs across transports: mem={} file={}",
                mem.class, file.class
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Proto target.
// ---------------------------------------------------------------------------

/// STZP frames, both directions: server-side request parsing and
/// client-side response validation against a scripted hostile peer.
#[derive(Debug, Default)]
pub struct ProtoTarget;

/// In-memory `Read + Write` peer: replies with a fixed script, swallows
/// writes.
struct ScriptedPeer {
    replies: Cursor<Vec<u8>>,
}

impl ScriptedPeer {
    /// Peer that answers the handshake honestly and then serves `body`
    /// repeatedly (most client calls read one frame; repeating lets one
    /// hostile buffer answer several request shapes).
    fn hostile(body: &[u8]) -> ScriptedPeer {
        let mut script = Vec::new();
        let mut hello = Enc::new();
        hello.u8(proto::PROTO_VERSION);
        hello.string("stz-fuzz/peer");
        write_frame(&mut script, FrameType::HelloOk, &hello.finish()).expect("vec write");
        for _ in 0..4 {
            script.extend_from_slice(body);
        }
        ScriptedPeer { replies: Cursor::new(script) }
    }
}

impl Read for ScriptedPeer {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.replies.read(buf)
    }
}

impl Write for ScriptedPeer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn frame(kind: FrameType, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, kind, payload).expect("vec write");
    buf
}

/// Server direction: parse one request frame the way the dispatcher does.
fn serve_side(input: &[u8]) -> (String, String) {
    let mut cursor = Cursor::new(input);
    match proto::read_frame(&mut cursor) {
        Ok(None) => ("empty".into(), String::new()),
        Ok(Some(f)) => match f.frame_type() {
            Some(FrameType::Hello) => {
                let mut d = proto::Dec::new(&f.payload);
                match d.u8() {
                    Ok(_) => ("req-hello".into(), String::new()),
                    Err(e) => {
                        let (c, s) = classify_serve(&e);
                        (format!("req-{c}"), s)
                    }
                }
            }
            Some(
                ft @ (FrameType::FetchFull
                | FrameType::FetchRoi
                | FrameType::FetchProgressive
                | FrameType::FetchRawSection),
            ) => match FetchReq::decode(ft, &f.payload) {
                Ok(req) => ("req-fetch".into(), format!("kind-tag={}", req.kind.tag())),
                Err(e) => {
                    let (c, s) = classify_serve(&e);
                    (format!("req-{c}"), s)
                }
            },
            Some(FrameType::Inspect) => {
                let mut d = proto::Dec::new(&f.payload);
                match d.string() {
                    Ok(_) => ("req-inspect".into(), String::new()),
                    Err(e) => {
                        let (c, s) = classify_serve(&e);
                        (format!("req-{c}"), s)
                    }
                }
            }
            Some(FrameType::TraceGet) => {
                let d = proto::Dec::new(&f.payload);
                match d.expect_end() {
                    Ok(()) => ("req-trace".into(), String::new()),
                    Err(e) => {
                        let (c, s) = classify_serve(&e);
                        (format!("req-{c}"), s)
                    }
                }
            }
            Some(_) => ("req-other".into(), String::new()),
            None => ("req-unknown-kind".into(), String::new()),
        },
        Err(e) => {
            let (c, s) = classify_serve(&e);
            (format!("frame-{c}"), s)
        }
    }
}

/// Client direction: handshake + one call against a scripted peer that
/// replies with `input`-derived bytes.
fn client_side(input: &[u8]) -> (String, String) {
    // Handshake against the raw input first: hostile HELLO_OK handling.
    let hs = match Client::handshake(ScriptedPeer { replies: Cursor::new(input.to_vec()) }) {
        Ok(_) => "hs-ok".to_string(),
        Err(e) => format!("hs-{}", classify_serve(&e).0),
    };
    // Then a scripted peer that handshakes honestly and answers every
    // subsequent request with the input: full response-validation path.
    let mut detail = String::new();
    let mut classes = vec![hs];
    match Client::handshake(ScriptedPeer::hostile(input)) {
        Ok(mut client) => {
            let fetch = client.fetch_full("c", EntrySel::Name("e".into()));
            classes.push(match &fetch {
                Ok(_) => "fetch-ok".into(),
                Err(e) => {
                    let (c, s) = classify_serve(e);
                    detail = s;
                    format!("fetch-{c}")
                }
            });
            classes.push(match client.list() {
                Ok(_) => "list-ok".into(),
                Err(e) => format!("list-{}", classify_serve(&e).0),
            });
            classes.push(match client.stats() {
                Ok(_) => "stats-ok".into(),
                Err(e) => format!("stats-{}", classify_serve(&e).0),
            });
            classes.push(match client.metrics() {
                Ok(_) => "metrics-ok".into(),
                Err(e) => format!("metrics-{}", classify_serve(&e).0),
            });
            classes.push(match client.trace() {
                Ok(_) => "trace-ok".into(),
                Err(e) => format!("trace-{}", classify_serve(&e).0),
            });
        }
        Err(e) => classes.push(format!("peer-hs-{}", classify_serve(&e).0)),
    }
    (classes.join(","), detail)
}

impl FuzzTarget for ProtoTarget {
    fn name(&self) -> &'static str {
        "proto"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        let mut hello = Enc::new();
        hello.u8(proto::PROTO_VERSION);
        let mut hello_ok = Enc::new();
        hello_ok.u8(proto::PROTO_VERSION);
        hello_ok.string("stz-serve/fuzz");

        let reqs = [
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Name("t0".into()),
                kind: RequestKind::Full,
                trace: None,
            },
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Index(1),
                kind: RequestKind::Level(1),
                trace: None,
            },
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Name("t1".into()),
                kind: RequestKind::roi(&Region::d3(0..4, 1..3, 2..6)),
                trace: None,
            },
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Index(0),
                kind: RequestKind::Raw,
                trace: None,
            },
            // A fetch carrying the trace-context extension, so mutation
            // explores the 17-byte suffix grammar too.
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Index(2),
                kind: RequestKind::Full,
                trace: Some(TraceContextExt { trace_id: 0x1234_5678_9ABC_DEF0, parent_span: 77 }),
            },
        ];

        let field = stz_data::synth::miranda_like(Dims::d3(4, 3, 5), 77);
        let fetched = FetchedField {
            kind_tag: RequestKind::Full.tag(),
            type_tag: 0,
            dims: field.dims(),
            data: field.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect(),
        };

        let list = proto::encode_list(&[
            ContainerInfo { name: "steps".into(), entries: 3, file_len: 4096 },
            ContainerInfo { name: "aux".into(), entries: 1, file_len: 512 },
        ]);
        let inspect = proto::encode_inspect(&[EntryInfo {
            name: "t0".into(),
            codec_id: 0,
            type_tag: 0,
            ndim: 3,
            dims: [8, 6, 10],
            eb: 1e-3,
            compressed_len: 1234,
            payload_crc: 0xDEAD_BEEF,
            sections: 9,
            levels: 3,
            interp: 1,
            level_bytes: vec![100, 400, 1234],
        }]);
        let stats = ServerStats {
            requests: 12,
            containers: 2,
            cache_hits: 5,
            cache_misses: 7,
            cache_evictions: 1,
            cache_entries: 4,
            cache_bytes: 1 << 20,
            cache_capacity: 32 << 20,
        }
        .encode();
        let metrics = proto::encode_metrics_ok("stzp_requests_total{kind=\"full\"} 1\n");
        let err = proto::encode_err(proto::err_code::NOT_FOUND, "no such entry");
        let trace_ok = proto::encode_trace_ok(&[stz_telemetry::trace::TraceRecord {
            trace_id: 0xABCD,
            kind: "full".into(),
            error: false,
            duration_ns: 1_500_000,
            dropped_spans: 0,
            spans: vec![
                stz_telemetry::trace::SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "request".into(),
                    start_ns: 0,
                    duration_ns: 1_500_000,
                    attrs: vec![("kind".into(), "full".into())],
                },
                stz_telemetry::trace::SpanRecord {
                    id: 2,
                    parent: 1,
                    name: "decode".into(),
                    start_ns: 100,
                    duration_ns: 1_000_000,
                    attrs: vec![],
                },
            ],
        }]);

        let mut seeds = vec![
            frame(FrameType::Hello, &hello.finish()),
            frame(FrameType::HelloOk, &hello_ok.finish()),
            frame(FrameType::List, &[]),
            frame(FrameType::ListOk, &list),
            frame(FrameType::InspectOk, &inspect),
            frame(FrameType::FetchOk, &fetched.encode()),
            frame(FrameType::RawOk, &[0xAB; 64]),
            frame(FrameType::StatsOk, &stats),
            frame(FrameType::MetricsOk, &metrics),
            frame(FrameType::TraceGet, &[]),
            frame(FrameType::TraceOk, &trace_ok),
            frame(FrameType::Err, &err),
        ];
        for req in &reqs {
            seeds.push(frame(req.frame_type(), &req.encode()));
        }
        seeds
    }

    fn exec(&self, input: &[u8]) -> Outcome {
        let (server_class, server_site) = serve_side(input);
        let (client_class, client_site) = client_side(input);
        Outcome {
            class: format!("{server_class}|{client_class}"),
            site: format!("{server_site}|{client_site}"),
        }
    }

    fn max_input_len(&self) -> usize {
        1 << 14
    }
}

// ---------------------------------------------------------------------------
// Codec target.
// ---------------------------------------------------------------------------

/// Codec-registry decompress via magic sniffing.
#[derive(Debug, Default)]
pub struct CodecTarget;

impl FuzzTarget for CodecTarget {
    fn name(&self) -> &'static str {
        "codec"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        let f32_field = stz_data::synth::miranda_like(small_dims(), 99);
        let f64_field = Field::from_fn(Dims::d3(4, 5, 6), |z, y, x| {
            (z as f64).sin() + (y as f64).cos() + x as f64 * 0.1
        });
        let mut seeds = Vec::new();
        for codec in registry().all() {
            seeds.push(
                stz_backend::compress(codec, &f32_field, &ErrorBound::Absolute(1e-3))
                    .expect("compress f32 seed"),
            );
            seeds.push(
                stz_backend::compress(codec, &f64_field, &ErrorBound::Absolute(1e-3))
                    .expect("compress f64 seed"),
            );
        }
        seeds
    }

    fn exec(&self, input: &[u8]) -> Outcome {
        let Some(codec) = registry().detect(input) else {
            return Outcome { class: "no-magic".into(), site: String::new() };
        };
        let classify = |r: &Result<Field<f32>, stz_codec::CodecError>| match r {
            Ok(_) => ("ok".to_string(), String::new()),
            Err(stz_codec::CodecError::UnexpectedEof { context }) => {
                ("eof".to_string(), context.to_string())
            }
            Err(stz_codec::CodecError::Corrupt(m)) => ("corrupt".to_string(), m.clone()),
            Err(stz_codec::CodecError::Unsupported(m)) => ("unsupported".to_string(), m.clone()),
        };
        let f32_result = codec.decompress_f32(input);
        let (c32, s32) = classify(&f32_result);
        let (c64, s64) = match codec.decompress_f64(input) {
            Ok(_) => ("ok".to_string(), String::new()),
            Err(stz_codec::CodecError::UnexpectedEof { context }) => {
                ("eof".to_string(), context.to_string())
            }
            Err(stz_codec::CodecError::Corrupt(m)) => ("corrupt".to_string(), m),
            Err(stz_codec::CodecError::Unsupported(m)) => ("unsupported".to_string(), m),
        };
        Outcome {
            class: format!("{}:f32-{c32},f64-{c64}", codec.name()),
            site: format!("{s32}|{s64}"),
        }
    }

    fn max_input_len(&self) -> usize {
        1 << 14
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_seeds_classify_ok() {
        let t = ContainerTarget;
        for seed in t.seeds() {
            let out = t.exec(&seed);
            assert_eq!(out.class, "ok", "seed should open cleanly: {out:?}");
        }
    }

    #[test]
    fn proto_seeds_do_not_panic_and_are_deterministic() {
        let t = ProtoTarget;
        for seed in t.seeds() {
            assert_eq!(t.exec(&seed), t.exec(&seed));
        }
    }

    #[test]
    fn codec_seeds_roundtrip_on_matching_type() {
        let t = CodecTarget;
        for seed in t.seeds() {
            let out = t.exec(&seed);
            assert!(
                out.class.contains("f32-ok") || out.class.contains("f64-ok"),
                "each codec seed decodes at its own type: {out:?}"
            );
        }
    }

    #[test]
    fn container_deep_check_stable_on_valid_and_corrupt() {
        let t = ContainerTarget;
        let seed = &t.seeds()[0];
        t.deep_check(seed).unwrap();
        let mut corrupt = seed.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        t.deep_check(&corrupt).unwrap();
    }
}
