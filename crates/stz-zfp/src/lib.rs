//! ZFP-style block-transform lossy compressor (baseline).
//!
//! Reimplements the structure of ZFP (Lindstrom, TVCG 2014), the paper's
//! high-speed / low-quality / random-access baseline:
//!
//! 1. the grid is split into `4^d` **blocks**, each padded and processed
//!    independently ([`block`]) — this is what gives ZFP random access and
//!    what costs it cross-block spatial correlation (paper §2.3, Table 1);
//! 2. each block is aligned to a common exponent (block-floating-point) and
//!    decorrelated with ZFP's integer lifting transform ([`transform`]);
//! 3. coefficients are reordered by total sequency and coded plane-by-plane
//!    with ZFP's verbatim + unary group-testing scheme ([`bitplane`]).
//!
//! The archive records a per-block bit offset, so any block — and hence any
//! region — can be decoded independently ([`compressor::decompress_region`]).

pub mod bitplane;
pub mod block;
pub mod compressor;
pub mod transform;

pub use compressor::{compress, decompress, decompress_region, ZfpConfig};
