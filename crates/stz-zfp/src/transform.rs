//! ZFP's integer decorrelating lifting transform.
//!
//! The forward transform acts on groups of 4 integers along one axis:
//!
//! ```text
//! x += w; x >>= 1; w -= x;
//! z += y; z >>= 1; y -= z;
//! x += z; x >>= 1; z -= x;
//! w += y; w >>= 1; y -= w;
//! w += y >> 1; y -= w >> 1;
//! ```
//!
//! It approximates an orthogonal high-order transform while staying exactly
//! invertible in integer arithmetic (the inverse undoes each lifting step in
//! reverse). Applied separably along every axis of a `4^d` block.

/// Block edge length.
pub const BS: usize = 4;

/// Forward lift of one group of 4 (ZFP `fwd_lift`).
#[inline]
pub fn fwd_lift4(v: &mut [i64; 4]) {
    let [mut x, mut y, mut z, mut w] = *v;
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    *v = [x, y, z, w];
}

/// Inverse lift (ZFP `inv_lift`).
///
/// Like the reference ZFP, the forward/inverse pair is *not* bit-exact: the
/// `>>= 1` lifting steps discard one bit each, so a roundtrip reproduces
/// inputs only to within a few integer ULPs. This round-off is part of
/// ZFP's error budget and is absorbed by the guard bit-planes the
/// compressor keeps beyond the tolerance cutoff.
#[inline]
pub fn inv_lift4(v: &mut [i64; 4]) {
    let [mut x, mut y, mut z, mut w] = *v;
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    *v = [x, y, z, w];
}

/// Forward transform of a `4^d` block stored in C order (`x` fastest).
/// `ndim` selects how many axes are transformed.
pub fn fwd_xform(block: &mut [i64], ndim: u8) {
    match ndim {
        1 => {
            debug_assert_eq!(block.len(), BS);
            lift_axis(block, 0, 1);
        }
        2 => {
            debug_assert_eq!(block.len(), BS * BS);
            for y in 0..BS {
                lift_axis(block, y * BS, 1); // along x
            }
            for x in 0..BS {
                lift_axis(block, x, BS); // along y
            }
        }
        3 => {
            debug_assert_eq!(block.len(), BS * BS * BS);
            for z in 0..BS {
                for y in 0..BS {
                    lift_axis(block, (z * BS + y) * BS, 1);
                }
            }
            for z in 0..BS {
                for x in 0..BS {
                    lift_axis(block, z * BS * BS + x, BS);
                }
            }
            for y in 0..BS {
                for x in 0..BS {
                    lift_axis(block, y * BS + x, BS * BS);
                }
            }
        }
        _ => panic!("unsupported dimensionality {ndim}"),
    }
}

/// Inverse transform: undoes [`fwd_xform`] (axes in reverse order).
pub fn inv_xform(block: &mut [i64], ndim: u8) {
    match ndim {
        1 => {
            unlift_axis(block, 0, 1);
        }
        2 => {
            for x in 0..BS {
                unlift_axis(block, x, BS);
            }
            for y in 0..BS {
                unlift_axis(block, y * BS, 1);
            }
        }
        3 => {
            for y in 0..BS {
                for x in 0..BS {
                    unlift_axis(block, y * BS + x, BS * BS);
                }
            }
            for z in 0..BS {
                for x in 0..BS {
                    unlift_axis(block, z * BS * BS + x, BS);
                }
            }
            for z in 0..BS {
                for y in 0..BS {
                    unlift_axis(block, (z * BS + y) * BS, 1);
                }
            }
        }
        _ => panic!("unsupported dimensionality {ndim}"),
    }
}

#[inline]
fn lift_axis(block: &mut [i64], base: usize, stride: usize) {
    let mut v =
        [block[base], block[base + stride], block[base + 2 * stride], block[base + 3 * stride]];
    fwd_lift4(&mut v);
    block[base] = v[0];
    block[base + stride] = v[1];
    block[base + 2 * stride] = v[2];
    block[base + 3 * stride] = v[3];
}

#[inline]
fn unlift_axis(block: &mut [i64], base: usize, stride: usize) {
    let mut v =
        [block[base], block[base + stride], block[base + 2 * stride], block[base + 3 * stride]];
    inv_lift4(&mut v);
    block[base] = v[0];
    block[base + stride] = v[1];
    block[base + 2 * stride] = v[2];
    block[base + 3 * stride] = v[3];
}

/// Sequency (total-degree) coefficient ordering for a `4^d` block: low
/// frequencies first, which concentrates energy at the front of the
/// bit-plane coder. Returns a permutation `perm` with `perm[rank] = index`.
pub fn sequency_order(ndim: u8) -> Vec<usize> {
    let n = BS.pow(ndim as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    let degree = move |i: usize| -> usize {
        match ndim {
            1 => i,
            2 => (i / BS) + (i % BS),
            _ => (i / (BS * BS)) + ((i / BS) % BS) + (i % BS),
        }
    };
    idx.sort_by_key(|&i| (degree(i), i));
    idx
}

/// Two's-complement → negabinary, making sign bits implicit in magnitude
/// bit-planes (ZFP `int2uint`).
#[inline]
pub fn int_to_uint(x: i64) -> u64 {
    const MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
    ((x as u64).wrapping_add(MASK)) ^ MASK
}

/// Inverse of [`int_to_uint`] (ZFP `uint2int`).
#[inline]
pub fn uint_to_int(x: u64) -> i64 {
    const MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
    ((x ^ MASK).wrapping_sub(MASK)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_roundtrip_near_exact() {
        // The zfp lifting pair loses at most a few integer ULPs per
        // roundtrip (the >>1 steps); verify the loss is tightly bounded.
        let cases = [
            [0i64, 0, 0, 0],
            [1, 2, 3, 4],
            [-1000, 999, -998, 997],
            [1 << 40, -(1 << 40), 123456789, -987654321],
            [7, -3, 11, -13],
        ];
        for c in cases {
            let mut v = c;
            fwd_lift4(&mut v);
            inv_lift4(&mut v);
            for (a, b) in v.iter().zip(&c) {
                assert!((a - b).abs() <= 2, "{v:?} vs {c:?}");
            }
        }
    }

    #[test]
    fn lift_zero_is_exact() {
        let mut v = [0i64; 4];
        fwd_lift4(&mut v);
        assert_eq!(v, [0; 4]);
        inv_lift4(&mut v);
        assert_eq!(v, [0; 4]);
    }

    #[test]
    fn lift_decorrelates_ramp() {
        // A linear ramp should transform to (nearly) a single DC + first
        // moment; higher coefficients ~ 0.
        let mut v = [100i64, 110, 120, 130];
        fwd_lift4(&mut v);
        assert!(v[2].abs() <= 1 && v[3].abs() <= 1, "high coeffs {v:?}");
    }

    #[test]
    fn xform_roundtrip_near_exact() {
        // Cascaded lifting along up to 3 axes: round-off stays within a few
        // dozen integer ULPs — negligible against the 2^30 quantization
        // scale and covered by the coder's guard planes.
        for ndim in 1..=3u8 {
            let n = BS.pow(ndim as u32);
            let orig: Vec<i64> =
                (0..n).map(|i| ((i as i64).wrapping_mul(2654435761) % 100_000) - 50_000).collect();
            let mut block = orig.clone();
            fwd_xform(&mut block, ndim);
            inv_xform(&mut block, ndim);
            let max_diff = block.iter().zip(&orig).map(|(a, b)| (a - b).abs()).max().unwrap();
            assert!(max_diff <= 32, "ndim {ndim}: max roundtrip diff {max_diff}");
        }
    }

    #[test]
    fn xform_concentrates_energy_for_smooth_block() {
        let mut block = vec![0i64; 64];
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    block[(z * 4 + y) * 4 + x] = (1000 * (z + y + x)) as i64;
                }
            }
        }
        fwd_xform(&mut block, 3);
        let perm = sequency_order(3);
        let front: i64 = perm[..8].iter().map(|&i| block[i].abs()).sum();
        let back: i64 = perm[32..].iter().map(|&i| block[i].abs()).sum();
        assert!(front > 10 * back.max(1), "front {front} back {back}");
    }

    #[test]
    fn sequency_order_is_permutation() {
        for ndim in 1..=3u8 {
            let perm = sequency_order(ndim);
            let n = BS.pow(ndim as u32);
            assert_eq!(perm.len(), n);
            let mut seen = vec![false; n];
            for &i in &perm {
                assert!(!seen[i]);
                seen[i] = true;
            }
            // DC first, highest-degree corner last.
            assert_eq!(perm[0], 0);
            assert_eq!(perm[n - 1], n - 1);
        }
    }

    #[test]
    fn negabinary_roundtrip() {
        for x in [0i64, 1, -1, 42, -42, i64::MAX / 4, i64::MIN / 4] {
            assert_eq!(uint_to_int(int_to_uint(x)), x);
        }
    }

    #[test]
    fn negabinary_magnitude_ordering() {
        // Small magnitudes must occupy few bit-planes.
        assert!(int_to_uint(0) < 4);
        assert!(int_to_uint(1) < 8);
        assert!(int_to_uint(-1) < 8);
        assert!(int_to_uint(2) < 16);
    }
}
