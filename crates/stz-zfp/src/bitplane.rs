//! ZFP's embedded bit-plane coder (verbatim + unary group testing).
//!
//! Coefficients (negabinary, sequency-ordered) are coded one bit-plane at a
//! time from the most significant plane down to a tolerance-derived cutoff
//! `kmin`. Within a plane, the bits of the first `n` coefficients (those
//! already significant in earlier planes) are written verbatim; the
//! remainder is run-length coded: a group bit announces whether any
//! remaining coefficient has a 1, followed by a unary walk to it. The bit
//! of the very last coefficient is implicit when the walk reaches it.
//!
//! This is a faithful port of `encode_ints`/`decode_ints` from the
//! reference ZFP, minus the fixed-rate bit budget (we only need the
//! fixed-accuracy mode the paper evaluates).

use stz_codec::{BitReader, BitWriter, Result};

/// Encode all planes `kmin..intprec` (top-down) of `coeffs`.
/// `coeffs.len()` must be ≤ 64.
pub fn encode_planes(coeffs: &[u64], intprec: u32, kmin: u32, w: &mut BitWriter) {
    let size = coeffs.len();
    debug_assert!(size <= 64);
    debug_assert!(kmin <= intprec && intprec <= 64);
    let mut n = 0usize;
    for k in (kmin..intprec).rev() {
        // Extract plane k into a mask: bit i = bit k of coefficient i.
        let mut x: u64 = 0;
        for (i, &c) in coeffs.iter().enumerate() {
            x |= ((c >> k) & 1) << i;
        }
        // Verbatim bits of already-significant coefficients.
        for i in 0..n {
            w.put_bit((x >> i) & 1 == 1);
        }
        x = if n >= 64 { 0 } else { x >> n };
        // Unary run-length walk over the rest.
        let mut nn = n;
        while nn < size {
            let group = x != 0;
            w.put_bit(group);
            if !group {
                break;
            }
            while nn < size - 1 {
                let bit = x & 1;
                w.put_bit(bit == 1);
                if bit == 1 {
                    break;
                }
                x >>= 1;
                nn += 1;
            }
            // Consume the found (or implicit last) 1.
            x >>= 1;
            nn += 1;
        }
        n = nn;
    }
}

/// Decode planes `kmin..intprec` into `coeffs` (must be zero-initialized,
/// same length as at encode time).
pub fn decode_planes(
    coeffs: &mut [u64],
    intprec: u32,
    kmin: u32,
    r: &mut BitReader<'_>,
) -> Result<()> {
    let size = coeffs.len();
    debug_assert!(size <= 64);
    let mut n = 0usize;
    for k in (kmin..intprec).rev() {
        let mut x: u64 = 0;
        for i in 0..n {
            if r.get_bit()? {
                x |= 1 << i;
            }
        }
        let mut nn = n;
        while nn < size {
            if !r.get_bit()? {
                break;
            }
            while nn < size - 1 {
                if r.get_bit()? {
                    break;
                }
                nn += 1;
            }
            x |= 1 << nn;
            nn += 1;
        }
        n = nn;
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c |= ((x >> i) & 1) << k;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(coeffs: &[u64], intprec: u32, kmin: u32) -> Vec<u64> {
        let mut w = BitWriter::new();
        encode_planes(coeffs, intprec, kmin, &mut w);
        let bytes = w.finish();
        let mut out = vec![0u64; coeffs.len()];
        let mut r = BitReader::new(&bytes);
        decode_planes(&mut out, intprec, kmin, &mut r).unwrap();
        out
    }

    #[test]
    fn lossless_when_kmin_zero() {
        let coeffs: Vec<u64> = vec![0, 1, 5, 1000, 0, 0xFFFF, 3, 0, 0, 42];
        assert_eq!(roundtrip(&coeffs, 20, 0), coeffs);
    }

    #[test]
    fn all_zero_block_is_cheap() {
        let coeffs = vec![0u64; 64];
        let mut w = BitWriter::new();
        encode_planes(&coeffs, 38, 0, &mut w);
        // One group bit per plane.
        assert_eq!(w.bit_len(), 38);
        assert_eq!(roundtrip(&coeffs, 38, 0), coeffs);
    }

    #[test]
    fn truncation_drops_low_planes_only() {
        let coeffs: Vec<u64> = vec![0b1011_0110, 0b100, 0b1, 0];
        let kmin = 3;
        let out = roundtrip(&coeffs, 16, kmin);
        for (o, c) in out.iter().zip(&coeffs) {
            assert_eq!(*o, c & !((1u64 << kmin) - 1), "plane truncation mask");
        }
    }

    #[test]
    fn full_64_coefficients() {
        let coeffs: Vec<u64> =
            (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 30).collect();
        assert_eq!(roundtrip(&coeffs, 36, 0), coeffs);
    }

    #[test]
    fn single_coefficient() {
        let coeffs = vec![0xABCDu64];
        assert_eq!(roundtrip(&coeffs, 16, 0), coeffs);
    }

    #[test]
    fn implicit_last_bit_case() {
        // Only the last coefficient significant: exercises the implicit-1
        // path of the unary walk.
        let mut coeffs = vec![0u64; 16];
        coeffs[15] = 1 << 7;
        assert_eq!(roundtrip(&coeffs, 10, 0), coeffs);
    }

    #[test]
    fn sparse_heads_compress_well() {
        // Energy concentrated in the first coefficients (post-transform
        // shape): the stream should be much smaller than raw.
        let mut coeffs = vec![0u64; 64];
        coeffs[0] = 0xFFFF_FFFF;
        coeffs[1] = 0xFFFF;
        coeffs[2] = 0xFF;
        let mut w = BitWriter::new();
        encode_planes(&coeffs, 38, 0, &mut w);
        assert!(w.bit_len() < 64 * 10, "got {} bits", w.bit_len());
        assert_eq!(roundtrip(&coeffs, 38, 0), coeffs);
    }

    #[test]
    fn truncated_stream_errors() {
        let coeffs: Vec<u64> = vec![123456, 789, 0, 1];
        let mut w = BitWriter::new();
        encode_planes(&coeffs, 30, 0, &mut w);
        let bytes = w.finish();
        let cut = &bytes[..bytes.len() / 2];
        let mut out = vec![0u64; 4];
        let mut r = BitReader::new(cut);
        // Either errors or terminates; must not panic. (Zero-padding can
        // let short prefixes decode as all-insignificant planes.)
        let _ = decode_planes(&mut out, 30, 0, &mut r);
    }
}
