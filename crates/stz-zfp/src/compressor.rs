//! ZFP-style archive: fixed-accuracy compression with per-block random
//! access.

use crate::bitplane::{decode_planes, encode_planes};
use crate::block::{block_origin, blocks_in_region, gather_block, num_blocks, scatter_block};
use crate::transform::{fwd_xform, int_to_uint, inv_xform, sequency_order, uint_to_int, BS};
use stz_codec::{
    check_decode_alloc, BitReader, BitWriter, ByteReader, ByteWriter, CodecError, Result,
};
use stz_field::{Dims, Field, Region, Scalar};

/// Magic bytes of a ZFP-style archive.
pub const MAGIC: [u8; 4] = *b"ZFPR";
/// Format version.
pub const VERSION: u8 = 1;

/// Extra low bit-planes kept beyond the tolerance cutoff, absorbing the
/// worst-case range expansion of the inverse lifting transform and its
/// round-off (the zfp lifting pair is not bit-exact).
const GUARD_PLANES: i32 = 5;

/// Fixed-accuracy configuration.
#[derive(Debug, Clone, Copy)]
pub struct ZfpConfig {
    /// Absolute error tolerance.
    pub tolerance: f64,
}

impl ZfpConfig {
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance > 0.0 && tolerance.is_finite());
        ZfpConfig { tolerance }
    }
}

/// Quantization fraction bits and plane count per scalar type.
fn precision<T: Scalar>() -> (i32, u32) {
    match T::BYTES {
        4 => (30, 38),
        _ => (52, 60),
    }
}

/// Compress a field; returns the self-contained archive.
pub fn compress<T: Scalar>(field: &Field<T>, config: &ZfpConfig) -> Vec<u8> {
    let dims = field.dims();
    let ndim = dims.ndim();
    let (pbits, intprec) = precision::<T>();
    let perm = sequency_order(ndim);
    let bsize = BS.pow(ndim as u32);
    let nb = num_blocks(dims);

    let mut bw = BitWriter::with_capacity(dims.len());
    let mut offsets: Vec<u64> = Vec::with_capacity(nb);
    let mut fblock = vec![0.0f64; bsize];
    let mut iblock = vec![0i64; bsize];
    let mut coeffs = vec![0u64; bsize];

    for b in 0..nb {
        offsets.push(bw.bit_len());
        gather_block(field, b, &mut fblock);
        encode_one_block::<T>(
            &fblock,
            &mut iblock,
            &mut coeffs,
            &perm,
            pbits,
            intprec,
            config.tolerance,
            ndim,
            &mut bw,
        );
    }
    let payload = bw.finish();

    let mut w = ByteWriter::with_capacity(payload.len() + 16 + 2 * nb);
    w.put_raw(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(T::TYPE_TAG);
    w.put_u8(ndim);
    let [nz, ny, nx] = dims.as_array();
    w.put_uvarint(nz as u64);
    w.put_uvarint(ny as u64);
    w.put_uvarint(nx as u64);
    w.put_f64(config.tolerance);
    // Per-block bit offsets (delta-coded): the random-access index.
    w.put_uvarint(nb as u64);
    let mut prev = 0u64;
    for &o in &offsets {
        w.put_uvarint(o - prev);
        prev = o;
    }
    w.put_block(&payload);
    w.finish()
}

#[allow(clippy::too_many_arguments)]
fn encode_one_block<T: Scalar>(
    fblock: &[f64],
    iblock: &mut [i64],
    coeffs: &mut [u64],
    perm: &[usize],
    pbits: i32,
    intprec: u32,
    tolerance: f64,
    ndim: u8,
    bw: &mut BitWriter,
) {
    // Non-finite values cannot survive block-floating-point: store raw.
    if fblock.iter().any(|v| !v.is_finite()) {
        bw.put_bit(true); // nonzero
        bw.put_bit(true); // raw
        for &v in fblock {
            let bits = T::from_f64(v);
            let mut raw = Vec::with_capacity(T::BYTES);
            bits.write_exact(&mut raw);
            for &byte in &raw {
                bw.put(byte as u64, 8);
            }
        }
        return;
    }
    let max_abs = fblock.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        bw.put_bit(false); // zero block
        return;
    }
    bw.put_bit(true);
    bw.put_bit(false); // not raw

    let emax = max_abs.log2().floor() as i32;
    bw.put(biased_emax(emax), 16);
    let scale = ((pbits - 1 - emax) as f64).exp2();
    for (i, &v) in fblock.iter().enumerate() {
        iblock[i] = (v * scale).round() as i64;
    }
    fwd_xform(iblock, ndim);
    for (rank, &idx) in perm.iter().enumerate() {
        coeffs[rank] = int_to_uint(iblock[idx]);
    }
    let kmin = kmin_for(tolerance, scale, intprec);
    encode_planes(coeffs, intprec, kmin, bw);
}

fn biased_emax(emax: i32) -> u64 {
    (emax + 16384) as u64
}

fn unbias_emax(bits: u64) -> i32 {
    bits as i32 - 16384
}

/// Plane cutoff: discard planes whose contribution is safely below the
/// tolerance, keeping [`GUARD_PLANES`] extra to cover transform gain.
fn kmin_for(tolerance: f64, scale: f64, intprec: u32) -> u32 {
    let tol_scaled = tolerance * scale;
    if tol_scaled <= 1.0 {
        return 0;
    }
    let k = tol_scaled.log2().floor() as i32 - GUARD_PLANES;
    k.clamp(0, intprec as i32) as u32
}

#[allow(clippy::too_many_arguments)]
fn decode_one_block<T: Scalar>(
    fblock: &mut [f64],
    iblock: &mut [i64],
    coeffs: &mut [u64],
    perm: &[usize],
    pbits: i32,
    intprec: u32,
    tolerance: f64,
    ndim: u8,
    br: &mut BitReader<'_>,
) -> Result<()> {
    if !br.get_bit()? {
        fblock.fill(0.0);
        return Ok(());
    }
    if br.get_bit()? {
        // Raw block.
        let mut raw = vec![0u8; T::BYTES];
        for v in fblock.iter_mut() {
            for byte in raw.iter_mut() {
                *byte = br.get(8)? as u8;
            }
            *v = T::read_exact(&raw).to_f64();
        }
        return Ok(());
    }
    let emax = unbias_emax(br.get(16)?);
    if !(-16000..=16000).contains(&emax) {
        return Err(CodecError::corrupt(format!("invalid block exponent {emax}")));
    }
    let scale = ((pbits - 1 - emax) as f64).exp2();
    let kmin = kmin_for(tolerance, scale, intprec);
    coeffs.fill(0);
    decode_planes(coeffs, intprec, kmin, br)?;
    for (rank, &idx) in perm.iter().enumerate() {
        iblock[idx] = uint_to_int(coeffs[rank]);
    }
    inv_xform(iblock, ndim);
    for (i, v) in fblock.iter_mut().enumerate() {
        *v = iblock[i] as f64 / scale;
    }
    Ok(())
}

struct ParsedArchive<'a> {
    dims: Dims,
    tolerance: f64,
    offsets: Vec<u64>,
    payload: &'a [u8],
}

fn parse_archive<T: Scalar>(bytes: &[u8]) -> Result<ParsedArchive<'_>> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_raw(4)?;
    if magic != MAGIC {
        return Err(CodecError::corrupt("bad ZFP magic"));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(CodecError::unsupported(format!("ZFP format version {version}")));
    }
    let type_tag = r.get_u8()?;
    if type_tag != T::TYPE_TAG {
        return Err(CodecError::corrupt("ZFP element type mismatch"));
    }
    let ndim = r.get_u8()?;
    if !(1..=3).contains(&ndim) {
        return Err(CodecError::corrupt("invalid ndim"));
    }
    let nz = r.get_uvarint()? as usize;
    let ny = r.get_uvarint()? as usize;
    let nx = r.get_uvarint()? as usize;
    if nz == 0 || ny == 0 || nx == 0 || nz.saturating_mul(ny).saturating_mul(nx) > (1 << 40) {
        return Err(CodecError::corrupt("invalid dims"));
    }
    if (ndim < 3 && nz != 1) || (ndim < 2 && ny != 1) {
        return Err(CodecError::corrupt("dims inconsistent with ndim"));
    }
    let dims = Dims::from_parts(ndim, nz, ny, nx);
    // Reject before `Field::zeros(dims)` and the offset table reserve.
    check_decode_alloc(dims.len() as u64, 8, "zfp field")?;
    let tolerance = r.get_f64()?;
    if !(tolerance > 0.0 && tolerance.is_finite()) {
        return Err(CodecError::corrupt("invalid tolerance"));
    }
    let nb = r.get_uvarint()? as usize;
    if nb != num_blocks(dims) {
        return Err(CodecError::corrupt("block count mismatch"));
    }
    // Each offset is at least one varint byte, so a table larger than the
    // remaining input cannot be real — check before reserving it.
    if nb > r.remaining() {
        return Err(CodecError::UnexpectedEof { context: "zfp block offsets" });
    }
    let mut offsets = Vec::with_capacity(nb);
    let mut acc = 0u64;
    for _ in 0..nb {
        acc = acc
            .checked_add(r.get_uvarint()?)
            .ok_or_else(|| CodecError::corrupt("offset overflow"))?;
        offsets.push(acc);
    }
    let payload = r.get_block()?;
    Ok(ParsedArchive { dims, tolerance, offsets, payload })
}

/// Decompress the full field.
pub fn decompress<T: Scalar>(bytes: &[u8]) -> Result<Field<T>> {
    let a = parse_archive::<T>(bytes)?;
    let mut out = Field::zeros(a.dims);
    decode_blocks(&a, &(0..a.offsets.len()).collect::<Vec<_>>(), &mut out)?;
    Ok(out)
}

/// Random-access decompression: decode only the blocks intersecting
/// `region` and return the region's values as a dense field.
pub fn decompress_region<T: Scalar>(bytes: &[u8], region: &Region) -> Result<Field<T>> {
    let a = parse_archive::<T>(bytes)?;
    if !region.fits_in(a.dims) {
        return Err(CodecError::corrupt("region outside grid"));
    }
    let wanted = blocks_in_region(a.dims, region);
    let mut full = Field::zeros(a.dims);
    decode_blocks(&a, &wanted, &mut full)?;
    Ok(full.extract_region(region))
}

fn decode_blocks<T: Scalar>(
    a: &ParsedArchive<'_>,
    blocks: &[usize],
    out: &mut Field<T>,
) -> Result<()> {
    let ndim = a.dims.ndim();
    let (pbits, intprec) = precision::<T>();
    let perm = sequency_order(ndim);
    let bsize = BS.pow(ndim as u32);
    let mut fblock = vec![0.0f64; bsize];
    let mut iblock = vec![0i64; bsize];
    let mut coeffs = vec![0u64; bsize];
    for &b in blocks {
        let bit_off = a.offsets[b];
        let byte_off = (bit_off / 8) as usize;
        if byte_off >= a.payload.len() && bsize > 0 {
            return Err(CodecError::UnexpectedEof { context: "zfp block payload" });
        }
        let mut br = BitReader::new(&a.payload[byte_off..]);
        let skip = (bit_off % 8) as u32;
        if skip > 0 {
            br.get(skip)?;
        }
        decode_one_block::<T>(
            &mut fblock,
            &mut iblock,
            &mut coeffs,
            &perm,
            pbits,
            intprec,
            a.tolerance,
            ndim,
            &mut br,
        )?;
        let _ = block_origin(a.dims, b);
        scatter_block(out, b, &fblock);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: Dims) -> Field<f32> {
        Field::from_fn(dims, |z, y, x| {
            ((z as f32) * 0.3).sin() + ((y as f32) * 0.2).cos() * ((x as f32) * 0.25).sin() + 2.0
        })
    }

    fn max_err(a: &Field<f32>, b: &Field<f32>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| ((x as f64) - (y as f64)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn roundtrip_within_tolerance() {
        let f = smooth(Dims::d3(17, 19, 23));
        for tol in [1e-1, 1e-2, 1e-3, 1e-5] {
            let bytes = compress(&f, &ZfpConfig::new(tol));
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert_eq!(back.dims(), f.dims());
            let err = max_err(&f, &back);
            assert!(err <= tol, "tol {tol}: err {err}");
        }
    }

    #[test]
    fn compresses_smooth_data() {
        let f = smooth(Dims::d3(32, 32, 32));
        let bytes = compress(&f, &ZfpConfig::new(1e-3));
        let cr = f.nbytes() as f64 / bytes.len() as f64;
        assert!(cr > 3.0, "CR {cr}");
    }

    #[test]
    fn roundtrip_f64() {
        let f = Field::from_fn(Dims::d3(9, 9, 9), |z, y, x| ((z + y + x) as f64 * 0.1).sin() * 1e8);
        let tol = 1.0;
        let bytes = compress(&f, &ZfpConfig::new(tol));
        let back: Field<f64> = decompress(&bytes).unwrap();
        let err = f
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err <= tol, "err {err}");
    }

    #[test]
    fn roundtrip_2d_1d() {
        for dims in [Dims::d2(13, 21), Dims::d1(50), Dims::d1(3)] {
            let f = smooth(dims);
            let bytes = compress(&f, &ZfpConfig::new(1e-3));
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert!(max_err(&f, &back) <= 1e-3, "dims {dims}");
        }
    }

    #[test]
    fn zero_field_is_tiny() {
        let f = Field::<f32>::zeros(Dims::d3(16, 16, 16));
        let bytes = compress(&f, &ZfpConfig::new(1e-3));
        assert!(bytes.len() < 150, "zero field took {} bytes", bytes.len());
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn nan_blocks_roundtrip_raw() {
        let mut f = smooth(Dims::d3(8, 8, 8));
        f.set(1, 2, 3, f32::NAN);
        f.set(1, 2, 2, f32::INFINITY);
        let bytes = compress(&f, &ZfpConfig::new(1e-3));
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert!(back.get(1, 2, 3).is_nan());
        assert_eq!(back.get(1, 2, 2), f32::INFINITY);
        // The rest of that block is bit-exact (raw fallback).
        assert_eq!(back.get(1, 2, 1), f.get(1, 2, 1));
    }

    #[test]
    fn region_decode_matches_full() {
        let f = smooth(Dims::d3(20, 20, 20));
        let bytes = compress(&f, &ZfpConfig::new(1e-4));
        let full: Field<f32> = decompress(&bytes).unwrap();
        for region in [
            Region::d3(0..4, 0..4, 0..4),
            Region::d3(3..11, 7..13, 2..19),
            Region::slice_z(Dims::d3(20, 20, 20), 10),
        ] {
            let roi: Field<f32> = decompress_region(&bytes, &region).unwrap();
            assert_eq!(roi, full.extract_region(&region), "{region:?}");
        }
    }

    #[test]
    fn block_artifacts_exist_at_high_tolerance() {
        // ZFP's block independence means block-boundary discontinuities at
        // aggressive tolerances — the paper's Fig. 12 artifact story. We just
        // check the error is nonzero but bounded.
        let f = smooth(Dims::d3(16, 16, 16));
        let tol = 0.5;
        let bytes = compress(&f, &ZfpConfig::new(tol));
        let back: Field<f32> = decompress(&bytes).unwrap();
        let err = max_err(&f, &back);
        assert!(err > 0.0 && err <= tol);
    }

    #[test]
    fn truncation_never_panics() {
        let f = smooth(Dims::d3(12, 12, 12));
        let bytes = compress(&f, &ZfpConfig::new(1e-3));
        for cut in (0..bytes.len()).step_by(11) {
            let _ = decompress::<f32>(&bytes[..cut]);
        }
    }

    #[test]
    fn wrong_type_rejected() {
        let f = smooth(Dims::d3(8, 8, 8));
        let bytes = compress(&f, &ZfpConfig::new(1e-3));
        assert!(decompress::<f64>(&bytes).is_err());
    }
}
