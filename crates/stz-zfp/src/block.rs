//! Block partitioning: gather/scatter `4^d` blocks with edge padding.

use crate::transform::BS;
use stz_field::{Dims, Field, Scalar};

/// Number of blocks along each axis.
pub fn block_grid(dims: Dims) -> [usize; 3] {
    [dims.nz().div_ceil(BS), dims.ny().div_ceil(BS), dims.nx().div_ceil(BS)]
}

/// Total number of blocks.
pub fn num_blocks(dims: Dims) -> usize {
    let g = block_grid(dims);
    g[0] * g[1] * g[2]
}

/// Origin (parent coordinates) of block `b` in C-order block indexing.
pub fn block_origin(dims: Dims, b: usize) -> [usize; 3] {
    let g = block_grid(dims);
    let bx = b % g[2];
    let by = (b / g[2]) % g[1];
    let bz = b / (g[2] * g[1]);
    [bz * BS, by * BS, bx * BS]
}

/// Extract block `b` into a dense `4^ndim` buffer (as f64), replicating the
/// last in-range sample along truncated axes (ZFP's padding policy keeps the
/// transform well-conditioned at domain edges).
pub fn gather_block<T: Scalar>(field: &Field<T>, b: usize, out: &mut [f64]) {
    let dims = field.dims();
    let ndim = dims.ndim();
    let [oz, oy, ox] = block_origin(dims, b);
    let ez = if ndim >= 3 { BS } else { 1 };
    let ey = if ndim >= 2 { BS } else { 1 };
    debug_assert_eq!(out.len(), BS.pow(ndim as u32));
    let mut i = 0;
    for z in 0..ez {
        let pz = (oz + z).min(dims.nz() - 1);
        for y in 0..ey {
            let py = (oy + y).min(dims.ny() - 1);
            for x in 0..BS {
                let px = (ox + x).min(dims.nx() - 1);
                out[i] = field.get(pz, py, px).to_f64();
                i += 1;
            }
        }
    }
}

/// Write the in-range portion of a decoded block back into the field.
pub fn scatter_block<T: Scalar>(field: &mut Field<T>, b: usize, block: &[f64]) {
    let dims = field.dims();
    let ndim = dims.ndim();
    let [oz, oy, ox] = block_origin(dims, b);
    let ez = if ndim >= 3 { BS } else { 1 };
    let ey = if ndim >= 2 { BS } else { 1 };
    let mut i = 0;
    for z in 0..ez {
        for y in 0..ey {
            for x in 0..BS {
                let (pz, py, px) = (oz + z, oy + y, ox + x);
                if pz < dims.nz() && py < dims.ny() && px < dims.nx() {
                    field.set(pz, py, px, T::from_f64(block[i]));
                }
                i += 1;
            }
        }
    }
}

/// Blocks (C-order indices) intersecting the half-open region.
pub fn blocks_in_region(dims: Dims, region: &stz_field::Region) -> Vec<usize> {
    let g = block_grid(dims);
    let mut out = Vec::new();
    let (bz0, bz1) = (region.z0 / BS, (region.z1 - 1) / BS);
    let (by0, by1) = (region.y0 / BS, (region.y1 - 1) / BS);
    let (bx0, bx1) = (region.x0 / BS, (region.x1 - 1) / BS);
    for bz in bz0..=bz1.min(g[0] - 1) {
        for by in by0..=by1.min(g[1] - 1) {
            for bx in bx0..=bx1.min(g[2] - 1) {
                out.push((bz * g[1] + by) * g[2] + bx);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Region;

    #[test]
    fn grid_counts() {
        assert_eq!(block_grid(Dims::d3(8, 8, 8)), [2, 2, 2]);
        assert_eq!(block_grid(Dims::d3(9, 4, 5)), [3, 1, 2]);
        assert_eq!(block_grid(Dims::d2(4, 4)), [1, 1, 1]);
        assert_eq!(num_blocks(Dims::d3(9, 4, 5)), 6);
    }

    #[test]
    fn gather_scatter_roundtrip_exact_multiple() {
        let f = Field::from_fn(Dims::d3(8, 8, 8), |z, y, x| (z * 64 + y * 8 + x) as f32);
        let mut out = Field::zeros(f.dims());
        let mut buf = vec![0.0; 64];
        for b in 0..num_blocks(f.dims()) {
            gather_block(&f, b, &mut buf);
            scatter_block(&mut out, b, &buf);
        }
        assert_eq!(f, out);
    }

    #[test]
    fn gather_pads_by_replication() {
        let f = Field::from_fn(Dims::d3(5, 5, 5), |z, y, x| (z * 100 + y * 10 + x) as f32);
        let mut buf = vec![0.0; 64];
        // Block containing the far corner (origin 4,4,4).
        let b = num_blocks(f.dims()) - 1;
        gather_block(&f, b, &mut buf);
        // All entries replicate the corner value 444.
        assert!(buf.iter().all(|&v| v == 444.0));
    }

    #[test]
    fn scatter_ignores_padding() {
        let mut f = Field::<f32>::zeros(Dims::d3(5, 5, 5));
        let buf = vec![7.0; 64];
        let b = num_blocks(f.dims()) - 1;
        scatter_block(&mut f, b, &buf);
        assert_eq!(f.get(4, 4, 4), 7.0);
        assert_eq!(f.get(3, 4, 4), 0.0); // belongs to another block
    }

    #[test]
    fn region_block_selection() {
        let dims = Dims::d3(16, 16, 16); // 4x4x4 blocks
        let blocks = blocks_in_region(dims, &Region::d3(0..4, 0..4, 0..4));
        assert_eq!(blocks, vec![0]);
        let blocks = blocks_in_region(dims, &Region::d3(3..5, 0..4, 0..4));
        assert_eq!(blocks.len(), 2);
        let all = blocks_in_region(dims, &Region::full(dims));
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn blocks_2d_1d() {
        let f = Field::from_fn(Dims::d2(6, 7), |_, y, x| (y * 7 + x) as f64);
        let mut out = Field::zeros(f.dims());
        let mut buf = vec![0.0; 16];
        for b in 0..num_blocks(f.dims()) {
            gather_block(&f, b, &mut buf);
            scatter_block(&mut out, b, &buf);
        }
        assert_eq!(f, out);
        let f1 = Field::from_fn(Dims::d1(10), |_, _, x| x as f64);
        let mut out1 = Field::zeros(f1.dims());
        let mut buf1 = vec![0.0; 4];
        for b in 0..num_blocks(f1.dims()) {
            gather_block(&f1, b, &mut buf1);
            scatter_block(&mut out1, b, &buf1);
        }
        assert_eq!(f1, out1);
    }
}
