//! Strided interleaved sub-grids: the geometry of STZ's hierarchical partition.

use crate::{Dims, Field, Scalar};

/// A sub-lattice of a parent grid: the points `offset + k * stride` along
/// each axis.
///
/// A `SubLattice` is a pure index mapping; it owns no data. [`gather`] copies
/// its points out of a parent field into a dense field, [`scatter`] writes a
/// dense field back into the parent positions — the two halves of the
/// partition/reassembly round-trip.
///
/// [`gather`]: SubLattice::gather
/// [`scatter`]: SubLattice::scatter
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubLattice {
    parent: Dims,
    offset: [usize; 3],
    stride: usize,
    dims: Dims,
}

impl SubLattice {
    /// Create the sub-lattice of `parent` at `offset` with `stride`.
    /// Returns `None` if the sub-lattice contains no points.
    pub fn new(parent: Dims, offset: [usize; 3], stride: usize) -> Option<Self> {
        let dims = parent.strided(offset, stride)?;
        Some(SubLattice { parent, offset, stride, dims })
    }

    /// Dense extents of this sub-lattice.
    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    #[inline]
    pub fn parent_dims(&self) -> Dims {
        self.parent
    }

    #[inline]
    pub fn offset(&self) -> [usize; 3] {
        self.offset
    }

    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Parent coordinates of sub-lattice point `(z, y, x)`.
    #[inline(always)]
    pub fn to_parent(&self, z: usize, y: usize, x: usize) -> (usize, usize, usize) {
        (
            self.offset[0] + z * self.stride,
            self.offset[1] + y * self.stride,
            self.offset[2] + x * self.stride,
        )
    }

    /// Copy this sub-lattice's points out of `parent` into a dense field.
    ///
    /// Stride-1 rows degrade to `memcpy`; stride-2 rows (the hot case — the
    /// hierarchy refines by powers of two) run through the dispatched SIMD
    /// gather. Both move bits untouched, so the result is identical to the
    /// scalar walk on every lane.
    pub fn gather<T: Scalar>(&self, parent: &Field<T>) -> Field<T> {
        assert_eq!(parent.dims(), self.parent);
        let src = parent.as_slice();
        let [oz, oy, ox] = self.offset;
        let s = self.stride;
        let (pny, pnx) = (self.parent.ny(), self.parent.nx());
        let nx = self.dims.nx();
        let lane = stz_simd::active_lane();
        let mut out = vec![T::default(); self.len()];
        let mut i = 0;
        for z in 0..self.dims.nz() {
            let pz = oz + z * s;
            for y in 0..self.dims.ny() {
                let py = oy + y * s;
                let row = (pz * pny + py) * pnx + ox;
                let dst_row = &mut out[i..i + nx];
                match s {
                    1 => dst_row.copy_from_slice(&src[row..row + nx]),
                    2 => T::simd_gather2(lane, src, row, dst_row),
                    _ => {
                        let mut idx = row;
                        for o in dst_row {
                            *o = src[idx];
                            idx += s;
                        }
                    }
                }
                i += nx;
            }
        }
        Field::from_vec(self.dims, out)
    }

    /// Write a dense field of this sub-lattice's shape back into the parent.
    ///
    /// The stride-1 / stride-2 fast paths mirror [`gather`](Self::gather).
    pub fn scatter<T: Scalar>(&self, block: &Field<T>, parent: &mut Field<T>) {
        assert_eq!(parent.dims(), self.parent);
        assert_eq!(block.dims().as_array(), self.dims.as_array());
        let src = block.as_slice();
        let dst = parent.as_mut_slice();
        let [oz, oy, ox] = self.offset;
        let s = self.stride;
        let (pny, pnx) = (self.parent.ny(), self.parent.nx());
        let nx = self.dims.nx();
        let lane = stz_simd::active_lane();
        let mut i = 0;
        for z in 0..self.dims.nz() {
            let pz = oz + z * s;
            for y in 0..self.dims.ny() {
                let py = oy + y * s;
                let row = (pz * pny + py) * pnx + ox;
                let src_row = &src[i..i + nx];
                match s {
                    1 => dst[row..row + nx].copy_from_slice(src_row),
                    2 => T::simd_scatter2(lane, src_row, dst, row),
                    _ => {
                        let mut idx = row;
                        for &v in src_row {
                            dst[idx] = v;
                            idx += s;
                        }
                    }
                }
                i += nx;
            }
        }
    }

    /// Visit every point as `(sub_index, parent_z, parent_y, parent_x)`.
    pub fn for_each_point(&self, mut f: impl FnMut(usize, usize, usize, usize)) {
        let mut i = 0;
        let [oz, oy, ox] = self.offset;
        let s = self.stride;
        for z in 0..self.dims.nz() {
            for y in 0..self.dims.ny() {
                for x in 0..self.dims.nx() {
                    f(i, oz + z * s, oy + y * s, ox + x * s);
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: Dims) -> Field<f64> {
        Field::from_fn(dims, |z, y, x| (z * 10000 + y * 100 + x) as f64)
    }

    #[test]
    fn gather_picks_strided_points() {
        let parent = ramp(Dims::d3(5, 5, 5));
        let sl = SubLattice::new(parent.dims(), [1, 0, 1], 2).unwrap();
        assert_eq!(sl.dims().as_array(), [2, 3, 2]);
        let g = sl.gather(&parent);
        assert_eq!(g.get(0, 0, 0), parent.get(1, 0, 1));
        assert_eq!(g.get(1, 2, 1), parent.get(3, 4, 3));
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let parent = ramp(Dims::d3(7, 6, 5));
        let mut rebuilt = Field::zeros(parent.dims());
        for oz in 0..2 {
            for oy in 0..2 {
                for ox in 0..2 {
                    if let Some(sl) = SubLattice::new(parent.dims(), [oz, oy, ox], 2) {
                        let block = sl.gather(&parent);
                        sl.scatter(&block, &mut rebuilt);
                    }
                }
            }
        }
        assert_eq!(parent, rebuilt);
    }

    #[test]
    fn to_parent_mapping() {
        let sl = SubLattice::new(Dims::d3(8, 8, 8), [0, 1, 0], 4).unwrap();
        assert_eq!(sl.to_parent(1, 1, 0), (4, 5, 0));
    }

    #[test]
    fn empty_sublattice_is_none() {
        assert!(SubLattice::new(Dims::d3(2, 2, 2), [2, 0, 0], 2).is_none());
        assert!(SubLattice::new(Dims::d2(3, 3), [1, 0, 0], 2).is_none());
    }

    #[test]
    fn for_each_point_covers_len() {
        let sl = SubLattice::new(Dims::d3(5, 4, 3), [1, 1, 1], 2).unwrap();
        let mut count = 0;
        sl.for_each_point(|i, z, y, x| {
            assert_eq!(i, count);
            assert!(z < 5 && y < 4 && x < 3);
            assert_eq!(z % 2, 1);
            count += 1;
        });
        assert_eq!(count, sl.len());
    }
}
