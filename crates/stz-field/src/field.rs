//! Owned dense grids of scalars.

use crate::{Dims, Region, Scalar};

/// An owned dense grid of scalar values in C order (`x` fastest).
///
/// `Field` is the unit of compression and decompression throughout the
/// workspace: compressors take `&Field<T>` and decompressors return
/// `Field<T>`.
#[derive(Clone, Debug, PartialEq)]
pub struct Field<T: Scalar> {
    dims: Dims,
    data: Vec<T>,
}

impl<T: Scalar> Field<T> {
    /// Wrap existing data; `data.len()` must equal `dims.len()`.
    pub fn from_vec(dims: Dims, data: Vec<T>) -> Self {
        assert_eq!(data.len(), dims.len(), "data length {} does not match dims {dims}", data.len());
        Field { dims, data }
    }

    /// A zero-filled field.
    pub fn zeros(dims: Dims) -> Self {
        Field { dims, data: vec![T::default(); dims.len()] }
    }

    /// Build a field by evaluating `f(z, y, x)` at every grid point.
    pub fn from_fn(dims: Dims, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        for z in 0..dims.nz() {
            for y in 0..dims.ny() {
                for x in 0..dims.nx() {
                    data.push(f(z, y, x));
                }
            }
        }
        Field { dims, data }
    }

    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the field, returning its backing storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    #[inline(always)]
    pub fn get(&self, z: usize, y: usize, x: usize) -> T {
        self.data[self.dims.index(z, y, x)]
    }

    #[inline(always)]
    pub fn set(&mut self, z: usize, y: usize, x: usize, v: T) {
        let idx = self.dims.index(z, y, x);
        self.data[idx] = v;
    }

    /// Number of bytes of the uncompressed representation; the numerator of
    /// every compression-ratio computation in the benchmark harness.
    pub fn nbytes(&self) -> usize {
        self.len() * T::BYTES
    }

    /// Minimum and maximum value. NaNs are ignored; returns `(0, 0)` if the
    /// field is all-NaN.
    pub fn value_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            let v = v.to_f64();
            if v.is_nan() {
                continue;
            }
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Extract the sub-field covered by `region` (which must lie inside the
    /// grid) as a new dense field.
    pub fn extract_region(&self, region: &Region) -> Field<T> {
        assert!(region.fits_in(self.dims), "region {region:?} outside {:?}", self.dims);
        let rd = region.dims(self.dims.ndim());
        let mut out = Vec::with_capacity(rd.len());
        for z in region.z0..region.z1 {
            for y in region.y0..region.y1 {
                let base = self.dims.index(z, y, region.x0);
                out.extend_from_slice(&self.data[base..base + (region.x1 - region.x0)]);
            }
        }
        Field::from_vec(rd, out)
    }

    /// Stride-`s` downsample starting at the origin — the "coarse
    /// representation" used for progressive previews (paper Fig. 1).
    pub fn downsample(&self, stride: usize) -> Field<T> {
        let cd = self.dims.coarsened(stride);
        let mut out = Vec::with_capacity(cd.len());
        for z in (0..self.dims.nz()).step_by(stride) {
            for y in (0..self.dims.ny()).step_by(stride) {
                for x in (0..self.dims.nx()).step_by(stride) {
                    out.push(self.get(z, y, x));
                }
            }
        }
        Field::from_vec(cd, out)
    }

    /// Extract the 2-D slice at `z = z_index` from a 3-D field.
    pub fn slice_z(&self, z_index: usize) -> Field<T> {
        assert!(self.dims.ndim() == 3, "slice_z requires a 3-D field");
        assert!(z_index < self.dims.nz());
        let n = self.dims.ny() * self.dims.nx();
        let base = self.dims.index(z_index, 0, 0);
        Field::from_vec(
            Dims::d2(self.dims.ny(), self.dims.nx()),
            self.data[base..base + n].to_vec(),
        )
    }

    /// Map every element through `f`, producing a new field.
    pub fn map(&self, mut f: impl FnMut(T) -> T) -> Field<T> {
        Field { dims: self.dims, data: self.data.iter().map(|&v| f(v)).collect() }
    }
}

impl Field<f32> {
    /// Convert to f64 (exact).
    pub fn widen(&self) -> Field<f64> {
        Field { dims: self.dims, data: self.data.iter().map(|&v| v as f64).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: Dims) -> Field<f32> {
        Field::from_fn(dims, |z, y, x| (z * 100 + y * 10 + x) as f32)
    }

    #[test]
    fn from_fn_matches_get() {
        let f = ramp(Dims::d3(3, 4, 5));
        assert_eq!(f.get(0, 0, 0), 0.0);
        assert_eq!(f.get(2, 3, 4), 234.0);
        assert_eq!(f.len(), 60);
        assert_eq!(f.nbytes(), 240);
    }

    #[test]
    fn value_range_ignores_nan() {
        let mut f = ramp(Dims::d2(2, 3));
        f.set(0, 0, 0, f32::NAN);
        let (lo, hi) = f.value_range();
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 12.0);
    }

    #[test]
    fn extract_region_matches_get() {
        let f = ramp(Dims::d3(4, 4, 4));
        let r = Region::d3(1..3, 0..2, 2..4);
        let sub = f.extract_region(&r);
        assert_eq!(sub.dims().as_array(), [2, 2, 2]);
        for z in 0..2 {
            for y in 0..2 {
                for x in 0..2 {
                    assert_eq!(sub.get(z, y, x), f.get(z + 1, y, x + 2));
                }
            }
        }
    }

    #[test]
    fn downsample_picks_even_points() {
        let f = ramp(Dims::d3(5, 5, 5));
        let c = f.downsample(2);
        assert_eq!(c.dims().as_array(), [3, 3, 3]);
        assert_eq!(c.get(1, 1, 1), f.get(2, 2, 2));
        assert_eq!(c.get(2, 2, 2), f.get(4, 4, 4));
    }

    #[test]
    fn slice_z_extracts_plane() {
        let f = ramp(Dims::d3(3, 2, 2));
        let s = f.slice_z(1);
        assert_eq!(s.dims().as_array(), [1, 2, 2]);
        assert_eq!(s.get(0, 1, 1), f.get(1, 1, 1));
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = Field::from_vec(Dims::d2(2, 2), vec![0.0f32; 3]);
    }
}
