//! Floating-point element abstraction.

use std::fmt::{Debug, Display};
use stz_simd::Lane;

/// Scalar element type of a [`crate::Field`]: `f32` or `f64`.
///
/// Compressors are generic over `Scalar`. The trait deliberately exposes only
/// what error-bounded compression needs: lossless widening to `f64` for
/// prediction arithmetic, and bit-exact byte (de)serialization for the
/// unpredictable-value escape path.
pub trait Scalar: Copy + PartialOrd + Debug + Display + Default + Send + Sync + 'static {
    /// Number of bytes in the exact binary representation.
    const BYTES: usize;
    /// Tag distinguishing element types in archive headers (0 = f32, 1 = f64).
    const TYPE_TAG: u8;

    fn to_f64(self) -> f64;
    fn from_f64(v: f64) -> Self;
    /// Serialize the exact bit pattern (little-endian).
    fn write_exact(self, out: &mut Vec<u8>);
    /// Deserialize the exact bit pattern; `bytes.len()` must be `>= BYTES`.
    fn read_exact(bytes: &[u8]) -> Self;

    #[inline]
    fn abs64(self) -> f64 {
        self.to_f64().abs()
    }

    /// Stride-2 gather `out[i] = src[start + 2*i]` on the given SIMD lane.
    /// Byte-identical to the scalar loop (it only moves values).
    fn simd_gather2(lane: Lane, src: &[Self], start: usize, out: &mut [Self]);
    /// Stride-2 scatter `dst[start + 2*i] = src[i]` on the given SIMD lane.
    fn simd_scatter2(lane: Lane, src: &[Self], dst: &mut [Self], start: usize);
    /// Batch `out[i] = src[i].to_f64()` (exact widening) on the given lane.
    fn simd_widen(lane: Lane, src: &[Self], out: &mut [f64]);
    /// Batch `out[i] = Self::from_f64(src[i])` (IEEE narrowing for `f32`,
    /// identity for `f64`) on the given lane.
    fn simd_from_f64(lane: Lane, src: &[f64], out: &mut [Self]);
}

impl Scalar for f32 {
    const BYTES: usize = 4;
    const TYPE_TAG: u8 = 0;

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn write_exact(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_exact(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes[..4].try_into().expect("need 4 bytes"))
    }

    #[inline]
    fn simd_gather2(lane: Lane, src: &[Self], start: usize, out: &mut [Self]) {
        stz_simd::gather2_f32(lane, src, start, out);
    }

    #[inline]
    fn simd_scatter2(lane: Lane, src: &[Self], dst: &mut [Self], start: usize) {
        stz_simd::scatter2_f32(lane, src, dst, start);
    }

    #[inline]
    fn simd_widen(lane: Lane, src: &[Self], out: &mut [f64]) {
        stz_simd::widen_run(lane, src, out);
    }

    #[inline]
    fn simd_from_f64(lane: Lane, src: &[f64], out: &mut [Self]) {
        stz_simd::narrow_run(lane, src, out);
    }
}

impl Scalar for f64 {
    const BYTES: usize = 8;
    const TYPE_TAG: u8 = 1;

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn write_exact(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_exact(bytes: &[u8]) -> Self {
        f64::from_le_bytes(bytes[..8].try_into().expect("need 8 bytes"))
    }

    #[inline]
    fn simd_gather2(lane: Lane, src: &[Self], start: usize, out: &mut [Self]) {
        stz_simd::gather2_f64(lane, src, start, out);
    }

    #[inline]
    fn simd_scatter2(lane: Lane, src: &[Self], dst: &mut [Self], start: usize) {
        stz_simd::scatter2_f64(lane, src, dst, start);
    }

    #[inline]
    fn simd_widen(_lane: Lane, src: &[Self], out: &mut [f64]) {
        out.copy_from_slice(src);
    }

    #[inline]
    fn simd_from_f64(_lane: Lane, src: &[f64], out: &mut [Self]) {
        out.copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_exact_roundtrip() {
        let vals = [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::MAX, -123.456, f32::NAN];
        for &v in &vals {
            let mut buf = Vec::new();
            v.write_exact(&mut buf);
            assert_eq!(buf.len(), 4);
            let back = f32::read_exact(&buf);
            assert_eq!(v.to_bits(), back.to_bits(), "bit-exact roundtrip for {v}");
        }
    }

    #[test]
    fn f64_exact_roundtrip() {
        let vals = [0.0f64, -0.0, 1.5e300, f64::MIN_POSITIVE, -9.87654321e-200, f64::NAN];
        for &v in &vals {
            let mut buf = Vec::new();
            v.write_exact(&mut buf);
            assert_eq!(buf.len(), 8);
            let back = f64::read_exact(&buf);
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn widening_is_lossless_for_f32() {
        let v = 0.1f32;
        assert_eq!(f32::from_f64(v.to_f64()).to_bits(), v.to_bits());
    }

    #[test]
    fn type_tags_distinct() {
        assert_ne!(f32::TYPE_TAG, f64::TYPE_TAG);
    }
}
