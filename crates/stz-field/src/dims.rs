//! Grid extents for 1-, 2-, and 3-dimensional fields.

use std::fmt;

/// Extents of a dense grid, ordered `(z, y, x)` with `x` fastest-varying.
///
/// 2-D grids are represented with `nz == 1` and 1-D grids with
/// `nz == ny == 1`; [`Dims::ndim`] reports the logical dimensionality that
/// was requested at construction, which compressors use to select 1-D/2-D/3-D
/// code paths (e.g. 4 vs 8 partition sub-blocks).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims {
    nz: usize,
    ny: usize,
    nx: usize,
    ndim: u8,
}

impl Dims {
    /// A 1-D grid of `nx` points.
    pub fn d1(nx: usize) -> Self {
        assert!(nx > 0, "dims must be non-empty");
        Dims { nz: 1, ny: 1, nx, ndim: 1 }
    }

    /// A 2-D grid of `ny * nx` points.
    pub fn d2(ny: usize, nx: usize) -> Self {
        assert!(ny > 0 && nx > 0, "dims must be non-empty");
        Dims { nz: 1, ny, nx, ndim: 2 }
    }

    /// A 3-D grid of `nz * ny * nx` points.
    pub fn d3(nz: usize, ny: usize, nx: usize) -> Self {
        assert!(nz > 0 && ny > 0 && nx > 0, "dims must be non-empty");
        Dims { nz, ny, nx, ndim: 3 }
    }

    /// Construct from a logical dimensionality and extents array `[nz,ny,nx]`.
    pub fn from_parts(ndim: u8, nz: usize, ny: usize, nx: usize) -> Self {
        match ndim {
            1 => {
                assert!(nz == 1 && ny == 1, "1-D dims must have nz == ny == 1");
                Dims::d1(nx)
            }
            2 => {
                assert!(nz == 1, "2-D dims must have nz == 1");
                Dims::d2(ny, nx)
            }
            3 => Dims::d3(nz, ny, nx),
            _ => panic!("unsupported dimensionality {ndim}"),
        }
    }

    /// Logical dimensionality (1, 2 or 3).
    #[inline]
    pub fn ndim(&self) -> u8 {
        self.ndim
    }

    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nz * self.ny * self.nx
    }

    /// A grid is never empty by construction, but the method is provided for
    /// API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of `(z, y, x)` in C order.
    #[inline(always)]
    pub fn index(&self, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(z < self.nz && y < self.ny && x < self.nx);
        (z * self.ny + y) * self.nx + x
    }

    /// Inverse of [`Dims::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.len());
        let x = idx % self.nx;
        let rest = idx / self.nx;
        let y = rest % self.ny;
        let z = rest / self.ny;
        (z, y, x)
    }

    /// Extents as an array `[nz, ny, nx]`.
    #[inline]
    pub fn as_array(&self) -> [usize; 3] {
        [self.nz, self.ny, self.nx]
    }

    /// Whether `(z, y, x)` lies inside the grid.
    #[inline]
    pub fn contains(&self, z: usize, y: usize, x: usize) -> bool {
        z < self.nz && y < self.ny && x < self.nx
    }

    /// Dims of the sub-lattice obtained by sampling this grid with `stride`
    /// starting at `offset = (oz, oy, ox)` — i.e. `ceil((n - o) / stride)`
    /// per axis. Returns `None` if the sub-lattice would be empty.
    pub fn strided(&self, offset: [usize; 3], stride: usize) -> Option<Dims> {
        assert!(stride > 0);
        let ext = |n: usize, o: usize| {
            if o >= n {
                None
            } else {
                Some((n - o).div_ceil(stride))
            }
        };
        let nz = ext(self.nz, offset[0])?;
        let ny = ext(self.ny, offset[1])?;
        let nx = ext(self.nx, offset[2])?;
        Some(Dims { nz, ny, nx, ndim: self.ndim })
    }

    /// The coarse dims produced by stride-`s` sampling at offset 0 (the
    /// resolution of a progressive preview at that level).
    pub fn coarsened(&self, stride: usize) -> Dims {
        self.strided([0, 0, 0], stride).expect("offset-0 sub-lattice is never empty")
    }
}

impl fmt::Debug for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ndim {
            1 => write!(f, "Dims1({})", self.nx),
            2 => write!(f, "Dims2({}x{})", self.ny, self.nx),
            _ => write!(f, "Dims3({}x{}x{})", self.nz, self.ny, self.nx),
        }
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ndim {
            1 => write!(f, "{}", self.nx),
            2 => write!(f, "{}x{}", self.ny, self.nx),
            _ => write!(f, "{}x{}x{}", self.nz, self.ny, self.nx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_3d() {
        let d = Dims::d3(3, 5, 7);
        for z in 0..3 {
            for y in 0..5 {
                for x in 0..7 {
                    let idx = d.index(z, y, x);
                    assert_eq!(d.coords(idx), (z, y, x));
                }
            }
        }
        assert_eq!(d.len(), 105);
    }

    #[test]
    fn index_is_c_order() {
        let d = Dims::d3(2, 3, 4);
        assert_eq!(d.index(0, 0, 0), 0);
        assert_eq!(d.index(0, 0, 1), 1);
        assert_eq!(d.index(0, 1, 0), 4);
        assert_eq!(d.index(1, 0, 0), 12);
    }

    #[test]
    fn lower_dims_normalize() {
        let d2 = Dims::d2(4, 6);
        assert_eq!(d2.nz(), 1);
        assert_eq!(d2.ndim(), 2);
        assert_eq!(d2.len(), 24);
        let d1 = Dims::d1(9);
        assert_eq!((d1.nz(), d1.ny()), (1, 1));
        assert_eq!(d1.ndim(), 1);
    }

    #[test]
    fn strided_extents() {
        let d = Dims::d3(5, 5, 5);
        // stride-2 at offset 0 -> ceil(5/2) = 3 per axis
        assert_eq!(d.strided([0, 0, 0], 2).unwrap().as_array(), [3, 3, 3]);
        // stride-2 at offset 1 -> ceil(4/2) = 2 per axis
        assert_eq!(d.strided([1, 1, 1], 2).unwrap().as_array(), [2, 2, 2]);
        // offset beyond extent -> empty
        assert!(d.strided([5, 0, 0], 2).is_none());
    }

    #[test]
    fn strided_counts_partition_everything() {
        // All stride-2 sub-lattices together must cover every point exactly once.
        for &(nz, ny, nx) in &[(5usize, 6usize, 7usize), (1, 1, 9), (4, 4, 4), (3, 1, 1)] {
            let d = Dims::d3(nz.max(1), ny.max(1), nx.max(1));
            let mut total = 0;
            for oz in 0..2 {
                for oy in 0..2 {
                    for ox in 0..2 {
                        if let Some(s) = d.strided([oz, oy, ox], 2) {
                            total += s.len();
                        }
                    }
                }
            }
            assert_eq!(total, d.len());
        }
    }

    #[test]
    fn coarsened_matches_offset_zero() {
        let d = Dims::d3(9, 10, 11);
        assert_eq!(d.coarsened(2).as_array(), [5, 5, 6]);
        assert_eq!(d.coarsened(4).as_array(), [3, 3, 3]);
    }

    #[test]
    #[should_panic]
    fn empty_dims_panic() {
        let _ = Dims::d3(0, 1, 1);
    }
}
