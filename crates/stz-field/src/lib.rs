//! N-dimensional scientific field containers and lattice partitioning.
//!
//! This crate is the data-model substrate shared by every compressor in the
//! STZ workspace. It provides:
//!
//! * [`Dims`] — 1/2/3-dimensional grid extents with `(z, y, x)` ordering and
//!   `x` fastest-varying (C order), matching the layout of the scientific
//!   datasets evaluated in the STZ paper.
//! * [`Scalar`] — the floating-point element abstraction (`f32`/`f64`) with
//!   bit-exact (de)serialization used for outlier storage.
//! * [`Field`] — an owned dense grid of scalars.
//! * [`Region`] — half-open axis-aligned boxes for region-of-interest access.
//! * [`SubLattice`] — strided interleaved sub-grids (offset + stride), the
//!   geometric core of STZ's hierarchical partition (§3.1 of the paper).
//! * [`partition`] — stride-2/stride-4 partitioning and exact reassembly.
//!
//! The partition machinery is lossless and purely index-based: partitioning a
//! field into sub-lattices and scattering them back reproduces the original
//! field bit-for-bit, for any (including odd) dimensions.

pub mod dims;
pub mod field;
pub mod partition;
pub mod region;
pub mod scalar;
pub mod sublattice;

pub use dims::Dims;
pub use field::Field;
pub use partition::{partition_stride2, reassemble_stride2, sublattices_stride2};
pub use region::Region;
pub use scalar::Scalar;
pub use sublattice::SubLattice;
