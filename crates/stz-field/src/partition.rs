//! Stride-2 partitioning and exact reassembly (paper §3.1, Fig. 4).
//!
//! A d-dimensional grid is split into `2^d` interleaved sub-lattices by
//! stride-2 sampling at each binary offset. Offsets are enumerated in a
//! canonical order (bit pattern `zyx`), so block 0 is always the
//! offset-`(0,…,0)` "sub-block a" that serves as the coarse level.

use crate::{Dims, Field, Scalar, SubLattice};

/// All non-empty stride-`2` sub-lattices of `dims`, in canonical offset order.
///
/// For a 3-D grid the order is offsets
/// `(0,0,0), (0,0,1), (0,1,0), (0,1,1), (1,0,0), (1,0,1), (1,1,0), (1,1,1)`
/// (bit pattern `zyx`), i.e. sub-blocks `a, b, c, d(f?), …` of the paper's
/// Fig. 7 with `a` first. For 2-D grids only the 4 offsets with `oz = 0`
/// appear; for 1-D, 2 offsets.
pub fn sublattices_stride2(dims: Dims) -> Vec<SubLattice> {
    let ndim = dims.ndim();
    let nblocks = 1usize << ndim;
    let mut out = Vec::with_capacity(nblocks);
    for bits in 0..nblocks {
        let offset = offset_from_bits(ndim, bits);
        if let Some(sl) = SubLattice::new(dims, offset, 2) {
            out.push(sl);
        }
    }
    out
}

/// Decode a canonical block index into a `(oz, oy, ox)` offset.
///
/// The lowest bit is the x offset, then y, then z, so indices enumerate
/// offsets in the same order for every dimensionality.
pub fn offset_from_bits(ndim: u8, bits: usize) -> [usize; 3] {
    debug_assert!(bits < (1 << ndim));
    let ox = bits & 1;
    let oy = (bits >> 1) & 1;
    let oz = (bits >> 2) & 1;
    match ndim {
        1 => [0, 0, ox],
        2 => [0, oy, ox],
        _ => [oz, oy, ox],
    }
}

/// Number of nonzero components in a binary offset — the Manhattan distance
/// to sub-block `a`, which selects the interpolation kernel (paper Fig. 7).
pub fn offset_rank(offset: [usize; 3]) -> u8 {
    (offset[0] + offset[1] + offset[2]) as u8
}

/// Partition a field into its stride-2 sub-blocks (dense copies), canonical
/// order.
pub fn partition_stride2<T: Scalar>(field: &Field<T>) -> Vec<(SubLattice, Field<T>)> {
    sublattices_stride2(field.dims())
        .into_iter()
        .map(|sl| {
            let block = sl.gather(field);
            (sl, block)
        })
        .collect()
}

/// Reassemble a field from its stride-2 sub-blocks. Inverse of
/// [`partition_stride2`]; blocks may be supplied in any order.
pub fn reassemble_stride2<T: Scalar>(dims: Dims, blocks: &[(SubLattice, Field<T>)]) -> Field<T> {
    let mut out = Field::zeros(dims);
    let mut covered = 0usize;
    for (sl, block) in blocks {
        assert_eq!(sl.parent_dims(), dims, "sub-lattice belongs to another grid");
        sl.scatter(block, &mut out);
        covered += block.len();
    }
    assert_eq!(covered, dims.len(), "blocks do not cover the grid exactly");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: Dims) -> Field<f32> {
        Field::from_fn(dims, |z, y, x| (z * 961 + y * 31 + x) as f32)
    }

    #[test]
    fn canonical_block_zero_is_origin() {
        for dims in [Dims::d1(9), Dims::d2(5, 6), Dims::d3(4, 5, 6)] {
            let subs = sublattices_stride2(dims);
            assert_eq!(subs[0].offset(), [0, 0, 0]);
            assert_eq!(subs.len(), 1 << dims.ndim());
        }
    }

    #[test]
    fn partition_reassemble_identity_3d() {
        for dims in [
            Dims::d3(8, 8, 8),
            Dims::d3(7, 6, 5),
            Dims::d3(1, 1, 2), // degenerate: some empty sub-lattices? nz=1 means oz=1 empty
            Dims::d3(2, 3, 9),
        ] {
            let f = ramp(dims);
            let parts = partition_stride2(&f);
            let back = reassemble_stride2(dims, &parts);
            assert_eq!(f, back, "roundtrip failed for {dims}");
        }
    }

    #[test]
    fn partition_reassemble_identity_2d_1d() {
        for dims in [Dims::d2(5, 7), Dims::d2(2, 2), Dims::d1(13), Dims::d1(1)] {
            let f = ramp(dims);
            let parts = partition_stride2(&f);
            let back = reassemble_stride2(dims, &parts);
            assert_eq!(f, back);
        }
    }

    #[test]
    fn offset_rank_counts_bits() {
        assert_eq!(offset_rank([0, 0, 0]), 0);
        assert_eq!(offset_rank([0, 0, 1]), 1);
        assert_eq!(offset_rank([1, 1, 0]), 2);
        assert_eq!(offset_rank([1, 1, 1]), 3);
    }

    #[test]
    fn block_sizes_sum_to_total() {
        let dims = Dims::d3(9, 10, 11);
        let parts = partition_stride2(&ramp(dims));
        let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, dims.len());
    }

    #[test]
    fn degenerate_dims_skip_empty_blocks() {
        // nz = 1: the four oz = 1 sub-lattices are empty and skipped.
        let dims = Dims::d3(1, 4, 4);
        let subs = sublattices_stride2(dims);
        assert_eq!(subs.len(), 4);
    }
}
