//! Half-open axis-aligned boxes for region-of-interest access.

use crate::Dims;
use std::ops::Range;

/// A half-open box `[z0, z1) x [y0, y1) x [x0, x1)`.
///
/// Regions express the targets of random-access decompression: a 3-D ROI box,
/// a 2-D slice (`z1 == z0 + 1`), or a 1-D ray. For 2-D fields, use
/// `z0 = 0, z1 = 1`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Region {
    pub z0: usize,
    pub z1: usize,
    pub y0: usize,
    pub y1: usize,
    pub x0: usize,
    pub x1: usize,
}

impl Region {
    /// 3-D box from per-axis ranges.
    pub fn d3(z: Range<usize>, y: Range<usize>, x: Range<usize>) -> Self {
        let r = Region { z0: z.start, z1: z.end, y0: y.start, y1: y.end, x0: x.start, x1: x.end };
        assert!(r.z0 < r.z1 && r.y0 < r.y1 && r.x0 < r.x1, "region must be non-empty: {r:?}");
        r
    }

    /// 2-D box (z fixed to the single plane 0).
    pub fn d2(y: Range<usize>, x: Range<usize>) -> Self {
        Region::d3(0..1, y, x)
    }

    /// 1-D interval.
    pub fn d1(x: Range<usize>) -> Self {
        Region::d3(0..1, 0..1, x)
    }

    /// The full extent of `dims`.
    pub fn full(dims: Dims) -> Self {
        Region::d3(0..dims.nz(), 0..dims.ny(), 0..dims.nx())
    }

    /// The 2-D slice of a 3-D grid at `z = z_index`.
    pub fn slice_z(dims: Dims, z_index: usize) -> Self {
        assert!(z_index < dims.nz());
        Region::d3(z_index..z_index + 1, 0..dims.ny(), 0..dims.nx())
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        (self.z1 - self.z0) * (self.y1 - self.y0) * (self.x1 - self.x0)
    }

    pub fn is_empty(&self) -> bool {
        false // non-emptiness is a construction invariant
    }

    /// Extents of the region as standalone grid dims with dimensionality
    /// `ndim` (so an extracted ROI keeps the parent's logical rank).
    pub fn dims(&self, ndim: u8) -> Dims {
        Dims::from_parts(
            ndim.max(if self.z1 - self.z0 > 1 { 3 } else { ndim }),
            self.z1 - self.z0,
            self.y1 - self.y0,
            self.x1 - self.x0,
        )
    }

    /// Whether the region lies fully inside `dims`.
    pub fn fits_in(&self, dims: Dims) -> bool {
        self.z1 <= dims.nz() && self.y1 <= dims.ny() && self.x1 <= dims.nx()
    }

    /// Whether the point is covered.
    #[inline]
    pub fn contains(&self, z: usize, y: usize, x: usize) -> bool {
        z >= self.z0 && z < self.z1 && y >= self.y0 && y < self.y1 && x >= self.x0 && x < self.x1
    }

    /// Intersect with another region; `None` if disjoint.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        let z0 = self.z0.max(other.z0);
        let z1 = self.z1.min(other.z1);
        let y0 = self.y0.max(other.y0);
        let y1 = self.y1.min(other.y1);
        let x0 = self.x0.max(other.x0);
        let x1 = self.x1.min(other.x1);
        if z0 < z1 && y0 < y1 && x0 < x1 {
            Some(Region { z0, z1, y0, y1, x0, x1 })
        } else {
            None
        }
    }

    /// Grow the region by `pad` points on every side, clamped to `dims` —
    /// used to cover interpolation stencil support around an ROI.
    pub fn dilate(&self, pad: usize, dims: Dims) -> Region {
        Region {
            z0: self.z0.saturating_sub(pad),
            z1: (self.z1 + pad).min(dims.nz()),
            y0: self.y0.saturating_sub(pad),
            y1: (self.y1 + pad).min(dims.ny()),
            x0: self.x0.saturating_sub(pad),
            x1: (self.x1 + pad).min(dims.nx()),
        }
    }

    /// Map the region into the coordinate system of the sub-lattice with
    /// `offset`/`stride`: the set of sub-lattice points whose original
    /// coordinates fall inside `self`. `None` if no lattice point is covered.
    pub fn project_to_sublattice(&self, offset: [usize; 3], stride: usize) -> Option<Region> {
        let proj = |lo: usize, hi: usize, o: usize| -> Option<(usize, usize)> {
            // smallest k with o + k*stride >= lo
            let k0 = lo.saturating_sub(o).div_ceil(stride);
            // largest k with o + k*stride < hi
            if o >= hi {
                return None;
            }
            let k1 = (hi - 1 - o) / stride;
            if k0 > k1 {
                None
            } else {
                Some((k0, k1 + 1))
            }
        };
        let (z0, z1) = proj(self.z0, self.z1, offset[0])?;
        let (y0, y1) = proj(self.y0, self.y1, offset[1])?;
        let (x0, x1) = proj(self.x0, self.x1, offset[2])?;
        Some(Region { z0, z1, y0, y1, x0, x1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_contains() {
        let r = Region::d3(1..3, 2..5, 0..4);
        assert_eq!(r.len(), 2 * 3 * 4);
        assert!(r.contains(1, 2, 0));
        assert!(r.contains(2, 4, 3));
        assert!(!r.contains(3, 2, 0));
        assert!(!r.contains(1, 5, 0));
    }

    #[test]
    fn full_covers_dims() {
        let d = Dims::d3(4, 5, 6);
        let r = Region::full(d);
        assert_eq!(r.len(), d.len());
        assert!(r.fits_in(d));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Region::d3(0..2, 0..2, 0..2);
        let b = Region::d3(2..4, 0..2, 0..2);
        assert!(a.intersect(&b).is_none());
        let c = Region::d3(1..3, 1..3, 1..3);
        assert_eq!(a.intersect(&c), Some(Region::d3(1..2, 1..2, 1..2)));
    }

    #[test]
    fn dilate_clamps() {
        let d = Dims::d3(4, 4, 4);
        let r = Region::d3(0..2, 1..3, 3..4).dilate(2, d);
        assert_eq!(r, Region::d3(0..4, 0..4, 1..4));
    }

    #[test]
    fn project_to_sublattice_basic() {
        // Points 0..8, sub-lattice offset 1 stride 2 -> original coords 1,3,5,7
        let r = Region::d1(2..6); // covers 3 and 5 -> sub-lattice indices 1,2
        let p = r.project_to_sublattice([0, 0, 1], 2).unwrap();
        assert_eq!((p.x0, p.x1), (1, 3));
        // No covered point:
        let r2 = Region::d1(2..3);
        assert!(r2.project_to_sublattice([0, 0, 1], 2).is_none());
    }

    #[test]
    fn project_roundtrip_all_points() {
        // Every point of every stride-2 sub-lattice inside the region projects in.
        let r = Region::d3(1..5, 0..3, 2..7);
        for oz in 0..2usize {
            for oy in 0..2usize {
                for ox in 0..2usize {
                    if let Some(p) = r.project_to_sublattice([oz, oy, ox], 2) {
                        for z in p.z0..p.z1 {
                            for y in p.y0..p.y1 {
                                for x in p.x0..p.x1 {
                                    assert!(r.contains(oz + 2 * z, oy + 2 * y, ox + 2 * x));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn slice_region() {
        let d = Dims::d3(8, 8, 8);
        let s = Region::slice_z(d, 3);
        assert_eq!(s.len(), 64);
        assert_eq!(s.dims(3).as_array(), [1, 8, 8]);
    }
}
