//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! benchmarking API surface the workspace uses — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop (warm-up, then timed iterations, median-of-
//! samples reporting). No statistical analysis, plots, or baseline
//! comparisons; results print to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly: one warm-up call, then `sample_size` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        self.report(&id.to_string(), &mut b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        self.report(&id.to_string(), &mut b.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("  {}/{id:<28} (no samples)", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            None => String::new(),
        };
        println!(
            "  {}/{id:<28} median {:>12?} over {} samples{rate}",
            self.name,
            median,
            samples.len()
        );
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
