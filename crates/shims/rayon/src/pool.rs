//! The work-stealing execution engine.
//!
//! ## Execution model
//!
//! A parallel operation (`run_chunks`, the crate-internal primitive
//! behind every iterator adaptor) splits its input into up to
//! [`MAX_TASKS`] contiguous chunks, seeds them round-robin into one deque
//! per worker, and runs the workers as **scoped `std::thread`s**
//! ([`std::thread::scope`]), so tasks may borrow from the caller's stack
//! without `unsafe` lifetime erasure. Each worker pops from the *front* of
//! its own deque and, when empty, steals from the *back* of a sibling's —
//! the classic owner-LIFO/thief-FIFO discipline that keeps stolen work
//! coarse. The calling thread participates as the last worker, so a pool of
//! `n` threads spawns only `n - 1`.
//!
//! ## Determinism
//!
//! Chunk boundaries depend only on the input length (never on the thread
//! count or timing), every chunk result is tagged with its sequence number,
//! and results are reassembled in order after the scope joins. Parallel
//! `collect` is therefore **bit-identical** to sequential execution, and
//! parallel reductions are bit-identical across *all* thread counts —
//! including floating-point sums, whose association is fixed by the
//! length-only chunk layout.
//!
//! ## Thread-count resolution
//!
//! `current_num_threads` resolves, in order: the enclosing
//! [`ThreadPool::install`] scope → the `STZ_THREADS` environment variable →
//! [`std::thread::available_parallelism`]. Workers inherit their pool's
//! count, so nested code observes the correct width.
//!
//! ## Nesting
//!
//! A parallel operation started *inside* a worker runs sequentially on that
//! worker (its siblings already saturate the pool); this keeps the engine
//! free of unbounded thread explosion while the outermost operation still
//! uses every thread.
//!
//! ## Telemetry
//!
//! The engine reports `stz_pool_tasks_total` (chunks executed, on both the
//! sequential and parallel paths), `stz_pool_steals_total` (chunks taken
//! from a sibling's deque), and the `stz_pool_queue_depth` gauge (chunks
//! seeded but not yet claimed) into the process-wide
//! [`stz_telemetry::global`] registry.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Upper bound on tasks per parallel operation. Fixed (not a function of
/// the thread count) so chunk boundaries — and therefore reduction
/// association — are identical at every pool width.
pub const MAX_TASKS: usize = 64;

/// Default worker count: `STZ_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("STZ_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

thread_local! {
    /// Thread-count override established by `ThreadPool::install` (and
    /// inherited by workers for the duration of a parallel operation).
    static CONTEXT: Cell<Option<usize>> = const { Cell::new(None) };
    /// Whether this thread is currently executing pool tasks (nested
    /// parallel operations run sequentially).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    CONTEXT.with(|c| c.get()).unwrap_or_else(default_threads)
}

fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// RAII restore of the per-thread execution context.
struct ContextGuard {
    prev_threads: Option<usize>,
    prev_worker: bool,
}

fn enter_context(threads: Option<usize>, worker: bool) -> ContextGuard {
    let prev_threads = CONTEXT.with(|c| c.replace(threads));
    let prev_worker = IN_WORKER.with(|w| w.replace(worker));
    ContextGuard { prev_threads, prev_worker }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev_threads));
        IN_WORKER.with(|w| w.set(self.prev_worker));
    }
}

/// Lock a mutex, recovering from poisoning (a panicking sibling must not
/// turn into a second, unrelated panic here — the first panic is already
/// being propagated by the scope).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One seeded unit of work: a contiguous run of input items.
struct Chunk<T> {
    seq: usize,
    items: Vec<T>,
}

/// Split `items` into contiguous chunks; layout depends on `len` only.
/// Single pass: each item is moved exactly once into its chunk.
fn split_chunks<T>(items: Vec<T>) -> Vec<Chunk<T>> {
    let len = items.len();
    let tasks = len.clamp(1, MAX_TASKS);
    let chunk_len = len.div_ceil(tasks);
    let mut chunks = Vec::with_capacity(tasks);
    let mut it = items.into_iter();
    for seq in 0.. {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(Chunk { seq, items: chunk });
    }
    chunks
}

/// Pool telemetry handles, resolved once from the global registry so the
/// per-chunk path records through lock-free atomics.
struct PoolMetrics {
    tasks: Arc<stz_telemetry::Counter>,
    steals: Arc<stz_telemetry::Counter>,
    queue_depth: Arc<stz_telemetry::Gauge>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = stz_telemetry::global();
        PoolMetrics {
            tasks: reg.counter("stz_pool_tasks_total", &[]),
            steals: reg.counter("stz_pool_steals_total", &[]),
            queue_depth: reg.gauge("stz_pool_queue_depth", &[]),
        }
    })
}

/// Pop from our own deque's front, or steal from the back of a sibling's.
/// Every claimed chunk is about to execute, so this is where tasks are
/// counted and the queue-depth gauge drains.
fn pop_or_steal<T>(deques: &[Mutex<VecDeque<Chunk<T>>>], me: usize) -> Option<Chunk<T>> {
    let m = pool_metrics();
    if let Some(job) = lock_unpoisoned(&deques[me]).pop_front() {
        m.queue_depth.dec();
        m.tasks.inc();
        return Some(job);
    }
    let n = deques.len();
    for step in 1..n {
        if let Some(job) = lock_unpoisoned(&deques[(me + step) % n]).pop_back() {
            m.queue_depth.dec();
            m.steals.inc();
            m.tasks.inc();
            return Some(job);
        }
    }
    None
}

/// Run `chunk_fn` over contiguous chunks of `items` on the pool, returning
/// the per-chunk results **in input order**.
///
/// This is the single execution primitive behind every parallel-iterator
/// adaptor: `collect` maps each chunk through the element function, `sum`
/// reduces each chunk and folds the partials in order. Chunk boundaries are
/// a function of `items.len()` alone, so results are deterministic at every
/// thread count.
///
/// A panic from `chunk_fn` aborts outstanding chunks and is re-raised on
/// the calling thread with its original payload once all workers have
/// stopped.
pub(crate) fn run_chunks<T, R, F>(items: Vec<T>, chunk_fn: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunks = split_chunks(items);
    let threads = current_num_threads().max(1);
    if in_worker() || threads <= 1 || chunks.len() <= 1 {
        // Same chunk layout as the parallel path, processed in order on the
        // current thread — bit-identical results by construction.
        pool_metrics().tasks.add(chunks.len() as u64);
        return chunks.into_iter().map(|c| chunk_fn(c.items)).collect();
    }

    let workers = threads.min(chunks.len());
    let deques: Vec<Mutex<VecDeque<Chunk<T>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let total = chunks.len();
    for chunk in chunks {
        lock_unpoisoned(&deques[chunk.seq % workers]).push_back(chunk);
    }
    pool_metrics().queue_depth.add(total as i64);

    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(total));
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let abort = AtomicBool::new(false);

    // Capture the caller's trace context so spans opened inside chunk
    // closures parent correctly across the pool boundary. Observe-only:
    // chunk layout and result order are unchanged whether or not a trace
    // is active.
    let trace_ctx = stz_telemetry::trace::current_context();
    let seeded_at = trace_ctx.as_ref().map(|_| std::time::Instant::now());

    let worker_loop = |me: usize| {
        let _ctx = enter_context(Some(threads), true);
        let _trace = stz_telemetry::trace::install_context(trace_ctx.clone());
        let mut first_claim = true;
        while !abort.load(Ordering::Relaxed) {
            let Some(chunk) = pop_or_steal(&deques, me) else { break };
            if let (true, Some(seeded)) = (first_claim, seeded_at) {
                // One queue-wait span per worker (its first claim), not
                // one per chunk — bounded span count at any input size.
                first_claim = false;
                stz_telemetry::trace::record_span(
                    "queue_wait",
                    seeded,
                    std::time::Instant::now(),
                    &[("worker", me.to_string())],
                );
            }
            match catch_unwind(AssertUnwindSafe(|| chunk_fn(chunk.items))) {
                Ok(r) => lock_unpoisoned(&results).push((chunk.seq, r)),
                Err(payload) => {
                    let mut slot = lock_unpoisoned(&panic_slot);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    abort.store(true, Ordering::Relaxed);
                }
            }
        }
    };

    std::thread::scope(|scope| {
        // n-1 spawned workers; the calling thread serves as worker n-1.
        for me in 0..workers - 1 {
            std::thread::Builder::new()
                .name(format!("stz-pool-{me}"))
                .spawn_scoped(scope, move || worker_loop(me))
                .expect("spawning a pool worker cannot fail");
        }
        worker_loop(workers - 1);
    });

    // On abort (a worker panicked) unclaimed chunks are dropped with the
    // deques; settle the depth gauge before propagating the panic.
    let leftover: usize = deques.iter().map(|d| lock_unpoisoned(d).len()).sum();
    pool_metrics().queue_depth.sub(leftover as i64);

    if let Some(payload) = lock_unpoisoned(&panic_slot).take() {
        resume_unwind(payload);
    }
    let mut tagged = results.into_inner().unwrap_or_else(|p| p.into_inner());
    debug_assert_eq!(tagged.len(), total);
    tagged.sort_unstable_by_key(|&(seq, _)| seq);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool with the default thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count. `0` (the default) resolves to `STZ_THREADS`
    /// or the machine's available parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool handle (infallible in this implementation; the
    /// `Result` mirrors rayon's signature).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle fixing the thread count for parallel operations run under
/// [`ThreadPool::install`].
///
/// Workers are scoped to each parallel operation (spawned on demand,
/// joined before the operation returns) rather than parked persistently,
/// so a `ThreadPool` holds no OS resources between operations and tasks
/// may borrow stack data freely.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing every parallel
    /// operation it performs.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _ctx = enter_context(Some(self.num_threads), in_worker());
        op()
    }

    /// The worker count parallel operations under this pool will use.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced by
/// this implementation).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    fn with_pool<R>(n: usize, op: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(op)
    }

    #[test]
    fn ordered_results_at_every_width() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3).collect();
        for n in [1, 2, 3, 4, 8] {
            let got = with_pool(n, || {
                run_chunks(items.clone(), |chunk| {
                    chunk.into_iter().map(|x| x * 3).collect::<Vec<_>>()
                })
            });
            assert_eq!(got.into_iter().flatten().collect::<Vec<_>>(), expect, "width {n}");
        }
    }

    #[test]
    fn chunk_layout_is_length_only() {
        // The chunk count must not depend on the thread count.
        for n in [1, 2, 8] {
            let lens = with_pool(n, || run_chunks(vec![1u8; 128], |chunk| chunk.len()));
            assert_eq!(lens.len(), MAX_TASKS, "width {n}");
            assert!(lens.iter().all(|&l| l == 2), "width {n}");
        }
        assert_eq!(split_chunks(vec![0u8; 5]).len(), 5);
        assert_eq!(split_chunks::<u8>(Vec::new()).len(), 0);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        let ids = Mutex::new(HashSet::new());
        with_pool(4, || {
            run_chunks((0..256).collect::<Vec<_>>(), |chunk| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Hold the chunk long enough for siblings to get scheduled.
                std::thread::sleep(std::time::Duration::from_millis(2));
                chunk.len()
            })
        });
        // On a single-core machine the OS may still serialize onto fewer
        // threads, but more than one worker must have participated when
        // parallelism is available.
        let observed = ids.lock().unwrap().len();
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores > 1 {
            assert!(observed > 1, "only {observed} worker(s) touched the work");
        }
    }

    #[test]
    fn install_scopes_the_thread_count() {
        assert!(current_num_threads() >= 1);
        with_pool(3, || {
            assert_eq!(current_num_threads(), 3);
            with_pool(5, || assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn workers_inherit_the_pool_width() {
        let widths =
            with_pool(4, || run_chunks((0..64).collect::<Vec<_>>(), |_| current_num_threads()));
        assert!(widths.into_iter().all(|w| w == 4));
    }

    #[test]
    fn nested_operations_run_sequentially_not_exponentially() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        with_pool(4, || {
            run_chunks((0..64).collect::<Vec<usize>>(), |outer| {
                // A nested parallel operation from inside a worker.
                run_chunks(outer, |inner| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    live.fetch_sub(1, Ordering::SeqCst);
                    inner.len()
                })
                .into_iter()
                .sum::<usize>()
            })
        });
        // At most the pool width may ever be live at once: nesting must not
        // multiply workers.
        assert!(peak.load(Ordering::SeqCst) <= 4, "peak {}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let result = std::panic::catch_unwind(|| {
            with_pool(4, || {
                run_chunks((0..64).collect::<Vec<usize>>(), |chunk| {
                    if chunk.contains(&17) {
                        panic!("boom from a worker");
                    }
                    chunk.len()
                })
            })
        });
        let payload = result.expect_err("worker panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom from a worker", "original panic payload must be preserved");
        // The pool must remain usable after a propagated panic.
        let ok = with_pool(4, || run_chunks(vec![1, 2, 3], |c| c.len()));
        assert_eq!(ok.iter().sum::<usize>(), 3);
    }

    #[test]
    fn telemetry_counts_every_chunk() {
        // The global counter is shared with concurrently running tests, so
        // assert the delta this run is *guaranteed* to contribute.
        let m = pool_metrics();
        let before = m.tasks.get();
        with_pool(4, || run_chunks((0..256).collect::<Vec<_>>(), |c| c.len()));
        assert!(
            m.tasks.get() >= before + MAX_TASKS as u64,
            "a {MAX_TASKS}-chunk run must count {MAX_TASKS} tasks"
        );
        let before = m.tasks.get();
        with_pool(1, || run_chunks(vec![1u8, 2, 3], |c| c.len()));
        assert!(m.tasks.get() >= before + 3, "the sequential path counts tasks too");
    }

    #[test]
    fn builder_zero_resolves_to_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
        assert_eq!(
            ThreadPoolBuilder::new().num_threads(7).build().unwrap().current_num_threads(),
            7
        );
    }
}
