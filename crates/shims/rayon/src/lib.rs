//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! exact API surface the workspace uses — `par_iter` / `into_par_iter`
//! adapters, `current_num_threads`, and `ThreadPoolBuilder` — with
//! **sequential** execution. The conversion traits simply hand back the
//! standard iterators, so every adaptor (`map`, `zip`, `enumerate`,
//! `collect`, …) is the `std` implementation and results are trivially
//! identical to what work-stealing execution would produce.
//!
//! The workspace's parallel entry points are all *bit-deterministic by
//! construction* (they collect per-item results and combine them in order),
//! so swapping in the real rayon later is a Cargo.toml change, not a code
//! change.

/// The conversion traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

pub mod iter {
    /// `into_par_iter()` — sequential stand-in returning the std iterator.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// `par_iter()` — sequential stand-in returning the std `&self` iterator.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        type Item = <&'data C as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Number of threads the "pool" would use (hardware parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { _num_threads: self.num_threads })
    }
}

/// A "pool" whose `install` runs the closure on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    _num_threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert!(super::current_num_threads() >= 1);
    }
}
