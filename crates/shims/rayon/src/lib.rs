//! Offline work-stealing thread pool with a `rayon`-compatible surface.
//!
//! The build environment has no registry access, so this crate provides the
//! API surface the workspace uses — `par_iter` / `into_par_iter` adaptors,
//! [`current_num_threads`], and [`ThreadPoolBuilder`] — implemented as a
//! **real multi-threaded runtime**: scoped `std::thread` workers with
//! per-worker deques and work stealing (see [`pool`] for the execution
//! model). Swapping in the real rayon remains a `Cargo.toml` change, not a
//! code change.
//!
//! Two guarantees the workspace builds on:
//!
//! * **Ordered, bit-identical results.** Chunk boundaries depend only on
//!   input length; chunk results are reassembled in input order. Parallel
//!   `collect` is byte-for-byte identical to sequential execution at every
//!   thread count.
//! * **Honored thread counts.** `ThreadPoolBuilder::num_threads(n)` +
//!   [`ThreadPool::install`] runs enclosed parallel operations on `n`
//!   workers; outside any `install`, the `STZ_THREADS` environment variable
//!   (or the machine's available parallelism) decides.

#![warn(missing_docs)]

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// The conversion traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn pool_installs_with_requested_width() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.install(super::current_num_threads), 4);
        assert!(super::current_num_threads() >= 1);
    }
}
