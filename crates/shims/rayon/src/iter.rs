//! Parallel iterators over the work-stealing pool.
//!
//! The adaptor set mirrors the slice of `rayon::iter` this workspace uses:
//! [`IntoParallelIterator::into_par_iter`] /
//! [`IntoParallelRefIterator::par_iter`] produce a [`ParIter`], whose
//! `zip` / `enumerate` restructure the (cheap) item stream and whose `map`
//! defers the (expensive) per-item function to a [`ParMap`]. Terminal
//! operations drive the pool: the item stream is materialized sequentially,
//! split into chunks, and the deferred function runs on the workers, with
//! results reassembled in input order (see [`crate::pool`] for the
//! determinism guarantees).

use crate::pool::run_chunks;

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The parallel iterator type produced.
    type Iter;
    /// The element type.
    type Item: Send;
    /// Convert `self` into a parallel iterator over the pool.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Iter = ParIter<I::IntoIter>;
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::IntoIter> {
        ParIter { base: self.into_iter() }
    }
}

/// Borrowing conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type produced.
    type Iter;
    /// The element type (a reference into `self`).
    type Item: Send;
    /// A parallel iterator over borrowed elements of `self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Iter = ParIter<<&'data C as IntoIterator>::IntoIter>;
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter { base: self.into_iter() }
    }
}

/// A parallel iterator before its deferred per-item function: the item
/// stream itself is cheap (references, ranges, indices) and is materialized
/// sequentially; parallelism applies to the function given to
/// [`ParIter::map`].
#[derive(Debug)]
pub struct ParIter<I: Iterator> {
    base: I,
}

impl<I: Iterator> ParIter<I>
where
    I::Item: Send,
{
    /// Defer `f` for parallel execution over the pool.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        ParMap { base: self.base, f }
    }

    /// Pair each item with its index (order-preserving, like
    /// `rayon`'s indexed `enumerate`).
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter { base: self.base.enumerate() }
    }

    /// Zip with another parallel iterator, pairing items positionally.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>>
    where
        J::Item: Send,
    {
        ParIter { base: self.base.zip(other.base) }
    }

    /// Reduce the items with `+` on the pool.
    ///
    /// Partial sums are taken over chunks whose boundaries depend only on
    /// the item count, then folded in order — so the result is identical at
    /// every thread count (for floating-point sums too, whose association
    /// is fixed by the layout, though it may differ from a strictly
    /// left-to-right sequential fold).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<I::Item> + std::iter::Sum<S>,
    {
        let items: Vec<I::Item> = self.base.collect();
        run_chunks(items, |chunk| chunk.into_iter().sum::<S>()).into_iter().sum()
    }

    /// Collect the items without a deferred function (sequential: there is
    /// no per-item work to distribute).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.base.collect()
    }
}

/// A parallel iterator with its deferred per-item function; terminal
/// operations execute the function on the pool's workers.
#[derive(Debug)]
pub struct ParMap<I: Iterator, F> {
    base: I,
    f: F,
}

impl<I: Iterator, F> ParMap<I, F>
where
    I::Item: Send,
{
    /// Apply the deferred function to every item on the pool and collect
    /// the results **in input order** (bit-identical to sequential
    /// execution).
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(I::Item) -> R + Sync,
        C: FromIterator<R>,
    {
        let items: Vec<I::Item> = self.base.collect();
        let f = self.f;
        run_chunks(items, |chunk| chunk.into_iter().map(&f).collect::<Vec<R>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    fn with_pool<R>(n: usize, op: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(op)
    }

    #[test]
    fn map_collect_is_ordered_and_complete() {
        let v: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = v.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for n in [1, 2, 4, 8] {
            let got: Vec<u64> =
                with_pool(n, || v.par_iter().map(|&x| x.wrapping_mul(2654435761)).collect());
            assert_eq!(got, expect, "width {n}");
        }
    }

    #[test]
    fn zip_enumerate_match_std() {
        let a: Vec<i32> = (0..500).collect();
        let b: Vec<i32> = (500..1000).collect();
        let got: Vec<i32> = with_pool(4, || {
            a.clone().into_par_iter().zip(b.clone().into_par_iter()).map(|(x, y)| x + y).collect()
        });
        let expect: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(got, expect);

        let got: Vec<usize> =
            with_pool(4, || a.par_iter().enumerate().map(|(i, &x)| i + x as usize).collect());
        let expect: Vec<usize> = a.iter().enumerate().map(|(i, &x)| i + x as usize).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn sum_matches_sequential_for_integers() {
        let v: Vec<i64> = (0..100_000).collect();
        for n in [1, 3, 8] {
            let got: i64 = with_pool(n, || v.clone().into_par_iter().sum());
            assert_eq!(got, v.iter().sum::<i64>(), "width {n}");
        }
    }

    #[test]
    fn float_sum_is_identical_across_widths() {
        let v: Vec<f64> = (0..10_001).map(|i| (i as f64) * 0.377 - 1000.0).collect();
        let at_1: f64 = with_pool(1, || v.clone().into_par_iter().sum());
        for n in [2, 4, 8] {
            let at_n: f64 = with_pool(n, || v.clone().into_par_iter().sum());
            assert_eq!(at_1.to_bits(), at_n.to_bits(), "width {n}");
        }
    }

    #[test]
    fn collect_into_non_vec_containers() {
        let v = vec![3u32, 1, 2];
        let got: std::collections::BTreeSet<u32> =
            with_pool(4, || v.par_iter().map(|&x| x * 10).collect());
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![10, 20, 30]);
    }
}
