//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! strategy combinators and macros the workspace's property tests actually
//! use: integer/float range strategies, tuples, `prop_map`, `any::<T>()`,
//! `collection::vec`, the `proptest!` macro, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Like real proptest, failing cases are **shrunk** before being reported:
//! integer and float ranges binary-search toward their lower bound, vectors
//! binary-search the shortest failing prefix, and tuples minimize
//! component-wise — always re-checking that the candidate still fails, so
//! the reported case is a genuine (locally minimal) failure. Strategies that
//! cannot be inverted (`prop_map`, `any`) report the failing value as-is.
//! Sampling is deterministic — the RNG is seeded from the test name — so
//! failures reproduce exactly across runs.

pub mod test_runner {
    /// Configuration mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic splitmix64 RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Shrink a known-failing value to a simpler one that still fails
        /// (`still_fails` runs the property and reports whether it failed).
        /// The returned value is always a genuine failure. The default
        /// cannot invert the strategy and returns the value unchanged.
        fn minimize(
            &self,
            failing: Self::Value,
            still_fails: &mut dyn FnMut(&Self::Value) -> bool,
        ) -> Self::Value {
            let _ = still_fails;
            failing
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Binary-search the smallest still-failing integer in
    /// `[target, failing]` (assumes, as shrinkers do, that failures are
    /// roughly monotonic; the result is always a genuine failure even when
    /// they are not).
    fn bisect_int(target: i128, failing: i128, still_fails: &mut dyn FnMut(i128) -> bool) -> i128 {
        let (mut lo, mut hi) = (target.min(failing), failing);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if still_fails(mid) {
                hi = mid; // `hi` stays known-failing
            } else {
                lo = mid + 1;
            }
        }
        hi
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
                fn minimize(
                    &self,
                    failing: $t,
                    still_fails: &mut dyn FnMut(&$t) -> bool,
                ) -> $t {
                    bisect_int(self.start as i128, failing as i128, &mut |v| {
                        still_fails(&(v as $t))
                    }) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
                fn minimize(
                    &self,
                    failing: $t,
                    still_fails: &mut dyn FnMut(&$t) -> bool,
                ) -> $t {
                    bisect_int(*self.start() as i128, failing as i128, &mut |v| {
                        still_fails(&(v as $t))
                    }) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
                fn minimize(
                    &self,
                    failing: $t,
                    still_fails: &mut dyn FnMut(&$t) -> bool,
                ) -> $t {
                    // Bisect toward the range start; ~64 halvings exhaust
                    // the mantissa of either float type.
                    let mut lo = self.start;
                    let mut cur = failing; // known failing
                    for _ in 0..64 {
                        let mid = lo + (cur - lo) / 2.0;
                        if !(mid > lo && mid < cur) {
                            break;
                        }
                        if still_fails(&mid) {
                            cur = mid;
                        } else {
                            lo = mid;
                        }
                    }
                    cur
                }
            }
        )*};
    }
    impl_float_ranges!(f32, f64);

    macro_rules! impl_tuples {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
                fn minimize(
                    &self,
                    failing: Self::Value,
                    still_fails: &mut dyn FnMut(&Self::Value) -> bool,
                ) -> Self::Value {
                    // Component-wise: minimize each position with the others
                    // held at their current (already-minimized) values.
                    let mut cur = failing;
                    $(
                        let comp = cur.$idx.clone();
                        cur.$idx = self.$idx.minimize(comp, &mut |cand| {
                            let mut probe = cur.clone();
                            probe.$idx = cand.clone();
                            still_fails(&probe)
                        });
                    )+
                    cur
                }
            }
        )*};
    }
    impl_tuples! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    /// Types samplable by `any::<T>()`.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — uniform over the whole type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn minimize(
            &self,
            failing: Vec<S::Value>,
            still_fails: &mut dyn FnMut(&Vec<S::Value>) -> bool,
        ) -> Vec<S::Value> {
            // Binary-search the shortest still-failing prefix whose length
            // remains inside the size range.
            let mut cur = failing; // known failing
            let mut lo = self.size.start.min(cur.len());
            let mut hi = cur.len();
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let cand = cur[..mid].to_vec();
                if still_fails(&cand) {
                    cur = cand;
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            // Then minimize each surviving element in place.
            for i in 0..cur.len() {
                let comp = cur[i].clone();
                cur[i] = self.element.minimize(comp, &mut |cand| {
                    let mut probe = cur.clone();
                    probe[i] = cand.clone();
                    still_fails(&probe)
                });
            }
            cur
        }
    }
}

/// Run `f`, silently catching any panic; returns `true` if it panicked.
///
/// Used by the `proptest!` macro to probe shrink candidates without
/// spamming stderr with a panic message per probe. The default panic hook
/// is wrapped once (lazily) with a delegating hook gated on a thread-local
/// flag, so concurrent tests on other threads keep their messages.
pub fn quiet_catch(f: impl FnOnce()) -> bool {
    use std::cell::Cell;
    use std::sync::Once;
    static INIT: Once = Once::new();
    thread_local! {
        static SUPPRESS: Cell<bool> = const { Cell::new(false) };
    }
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
    SUPPRESS.with(|s| s.set(true));
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_err();
    SUPPRESS.with(|s| s.set(false));
    panicked
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property; failure reports the current case's values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// The `proptest!` block macro: runs each property over `config.cases`
/// deterministically sampled cases; a failing case is shrunk before being
/// re-raised, with the minimized arguments printed to stderr.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let strategies = ($($strat,)+);
            for _case in 0..config.cases {
                let case = $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let failed = {
                    let ($($arg,)+) = Clone::clone(&case);
                    $crate::quiet_catch(move || $body)
                };
                if failed {
                    let case =
                        $crate::strategy::Strategy::minimize(&strategies, case, &mut |cand| {
                            let ($($arg,)+) = Clone::clone(cand);
                            $crate::quiet_catch(move || $body)
                        });
                    let ($($arg,)+) = case;
                    eprintln!(
                        "proptest shim: {} failed; minimized case: {:?}",
                        stringify!($name),
                        ($(&$arg,)+),
                    );
                    // Re-run uncaught so the real assertion message surfaces.
                    $body
                    unreachable!("minimized case no longer fails outside quiet_catch");
                }
            }
        }
    )*};
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$attr])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -5i32..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps(
            dims in (1usize..=4, 1usize..=4).prop_map(|(a, b)| a * b),
            seed in any::<u64>(),
        ) {
            prop_assert!((1..=16).contains(&dims));
            let _ = seed;
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = 0u64..1000;
        for _ in 0..16 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn int_minimize_finds_smallest_failure() {
        use crate::strategy::Strategy;
        // Property "fails" for values >= 700: the minimum is exactly 700.
        let got = (0u64..1000).minimize(953, &mut |&v| v >= 700);
        assert_eq!(got, 700);
        // Inclusive range, signed, shrinking toward the lower bound.
        let got = (-50i32..=50).minimize(37, &mut |&v| v > -10);
        assert_eq!(got, -9);
        // The failing value is already minimal.
        let got = (0u8..10).minimize(0, &mut |_| true);
        assert_eq!(got, 0);
    }

    #[test]
    fn int_minimize_result_always_fails() {
        use crate::strategy::Strategy;
        // Non-monotonic failure set {123, 800..}: the result must still be a
        // genuine failure even though bisection can't find the global min.
        let fails = |v: &u64| *v == 123 || *v >= 800;
        let got = (0u64..1000).minimize(900, &mut { fails });
        assert!(fails(&got), "minimize returned non-failing {got}");
    }

    #[test]
    fn float_minimize_converges() {
        use crate::strategy::Strategy;
        let got = (0.0f64..10.0).minimize(7.3, &mut |&v| v >= 2.5);
        assert!((got - 2.5).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn vec_minimize_shrinks_length_then_elements() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..1000, 0..20);
        // Fails whenever some element is >= 500.
        let failing = vec![3, 700, 12, 900, 44];
        let got = s.minimize(failing, &mut |v| v.iter().any(|&x| x >= 500));
        // Shortest failing prefix is [3, 700]; the element pass then shrinks
        // 3 → 0 (the 700 keeps the vec failing) and 700 → the 500 boundary.
        assert_eq!(got, vec![0, 500]);
    }

    #[test]
    fn vec_minimize_respects_min_len() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..10, 3..8);
        // Any vec "fails": the shrinker must not go below the size floor.
        let got = s.minimize(vec![1, 2, 3, 4, 5], &mut |_| true);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn tuple_minimize_is_component_wise() {
        use crate::strategy::Strategy;
        let s = (0u64..100, 0u64..100);
        let got = s.minimize((80, 60), &mut |&(a, b)| a + b >= 50);
        // First component bisects to 0 (b=60 keeps failing), then b to 50.
        assert_eq!(got, (0, 50));
    }

    #[test]
    fn quiet_catch_reports_and_suppresses() {
        assert!(crate::quiet_catch(|| panic!("boom")));
        assert!(!crate::quiet_catch(|| {}));
    }

    // End-to-end: a failing property must shrink to the boundary value and
    // surface the *minimized* case in the panic message.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        #[should_panic(expected = "v=100")]
        fn failing_property_reports_minimized_case(v in 0u64..1000) {
            prop_assert!(v < 100, "v={}", v);
        }
    }
}
