//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! strategy combinators and macros the workspace's property tests actually
//! use: integer/float range strategies, tuples, `prop_map`, `any::<T>()`,
//! `collection::vec`, the `proptest!` macro, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case fails the
//! test directly with the sampled values visible in the assertion message.
//! Sampling is deterministic — the RNG is seeded from the test name — so
//! failures reproduce exactly across runs.

pub mod test_runner {
    /// Configuration mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic splitmix64 RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_ranges!(f32, f64);

    macro_rules! impl_tuples {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuples! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    /// Types samplable by `any::<T>()`.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — uniform over the whole type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property; failure reports the current case's values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// The `proptest!` block macro: runs each property over `config.cases`
/// deterministically sampled cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                $body
            }
        }
    )*};
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$attr])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -5i32..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps(
            dims in (1usize..=4, 1usize..=4).prop_map(|(a, b)| a * b),
            seed in any::<u64>(),
        ) {
            prop_assert!((1..=16).contains(&dims));
            let _ = seed;
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = 0u64..1000;
        for _ in 0..16 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
