//! # STZ — streaming error-bounded lossy compression
//!
//! The primary contribution of *“STZ: A High Quality and High Speed Streaming
//! Lossy Compression Framework for Scientific Data”* (SC'25): an
//! error-bounded lossy compressor that simultaneously supports
//!
//! * **progressive decompression** — reconstruct a coarse (1/64- or
//!   1/8-resolution) preview from a fraction of the archive, then refine
//!   ([`progressive`]), and
//! * **random-access decompression** — reconstruct only a region of interest
//!   at full resolution ([`random_access`]),
//!
//! while matching the rate-distortion of the non-streaming SZ3 and exceeding
//! its speed.
//!
//! ## How it works (paper §3)
//!
//! The grid is partitioned into interleaved sub-lattices by stride-2 (or
//! stride-4) sampling ([`level`]). The coarsest sub-lattice is compressed
//! with the SZ3 substrate; every finer level is *predicted* from the
//! reconstructed coarser lattice by multi-dimensional cubic-spline
//! interpolation ([`kernels`]), and only the prediction residuals are
//! quantized and Huffman-coded — per sub-block, so each sub-block stream is
//! independently decodable. Finer levels have **no intra-level
//! dependencies**, which is what makes random access, progressive refinement
//! and the parallel speedups of the paper possible.
//!
//! ## Quick start
//!
//! ```
//! use stz_core::{StzCompressor, StzConfig};
//! use stz_field::{Dims, Field};
//!
//! let field = Field::from_fn(Dims::d3(24, 24, 24), |z, y, x| {
//!     ((z as f32) * 0.3).sin() + ((y as f32) * 0.2).cos() + x as f32 * 0.01
//! });
//! let archive = StzCompressor::new(StzConfig::three_level(1e-3))
//!     .compress(&field)
//!     .unwrap();
//!
//! let full = archive.decompress().unwrap();
//! let coarse = archive.decompress_level(1).unwrap(); // 1/64 of the points
//! assert_eq!(coarse.dims(), Dims::d3(6, 6, 6));
//! # let _ = full;
//! ```

pub mod ablation;
pub mod archive;
pub mod compressor;
pub mod config;
pub mod kernels;
pub mod level;
pub mod progressive;
pub mod random_access;
pub mod roi;
pub mod source;
pub mod stats;

pub use archive::StzArchive;
pub use compressor::StzCompressor;
pub use config::{ConfigError, StzConfig};
pub use progressive::ProgressiveDecoder;
pub use random_access::AccessBreakdown;
pub use source::SectionSource;
pub use stz_sz3::{ErrorBound, InterpKind};
