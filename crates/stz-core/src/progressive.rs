//! Incremental progressive decompression (paper §3.3, Fig. 13).
//!
//! [`ProgressiveDecoder`] walks the hierarchy coarse-to-fine, holding the
//! current working grid between steps so refining to the next resolution
//! costs only that level's decode — the total cost of walking all levels
//! equals one full decompression.

use crate::archive::StzArchive;
use crate::compressor::{decode_level1, decode_level_grid};
use crate::source::SectionSource;
use std::marker::PhantomData;
use stz_codec::Result;
use stz_field::{Dims, Field, Scalar};

/// Stateful coarse-to-fine decoder over any [`SectionSource`] (an
/// [`StzArchive`] by default, or an out-of-core container entry). Each
/// refinement step fetches only that level's sub-block streams.
pub struct ProgressiveDecoder<'a, T: Scalar, S: SectionSource + ?Sized = StzArchive<T>> {
    source: &'a S,
    plan: crate::level::LevelPlan,
    grid: Option<Field<f64>>,
    /// Levels decoded so far (0 = none yet).
    decoded: u8,
    parallel: bool,
    _marker: PhantomData<fn() -> T>,
}

impl<'a, T: Scalar, S: SectionSource + ?Sized> ProgressiveDecoder<'a, T, S> {
    /// Start a progressive walk over `source` (nothing is read yet).
    pub fn new(source: &'a S) -> Self {
        ProgressiveDecoder {
            source,
            plan: source.plan(),
            grid: None,
            decoded: 0,
            parallel: false,
            _marker: PhantomData,
        }
    }

    /// Use the rayon thread pool for each refinement step.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Number of levels decoded so far.
    pub fn levels_decoded(&self) -> u8 {
        self.decoded
    }

    /// Whether the full resolution has been reached.
    pub fn is_complete(&self) -> bool {
        self.decoded == self.source.num_levels()
    }

    /// Dims of the preview the next call to [`ProgressiveDecoder::next_level`]
    /// will return, or `None` if complete.
    pub fn next_dims(&self) -> Option<Dims> {
        if self.is_complete() {
            None
        } else {
            Some(self.plan.preview_dims(self.decoded + 1))
        }
    }

    /// Additional archive bytes the next refinement needs to read.
    pub fn next_bytes(&self) -> usize {
        if self.is_complete() {
            0
        } else {
            self.source.bytes_through_level(self.decoded + 1)
                - self.source.bytes_through_level(self.decoded)
        }
    }

    /// Decode one more level and return the refined preview, or `None` if
    /// the full resolution was already reached.
    pub fn next_level(&mut self) -> Result<Option<Field<T>>> {
        if self.is_complete() {
            return Ok(None);
        }
        let next_grid = match self.grid.take() {
            None => decode_level1::<T, S>(self.source, &self.plan)?,
            Some(prev) => decode_level_grid::<T, S>(
                self.source,
                &self.plan,
                self.decoded + 1,
                &prev,
                self.parallel,
            )?,
        };
        self.decoded += 1;
        let preview = Field::from_vec(
            next_grid.dims(),
            next_grid.as_slice().iter().map(|&v| T::from_f64(v)).collect(),
        );
        self.grid = Some(next_grid);
        Ok(Some(preview))
    }

    /// Decode through level `k` (consuming intermediate levels) and return
    /// that preview.
    pub fn decode_to(&mut self, k: u8) -> Result<Field<T>> {
        assert!(k > self.decoded, "already decoded past level {k}");
        let mut out = None;
        while self.decoded < k {
            out = self.next_level()?;
        }
        Ok(out.expect("at least one level decoded"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StzCompressor, StzConfig};

    fn field() -> Field<f32> {
        Field::from_fn(Dims::d3(20, 24, 28), |z, y, x| {
            ((z as f32) * 0.2).sin() + ((y as f32) * 0.15).cos() * ((x as f32) * 0.1).sin()
        })
    }

    #[test]
    fn stepwise_matches_direct_levels() {
        let f = field();
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let mut dec = archive.progressive();
        for k in 1..=3u8 {
            assert_eq!(dec.next_dims(), Some(archive.plan().preview_dims(k)));
            let step = dec.next_level().unwrap().unwrap();
            let direct = archive.decompress_level(k).unwrap();
            assert_eq!(step, direct, "level {k}");
        }
        assert!(dec.is_complete());
        assert_eq!(dec.next_level().unwrap(), None);
    }

    #[test]
    fn decode_to_skips_intermediates() {
        let f = field();
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let mut dec = archive.progressive();
        let p2 = dec.decode_to(2).unwrap();
        assert_eq!(p2, archive.decompress_level(2).unwrap());
        assert_eq!(dec.levels_decoded(), 2);
    }

    #[test]
    fn next_bytes_accounts_for_level_streams() {
        let f = field();
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let mut dec = archive.progressive();
        let mut total = 0usize;
        while !dec.is_complete() {
            total += dec.next_bytes();
            dec.next_level().unwrap();
        }
        assert_eq!(total, archive.bytes_through_level(3));
        // The coarsest level must be a small fraction of the stream.
        assert!(archive.bytes_through_level(1) < archive.compressed_len() / 4);
    }

    #[test]
    fn parallel_stepping_matches_serial() {
        let f = field();
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let mut a = archive.progressive();
        let mut b = archive.progressive().parallel(true);
        while let Some(pa) = a.next_level().unwrap() {
            let pb = b.next_level().unwrap().unwrap();
            assert_eq!(pa, pb);
        }
    }
}
