//! ROI selection module (paper §3.3, Fig. 10).
//!
//! Identifies regions of interest in a (typically coarse, progressively
//! decompressed) field, to be fetched at full resolution via random-access
//! decompression. Two thresholding modes are provided, as in the paper:
//!
//! * **range thresholding** — selects tiles whose value *range* exceeds a
//!   threshold; suited to interface-tracking in fluid simulations.
//! * **max-value thresholding** — selects tiles whose *maximum* exceeds a
//!   threshold; suited to over-density halos in cosmology (the paper's Nyx
//!   example uses threshold 81.66).
//!
//! Both support absolute thresholds and top-`x`% selection.

use stz_field::{Dims, Field, Region, Scalar};

/// Statistic a tile is scored by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoiStat {
    /// `max - min` of the tile.
    Range,
    /// Maximum value of the tile.
    MaxValue,
}

/// Selection criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoiCriterion {
    /// Select tiles whose statistic exceeds the threshold.
    Threshold(RoiStat, f64),
    /// Select the top `percent` (0–100] of tiles by the statistic.
    TopPercent(RoiStat, f64),
}

/// A scored tile.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredTile {
    pub region: Region,
    pub score: f64,
}

/// Split `dims` into tiles of at most `tile` points per axis and score each
/// by `stat`.
pub fn score_tiles<T: Scalar>(
    field: &Field<T>,
    tile: [usize; 3],
    stat: RoiStat,
) -> Vec<ScoredTile> {
    assert!(tile.iter().all(|&t| t > 0), "tile extents must be positive");
    let dims = field.dims();
    let mut out = Vec::new();
    let mut z0 = 0;
    while z0 < dims.nz() {
        let z1 = (z0 + tile[0]).min(dims.nz());
        let mut y0 = 0;
        while y0 < dims.ny() {
            let y1 = (y0 + tile[1]).min(dims.ny());
            let mut x0 = 0;
            while x0 < dims.nx() {
                let x1 = (x0 + tile[2]).min(dims.nx());
                let region = Region::d3(z0..z1, y0..y1, x0..x1);
                let (lo, hi) = tile_range(field, &region);
                let score = match stat {
                    RoiStat::Range => hi - lo,
                    RoiStat::MaxValue => hi,
                };
                out.push(ScoredTile { region, score });
                x0 = x1;
            }
            y0 = y1;
        }
        z0 = z1;
    }
    out
}

fn tile_range<T: Scalar>(field: &Field<T>, r: &Region) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for z in r.z0..r.z1 {
        for y in r.y0..r.y1 {
            for x in r.x0..r.x1 {
                let v = field.get(z, y, x).to_f64();
                if v.is_nan() {
                    continue;
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if lo > hi {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Select ROI tiles of a field according to `criterion`.
pub fn select_regions<T: Scalar>(
    field: &Field<T>,
    tile: [usize; 3],
    criterion: RoiCriterion,
) -> Vec<Region> {
    match criterion {
        RoiCriterion::Threshold(stat, threshold) => score_tiles(field, tile, stat)
            .into_iter()
            .filter(|t| t.score > threshold)
            .map(|t| t.region)
            .collect(),
        RoiCriterion::TopPercent(stat, percent) => {
            assert!(percent > 0.0 && percent <= 100.0, "percent must be in (0, 100]");
            let mut tiles = score_tiles(field, tile, stat);
            tiles.sort_by(|a, b| b.score.total_cmp(&a.score));
            let keep = ((tiles.len() as f64 * percent / 100.0).ceil() as usize).max(1);
            tiles.truncate(keep);
            tiles.into_iter().map(|t| t.region).collect()
        }
    }
}

/// Select whole 2-D z-slices of a 3-D field whose statistic exceeds the
/// threshold — the slice-granular variant described in §3.3.
pub fn select_slices_z<T: Scalar>(field: &Field<T>, stat: RoiStat, threshold: f64) -> Vec<usize> {
    let dims = field.dims();
    assert_eq!(dims.ndim(), 3, "slice selection requires a 3-D field");
    (0..dims.nz())
        .filter(|&z| {
            let r = Region::slice_z(dims, z);
            let (lo, hi) = tile_range(field, &r);
            let score = match stat {
                RoiStat::Range => hi - lo,
                RoiStat::MaxValue => hi,
            };
            score > threshold
        })
        .collect()
}

/// Fraction of the grid covered by `regions` (assumed disjoint).
pub fn coverage_fraction(regions: &[Region], dims: Dims) -> f64 {
    regions.iter().map(Region::len).sum::<usize>() as f64 / dims.len() as f64
}

/// Scale a region selected on a stride-`s` coarse preview back to
/// full-resolution coordinates (clamped to `full_dims`) — the glue between
/// progressive preview and random-access fetch in the paper's workflow.
pub fn upscale_region(region: &Region, stride: usize, full_dims: Dims) -> Region {
    Region {
        z0: region.z0 * stride,
        z1: (region.z1 * stride).min(full_dims.nz()),
        y0: region.y0 * stride,
        y1: (region.y1 * stride).min(full_dims.ny()),
        x0: region.x0 * stride,
        x1: (region.x1 * stride).min(full_dims.nx()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A mostly flat field with a bright "halo" blob and a sharp interface.
    fn test_field() -> Field<f32> {
        Field::from_fn(Dims::d3(16, 16, 16), |z, y, x| {
            let halo = if (8..11).contains(&z) && (8..11).contains(&y) && (8..11).contains(&x) {
                100.0
            } else {
                0.0
            };
            let interface = if y == 4 { 10.0 } else { 0.0 };
            1.0 + halo + interface
        })
    }

    #[test]
    fn max_threshold_finds_halo() {
        let f = test_field();
        let rois = select_regions(&f, [4, 4, 4], RoiCriterion::Threshold(RoiStat::MaxValue, 81.66));
        assert!(!rois.is_empty());
        for r in &rois {
            assert!(r.contains(8, 8, 8) || r.contains(10, 10, 10) || r.contains(8, 10, 9));
        }
        // Every halo cell must be covered by some ROI.
        for z in 8..11 {
            for y in 8..11 {
                for x in 8..11 {
                    assert!(rois.iter().any(|r| r.contains(z, y, x)), "({z},{y},{x}) uncovered");
                }
            }
        }
        // ROI should be a small fraction of the domain.
        assert!(coverage_fraction(&rois, f.dims()) < 0.3);
    }

    #[test]
    fn range_threshold_finds_interface() {
        let f = test_field();
        let rois = select_regions(&f, [4, 4, 4], RoiCriterion::Threshold(RoiStat::Range, 5.0));
        // Interface at y = 4 spans tiles at y-tile index 1.
        assert!(rois.iter().any(|r| r.contains(0, 4, 0)));
    }

    #[test]
    fn top_percent_selects_best() {
        let f = test_field();
        let rois = select_regions(&f, [4, 4, 4], RoiCriterion::TopPercent(RoiStat::MaxValue, 5.0));
        // 64 tiles -> top 5% = ceil(3.2) = 4 tiles.
        assert_eq!(rois.len(), 4);
        assert!(rois.iter().any(|r| r.contains(9, 9, 9)));
    }

    #[test]
    fn slice_selection() {
        let f = test_field();
        let slices = select_slices_z(&f, RoiStat::MaxValue, 50.0);
        assert_eq!(slices, vec![8, 9, 10]);
    }

    #[test]
    fn tiles_tile_the_grid() {
        let f = test_field();
        let tiles = score_tiles(&f, [5, 6, 7], RoiStat::Range);
        let total: usize = tiles.iter().map(|t| t.region.len()).sum();
        assert_eq!(total, f.dims().len());
    }

    #[test]
    fn upscale_region_maps_and_clamps() {
        let full = Dims::d3(17, 17, 17);
        let r = Region::d3(3..5, 0..2, 4..5); // on a stride-4 preview (5^3)
        let up = upscale_region(&r, 4, full);
        assert_eq!(up, Region::d3(12..17, 0..8, 16..17));
    }

    #[test]
    fn nan_tiles_are_ignored_in_scoring() {
        let mut f = test_field();
        f.set(0, 0, 0, f32::NAN);
        let tiles = score_tiles(&f, [16, 16, 16], RoiStat::MaxValue);
        assert_eq!(tiles.len(), 1);
        assert!((tiles[0].score - 101.0).abs() < 1e-6);
    }
}
