//! Dependency and locality statistics backing the §4.4 discussion.
//!
//! The paper argues STZ beats SZ3 on speed for three structural reasons:
//! multi-dimensional prediction, better cache behaviour, and — quantified
//! here — radically less data dependency: no point depends on any point of
//! the finest level (87.5% of a 3-D grid), whereas SZ3's in-place
//! interpolation makes at least half the points prediction sources.

use crate::level::LevelPlan;
use stz_field::Dims;

/// Structural dependency statistics of an STZ hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyStats {
    /// Total grid points.
    pub total_points: usize,
    /// Points per level (index 0 = level 1).
    pub level_points: Vec<usize>,
    /// Fraction of points that are prediction *sources* for some other point
    /// (everything except the finest level).
    pub dependency_fraction: f64,
    /// Fraction of points with no dependents — these never need to be
    /// reconstructed during compression for other points' sake and can be
    /// processed fully in parallel (87.5% for 3-level 3-D, §4.4).
    pub independent_fraction: f64,
    /// Fraction of the dataset every point ultimately depends on: the
    /// coarsest level (1.6% for 3-level 3-D, §2.3).
    pub root_fraction: f64,
}

/// Compute dependency statistics for a grid and level count.
pub fn dependency_stats(dims: Dims, levels: u8) -> DependencyStats {
    let plan = LevelPlan::new(dims, levels);
    let level_points: Vec<usize> = plan.levels.iter().map(|l| l.len()).collect();
    let total = dims.len();
    let finest = *level_points.last().expect("at least two levels");
    let sources: usize = total - finest;
    DependencyStats {
        total_points: total,
        dependency_fraction: sources as f64 / total as f64,
        independent_fraction: finest as f64 / total as f64,
        root_fraction: level_points[0] as f64 / total as f64,
        level_points,
    }
}

/// Comparable statistic for the SZ3 baseline: in SZ3's multi-level in-place
/// interpolation every non-finest-pass point is a prediction source — at
/// least half the data — and sources span the whole array (long-range
/// strided access), not a compact coarse grid.
pub fn sz3_dependency_fraction(dims: Dims) -> f64 {
    // SZ3 interpolates dimension-by-dimension within each level, so points
    // predicted in the z- and y-passes become sources for the x-pass of the
    // same level. Only the very last pass's targets (odd-x points at stride
    // 1 — half the grid) have no dependents.
    let [nz, ny, nx] = dims.as_array();
    let final_pass_targets = nz * ny * (nx / 2);
    1.0 - final_pass_targets as f64 / dims.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_level_3d_matches_paper_numbers() {
        let s = dependency_stats(Dims::d3(64, 64, 64), 3);
        // §4.4: 87.5% of the data has no dependents.
        assert!((s.independent_fraction - 0.875).abs() < 1e-9);
        // §2.3: all data depends on only 1.6% of the dataset.
        assert!((s.root_fraction - 1.0 / 64.0).abs() < 1e-9);
        assert!((s.dependency_fraction - 0.125).abs() < 1e-9);
        assert_eq!(s.level_points.iter().sum::<usize>(), 64 * 64 * 64);
    }

    #[test]
    fn two_level_3d() {
        let s = dependency_stats(Dims::d3(64, 64, 64), 2);
        // 2-level: level 1 is 12.5% (§3.2).
        assert!((s.root_fraction - 0.125).abs() < 1e-9);
        assert!((s.independent_fraction - 0.875).abs() < 1e-9);
    }

    #[test]
    fn sz3_has_more_dependency() {
        let dims = Dims::d3(64, 64, 64);
        let stz = dependency_stats(dims, 3);
        let sz3 = sz3_dependency_fraction(dims);
        assert!(
            sz3 > stz.dependency_fraction,
            "SZ3 {sz3} should exceed STZ {}",
            stz.dependency_fraction
        );
        // §4.4: "at least half of the data points are used to predict others".
        assert!(sz3 >= 0.5);
    }

    #[test]
    fn odd_dims_fractions_sane() {
        let s = dependency_stats(Dims::d3(65, 63, 61), 3);
        assert!(s.independent_fraction > 0.8 && s.independent_fraction < 0.9);
        let total: usize = s.level_points.iter().sum();
        assert_eq!(total, s.total_points);
    }
}
