//! Ablation variants reproducing every curve of the paper's Figure 5.
//!
//! The paper motivates STZ's design through a sequence of prediction
//! optimizations over naive partitioning (§3.1). Each step is implemented
//! here as a runnable codec so the rate-distortion ablation can be
//! regenerated:
//!
//! | Variant | Paper label | Pipeline |
//! |---|---|---|
//! | [`AblationVariant::PartitionOnly`] | "Partition" | each stride-2 sub-block compressed independently with SZ3 |
//! | [`AblationVariant::DirectPred`] | "Direct pred" | level 1 SZ3; finer blocks predicted by copying (Eq. 1), residuals re-compressed with SZ3 |
//! | [`AblationVariant::MultiDimInterp`] | "Multi-dim Interp" | multilinear prediction (Eqs. 3–5), residuals re-compressed with SZ3 |
//! | [`AblationVariant::MultiDimQt`] | "Multi-dim + Qt" | multilinear prediction, residuals only quantized + Huffman (optimization 3) |
//! | [`AblationVariant::CubicMultiQt`] | "Cubic-Multi + Qt" | cubic prediction (Eqs. 6–8) + quantize-only |
//! | [`AblationVariant::CubicMultiQtAdaptive`] | "Cubic-Multi-Qt + Adp" | + adaptive error bounds (optimization 5) |
//! | [`AblationVariant::ThreeLevelAll`] | "3-level + All" | the full 3-level STZ (§3.2) |
//!
//! The last four variants are thin configurations of the real compressor;
//! the first three use a dedicated container (magic `STZA`) because they
//! predate STZ's quantize-only streaming format.

use crate::archive::StzArchive;
use crate::compressor::StzCompressor;
use crate::config::StzConfig;
use crate::kernels::{predict_direct, predict_point};
use crate::level::LevelPlan;
use stz_codec::{ByteReader, ByteWriter, CodecError, Result};
use stz_field::{Dims, Field, Scalar};
use stz_sz3::{InterpKind, Sz3Config};

/// One point on the Figure-5 ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationVariant {
    PartitionOnly,
    DirectPred,
    MultiDimInterp,
    MultiDimQt,
    CubicMultiQt,
    CubicMultiQtAdaptive,
    ThreeLevelAll,
}

impl AblationVariant {
    /// All variants in the paper's presentation order.
    pub fn all() -> [AblationVariant; 7] {
        [
            AblationVariant::PartitionOnly,
            AblationVariant::DirectPred,
            AblationVariant::MultiDimInterp,
            AblationVariant::MultiDimQt,
            AblationVariant::CubicMultiQt,
            AblationVariant::CubicMultiQtAdaptive,
            AblationVariant::ThreeLevelAll,
        ]
    }

    /// The curve label used in the paper's Figure 5.
    pub fn label(&self) -> &'static str {
        match self {
            AblationVariant::PartitionOnly => "Partition",
            AblationVariant::DirectPred => "Direct pred",
            AblationVariant::MultiDimInterp => "Multi-dim Interp",
            AblationVariant::MultiDimQt => "Multi-dim + Qt",
            AblationVariant::CubicMultiQt => "Cubic-Multi + Qt",
            AblationVariant::CubicMultiQtAdaptive => "Cubic-Multi-Qt + Adp",
            AblationVariant::ThreeLevelAll => "3-level + All",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            AblationVariant::PartitionOnly => 0,
            AblationVariant::DirectPred => 1,
            AblationVariant::MultiDimInterp => 2,
            AblationVariant::MultiDimQt => 3,
            AblationVariant::CubicMultiQt => 4,
            AblationVariant::CubicMultiQtAdaptive => 5,
            AblationVariant::ThreeLevelAll => 6,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => AblationVariant::PartitionOnly,
            1 => AblationVariant::DirectPred,
            2 => AblationVariant::MultiDimInterp,
            t => return Err(CodecError::corrupt(format!("unknown ablation tag {t}"))),
        })
    }

    /// The STZ configuration for the variants that are plain configurations
    /// of the main compressor.
    fn stz_config(&self, eb: f64) -> Option<StzConfig> {
        match self {
            AblationVariant::MultiDimQt => {
                Some(StzConfig::two_level(eb).with_interp(InterpKind::Linear).with_adaptive(false))
            }
            AblationVariant::CubicMultiQt => Some(StzConfig::two_level(eb).with_adaptive(false)),
            AblationVariant::CubicMultiQtAdaptive => Some(StzConfig::two_level(eb)),
            AblationVariant::ThreeLevelAll => Some(StzConfig::three_level(eb)),
            _ => None,
        }
    }
}

const ABLATION_MAGIC: [u8; 4] = *b"STZA";

/// Compress `field` at absolute error bound `eb` with the given variant.
pub fn compress_variant<T: Scalar>(
    field: &Field<T>,
    variant: AblationVariant,
    eb: f64,
) -> Result<Vec<u8>> {
    if let Some(cfg) = variant.stz_config(eb) {
        return Ok(StzCompressor::new(cfg).compress(field)?.into_bytes());
    }
    let dims = field.dims();
    let plan = LevelPlan::new(dims, 2);
    let sz3_cfg = Sz3Config::absolute(eb);

    let mut w = ByteWriter::new();
    w.put_raw(&ABLATION_MAGIC);
    w.put_u8(variant.tag());
    w.put_u8(T::TYPE_TAG);
    w.put_u8(dims.ndim());
    let [nz, ny, nx] = dims.as_array();
    w.put_uvarint(nz as u64);
    w.put_uvarint(ny as u64);
    w.put_uvarint(nx as u64);
    w.put_f64(eb);

    match variant {
        AblationVariant::PartitionOnly => {
            // Every sub-block compressed independently (paper Fig. 4).
            let mut blocks = Vec::new();
            for level in &plan.levels {
                for block in &level.blocks {
                    let sub: Field<T> = block.lattice.gather(field);
                    blocks.push(stz_sz3::compress(&sub, &sz3_cfg));
                }
            }
            w.put_uvarint(blocks.len() as u64);
            for b in &blocks {
                w.put_block(b);
            }
        }
        AblationVariant::DirectPred | AblationVariant::MultiDimInterp => {
            // Level 1 via SZ3; finer blocks: predict, then re-compress the
            // residual field with SZ3 (the paper's optimization-3 strawman).
            let a_field: Field<T> = plan.level1().gather(field);
            let (l1_bytes, _, a_recon) = stz_sz3::compress_full(&a_field, &sz3_cfg);
            w.put_block(&l1_bytes);

            let level = &plan.levels[1];
            let mut grid = Field::<f64>::zeros(level.grid_dims);
            crate::compressor::upscatter(
                &Field::from_vec(plan.levels[0].grid_dims, a_recon),
                &mut grid,
            );
            w.put_uvarint(level.blocks.len() as u64);
            for block in &level.blocks {
                let orig: Field<T> = block.lattice.gather(field);
                let mut residual = Vec::with_capacity(orig.len());
                let bdims = orig.dims();
                for z in 0..bdims.nz() {
                    for y in 0..bdims.ny() {
                        for x in 0..bdims.nx() {
                            let (gz, gy, gx) = block.grid_lattice.to_parent(z, y, x);
                            let pred = if variant == AblationVariant::DirectPred {
                                predict_direct(
                                    grid.as_slice(),
                                    grid.dims(),
                                    [gz, gy, gx],
                                    &block.active_axes,
                                    1,
                                )
                            } else {
                                predict_point(
                                    grid.as_slice(),
                                    grid.dims(),
                                    [gz, gy, gx],
                                    &block.active_axes,
                                    1,
                                    InterpKind::Linear,
                                )
                            };
                            residual.push(orig.get(z, y, x).to_f64() - pred);
                        }
                    }
                }
                let res_field = Field::from_vec(bdims, residual);
                w.put_block(&stz_sz3::compress(&res_field, &sz3_cfg));
            }
        }
        _ => unreachable!("configuration variants handled above"),
    }
    Ok(w.finish())
}

/// Decompress bytes produced by [`compress_variant`].
pub fn decompress_variant<T: Scalar>(bytes: &[u8]) -> Result<Field<T>> {
    if bytes.len() >= 4 && bytes[..4] == crate::archive::MAGIC {
        return StzArchive::<T>::from_bytes(bytes.to_vec())?.decompress();
    }
    let mut r = ByteReader::new(bytes);
    let magic = r.get_raw(4)?;
    if magic != ABLATION_MAGIC {
        return Err(CodecError::corrupt("bad ablation magic"));
    }
    let variant = AblationVariant::from_tag(r.get_u8()?)?;
    let type_tag = r.get_u8()?;
    if type_tag != T::TYPE_TAG {
        return Err(CodecError::corrupt("ablation element type mismatch"));
    }
    let ndim = r.get_u8()?;
    if !(1..=3).contains(&ndim) {
        return Err(CodecError::corrupt("invalid ndim"));
    }
    let nz = r.get_uvarint()? as usize;
    let ny = r.get_uvarint()? as usize;
    let nx = r.get_uvarint()? as usize;
    if nz == 0 || ny == 0 || nx == 0 || nz.saturating_mul(ny).saturating_mul(nx) > (1 << 40) {
        return Err(CodecError::corrupt("invalid dims"));
    }
    if (ndim < 3 && nz != 1) || (ndim < 2 && ny != 1) {
        return Err(CodecError::corrupt("dims inconsistent with ndim"));
    }
    let dims = Dims::from_parts(ndim, nz, ny, nx);
    // Reject before the dims-sized reconstruction buffers are reserved.
    stz_codec::check_decode_alloc(dims.len() as u64, 8, "ablation field")?;
    let _eb = r.get_f64()?;
    let plan = LevelPlan::new(dims, 2);

    match variant {
        AblationVariant::PartitionOnly => {
            let n = r.get_uvarint()? as usize;
            let expected: usize = plan.levels.iter().map(|l| l.blocks.len()).sum();
            if n != expected {
                return Err(CodecError::corrupt("block count mismatch"));
            }
            let mut out = Field::zeros(dims);
            for level in &plan.levels {
                for block in &level.blocks {
                    let sub: Field<T> = stz_sz3::decompress(r.get_block()?)?;
                    if sub.dims().as_array() != block.lattice.dims().as_array() {
                        return Err(CodecError::corrupt("sub-block dims mismatch"));
                    }
                    block.lattice.scatter(&sub, &mut out);
                }
            }
            Ok(out)
        }
        AblationVariant::DirectPred | AblationVariant::MultiDimInterp => {
            let a: Field<T> = stz_sz3::decompress(r.get_block()?)?;
            if a.dims().as_array() != plan.levels[0].grid_dims.as_array() {
                return Err(CodecError::corrupt("level-1 dims mismatch"));
            }
            let level = &plan.levels[1];
            let mut grid = Field::<f64>::zeros(level.grid_dims);
            crate::compressor::upscatter(
                &Field::from_vec(
                    plan.levels[0].grid_dims,
                    a.as_slice().iter().map(|&v| v.to_f64()).collect(),
                ),
                &mut grid,
            );
            let n = r.get_uvarint()? as usize;
            if n != level.blocks.len() {
                return Err(CodecError::corrupt("block count mismatch"));
            }
            for block in &level.blocks {
                let residual: Field<f64> = stz_sz3::decompress(r.get_block()?)?;
                if residual.dims().as_array() != block.lattice.dims().as_array() {
                    return Err(CodecError::corrupt("residual dims mismatch"));
                }
                let bdims = residual.dims();
                let mut vals = Vec::with_capacity(bdims.len());
                for z in 0..bdims.nz() {
                    for y in 0..bdims.ny() {
                        for x in 0..bdims.nx() {
                            let (gz, gy, gx) = block.grid_lattice.to_parent(z, y, x);
                            let pred = if variant == AblationVariant::DirectPred {
                                predict_direct(
                                    grid.as_slice(),
                                    grid.dims(),
                                    [gz, gy, gx],
                                    &block.active_axes,
                                    1,
                                )
                            } else {
                                predict_point(
                                    grid.as_slice(),
                                    grid.dims(),
                                    [gz, gy, gx],
                                    &block.active_axes,
                                    1,
                                    InterpKind::Linear,
                                )
                            };
                            vals.push(pred + residual.get(z, y, x));
                        }
                    }
                }
                block.grid_lattice.scatter(&Field::from_vec(bdims, vals), &mut grid);
            }
            Ok(Field::from_vec(dims, grid.as_slice().iter().map(|&v| T::from_f64(v)).collect()))
        }
        _ => unreachable!("configuration variants use the STZ container"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyx_like_toy() -> Field<f32> {
        // Smooth halo plus small-scale pseudo-noise: realistic scientific
        // fields are not perfectly smooth, and the noise is what makes the
        // prediction residuals incompressible by a second SZ3 pass (the
        // paper's argument for the quantize-only optimization 3).
        Field::from_fn(Dims::d3(20, 20, 20), |z, y, x| {
            let r2 =
                (z as f32 - 10.0).powi(2) + (y as f32 - 10.0).powi(2) + (x as f32 - 10.0).powi(2);
            let smooth = (-r2 / 30.0).exp() * 50.0 + ((x + y) as f32 * 0.3).sin();
            let h = (z * 73_856_093) ^ (y * 19_349_663) ^ (x * 83_492_791);
            let noise = ((h % 1000) as f32 / 1000.0 - 0.5) * 2.0;
            smooth + noise
        })
    }

    fn max_err(a: &Field<f32>, b: &Field<f32>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| ((x as f64) - (y as f64)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn every_variant_roundtrips_within_bound() {
        let f = nyx_like_toy();
        let eb = 1e-2;
        for variant in AblationVariant::all() {
            let bytes = compress_variant(&f, variant, eb).unwrap();
            let back: Field<f32> = decompress_variant(&bytes).unwrap();
            assert_eq!(back.dims(), f.dims());
            let err = max_err(&f, &back);
            // Residual-recompression variants can accumulate the level-1
            // and residual bounds (eb + eb); the quantize-only variants obey
            // eb exactly.
            let tolerance = match variant {
                AblationVariant::DirectPred | AblationVariant::MultiDimInterp => 2.0 * eb + 1e-9,
                _ => eb + 1e-9,
            };
            assert!(err <= tolerance, "{}: err {err}", variant.label());
        }
    }

    #[test]
    fn optimization_ladder_improves_compression() {
        // Each optimization should compress at least as well as its
        // predecessor on smooth halo-like data (the Figure-5 story).
        let f = nyx_like_toy();
        let eb = 1e-2;
        let sizes: Vec<(AblationVariant, usize)> = AblationVariant::all()
            .into_iter()
            .map(|v| (v, compress_variant(&f, v, eb).unwrap().len()))
            .collect();
        let size_of = |v: AblationVariant| sizes.iter().find(|(s, _)| *s == v).unwrap().1;
        // The quantize-only step must beat SZ3-on-residuals.
        assert!(
            size_of(AblationVariant::MultiDimQt) < size_of(AblationVariant::MultiDimInterp),
            "Qt {} vs Interp {}",
            size_of(AblationVariant::MultiDimQt),
            size_of(AblationVariant::MultiDimInterp)
        );
        // Cubic must beat linear.
        assert!(size_of(AblationVariant::CubicMultiQt) <= size_of(AblationVariant::MultiDimQt));
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            AblationVariant::all().iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(decompress_variant::<f32>(b"nonsense").is_err());
        assert!(decompress_variant::<f32>(&[]).is_err());
        let f = nyx_like_toy();
        let bytes = compress_variant(&f, AblationVariant::PartitionOnly, 1e-2).unwrap();
        assert!(decompress_variant::<f64>(&bytes).is_err());
    }

    #[test]
    fn variant_2d_roundtrip() {
        let f = Field::from_fn(Dims::d2(24, 24), |_, y, x| {
            ((x as f32) * 0.2).sin() * ((y as f32) * 0.3).cos()
        });
        for variant in [AblationVariant::PartitionOnly, AblationVariant::DirectPred] {
            let bytes = compress_variant(&f, variant, 1e-3).unwrap();
            let back: Field<f32> = decompress_variant(&bytes).unwrap();
            assert!(max_err(&f, &back) <= 2e-3 + 1e-9, "{}", variant.label());
        }
    }
}
