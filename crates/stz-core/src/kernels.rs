//! Multi-dimensional interpolation kernels (paper §3.1, Eqs. 3–8, Fig. 7).
//!
//! A finer-level point at parent coordinate `p` is displaced by the
//! prediction unit `u` along `k = |active_axes|` axes from the coarse
//! lattice. The kernel is selected by `k`:
//!
//! * `k = 1` — 1-D interpolation along the axis (Eq. 3 linear / Eq. 6 cubic),
//! * `k = 2` — diagonal 2-D interpolation (Eq. 4 bilinear / Eq. 7 bicubic),
//! * `k = 3` — diagonal 3-D interpolation (Eq. 5 trilinear / Eq. 8 tricubic).
//!
//! The cubic kernels combine an inner ring of `2^k` corners at `±u` with an
//! outer ring at `±3u`; weights are `+9 / (16·2^(k-1))` and
//! `−1 / (16·2^(k-1))` respectively, which reduce exactly to the paper's
//! Eqs. 6, 7 and 8. Near boundaries the kernel degrades (cubic →
//! multilinear → clamped), mirroring the paper's "boundary points are
//! predicted directly from available data".

use stz_field::Dims;
use stz_sz3::InterpKind;

/// Inner/outer diagonal-cubic weights for a `k`-axis kernel.
#[inline]
pub fn diag_weights(k: usize) -> (f64, f64) {
    debug_assert!((1..=3).contains(&k));
    let denom = (16 << (k - 1)) as f64;
    (9.0 / denom, -1.0 / denom)
}

/// Predict the value at parent coordinate `p` from the reconstructed coarse
/// lattice stored (at parent positions) in `buf`.
///
/// `active` lists the axes along which `p` is `u` away from coarse points;
/// along inactive axes `p` already lies on the coarse lattice. All coarse
/// source positions read by the kernel are guaranteed to be coarse-lattice
/// points because active coordinates are odd multiples of `u` (offset `u`
/// plus a multiple of `2u`).
#[inline]
pub fn predict_point(
    buf: &[f64],
    dims: Dims,
    p: [usize; 3],
    active: &[usize],
    u: usize,
    kind: InterpKind,
) -> f64 {
    let n = dims.as_array();
    let k = active.len();
    debug_assert!(k >= 1, "inactive points are coarse-lattice points");

    // Availability of the far (+u) and outer (±3u) stencil points.
    let mut hi_ok = true;
    let mut outer_ok = true;
    for &d in active {
        debug_assert!(p[d] >= u && p[d] % (2 * u) == u % (2 * u));
        if p[d] + u >= n[d] {
            hi_ok = false;
        }
        if p[d] < 3 * u || p[d] + 3 * u >= n[d] {
            outer_ok = false;
        }
    }

    if kind == InterpKind::Cubic && hi_ok && outer_ok {
        let (wi, wo) = diag_weights(k);
        let mut inner = 0.0;
        let mut outer = 0.0;
        for bits in 0..(1usize << k) {
            let mut ci = p;
            let mut co = p;
            for (j, &d) in active.iter().enumerate() {
                if bits >> j & 1 == 1 {
                    ci[d] = p[d] + u;
                    co[d] = p[d] + 3 * u;
                } else {
                    ci[d] = p[d] - u;
                    co[d] = p[d] - 3 * u;
                }
            }
            inner += buf[dims.index(ci[0], ci[1], ci[2])];
            outer += buf[dims.index(co[0], co[1], co[2])];
        }
        return wi * inner + wo * outer;
    }

    // Multilinear over the inner diagonal corners; out-of-range high corners
    // clamp to the low corner (degenerating to lower-order prediction).
    let mut sum = 0.0;
    for bits in 0..(1usize << k) {
        let mut c = p;
        for (j, &d) in active.iter().enumerate() {
            c[d] = if bits >> j & 1 == 1 && p[d] + u < n[d] { p[d] + u } else { p[d] - u };
        }
        sum += buf[dims.index(c[0], c[1], c[2])];
    }
    sum / (1usize << k) as f64
}

/// Precomputed stencil for the interior fast path of one sub-block.
///
/// In working-grid coordinates the prediction unit is always 1, so the
/// stencil's corner positions are fixed *linear-index offsets* from the
/// target: ±1/±3 along each active axis map to ±stride(axis)/±3·stride(axis)
/// in the flattened grid. Interior points (where the whole stencil is in
/// bounds) are predicted with pure pointer arithmetic — no per-point
/// coordinate math, no branches. This is the cache-friendly sequential
/// access pattern the paper credits for STZ's speed advantage over SZ3's
/// long-range strided interpolation (§4.4).
#[derive(Debug, Clone)]
pub struct StencilOffsets {
    k: usize,
    cubic: bool,
    inner: [isize; 8],
    outer: [isize; 8],
    wi: f64,
    wo: f64,
}

impl StencilOffsets {
    /// Build the stencil for a block with the given active axes.
    pub fn new(gdims: Dims, active: &[usize], kind: InterpKind) -> Self {
        let k = active.len();
        debug_assert!((1..=3).contains(&k));
        let strides = [(gdims.ny() * gdims.nx()) as isize, gdims.nx() as isize, 1isize];
        let mut inner = [0isize; 8];
        let mut outer = [0isize; 8];
        for bits in 0..(1usize << k) {
            let (mut di, mut do_) = (0isize, 0isize);
            for (j, &d) in active.iter().enumerate() {
                let sign = if bits >> j & 1 == 1 { 1 } else { -1 };
                di += sign * strides[d];
                do_ += sign * 3 * strides[d];
            }
            inner[bits] = di;
            outer[bits] = do_;
        }
        let (wi, wo) = diag_weights(k);
        StencilOffsets { k, cubic: kind == InterpKind::Cubic, inner, outer, wi, wo }
    }

    /// Number of corners (2^k).
    #[inline]
    pub fn corners(&self) -> usize {
        1 << self.k
    }

    /// Predict at flattened grid index `gidx`; the caller guarantees the
    /// whole stencil is in bounds (see [`StencilOffsets::interior_coord`]).
    #[inline(always)]
    pub fn predict_interior(&self, buf: &[f64], gidx: usize) -> f64 {
        let base = gidx as isize;
        if self.cubic {
            let mut si = 0.0;
            let mut so = 0.0;
            for bits in 0..self.corners() {
                si += buf[(base + self.inner[bits]) as usize];
                so += buf[(base + self.outer[bits]) as usize];
            }
            self.wi * si + self.wo * so
        } else {
            let mut s = 0.0;
            for bits in 0..self.corners() {
                s += buf[(base + self.inner[bits]) as usize];
            }
            s / self.corners() as f64
        }
    }

    /// This stencil in `stz-simd` batch-kernel form (the fields mirror each
    /// other one-to-one; `stz_simd::predict_run` reproduces
    /// [`predict_interior`](Self::predict_interior) bit-for-bit).
    #[inline]
    pub fn as_simd(&self) -> stz_simd::Stencil {
        stz_simd::Stencil::new(self.cubic, self.corners(), self.inner, self.outer, self.wi, self.wo)
    }

    /// Whether coordinate `p` along an *active* axis of extent `n` keeps the
    /// whole stencil in bounds for this interpolation order.
    #[inline]
    pub fn interior_coord(&self, p: usize, n: usize) -> bool {
        if self.cubic {
            p >= 3 && p + 3 < n
        } else {
            p + 1 < n
        }
    }

    /// The sub-range `[xa, xb)` of block-local x indices whose grid
    /// x-coordinate `ox + 2·x` is interior (all of `0..bx` when the x axis
    /// is not active).
    pub fn interior_x_range(
        &self,
        x_active: bool,
        ox: usize,
        gnx: usize,
        bx: usize,
    ) -> (usize, usize) {
        if !x_active {
            return (0, bx);
        }
        let (need_lo, need_hi) = if self.cubic { (3usize, 3usize) } else { (0, 1) };
        // ox + 2·x >= need_lo  →  x >= ceil((need_lo - ox) / 2)
        let xa = need_lo.saturating_sub(ox).div_ceil(2);
        // ox + 2·x + need_hi < gnx  →  x <= (gnx - 1 - need_hi - ox) / 2
        let xb = match (gnx.saturating_sub(1 + need_hi)).checked_sub(ox) {
            Some(v) => (v / 2 + 1).min(bx),
            None => 0,
        };
        (xa.min(bx), xb.max(xa.min(bx)))
    }
}

/// Direct prediction (paper §3.1, optimization 1 / Eq. 1): copy the coarse
/// point at the low corner. Used only by the `DirectPred` ablation variant.
#[inline]
pub fn predict_direct(buf: &[f64], dims: Dims, p: [usize; 3], active: &[usize], u: usize) -> f64 {
    let mut c = p;
    for &d in active {
        c[d] = p[d] - u;
    }
    buf[dims.index(c[0], c[1], c[2])]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fill a full-size buffer with `f` evaluated at every parent point (the
    /// tests pretend the whole grid is coarse-reconstructed).
    fn grid(dims: Dims, f: impl Fn(f64, f64, f64) -> f64) -> Vec<f64> {
        let mut buf = vec![0.0; dims.len()];
        for z in 0..dims.nz() {
            for y in 0..dims.ny() {
                for x in 0..dims.nx() {
                    buf[dims.index(z, y, x)] = f(z as f64, y as f64, x as f64);
                }
            }
        }
        buf
    }

    #[test]
    fn weights_normalize() {
        for k in 1..=3 {
            let (wi, wo) = diag_weights(k);
            let total = (wi + wo) * (1usize << k) as f64;
            assert!((total - 1.0).abs() < 1e-15, "k={k}");
        }
    }

    #[test]
    fn k1_matches_paper_eq6() {
        let (wi, wo) = diag_weights(1);
        assert!((wi - 9.0 / 16.0).abs() < 1e-15);
        assert!((wo + 1.0 / 16.0).abs() < 1e-15);
    }

    #[test]
    fn k2_matches_paper_eq7() {
        let (wi, wo) = diag_weights(2);
        assert!((wi - 9.0 / 32.0).abs() < 1e-15);
        assert!((wo + 1.0 / 32.0).abs() < 1e-15);
    }

    #[test]
    fn k3_matches_paper_eq8() {
        let (wi, wo) = diag_weights(3);
        assert!((wi - 9.0 / 64.0).abs() < 1e-15);
        assert!((wo + 1.0 / 64.0).abs() < 1e-15);
    }

    #[test]
    fn linear_k1_is_midpoint() {
        let dims = Dims::d1(9);
        let buf = grid(dims, |_, _, x| 3.0 * x + 1.0);
        let p = predict_point(&buf, dims, [0, 0, 3], &[2], 1, InterpKind::Linear);
        assert!((p - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cubic_k1_exact_on_cubics() {
        let dims = Dims::d1(17);
        let poly = |x: f64| 1.0 + x - 0.3 * x * x + 0.05 * x * x * x;
        let buf = grid(dims, |_, _, x| poly(x));
        // interior point with full stencil: p=7, u=1 -> sources 4,6,8,10
        let p = predict_point(&buf, dims, [0, 0, 7], &[2], 1, InterpKind::Cubic);
        assert!((p - poly(7.0)).abs() < 1e-10, "got {p}, want {}", poly(7.0));
    }

    #[test]
    fn bilinear_k2_exact_on_bilinear_functions() {
        let dims = Dims::d2(9, 9);
        let f = |y: f64, x: f64| 2.0 + y + 3.0 * x + 0.5 * x * y;
        let buf = grid(dims, |_, y, x| f(y, x));
        let p = predict_point(&buf, dims, [0, 3, 5], &[1, 2], 1, InterpKind::Linear);
        assert!((p - f(3.0, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn bicubic_k2_exact_on_smooth_quadratic() {
        // The diagonal bicubic (Eq. 7) reproduces polynomials up to cubic
        // total degree along each diagonal; a separable quadratic is exact.
        let dims = Dims::d2(17, 17);
        let f = |y: f64, x: f64| 1.0 + x + y + x * y + 0.5 * (x * x + y * y);
        let buf = grid(dims, |_, y, x| f(y, x));
        let p = predict_point(&buf, dims, [0, 7, 7], &[1, 2], 1, InterpKind::Cubic);
        assert!((p - f(7.0, 7.0)).abs() < 1e-10, "got {p}, want {}", f(7.0, 7.0));
    }

    #[test]
    fn tricubic_k3_exact_on_trilinear() {
        let dims = Dims::d3(17, 17, 17);
        let f = |z: f64, y: f64, x: f64| 1.0 + x + 2.0 * y + 3.0 * z + x * y * z;
        let buf = grid(dims, f);
        let p = predict_point(&buf, dims, [7, 7, 7], &[0, 1, 2], 1, InterpKind::Cubic);
        assert!((p - f(7.0, 7.0, 7.0)).abs() < 1e-10);
    }

    #[test]
    fn unit2_stencil_spacing() {
        // Level-2 prediction (u = 2) must read points at ±2 and ±6.
        let dims = Dims::d1(17);
        let poly = |x: f64| 2.0 * x * x * x - x;
        let buf = grid(dims, |_, _, x| poly(x));
        let p = predict_point(&buf, dims, [0, 0, 6], &[2], 2, InterpKind::Cubic);
        assert!((p - poly(6.0)).abs() < 1e-9);
    }

    #[test]
    fn boundary_falls_back_to_linear_then_clamp() {
        let dims = Dims::d1(6);
        let buf = grid(dims, |_, _, x| x * x);
        // p=1: outer stencil (-2) out of range -> linear of 0 and 2 -> 2.0
        let p = predict_point(&buf, dims, [0, 0, 1], &[2], 1, InterpKind::Cubic);
        assert!((p - 2.0).abs() < 1e-12);
        // p=5 (last): +u out of range -> clamp to low corner -> value at 4
        let p = predict_point(&buf, dims, [0, 0, 5], &[2], 1, InterpKind::Cubic);
        assert!((p - 16.0).abs() < 1e-12);
    }

    #[test]
    fn k2_partial_boundary_clamps_one_axis() {
        let dims = Dims::d2(4, 6);
        let buf = grid(dims, |_, y, x| 10.0 * y + x);
        // p = (3, 3): y+1 = 4 out of range -> y clamps to 2; x in range.
        let p = predict_point(&buf, dims, [0, 3, 3], &[1, 2], 1, InterpKind::Linear);
        // corners: (2,2), (2,4) for both y choices -> avg = (22 + 24 + 22 + 24)/4
        assert!((p - 23.0).abs() < 1e-12);
    }

    #[test]
    fn direct_pred_takes_low_corner() {
        let dims = Dims::d3(4, 4, 4);
        let buf = grid(dims, |z, y, x| z * 100.0 + y * 10.0 + x);
        let p = predict_direct(&buf, dims, [1, 3, 2], &[0, 1], 1);
        assert!((p - (0.0 * 100.0 + 2.0 * 10.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn stencil_fast_path_matches_slow_path() {
        // For every interior point of every offset class, the precomputed
        // linear-offset stencil must agree exactly with predict_point.
        let dims = Dims::d3(16, 17, 15);
        let buf = grid(dims, |z, y, x| (0.21 * z).sin() + (0.17 * y).cos() * (0.13 * x).sin());
        for kind in [InterpKind::Linear, InterpKind::Cubic] {
            for active in [vec![2], vec![1], vec![0], vec![1, 2], vec![0, 2], vec![0, 1, 2]] {
                let st = StencilOffsets::new(dims, &active, kind);
                for z in 3..13 {
                    for y in 3..14 {
                        for x in 3..12 {
                            let p = [z, y, x];
                            // Only test points with correct parity semantics:
                            // active coords odd, inactive even (as in real use).
                            let ok = (0..3).all(|d| {
                                if active.contains(&d) {
                                    p[d] % 2 == 1
                                } else {
                                    p[d] % 2 == 0
                                }
                            });
                            if !ok {
                                continue;
                            }
                            let slow = predict_point(&buf, dims, p, &active, 1, kind);
                            let fast = st.predict_interior(&buf, dims.index(z, y, x));
                            assert!(
                                (slow - fast).abs() < 1e-15,
                                "{kind:?} {active:?} at {p:?}: {slow} vs {fast}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interior_x_range_bounds() {
        let dims = Dims::d1(16);
        let st = StencilOffsets::new(dims, &[2], InterpKind::Cubic);
        // Block offset ox = 1, stride 2: grid coords 1,3,…,15; bx = 8.
        let (xa, xb) = st.interior_x_range(true, 1, 16, 8);
        // Interior: gx >= 3 and gx + 3 < 16 -> gx in {3,…,11} -> x in {1,…,5}.
        assert_eq!((xa, xb), (1, 6));
        // Inactive x axis: everything interior.
        assert_eq!(st.interior_x_range(false, 0, 16, 8), (0, 8));
        // Linear: gx + 1 < 16 -> x <= 6 … gx=13 ok, gx=15 not.
        let stl = StencilOffsets::new(dims, &[2], InterpKind::Linear);
        let (xa, xb) = stl.interior_x_range(true, 1, 16, 8);
        assert_eq!((xa, xb), (0, 7));
    }

    #[test]
    fn cubic_beats_linear_on_smooth_wave() {
        let dims = Dims::d1(33);
        let f = |x: f64| (0.4 * x).sin();
        let buf = grid(dims, |_, _, x| f(x));
        let mut err_cubic = 0.0f64;
        let mut err_linear = 0.0f64;
        for t in (7..26).step_by(2) {
            let pc = predict_point(&buf, dims, [0, 0, t], &[2], 1, InterpKind::Cubic);
            let pl = predict_point(&buf, dims, [0, 0, t], &[2], 1, InterpKind::Linear);
            err_cubic += (pc - f(t as f64)).abs();
            err_linear += (pl - f(t as f64)).abs();
        }
        assert!(err_cubic < err_linear, "cubic {err_cubic} vs linear {err_linear}");
    }
}
