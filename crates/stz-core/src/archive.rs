//! STZ archive format and the [`StzArchive`] handle.
//!
//! Layout (all integers little-endian / LEB128):
//!
//! ```text
//! magic "STZ1" | version u8 | type_tag u8 | ndim u8 | dims 3×uvarint
//! levels u8 | interp u8 | adaptive u8 | adaptive_ratio f64
//! eb_finest f64 | radius uvarint
//! level-1 block   : length-prefixed SZ3 archive of sub-block A
//! for k in 2..=levels:
//!     nblocks uvarint
//!     nblocks × length-prefixed sub-block stream
//! ```
//!
//! Each finer-level sub-block stream is independently decodable (its own
//! Huffman table, code payload and outlier store), which is what enables the
//! per-sub-block decode skipping of random-access decompression (paper §3.3).
//! Because every block is length-prefixed, a reader can locate any sub-block
//! in O(#blocks) without touching entropy-coded bytes; the offsets are
//! catalogued in a table of contents at parse time.

use crate::config::StzConfig;
use crate::level::LevelPlan;
use std::marker::PhantomData;
use std::ops::Range;
use stz_codec::{ByteReader, ByteWriter, CodecError, Result};
use stz_field::{Dims, Field, Region, Scalar};
use stz_sz3::{ErrorBound, InterpKind};

/// Magic bytes of an STZ archive.
pub const MAGIC: [u8; 4] = *b"STZ1";
/// Current format version.
pub const VERSION: u8 = 1;

/// Parsed archive metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveHeader {
    pub dims: Dims,
    pub type_tag: u8,
    pub levels: u8,
    pub interp: InterpKind,
    pub adaptive: bool,
    pub adaptive_ratio: f64,
    /// Absolute error bound at the finest level.
    pub eb_finest: f64,
    pub radius: i64,
}

impl ArchiveHeader {
    /// Reconstruct the compressor configuration this archive was written
    /// with (error bound already resolved to absolute).
    pub fn config(&self) -> StzConfig {
        StzConfig {
            eb: ErrorBound::Absolute(self.eb_finest),
            levels: self.levels,
            interp: self.interp,
            adaptive: self.adaptive,
            adaptive_ratio: self.adaptive_ratio,
            radius: self.radius,
        }
    }

    /// Per-level absolute error bounds (index 0 = level 1).
    pub fn level_ebs(&self) -> Vec<f64> {
        self.config().level_ebs_from_absolute(self.eb_finest)
    }
}

/// A compressed STZ archive, typed by the element type of the field it
/// encodes.
///
/// The archive owns its bytes and a parsed table of contents; all
/// decompression entry points live here (implemented across
/// [`crate::compressor`], [`crate::progressive`] and
/// [`crate::random_access`]).
#[derive(Debug, Clone)]
pub struct StzArchive<T: Scalar> {
    bytes: Vec<u8>,
    header: ArchiveHeader,
    /// Byte range of the level-1 SZ3 stream.
    l1_range: Range<usize>,
    /// Byte ranges of finer-level sub-block streams:
    /// `block_ranges[k - 2][i]` for level `k`, block index `i` (canonical
    /// order, empty blocks skipped — same order as `LevelPlan`).
    block_ranges: Vec<Vec<Range<usize>>>,
    _marker: PhantomData<fn() -> T>,
}

/// Assemble archive bytes from the parts produced by the compressor.
pub(crate) fn build_bytes(
    header: &ArchiveHeader,
    l1_bytes: &[u8],
    level_blocks: &[Vec<Vec<u8>>],
) -> Vec<u8> {
    let payload: usize =
        l1_bytes.len() + level_blocks.iter().flatten().map(|b| b.len() + 8).sum::<usize>();
    let mut w = ByteWriter::with_capacity(payload + 64);
    w.put_raw(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(header.type_tag);
    w.put_u8(header.dims.ndim());
    let [nz, ny, nx] = header.dims.as_array();
    w.put_uvarint(nz as u64);
    w.put_uvarint(ny as u64);
    w.put_uvarint(nx as u64);
    w.put_u8(header.levels);
    w.put_u8(match header.interp {
        InterpKind::Linear => 0,
        InterpKind::Cubic => 1,
    });
    w.put_u8(header.adaptive as u8);
    w.put_f64(header.adaptive_ratio);
    w.put_f64(header.eb_finest);
    w.put_uvarint(header.radius as u64);
    w.put_block(l1_bytes);
    for blocks in level_blocks {
        w.put_uvarint(blocks.len() as u64);
        for b in blocks {
            w.put_block(b);
        }
    }
    w.finish()
}

impl<T: Scalar> StzArchive<T> {
    /// Parse an archive from bytes, validating the header and cataloguing
    /// every sub-block stream.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        let (header, l1_range, block_ranges) = parse(&bytes)?;
        if header.type_tag != T::TYPE_TAG {
            return Err(CodecError::corrupt(format!(
                "archive element type tag {} does not match requested type",
                header.type_tag
            )));
        }
        // Cross-check block counts against the geometry implied by dims.
        let plan = LevelPlan::new(header.dims, header.levels);
        for (k, ranges) in block_ranges.iter().enumerate() {
            let expect = plan.levels[k + 1].blocks.len();
            if ranges.len() != expect {
                return Err(CodecError::corrupt(format!(
                    "level {} has {} blocks, geometry requires {expect}",
                    k + 2,
                    ranges.len()
                )));
            }
        }
        Ok(StzArchive { bytes, header, l1_range, block_ranges, _marker: PhantomData })
    }

    /// The raw archive bytes (what you would write to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the archive, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total compressed size in bytes.
    pub fn compressed_len(&self) -> usize {
        self.bytes.len()
    }

    /// Compression ratio relative to the uncompressed field.
    pub fn compression_ratio(&self) -> f64 {
        (self.header.dims.len() * T::BYTES) as f64 / self.bytes.len() as f64
    }

    /// Archive metadata.
    pub fn header(&self) -> &ArchiveHeader {
        &self.header
    }

    /// Grid extents of the encoded field.
    pub fn dims(&self) -> Dims {
        self.header.dims
    }

    /// Number of hierarchy levels.
    pub fn num_levels(&self) -> u8 {
        self.header.levels
    }

    /// The hierarchy plan of this archive.
    pub fn plan(&self) -> LevelPlan {
        LevelPlan::new(self.header.dims, self.header.levels)
    }

    /// The level-1 SZ3 stream.
    pub fn l1_bytes(&self) -> &[u8] {
        &self.bytes[self.l1_range.clone()]
    }

    /// Byte range of the level-1 SZ3 stream within [`StzArchive::as_bytes`].
    ///
    /// Together with [`StzArchive::block_range`] this exposes the archive's
    /// section layout, so container writers can index (and checksum) every
    /// independently fetchable byte range without re-parsing the stream.
    pub fn l1_range(&self) -> Range<usize> {
        self.l1_range.clone()
    }

    /// Byte range of the `i`-th sub-block stream of `level` within
    /// [`StzArchive::as_bytes`] (2-based levels, canonical block order).
    pub fn block_range(&self, level: u8, i: usize) -> Range<usize> {
        self.block_ranges[level as usize - 2][i].clone()
    }

    /// The `i`-th sub-block stream of `level` (2-based levels, canonical
    /// block order matching [`LevelPlan`]).
    pub fn block_bytes(&self, level: u8, i: usize) -> &[u8] {
        let r = self.block_ranges[level as usize - 2][i].clone();
        &self.bytes[r]
    }

    /// Number of sub-block streams at `level` (≥ 2).
    pub fn num_blocks(&self, level: u8) -> usize {
        self.block_ranges[level as usize - 2].len()
    }

    /// Bytes that must be read to decompress levels `1..=k` — the
    /// progressive I/O cost (paper §3.3: the coarsest dump is ~1.6% of the
    /// full data). `k = 0` means nothing decoded yet and returns 0.
    pub fn bytes_through_level(&self, k: u8) -> usize {
        if k == 0 {
            return 0;
        }
        let mut total = self.l1_range.len();
        for level in 2..=k {
            total += self.block_ranges[level as usize - 2].iter().map(|r| r.len()).sum::<usize>();
        }
        total
    }

    /// Full decompression (serial). See [`crate::compressor`].
    pub fn decompress(&self) -> Result<Field<T>> {
        crate::compressor::decompress_impl::<T, Self>(self, self.header.levels, false)
    }

    /// Full decompression using the rayon thread pool.
    pub fn decompress_parallel(&self) -> Result<Field<T>> {
        crate::compressor::decompress_impl::<T, Self>(self, self.header.levels, true)
    }

    /// Progressive decompression to hierarchy level `k` (1 = coarsest): the
    /// stride-`2^(levels-k)` preview of the field.
    pub fn decompress_level(&self, k: u8) -> Result<Field<T>> {
        crate::compressor::decompress_impl::<T, Self>(self, k, false)
    }

    /// Incremental progressive decoder.
    pub fn progressive(&self) -> crate::progressive::ProgressiveDecoder<'_, T> {
        crate::progressive::ProgressiveDecoder::new(self)
    }

    /// Random-access decompression of `region` at full resolution.
    pub fn decompress_region(&self, region: &Region) -> Result<Field<T>> {
        crate::random_access::decompress_region::<T, Self>(self, region).map(|(f, _)| f)
    }

    /// Random-access decompression with the per-stage time breakdown of the
    /// paper's Table 4.
    pub fn decompress_region_with_breakdown(
        &self,
        region: &Region,
    ) -> Result<(Field<T>, crate::random_access::AccessBreakdown)> {
        crate::random_access::decompress_region::<T, Self>(self, region)
    }
}

type Parsed = (ArchiveHeader, Range<usize>, Vec<Vec<Range<usize>>>);

fn parse(bytes: &[u8]) -> Result<Parsed> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_raw(4)?;
    if magic != MAGIC {
        return Err(CodecError::corrupt("bad STZ magic"));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(CodecError::unsupported(format!("STZ format version {version}")));
    }
    let type_tag = r.get_u8()?;
    if type_tag > 1 {
        return Err(CodecError::unsupported(format!("element type tag {type_tag}")));
    }
    let ndim = r.get_u8()?;
    if !(1..=3).contains(&ndim) {
        return Err(CodecError::corrupt(format!("invalid ndim {ndim}")));
    }
    let nz = r.get_uvarint()?;
    let ny = r.get_uvarint()?;
    let nx = r.get_uvarint()?;
    if nz == 0
        || ny == 0
        || nx == 0
        || nz.saturating_mul(ny).saturating_mul(nx) > stz_sz3::stream::MAX_POINTS
    {
        return Err(CodecError::corrupt(format!("invalid dims {nz}x{ny}x{nx}")));
    }
    if (ndim < 3 && nz != 1) || (ndim < 2 && ny != 1) {
        return Err(CodecError::corrupt("dims inconsistent with ndim"));
    }
    let levels = r.get_u8()?;
    if !(2..=4).contains(&levels) {
        return Err(CodecError::corrupt(format!("invalid level count {levels}")));
    }
    let interp = match r.get_u8()? {
        0 => InterpKind::Linear,
        1 => InterpKind::Cubic,
        k => return Err(CodecError::unsupported(format!("interp kind {k}"))),
    };
    let adaptive = match r.get_u8()? {
        0 => false,
        1 => true,
        k => return Err(CodecError::corrupt(format!("invalid adaptive flag {k}"))),
    };
    let adaptive_ratio = r.get_f64()?;
    if !(adaptive_ratio >= 1.0 && adaptive_ratio.is_finite()) {
        return Err(CodecError::corrupt(format!("invalid adaptive ratio {adaptive_ratio}")));
    }
    let eb_finest = r.get_f64()?;
    if !(eb_finest > 0.0 && eb_finest.is_finite()) {
        return Err(CodecError::corrupt(format!("invalid error bound {eb_finest}")));
    }
    let radius = r.get_uvarint()?;
    if radius == 0 || radius > i64::MAX as u64 {
        return Err(CodecError::corrupt("invalid quantizer radius"));
    }

    let header = ArchiveHeader {
        dims: Dims::from_parts(ndim, nz as usize, ny as usize, nx as usize),
        type_tag,
        levels,
        interp,
        adaptive,
        adaptive_ratio,
        eb_finest,
        radius: radius as i64,
    };

    // Catalogue block ranges.
    let l1 = r.get_block()?;
    let l1_start = l1.as_ptr() as usize - bytes.as_ptr() as usize;
    let l1_range = l1_start..l1_start + l1.len();

    let mut block_ranges = Vec::with_capacity(levels as usize - 1);
    for _ in 2..=levels {
        let n = r.get_uvarint()?;
        if n > 8 {
            return Err(CodecError::corrupt(format!("level with {n} blocks")));
        }
        let mut ranges = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let b = r.get_block()?;
            let start = b.as_ptr() as usize - bytes.as_ptr() as usize;
            ranges.push(start..start + b.len());
        }
        block_ranges.push(ranges);
    }
    if r.remaining() != 0 {
        return Err(CodecError::corrupt("trailing bytes after archive"));
    }
    Ok((header, l1_range, block_ranges))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> ArchiveHeader {
        ArchiveHeader {
            dims: Dims::d3(8, 9, 10),
            type_tag: 0,
            levels: 3,
            interp: InterpKind::Cubic,
            adaptive: true,
            adaptive_ratio: 2.5,
            eb_finest: 1e-3,
            radius: 1 << 15,
        }
    }

    fn sample_blocks(header: &ArchiveHeader) -> (Vec<u8>, Vec<Vec<Vec<u8>>>) {
        let plan = LevelPlan::new(header.dims, header.levels);
        let l1 = vec![1u8, 2, 3];
        let blocks: Vec<Vec<Vec<u8>>> = plan.levels[1..]
            .iter()
            .map(|lv| lv.blocks.iter().map(|b| vec![b.bits as u8; 4]).collect())
            .collect();
        (l1, blocks)
    }

    #[test]
    fn build_parse_roundtrip() {
        let h = sample_header();
        let (l1, blocks) = sample_blocks(&h);
        let bytes = build_bytes(&h, &l1, &blocks);
        let archive = StzArchive::<f32>::from_bytes(bytes).unwrap();
        assert_eq!(archive.header(), &h);
        assert_eq!(archive.l1_bytes(), &l1[..]);
        assert_eq!(archive.num_blocks(2), blocks[0].len());
        assert_eq!(archive.num_blocks(3), blocks[1].len());
        for (i, b) in blocks[0].iter().enumerate() {
            assert_eq!(archive.block_bytes(2, i), &b[..]);
        }
    }

    #[test]
    fn wrong_type_rejected() {
        let h = sample_header();
        let (l1, blocks) = sample_blocks(&h);
        let bytes = build_bytes(&h, &l1, &blocks);
        assert!(StzArchive::<f64>::from_bytes(bytes).is_err());
    }

    #[test]
    fn wrong_block_count_rejected() {
        let h = sample_header();
        let (l1, mut blocks) = sample_blocks(&h);
        blocks[0].pop();
        let bytes = build_bytes(&h, &l1, &blocks);
        assert!(StzArchive::<f32>::from_bytes(bytes).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let h = sample_header();
        let (l1, blocks) = sample_blocks(&h);
        let bytes = build_bytes(&h, &l1, &blocks);
        for cut in 0..bytes.len() {
            let _ = StzArchive::<f32>::from_bytes(bytes[..cut].to_vec());
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let h = sample_header();
        let (l1, blocks) = sample_blocks(&h);
        let mut bytes = build_bytes(&h, &l1, &blocks);
        bytes.push(0xAB);
        assert!(StzArchive::<f32>::from_bytes(bytes).is_err());
    }

    #[test]
    fn bytes_through_level_monotone() {
        let h = sample_header();
        let (l1, blocks) = sample_blocks(&h);
        let bytes = build_bytes(&h, &l1, &blocks);
        let total = bytes.len();
        let archive = StzArchive::<f32>::from_bytes(bytes).unwrap();
        let b1 = archive.bytes_through_level(1);
        let b2 = archive.bytes_through_level(2);
        let b3 = archive.bytes_through_level(3);
        assert!(b1 < b2 && b2 < b3);
        assert!(b3 <= total);
        assert_eq!(b1, 3);
    }

    #[test]
    fn header_config_roundtrip() {
        let h = sample_header();
        let c = h.config();
        assert_eq!(c.levels, 3);
        let ebs = h.level_ebs();
        assert!((ebs[2] - 1e-3).abs() < 1e-18);
    }
}
