//! STZ compressor configuration.

use std::fmt;
use stz_field::{Field, Scalar};
use stz_sz3::{ErrorBound, InterpKind};

/// A rejected [`StzConfig`], diagnosed *before* any compression work.
///
/// The compressor validates its configuration up front and returns one of
/// these typed classes, so a bad bound or level count surfaces as a clean
/// error at the API boundary instead of an assert (or a wrong answer) deep
/// inside the level pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The error bound is non-finite or not strictly positive.
    BadErrorBound(f64),
    /// The level count is outside the supported `2..=4` range (0 and 1
    /// included — a hierarchy needs at least two levels).
    BadLevels(u8),
    /// The adaptive ratio is non-finite or not strictly positive.
    BadAdaptiveRatio(f64),
    /// The quantizer radius is not strictly positive.
    BadRadius(i64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadErrorBound(eb) => {
                write!(f, "error bound {eb} must be positive and finite")
            }
            ConfigError::BadLevels(levels) => {
                write!(f, "{levels} levels requested; STZ supports 2–4")
            }
            ConfigError::BadAdaptiveRatio(r) => {
                write!(f, "adaptive ratio {r} must be positive and finite")
            }
            ConfigError::BadRadius(r) => {
                write!(f, "quantizer radius {r} must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Default ratio between consecutive level error bounds (paper §3.1,
/// prediction optimization 5: `eb_l2 = 2.5 × eb_l1`).
pub const DEFAULT_ADAPTIVE_RATIO: f64 = 2.5;

/// Configuration of the STZ streaming compressor.
///
/// The error bound `eb` is the *user-facing* point-wise bound: it applies to
/// the finest level, which dominates the data (87.5% in 3-D). With
/// `adaptive` enabled, each coarser level is compressed `adaptive_ratio`
/// times more precisely, both because coarser-level errors propagate into
/// finer-level predictions and because the coarse levels serve as standalone
/// progressive previews (paper §3.1, optimization 5).
#[derive(Debug, Clone, Copy)]
pub struct StzConfig {
    /// Error bound at the finest level.
    pub eb: ErrorBound,
    /// Number of hierarchy levels (2–4; the paper evaluates 2 and 3 and
    /// proposes 4 for ≥4096³ grids).
    pub levels: u8,
    /// Interpolation order of the hierarchical prediction.
    pub interp: InterpKind,
    /// Whether coarser levels use tighter error bounds.
    pub adaptive: bool,
    /// Ratio between consecutive level bounds when `adaptive` is set.
    pub adaptive_ratio: f64,
    /// Quantizer radius (maximum |code| before escaping).
    pub radius: i64,
}

impl StzConfig {
    /// The paper's default: 3-level partition, cubic interpolation, adaptive
    /// error bounds.
    pub fn three_level(eb: f64) -> Self {
        StzConfig {
            eb: ErrorBound::Absolute(eb),
            levels: 3,
            interp: InterpKind::Cubic,
            adaptive: true,
            adaptive_ratio: DEFAULT_ADAPTIVE_RATIO,
            radius: 1 << 15,
        }
    }

    /// The 2-level variant of §3.1.
    pub fn two_level(eb: f64) -> Self {
        StzConfig { levels: 2, ..StzConfig::three_level(eb) }
    }

    /// Value-range-relative error bound variant.
    pub fn three_level_relative(rel: f64) -> Self {
        StzConfig { eb: ErrorBound::Relative(rel), ..StzConfig::three_level(0.0_f64.max(1.0)) }
    }

    pub fn with_levels(mut self, levels: u8) -> Self {
        assert!((2..=4).contains(&levels), "STZ supports 2–4 levels");
        self.levels = levels;
        self
    }

    pub fn with_interp(mut self, interp: InterpKind) -> Self {
        self.interp = interp;
        self
    }

    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    pub fn with_radius(mut self, radius: i64) -> Self {
        assert!(radius > 0);
        self.radius = radius;
        self
    }

    /// Check the configuration, classifying the first problem found.
    ///
    /// The compressor calls this before touching the field, so a config
    /// assembled from raw struct fields (bypassing the checked builders)
    /// still fails cleanly: a NaN or negative bound, a 0/1/5-level
    /// hierarchy, a degenerate adaptive ratio, or a non-positive radius
    /// each map to their [`ConfigError`] variant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let raw_eb = match self.eb {
            ErrorBound::Absolute(eb) | ErrorBound::Relative(eb) => eb,
        };
        if !(raw_eb > 0.0 && raw_eb.is_finite()) {
            return Err(ConfigError::BadErrorBound(raw_eb));
        }
        if !(2..=4).contains(&self.levels) {
            return Err(ConfigError::BadLevels(self.levels));
        }
        if self.adaptive && !(self.adaptive_ratio > 0.0 && self.adaptive_ratio.is_finite()) {
            return Err(ConfigError::BadAdaptiveRatio(self.adaptive_ratio));
        }
        if self.radius <= 0 {
            return Err(ConfigError::BadRadius(self.radius));
        }
        Ok(())
    }

    /// Resolve the per-level absolute error bounds for a concrete field.
    /// Index 0 is level 1 (coarsest); the last entry is the finest level and
    /// equals the user bound.
    pub fn level_ebs<T: Scalar>(&self, field: &Field<T>) -> Vec<f64> {
        let eb = self.eb.absolute_for(field);
        self.level_ebs_from_absolute(eb)
    }

    /// Same as [`StzConfig::level_ebs`] given an already-resolved bound.
    pub fn level_ebs_from_absolute(&self, eb: f64) -> Vec<f64> {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        let ratio = if self.adaptive { self.adaptive_ratio } else { 1.0 };
        (0..self.levels)
            .map(|k| {
                let depth = (self.levels - 1 - k) as i32;
                eb / ratio.powi(depth)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    #[test]
    fn three_level_defaults() {
        let c = StzConfig::three_level(0.01);
        assert_eq!(c.levels, 3);
        assert_eq!(c.interp, InterpKind::Cubic);
        assert!(c.adaptive);
    }

    #[test]
    fn adaptive_ebs_scale_by_ratio() {
        let c = StzConfig::three_level(1.0);
        let ebs = c.level_ebs_from_absolute(1.0);
        assert_eq!(ebs.len(), 3);
        assert!((ebs[2] - 1.0).abs() < 1e-15);
        assert!((ebs[1] - 1.0 / 2.5).abs() < 1e-15);
        assert!((ebs[0] - 1.0 / 6.25).abs() < 1e-12);
    }

    #[test]
    fn non_adaptive_ebs_uniform() {
        let c = StzConfig::three_level(0.5).with_adaptive(false);
        let ebs = c.level_ebs_from_absolute(0.5);
        assert!(ebs.iter().all(|&e| (e - 0.5).abs() < 1e-15));
    }

    #[test]
    fn relative_bound_resolves_against_range() {
        let f = Field::from_fn(Dims::d1(3), |_, _, x| x as f32 * 10.0); // range 20
        let c = StzConfig::three_level_relative(1e-2);
        let ebs = c.level_ebs(&f);
        assert!((ebs[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn five_levels_rejected() {
        let _ = StzConfig::three_level(0.1).with_levels(5);
    }

    #[test]
    fn validate_accepts_every_checked_builder_output() {
        for cfg in [
            StzConfig::three_level(1e-3),
            StzConfig::two_level(0.5),
            StzConfig::three_level_relative(1e-4),
            StzConfig::three_level(1.0).with_levels(4).with_adaptive(false),
        ] {
            assert_eq!(cfg.validate(), Ok(()), "{cfg:?}");
        }
    }

    #[test]
    fn validate_classifies_bad_bounds() {
        for eb in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let cfg = StzConfig { eb: ErrorBound::Absolute(eb), ..StzConfig::three_level(1.0) };
            assert!(matches!(cfg.validate(), Err(ConfigError::BadErrorBound(_))), "abs {eb}");
            let cfg = StzConfig { eb: ErrorBound::Relative(eb), ..StzConfig::three_level(1.0) };
            assert!(matches!(cfg.validate(), Err(ConfigError::BadErrorBound(_))), "rel {eb}");
        }
    }

    #[test]
    fn validate_classifies_bad_levels_ratio_radius() {
        for levels in [0u8, 1, 5, 255] {
            let cfg = StzConfig { levels, ..StzConfig::three_level(1e-3) };
            assert_eq!(cfg.validate(), Err(ConfigError::BadLevels(levels)));
        }
        for ratio in [0.0, -2.5, f64::NAN, f64::INFINITY] {
            let cfg = StzConfig { adaptive_ratio: ratio, ..StzConfig::three_level(1e-3) };
            assert!(matches!(cfg.validate(), Err(ConfigError::BadAdaptiveRatio(_))), "{ratio}");
            // A degenerate ratio is harmless when adaptive bounds are off.
            let cfg = StzConfig { adaptive: false, ..cfg };
            assert_eq!(cfg.validate(), Ok(()), "{ratio} non-adaptive");
        }
        for radius in [0i64, -1, i64::MIN] {
            let cfg = StzConfig { radius, ..StzConfig::three_level(1e-3) };
            assert_eq!(cfg.validate(), Err(ConfigError::BadRadius(radius)));
        }
    }

    #[test]
    fn compressor_returns_typed_rejection_instead_of_panicking() {
        use crate::StzCompressor;
        let field = Field::from_fn(Dims::d3(8, 8, 8), |z, y, x| (z + y + x) as f32);
        for cfg in [
            StzConfig { eb: ErrorBound::Absolute(f64::NAN), ..StzConfig::three_level(1.0) },
            StzConfig { eb: ErrorBound::Absolute(-1e-3), ..StzConfig::three_level(1.0) },
            StzConfig { levels: 0, ..StzConfig::three_level(1e-3) },
            StzConfig { levels: 9, ..StzConfig::three_level(1e-3) },
            StzConfig { adaptive_ratio: f64::NAN, ..StzConfig::three_level(1e-3) },
            StzConfig { radius: 0, ..StzConfig::three_level(1e-3) },
        ] {
            let err = StzCompressor::new(cfg).compress(&field).unwrap_err();
            assert!(err.to_string().contains("invalid configuration"), "{cfg:?} -> {err}");
        }
        // A relative bound over a constant field resolves through the
        // `MIN_POSITIVE` fallback — still a success, never an assert.
        let flat = Field::from_fn(Dims::d3(8, 8, 8), |_, _, _| 1.0f32);
        assert!(StzCompressor::new(StzConfig::three_level_relative(1e-3)).compress(&flat).is_ok());
    }
}
