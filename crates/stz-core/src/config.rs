//! STZ compressor configuration.

use stz_field::{Field, Scalar};
use stz_sz3::{ErrorBound, InterpKind};

/// Default ratio between consecutive level error bounds (paper §3.1,
/// prediction optimization 5: `eb_l2 = 2.5 × eb_l1`).
pub const DEFAULT_ADAPTIVE_RATIO: f64 = 2.5;

/// Configuration of the STZ streaming compressor.
///
/// The error bound `eb` is the *user-facing* point-wise bound: it applies to
/// the finest level, which dominates the data (87.5% in 3-D). With
/// `adaptive` enabled, each coarser level is compressed `adaptive_ratio`
/// times more precisely, both because coarser-level errors propagate into
/// finer-level predictions and because the coarse levels serve as standalone
/// progressive previews (paper §3.1, optimization 5).
#[derive(Debug, Clone, Copy)]
pub struct StzConfig {
    /// Error bound at the finest level.
    pub eb: ErrorBound,
    /// Number of hierarchy levels (2–4; the paper evaluates 2 and 3 and
    /// proposes 4 for ≥4096³ grids).
    pub levels: u8,
    /// Interpolation order of the hierarchical prediction.
    pub interp: InterpKind,
    /// Whether coarser levels use tighter error bounds.
    pub adaptive: bool,
    /// Ratio between consecutive level bounds when `adaptive` is set.
    pub adaptive_ratio: f64,
    /// Quantizer radius (maximum |code| before escaping).
    pub radius: i64,
}

impl StzConfig {
    /// The paper's default: 3-level partition, cubic interpolation, adaptive
    /// error bounds.
    pub fn three_level(eb: f64) -> Self {
        StzConfig {
            eb: ErrorBound::Absolute(eb),
            levels: 3,
            interp: InterpKind::Cubic,
            adaptive: true,
            adaptive_ratio: DEFAULT_ADAPTIVE_RATIO,
            radius: 1 << 15,
        }
    }

    /// The 2-level variant of §3.1.
    pub fn two_level(eb: f64) -> Self {
        StzConfig { levels: 2, ..StzConfig::three_level(eb) }
    }

    /// Value-range-relative error bound variant.
    pub fn three_level_relative(rel: f64) -> Self {
        StzConfig { eb: ErrorBound::Relative(rel), ..StzConfig::three_level(0.0_f64.max(1.0)) }
    }

    pub fn with_levels(mut self, levels: u8) -> Self {
        assert!((2..=4).contains(&levels), "STZ supports 2–4 levels");
        self.levels = levels;
        self
    }

    pub fn with_interp(mut self, interp: InterpKind) -> Self {
        self.interp = interp;
        self
    }

    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    pub fn with_radius(mut self, radius: i64) -> Self {
        assert!(radius > 0);
        self.radius = radius;
        self
    }

    /// Resolve the per-level absolute error bounds for a concrete field.
    /// Index 0 is level 1 (coarsest); the last entry is the finest level and
    /// equals the user bound.
    pub fn level_ebs<T: Scalar>(&self, field: &Field<T>) -> Vec<f64> {
        let eb = self.eb.absolute_for(field);
        self.level_ebs_from_absolute(eb)
    }

    /// Same as [`StzConfig::level_ebs`] given an already-resolved bound.
    pub fn level_ebs_from_absolute(&self, eb: f64) -> Vec<f64> {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        let ratio = if self.adaptive { self.adaptive_ratio } else { 1.0 };
        (0..self.levels)
            .map(|k| {
                let depth = (self.levels - 1 - k) as i32;
                eb / ratio.powi(depth)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    #[test]
    fn three_level_defaults() {
        let c = StzConfig::three_level(0.01);
        assert_eq!(c.levels, 3);
        assert_eq!(c.interp, InterpKind::Cubic);
        assert!(c.adaptive);
    }

    #[test]
    fn adaptive_ebs_scale_by_ratio() {
        let c = StzConfig::three_level(1.0);
        let ebs = c.level_ebs_from_absolute(1.0);
        assert_eq!(ebs.len(), 3);
        assert!((ebs[2] - 1.0).abs() < 1e-15);
        assert!((ebs[1] - 1.0 / 2.5).abs() < 1e-15);
        assert!((ebs[0] - 1.0 / 6.25).abs() < 1e-12);
    }

    #[test]
    fn non_adaptive_ebs_uniform() {
        let c = StzConfig::three_level(0.5).with_adaptive(false);
        let ebs = c.level_ebs_from_absolute(0.5);
        assert!(ebs.iter().all(|&e| (e - 0.5).abs() < 1e-15));
    }

    #[test]
    fn relative_bound_resolves_against_range() {
        let f = Field::from_fn(Dims::d1(3), |_, _, x| x as f32 * 10.0); // range 20
        let c = StzConfig::three_level_relative(1e-2);
        let ebs = c.level_ebs(&f);
        assert!((ebs[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn five_levels_rejected() {
        let _ = StzConfig::three_level(0.1).with_levels(5);
    }
}
