//! Hierarchy geometry: which sub-lattice belongs to which level (paper §3.2).
//!
//! For an `L`-level hierarchy over a d-dimensional grid:
//!
//! * **Level 1** is the offset-origin sub-lattice with stride `2^(L-1)`
//!   (stride 4 for the paper's 3-level scheme: sub-block *A*, 1/64 of a 3-D
//!   grid).
//! * **Level k** (`k ≥ 2`) has *unit* `u = 2^(L-k)` and stride `2u`; its
//!   sub-blocks sit at offsets `u · (o)` for every nonzero binary offset
//!   `o ∈ {0,1}^d`. Together with all coarser levels they tile the lattice of
//!   stride `u` exactly.
//!
//! Every geometric fact the compressor, the progressive decoder and the
//! random-access decoder need is derived from `Dims` + `levels` alone, so
//! the two sides can never disagree.

use stz_field::{partition::offset_from_bits, Dims, SubLattice};

/// One sub-block of one hierarchy level.
///
/// Each block has two coordinate systems:
///
/// * **parent coordinates** — positions in the original grid
///   ([`BlockSpec::lattice`]); used to gather original values and to place
///   final reconstructions.
/// * **grid coordinates** — positions in the level's *working grid*, the
///   stride-`unit` coarsening of the parent ([`BlockSpec::grid_lattice`]).
///   In grid coordinates every level looks like a stride-2 refinement with
///   prediction unit 1, so prediction kernels always run on a compact,
///   cache-friendly grid (this realizes the locality advantage over SZ3
///   discussed in paper §4.4).
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// The raw offset bit pattern `zyx` (canonical block id within a level;
    /// stable even when other blocks are empty).
    pub bits: usize,
    /// Offset of the sub-lattice in parent coordinates.
    pub offset: [usize; 3],
    /// Prediction unit in parent coordinates: targets are `unit` away (per
    /// active axis) from their coarse sources.
    pub unit: usize,
    /// Axes along which this block is displaced from the coarse lattice
    /// (the paper's 1-, 2-, or 3-Manhattan-unit cases of Fig. 7).
    pub active_axes: Vec<usize>,
    /// The sub-lattice in parent coordinates.
    pub lattice: SubLattice,
    /// The same sub-lattice in working-grid coordinates (offset ∈ {0,1}³,
    /// stride 2 over the level's working grid).
    pub grid_lattice: SubLattice,
}

/// One hierarchy level.
#[derive(Debug, Clone)]
pub struct LevelSpec {
    /// 1-based level index.
    pub index: u8,
    /// Sampling stride of this level's sub-lattices in parent coordinates.
    pub stride: usize,
    /// Prediction unit (0 for level 1, which is SZ3-compressed instead).
    pub unit: usize,
    /// Dims of this level's working grid: the stride-`unit` coarsening of
    /// the parent grid, which is fully known once this level is decoded.
    pub grid_dims: Dims,
    /// Dims of the previous level's working grid (stride `2·unit`); its
    /// points sit at the even positions of this level's working grid.
    pub prev_grid_dims: Dims,
    /// Non-empty sub-blocks, in canonical `bits` order.
    pub blocks: Vec<BlockSpec>,
}

impl LevelSpec {
    /// Total number of points on this level.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.lattice.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// The complete hierarchy plan for a grid.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    pub dims: Dims,
    pub levels: Vec<LevelSpec>,
}

impl LevelPlan {
    /// Build the `num_levels`-level plan for `dims`.
    pub fn new(dims: Dims, num_levels: u8) -> Self {
        assert!((2..=4).contains(&num_levels), "STZ supports 2–4 levels");
        let ndim = dims.ndim();
        let mut levels = Vec::with_capacity(num_levels as usize);

        // Level 1: origin sub-lattice at the coarsest stride.
        let stride1 = 1usize << (num_levels - 1);
        let l1 =
            SubLattice::new(dims, [0, 0, 0], stride1).expect("origin sub-lattice is never empty");
        let l1_grid_dims = dims.coarsened(stride1);
        levels.push(LevelSpec {
            index: 1,
            stride: stride1,
            unit: 0,
            grid_dims: l1_grid_dims,
            prev_grid_dims: l1_grid_dims,
            blocks: vec![BlockSpec {
                bits: 0,
                offset: [0, 0, 0],
                unit: 0,
                active_axes: Vec::new(),
                lattice: l1,
                grid_lattice: SubLattice::new(l1_grid_dims, [0, 0, 0], 1)
                    .expect("origin sub-lattice is never empty"),
            }],
        });

        // Levels 2..=L.
        for k in 2..=num_levels {
            let unit = 1usize << (num_levels - k);
            let stride = 2 * unit;
            let grid_dims = dims.coarsened(unit);
            let prev_grid_dims = dims.coarsened(stride);
            let mut blocks = Vec::new();
            for bits in 1..(1usize << ndim) {
                let o = offset_from_bits(ndim, bits);
                let offset = [o[0] * unit, o[1] * unit, o[2] * unit];
                if let Some(lattice) = SubLattice::new(dims, offset, stride) {
                    let grid_lattice = SubLattice::new(grid_dims, o, 2)
                        .expect("grid lattice empty while parent lattice is not");
                    debug_assert_eq!(
                        grid_lattice.dims().as_array(),
                        lattice.dims().as_array(),
                        "grid/parent lattice extent mismatch"
                    );
                    let active_axes = (0..3).filter(|&d| o[d] == 1).collect::<Vec<_>>();
                    blocks.push(BlockSpec {
                        bits,
                        offset,
                        unit,
                        active_axes,
                        lattice,
                        grid_lattice,
                    });
                }
            }
            levels.push(LevelSpec { index: k, stride, unit, grid_dims, prev_grid_dims, blocks });
        }

        LevelPlan { dims, levels }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> u8 {
        self.levels.len() as u8
    }

    /// The level-1 sub-lattice (sub-block *A*).
    pub fn level1(&self) -> &SubLattice {
        &self.levels[0].blocks[0].lattice
    }

    /// Dims of the coarse preview available after decoding levels `1..=k`:
    /// the stride-`2^(L-k)` origin lattice.
    pub fn preview_dims(&self, k: u8) -> Dims {
        assert!((1..=self.num_levels()).contains(&k));
        let stride = 1usize << (self.num_levels() - k);
        self.dims.coarsened(stride)
    }

    /// Fraction of all points on levels `1..=k` (e.g. 1/64 ≈ 1.6% for level 1
    /// of a 3-level 3-D hierarchy, as quoted throughout the paper).
    pub fn cumulative_fraction(&self, k: u8) -> f64 {
        let pts: usize = self.levels[..k as usize].iter().map(|l| l.len()).sum();
        pts as f64 / self.dims.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn three_level_3d_block_counts() {
        let plan = LevelPlan::new(Dims::d3(16, 16, 16), 3);
        assert_eq!(plan.levels.len(), 3);
        assert_eq!(plan.levels[0].blocks.len(), 1);
        assert_eq!(plan.levels[1].blocks.len(), 7);
        assert_eq!(plan.levels[2].blocks.len(), 7);
        assert_eq!(plan.levels[0].stride, 4);
        assert_eq!(plan.levels[1].stride, 4);
        assert_eq!(plan.levels[1].unit, 2);
        assert_eq!(plan.levels[2].stride, 2);
        assert_eq!(plan.levels[2].unit, 1);
    }

    #[test]
    fn two_level_2d_block_counts() {
        let plan = LevelPlan::new(Dims::d2(8, 8), 2);
        assert_eq!(plan.levels[0].blocks.len(), 1);
        assert_eq!(plan.levels[1].blocks.len(), 3);
        assert_eq!(plan.levels[0].stride, 2);
    }

    #[test]
    fn levels_tile_grid_exactly() {
        for dims in [
            Dims::d3(16, 16, 16),
            Dims::d3(13, 10, 7),
            Dims::d2(9, 14),
            Dims::d1(21),
            Dims::d3(5, 5, 5),
        ] {
            for num_levels in 2..=3u8 {
                let plan = LevelPlan::new(dims, num_levels);
                let mut seen = HashSet::new();
                for level in &plan.levels {
                    for block in &level.blocks {
                        block.lattice.for_each_point(|_, z, y, x| {
                            assert!(
                                seen.insert((z, y, x)),
                                "{dims} L{} block {:?} repeats ({z},{y},{x})",
                                level.index,
                                block.offset
                            );
                        });
                    }
                }
                assert_eq!(seen.len(), dims.len(), "{dims} {num_levels}-level coverage");
            }
        }
    }

    #[test]
    fn level_fractions_match_paper() {
        // 3-level 3-D: level 1 = 1/64 ≈ 1.6% (paper §3.2); levels 1+2 = 1/8.
        let plan = LevelPlan::new(Dims::d3(64, 64, 64), 3);
        assert!((plan.cumulative_fraction(1) - 1.0 / 64.0).abs() < 1e-12);
        assert!((plan.cumulative_fraction(2) - 1.0 / 8.0).abs() < 1e-12);
        assert!((plan.cumulative_fraction(3) - 1.0).abs() < 1e-12);
        // 2-level: level 1 = 1/8 = 12.5% (paper §3.2).
        let plan2 = LevelPlan::new(Dims::d3(64, 64, 64), 2);
        assert!((plan2.cumulative_fraction(1) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn active_axes_match_offsets() {
        let plan = LevelPlan::new(Dims::d3(16, 16, 16), 3);
        for block in &plan.levels[1].blocks {
            let expect: Vec<usize> = (0..3).filter(|&d| block.offset[d] != 0).collect();
            assert_eq!(block.active_axes, expect);
            // Level-2 offsets are multiples of unit=2.
            assert!(block.offset.iter().all(|&o| o % 2 == 0));
        }
    }

    #[test]
    fn preview_dims_at_each_level() {
        let plan = LevelPlan::new(Dims::d3(17, 9, 33), 3);
        assert_eq!(plan.preview_dims(1).as_array(), [5, 3, 9]);
        assert_eq!(plan.preview_dims(2).as_array(), [9, 5, 17]);
        assert_eq!(plan.preview_dims(3).as_array(), [17, 9, 33]);
    }

    #[test]
    fn grid_and_parent_lattices_agree() {
        // Every block's grid-coordinate lattice must have identical extents
        // to its parent-coordinate lattice, and map point-for-point:
        // parent = unit * grid.
        for dims in [Dims::d3(16, 16, 16), Dims::d3(11, 6, 9), Dims::d2(7, 10)] {
            let plan = LevelPlan::new(dims, 3);
            for level in plan.levels.iter().skip(1) {
                for block in &level.blocks {
                    assert_eq!(
                        block.grid_lattice.dims().as_array(),
                        block.lattice.dims().as_array()
                    );
                    let u = block.unit;
                    let (bz, by, bx) = (0, 0, 0);
                    let parent = block.lattice.to_parent(bz, by, bx);
                    let grid = block.grid_lattice.to_parent(bz, by, bx);
                    assert_eq!(parent, (grid.0 * u, grid.1 * u, grid.2 * u));
                }
                assert_eq!(level.grid_dims, plan.dims.coarsened(level.unit));
            }
        }
    }

    #[test]
    fn grid_dims_chain() {
        let plan = LevelPlan::new(Dims::d3(16, 16, 16), 3);
        // Level 2 works in the stride-2 grid, refined from the stride-4 grid.
        assert_eq!(plan.levels[1].grid_dims.as_array(), [8, 8, 8]);
        assert_eq!(plan.levels[1].prev_grid_dims.as_array(), [4, 4, 4]);
        assert_eq!(plan.levels[2].grid_dims.as_array(), [16, 16, 16]);
        assert_eq!(plan.levels[2].prev_grid_dims.as_array(), [8, 8, 8]);
    }

    #[test]
    fn four_level_plan_supported() {
        let plan = LevelPlan::new(Dims::d3(32, 32, 32), 4);
        assert_eq!(plan.levels[0].stride, 8);
        assert_eq!(plan.num_levels(), 4);
        let mut seen = HashSet::new();
        for level in &plan.levels {
            for block in &level.blocks {
                block.lattice.for_each_point(|_, z, y, x| {
                    assert!(seen.insert((z, y, x)));
                });
            }
        }
        assert_eq!(seen.len(), 32 * 32 * 32);
    }
}
