//! STZ compression and full/progressive decompression drivers.
//!
//! Compression proceeds level by level on *working grids* — successively
//! finer coarsenings of the original grid (see [`crate::level`]). At each
//! level transition, the known coarse grid is scattered into the even
//! positions of the next working grid, every sub-block's points are
//! predicted from it with the multi-dimensional kernels, and the residuals
//! are quantized and Huffman-coded per sub-block.
//!
//! Because finer-level points never depend on one another, both the blocks
//! of a level and the points within a block are embarrassingly parallel; the
//! `parallel` entry points distribute them over the rayon thread pool and
//! produce **bit-identical archives** to the serial path.

use crate::archive::{build_bytes, ArchiveHeader, StzArchive};
use crate::config::StzConfig;
use crate::kernels::predict_point;
use crate::level::{BlockSpec, LevelPlan};
use crate::source::SectionSource;
use rayon::prelude::*;
use stz_codec::{
    huffman, ByteReader, ByteWriter, CodecError, LinearQuantizer, Result, ESCAPE_SYMBOL,
};
use stz_field::{Field, Scalar, SubLattice};
use stz_sz3::quant::{quantize_scalar, reconstruct_scalar, ScalarQuant};
use stz_sz3::{ErrorBound, Sz3Config};

/// The STZ streaming compressor.
#[derive(Debug, Clone)]
pub struct StzCompressor {
    config: StzConfig,
}

/// Quantization output of one sub-block.
pub(crate) struct BlockPayload<T> {
    pub symbols: Vec<u32>,
    pub outliers: Vec<T>,
    /// Reconstructed values (C order over the block), rounded through `T`.
    pub recon: Vec<f64>,
}

impl StzCompressor {
    pub fn new(config: StzConfig) -> Self {
        StzCompressor { config }
    }

    pub fn config(&self) -> &StzConfig {
        &self.config
    }

    /// Compress serially.
    pub fn compress<T: Scalar>(&self, field: &Field<T>) -> Result<StzArchive<T>> {
        self.compress_impl(field, false)
    }

    /// Compress using the rayon thread pool. Produces bytes identical to
    /// [`StzCompressor::compress`].
    pub fn compress_parallel<T: Scalar>(&self, field: &Field<T>) -> Result<StzArchive<T>> {
        self.compress_impl(field, true)
    }

    fn compress_impl<T: Scalar>(&self, field: &Field<T>, parallel: bool) -> Result<StzArchive<T>> {
        let cfg = &self.config;
        // Classify bad configurations up front (typed `ConfigError`) —
        // before the level planner or the quantizer can assert on them.
        cfg.validate()
            .map_err(|e| CodecError::unsupported(format!("invalid configuration: {e}")))?;
        let dims = field.dims();
        let plan = LevelPlan::new(dims, cfg.levels);
        let eb_abs = cfg.eb.absolute_for(field);
        // A *relative* bound over a constant field resolves to zero even
        // when the configured ratio is valid; catch the resolved value too.
        if !(eb_abs > 0.0 && eb_abs.is_finite()) {
            return Err(CodecError::unsupported(format!(
                "invalid configuration: resolved error bound {eb_abs} must be positive and finite"
            )));
        }
        let ebs = cfg.level_ebs_from_absolute(eb_abs);

        // Per-stage wall-clock histograms (resolved once; the per-block
        // closures record through the lock-free handles).
        let reg = stz_telemetry::global();
        let quantize_ns = reg.latency("stz_core_stage_ns", &[("stage", "quantize")]);
        let encode_ns = reg.latency("stz_core_stage_ns", &[("stage", "encode")]);

        // Level 1: SZ3 on sub-block A.
        let a_field: Field<T> = plan.level1().gather(field);
        let sz3_cfg =
            Sz3Config { eb: ErrorBound::Absolute(ebs[0]), radius: cfg.radius, interp: cfg.interp };
        let (l1_bytes, _stats, a_recon) = {
            let _stage = stz_telemetry::span!("stz_core_stage_ns", "stage" => "level1");
            stz_sz3::compress_full(&a_field, &sz3_cfg)
        };
        let mut grid = Field::from_vec(plan.levels[0].grid_dims, a_recon);

        // Finer levels.
        let mut level_blocks: Vec<Vec<Vec<u8>>> = Vec::with_capacity(cfg.levels as usize - 1);
        for level in &plan.levels[1..] {
            let quant = LinearQuantizer::new(ebs[level.index as usize - 1], cfg.radius);
            let mut next = Field::<f64>::zeros(level.grid_dims);
            upscatter(&grid, &mut next);

            let process = |block: &BlockSpec| -> (Vec<u8>, Field<f64>) {
                let orig: Field<T> = block.lattice.gather(field);
                let payload = {
                    let _stage = quantize_ns.span();
                    quantize_block(&orig, &next, block, &quant, cfg.interp, parallel)
                };
                let bytes = {
                    let _stage = encode_ns.span();
                    encode_block_payload(&payload, parallel)
                };
                let recon_field = Field::from_vec(block.lattice.dims(), payload.recon);
                (bytes, recon_field)
            };
            let results: Vec<(Vec<u8>, Field<f64>)> = if parallel {
                level.blocks.par_iter().map(process).collect()
            } else {
                level.blocks.iter().map(process).collect()
            };

            let mut encoded = Vec::with_capacity(results.len());
            for (block, (bytes, recon_field)) in level.blocks.iter().zip(results) {
                block.grid_lattice.scatter(&recon_field, &mut next);
                encoded.push(bytes);
            }
            level_blocks.push(encoded);
            grid = next;
        }

        let header = ArchiveHeader {
            dims,
            type_tag: T::TYPE_TAG,
            levels: cfg.levels,
            interp: cfg.interp,
            adaptive: cfg.adaptive,
            adaptive_ratio: cfg.adaptive_ratio,
            eb_finest: eb_abs,
            radius: cfg.radius,
        };
        StzArchive::from_bytes(build_bytes(&header, &l1_bytes, &level_blocks))
    }
}

/// Scatter the coarse working grid into the even positions of the next
/// (2× finer) working grid.
pub(crate) fn upscatter(coarse: &Field<f64>, next: &mut Field<f64>) {
    let even =
        SubLattice::new(next.dims(), [0, 0, 0], 2).expect("origin sub-lattice is never empty");
    debug_assert_eq!(even.dims().as_array(), coarse.dims().as_array());
    even.scatter(coarse, next);
}

/// Quantize one sub-block against the (partially filled) working grid.
pub(crate) fn quantize_block<T: Scalar>(
    orig: &Field<T>,
    grid: &Field<f64>,
    block: &BlockSpec,
    quant: &LinearQuantizer,
    interp: stz_sz3::InterpKind,
    parallel: bool,
) -> BlockPayload<T> {
    let bdims = orig.dims();
    let nz = bdims.nz();
    if !parallel || nz < 2 {
        return quantize_chunk(orig, grid, block, quant, interp, 0..nz);
    }
    let chunk = slab_size(nz);
    let ranges: Vec<std::ops::Range<usize>> =
        (0..nz).step_by(chunk).map(|z0| z0..(z0 + chunk).min(nz)).collect();
    let parts: Vec<BlockPayload<T>> = ranges
        .into_par_iter()
        .map(|r| quantize_chunk(orig, grid, block, quant, interp, r))
        .collect();
    merge_payloads(parts)
}

fn slab_size(nz: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    (nz / (threads * 4)).max(1)
}

fn merge_payloads<T: Scalar>(parts: Vec<BlockPayload<T>>) -> BlockPayload<T> {
    let mut symbols = Vec::with_capacity(parts.iter().map(|p| p.symbols.len()).sum());
    let mut outliers = Vec::with_capacity(parts.iter().map(|p| p.outliers.len()).sum());
    let mut recon = Vec::with_capacity(parts.iter().map(|p| p.recon.len()).sum());
    for p in parts {
        symbols.extend(p.symbols);
        outliers.extend(p.outliers);
        recon.extend(p.recon);
    }
    BlockPayload { symbols, outliers, recon }
}

fn quantize_chunk<T: Scalar>(
    orig: &Field<T>,
    grid: &Field<f64>,
    block: &BlockSpec,
    quant: &LinearQuantizer,
    interp: stz_sz3::InterpKind,
    z_range: std::ops::Range<usize>,
) -> BlockPayload<T> {
    let bdims = orig.dims();
    let (by, bx) = (bdims.ny(), bdims.nx());
    let n = (z_range.end - z_range.start) * by * bx;
    let mut symbols = Vec::with_capacity(n);
    let mut outliers = Vec::new();
    let mut recon = Vec::with_capacity(n);
    let gbuf = grid.as_slice();
    let gdims = grid.dims();
    let active = &block.active_axes[..];
    let src = orig.as_slice();
    let stencil = RowWalker::new(gdims, block, interp);
    let lane = stz_simd::active_lane();
    // Row-batch scratch for the SIMD path (unused under Lane::Scalar, which
    // keeps the original per-point walk as the byte-identity anchor).
    let mut scratch = RowScratch::new(if lane == stz_simd::Lane::Scalar { 0 } else { bx });
    for z in z_range {
        for y in 0..by {
            let row = (z * by + y) * bx;
            let walk = stencil.row(z, y, bx);
            let (xa, xb) = walk.batch_range(&scratch);
            let mut x = 0;
            while x < bx {
                if x == xa && x < xb {
                    // Interior span: predict + quantize a whole row segment
                    // at SIMD width, then emit symbols/outliers in the same
                    // ascending order as the per-point loop.
                    let m = xb - xa;
                    let (actuals, preds, qs, rs, es) = scratch.split(m);
                    T::simd_widen(lane, &src[row + xa..row + xb], actuals);
                    stz_simd::predict_run(
                        lane,
                        gbuf,
                        walk.row_base + walk.gx0 + 2 * xa,
                        walk.simd_stencil(),
                        preds,
                    );
                    stz_sz3::quant::quantize_run::<T>(quant, lane, actuals, preds, qs, rs, es);
                    for j in 0..m {
                        if es[j] == 0 {
                            symbols.push(LinearQuantizer::symbol_of(qs[j] as i64));
                            recon.push(rs[j]);
                        } else {
                            symbols.push(ESCAPE_SYMBOL);
                            outliers.push(src[row + xa + j]);
                            recon.push(actuals[j]);
                        }
                    }
                    x = xb;
                    continue;
                }
                let pred = walk.predict(gbuf, gdims, active, interp, x);
                let actual = src[row + x].to_f64();
                match quantize_scalar::<T>(quant, actual, pred) {
                    ScalarQuant::Code { symbol, recon: r } => {
                        symbols.push(symbol);
                        recon.push(r);
                    }
                    ScalarQuant::Escape => {
                        symbols.push(ESCAPE_SYMBOL);
                        outliers.push(src[row + x]);
                        recon.push(actual);
                    }
                }
                x += 1;
            }
        }
    }
    BlockPayload { symbols, outliers, recon }
}

/// Reusable per-row scratch buffers for the SIMD batch paths. `cap == 0`
/// disables batching (the scalar lane walks point by point instead).
struct RowScratch {
    actuals: Vec<f64>,
    preds: Vec<f64>,
    codes: Vec<f64>,
    recon: Vec<f64>,
    escapes: Vec<u8>,
}

impl RowScratch {
    fn new(cap: usize) -> RowScratch {
        RowScratch {
            actuals: vec![0.0; cap],
            preds: vec![0.0; cap],
            codes: vec![0.0; cap],
            recon: vec![0.0; cap],
            escapes: vec![0; cap],
        }
    }

    fn enabled(&self) -> bool {
        !self.preds.is_empty()
    }

    #[allow(clippy::type_complexity)]
    fn split(&mut self, m: usize) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64], &mut [u8]) {
        (
            &mut self.actuals[..m],
            &mut self.preds[..m],
            &mut self.codes[..m],
            &mut self.recon[..m],
            &mut self.escapes[..m],
        )
    }

    /// Just the code buffer (the decode path writes reconstructions
    /// directly into its output instead of through the scratch).
    fn codes(&mut self, m: usize) -> &mut [f64] {
        &mut self.codes[..m]
    }
}

/// Per-block prediction walker: precomputes the interior fast-path stencil
/// and per-row bounds, falling back to the general (boundary-safe) kernel
/// only where the stencil leaves the grid.
struct RowWalker<'a> {
    stencil: crate::kernels::StencilOffsets,
    simd_stencil: stz_simd::Stencil,
    block: &'a BlockSpec,
    gny: usize,
    gnx: usize,
    x_active: bool,
}

/// One row's resolved walk state.
struct RowWalk<'a> {
    walker: &'a RowWalker<'a>,
    /// Grid coordinates of the row's first point.
    gz: usize,
    gy: usize,
    gx0: usize,
    row_base: usize,
    /// Whether the z/y components of the stencil are interior.
    zy_interior: bool,
    xa: usize,
    xb: usize,
}

impl<'a> RowWalker<'a> {
    fn new(
        gdims: stz_field::Dims,
        block: &'a BlockSpec,
        interp: stz_sz3::InterpKind,
    ) -> RowWalker<'a> {
        let stencil = crate::kernels::StencilOffsets::new(gdims, &block.active_axes, interp);
        RowWalker {
            simd_stencil: stencil.as_simd(),
            stencil,
            block,
            gny: gdims.ny(),
            gnx: gdims.nx(),
            x_active: block.active_axes.contains(&2),
        }
    }

    fn row(&self, z: usize, y: usize, bx: usize) -> RowWalk<'_> {
        let (gz, gy, gx0) = self.block.grid_lattice.to_parent(z, y, 0);
        let mut zy_interior = true;
        for &d in &self.block.active_axes {
            match d {
                0 => zy_interior &= self.stencil.interior_coord(gz, self.row_nz()),
                1 => zy_interior &= self.stencil.interior_coord(gy, self.gny),
                _ => {}
            }
        }
        let (xa, xb) = self.stencil.interior_x_range(self.x_active, gx0, self.gnx, bx);
        RowWalk {
            walker: self,
            gz,
            gy,
            gx0,
            row_base: (gz * self.gny + gy) * self.gnx,
            zy_interior,
            xa,
            xb,
        }
    }

    fn row_nz(&self) -> usize {
        self.block.grid_lattice.parent_dims().nz()
    }
}

impl RowWalk<'_> {
    /// The block-local x span `[xa, xb)` this row can process with the SIMD
    /// batch kernels — its interior fast-path span, or empty when batching
    /// is disabled or the row's z/y stencil legs leave the grid.
    #[inline]
    fn batch_range(&self, scratch: &RowScratch) -> (usize, usize) {
        if scratch.enabled() && self.zy_interior {
            (self.xa, self.xb)
        } else {
            (0, 0)
        }
    }

    #[inline]
    fn simd_stencil(&self) -> &stz_simd::Stencil {
        &self.walker.simd_stencil
    }

    #[inline(always)]
    fn predict(
        &self,
        gbuf: &[f64],
        gdims: stz_field::Dims,
        active: &[usize],
        interp: stz_sz3::InterpKind,
        x: usize,
    ) -> f64 {
        let gx = self.gx0 + 2 * x;
        if self.zy_interior && x >= self.xa && x < self.xb {
            self.walker.stencil.predict_interior(gbuf, self.row_base + gx)
        } else {
            predict_point(gbuf, gdims, [self.gz, self.gy, gx], active, 1, interp)
        }
    }
}

/// Symbols per Huffman chunk within a sub-block stream. Sub-block streams
/// are split into independently decodable chunks at fixed boundaries so
/// entropy coding — the only inherently sequential stage — parallelizes
/// too, without changing the random-access granularity (a sub-block is
/// still decoded as a whole, as §3.3 describes).
const HUFFMAN_CHUNK: usize = 1 << 16;

fn chunk_count(n: usize) -> usize {
    n.div_ceil(HUFFMAN_CHUNK).clamp(1, 64)
}

/// Serialize a sub-block stream: Huffman-coded symbol chunks (each prefixed
/// by its escape count, enabling random-access chunk decoding) + bit-exact
/// outliers.
pub(crate) fn encode_block_payload<T: Scalar>(
    payload: &BlockPayload<T>,
    parallel: bool,
) -> Vec<u8> {
    let n = payload.symbols.len();
    let nchunks = chunk_count(n);
    let size = n.div_ceil(nchunks).max(1);
    let chunks: Vec<&[u32]> = payload.symbols.chunks(size).collect();
    let encoded: Vec<Vec<u8>> = if parallel && chunks.len() > 1 {
        chunks.par_iter().map(|c| huffman::encode_block(c)).collect()
    } else {
        chunks.iter().map(|c| huffman::encode_block(c)).collect()
    };
    let mut w = ByteWriter::with_capacity(n / 2 + 32);
    w.put_uvarint(encoded.len() as u64);
    w.put_uvarint(size as u64);
    // Per-chunk escape counts: a random-access reader can align its outlier
    // cursor without entropy-decoding skipped chunks (the paper's
    // "random-access Huffman decoding" future-work item).
    for c in &chunks {
        let escapes = c.iter().filter(|&&s| s == ESCAPE_SYMBOL).count();
        w.put_uvarint(escapes as u64);
    }
    for e in &encoded {
        w.put_block(e);
    }
    stz_sz3::stream::write_outliers(&mut w, &payload.outliers);
    w.finish()
}

/// Parsed structure of a sub-block stream (nothing entropy-decoded yet).
pub(crate) struct PayloadMeta<'a> {
    /// Encoded Huffman chunks.
    pub chunks: Vec<&'a [u8]>,
    /// Escapes per chunk.
    pub chunk_escapes: Vec<usize>,
    /// Symbols per chunk (the final chunk may be smaller).
    pub chunk_size: usize,
    /// Total symbol count.
    pub total: usize,
}

impl PayloadMeta<'_> {
    /// Symbol count of chunk `c`.
    pub fn len_of(&self, c: usize) -> usize {
        let start = c * self.chunk_size;
        self.chunk_size.min(self.total - start)
    }
}

/// Parse a sub-block stream into chunk metadata + outliers, without
/// decoding any symbols.
pub(crate) fn parse_block_payload<'a, T: Scalar>(
    bytes: &'a [u8],
    expected_points: usize,
) -> Result<(PayloadMeta<'a>, Vec<T>)> {
    let mut r = ByteReader::new(bytes);
    let nchunks = r.get_uvarint()? as usize;
    if nchunks == 0 || nchunks > 64 {
        return Err(CodecError::corrupt(format!("invalid chunk count {nchunks}")));
    }
    let chunk_size = r.get_uvarint()? as usize;
    if chunk_size == 0
        || chunk_size.saturating_mul(nchunks) < expected_points
        || (nchunks - 1).saturating_mul(chunk_size) >= expected_points.max(1)
    {
        return Err(CodecError::corrupt("chunk size inconsistent with point count"));
    }
    let mut chunk_escapes = Vec::with_capacity(nchunks);
    for _ in 0..nchunks {
        let e = r.get_uvarint()? as usize;
        if e > chunk_size {
            return Err(CodecError::corrupt("chunk escape count exceeds chunk size"));
        }
        chunk_escapes.push(e);
    }
    let mut chunks = Vec::with_capacity(nchunks);
    for _ in 0..nchunks {
        chunks.push(r.get_block()?);
    }
    let outliers: Vec<T> = stz_sz3::stream::read_outliers(&mut r)?;
    if outliers.len() != chunk_escapes.iter().sum::<usize>() {
        return Err(CodecError::corrupt("outlier count does not match chunk escape counts"));
    }
    Ok((PayloadMeta { chunks, chunk_escapes, chunk_size, total: expected_points }, outliers))
}

/// Deserialize a whole sub-block stream, validating symbol and outlier
/// counts.
pub(crate) fn decode_block_payload<T: Scalar>(
    bytes: &[u8],
    expected_points: usize,
    parallel: bool,
) -> Result<(Vec<u32>, Vec<T>)> {
    let (meta, outliers) = parse_block_payload::<T>(bytes, expected_points)?;
    let decoded: Vec<Result<Vec<u32>>> = if parallel && meta.chunks.len() > 1 {
        meta.chunks.par_iter().map(|b| huffman::decode_block(b)).collect()
    } else {
        meta.chunks.iter().map(|b| huffman::decode_block(b)).collect()
    };
    let mut symbols = Vec::with_capacity(expected_points);
    for (c, d) in decoded.into_iter().enumerate() {
        let d = d?;
        if d.len() != meta.len_of(c) {
            return Err(CodecError::corrupt("chunk symbol count mismatch"));
        }
        let escapes = d.iter().filter(|&&s| s == ESCAPE_SYMBOL).count();
        if escapes != meta.chunk_escapes[c] {
            return Err(CodecError::corrupt("chunk escape count mismatch"));
        }
        symbols.extend(d);
    }
    if symbols.len() != expected_points {
        return Err(CodecError::corrupt(format!(
            "sub-block has {} symbols, geometry requires {expected_points}",
            symbols.len()
        )));
    }
    Ok((symbols, outliers))
}

/// Reconstruct one sub-block from its decoded symbols.
pub(crate) fn reconstruct_block<T: Scalar>(
    symbols: &[u32],
    outliers: &[T],
    grid: &Field<f64>,
    block: &BlockSpec,
    quant: &LinearQuantizer,
    interp: stz_sz3::InterpKind,
    parallel: bool,
) -> Field<f64> {
    let bdims = block.lattice.dims();
    let (nz, by, bx) = (bdims.nz(), bdims.ny(), bdims.nx());
    if !parallel || nz < 2 {
        let recon = reconstruct_chunk(symbols, outliers, grid, block, quant, interp, 0..nz, 0);
        return Field::from_vec(bdims, recon);
    }
    let chunk = slab_size(nz);
    // Outlier cursor offset at each chunk boundary.
    let plane = by * bx;
    let mut ranges = Vec::new();
    let mut escape_offsets = Vec::new();
    let mut escapes_so_far = 0usize;
    let mut z0 = 0usize;
    while z0 < nz {
        let z1 = (z0 + chunk).min(nz);
        ranges.push(z0..z1);
        escape_offsets.push(escapes_so_far);
        escapes_so_far +=
            symbols[z0 * plane..z1 * plane].iter().filter(|&&s| s == ESCAPE_SYMBOL).count();
        z0 = z1;
    }
    let parts: Vec<Vec<f64>> = ranges
        .into_par_iter()
        .zip(escape_offsets.into_par_iter())
        .map(|(r, off)| reconstruct_chunk(symbols, outliers, grid, block, quant, interp, r, off))
        .collect();
    let mut recon = Vec::with_capacity(nz * plane);
    for p in parts {
        recon.extend(p);
    }
    Field::from_vec(bdims, recon)
}

#[allow(clippy::too_many_arguments)]
fn reconstruct_chunk<T: Scalar>(
    symbols: &[u32],
    outliers: &[T],
    grid: &Field<f64>,
    block: &BlockSpec,
    quant: &LinearQuantizer,
    interp: stz_sz3::InterpKind,
    z_range: std::ops::Range<usize>,
    mut outlier_cursor: usize,
) -> Vec<f64> {
    let bdims = block.lattice.dims();
    let (by, bx) = (bdims.ny(), bdims.nx());
    let gbuf = grid.as_slice();
    let gdims = grid.dims();
    let active = &block.active_axes[..];
    let mut recon = Vec::with_capacity((z_range.end - z_range.start) * by * bx);
    let stencil = RowWalker::new(gdims, block, interp);
    let lane = stz_simd::active_lane();
    let mut scratch = RowScratch::new(if lane == stz_simd::Lane::Scalar { 0 } else { bx });
    for z in z_range {
        for y in 0..by {
            let row = (z * by + y) * bx;
            let walk = stencil.row(z, y, bx);
            let (xa, xb) = walk.batch_range(&scratch);
            let mut x = 0;
            while x < bx {
                if x == xa && x < xb {
                    // Interior span: branchless symbol→code conversion, then
                    // one fused predict+reconstruct pass writing straight
                    // into the output. Escape slots get a placeholder code —
                    // their lane result is overwritten with the stored
                    // outlier below, so it cannot influence any output byte.
                    let m = xb - xa;
                    let span = &symbols[row + xa..row + xb];
                    let codes = scratch.codes(m);
                    LinearQuantizer::codes_of_run(span, codes);
                    let start = recon.len();
                    recon.resize(start + m, 0.0);
                    stz_sz3::quant::predict_reconstruct_run::<T>(
                        quant,
                        lane,
                        gbuf,
                        walk.row_base + walk.gx0 + 2 * xa,
                        walk.simd_stencil(),
                        codes,
                        &mut recon[start..start + m],
                    );
                    if !outliers.is_empty() {
                        for (j, &s) in span.iter().enumerate() {
                            if s == ESCAPE_SYMBOL {
                                recon[start + j] = outliers[outlier_cursor].to_f64();
                                outlier_cursor += 1;
                            }
                        }
                    }
                    x = xb;
                    continue;
                }
                let symbol = symbols[row + x];
                if symbol == ESCAPE_SYMBOL {
                    recon.push(outliers[outlier_cursor].to_f64());
                    outlier_cursor += 1;
                } else {
                    let pred = walk.predict(gbuf, gdims, active, interp, x);
                    recon.push(reconstruct_scalar::<T>(quant, symbol, pred));
                }
                x += 1;
            }
        }
    }
    recon
}

/// Decompress levels `1..=upto` of an archive, returning the corresponding
/// preview field (`upto == levels` gives the full-resolution field).
///
/// Generic over [`SectionSource`], so the same driver serves resident
/// archives and out-of-core containers; only levels `1..=upto` are fetched.
pub(crate) fn decompress_impl<T: Scalar, S: SectionSource + ?Sized>(
    source: &S,
    upto: u8,
    parallel: bool,
) -> Result<Field<T>> {
    if !(1..=source.num_levels()).contains(&upto) {
        return Err(CodecError::corrupt(format!(
            "requested level {upto} of a {}-level archive",
            source.num_levels()
        )));
    }
    let plan = source.plan();
    let mut grid = {
        let _stage = stz_telemetry::trace::span("level1");
        decode_level1::<T, S>(source, &plan)?
    };
    for level in &plan.levels[1..upto as usize] {
        let mut stage = stz_telemetry::trace::span("level_decode");
        stage.attr("level", level.index);
        grid = decode_level_grid::<T, S>(source, &plan, level.index, &grid, parallel)?;
    }
    // Chunk by index range rather than par_iter over elements: the cast is
    // trivial per element, so materializing per-element work items would
    // cost more memory than the parallelism saves on large grids.
    let buf = grid.as_slice();
    let lane = stz_simd::active_lane();
    let cast = |r: std::ops::Range<usize>| -> Vec<T> {
        let mut part = vec![T::default(); r.len()];
        T::simd_from_f64(lane, &buf[r], &mut part);
        part
    };
    let data: Vec<T> = if parallel && buf.len() > 1 {
        let chunk = buf.len().div_ceil(64);
        let ranges: Vec<std::ops::Range<usize>> =
            (0..buf.len()).step_by(chunk).map(|s| s..(s + chunk).min(buf.len())).collect();
        let parts: Vec<Vec<T>> = ranges.into_par_iter().map(cast).collect();
        let mut data = Vec::with_capacity(buf.len());
        for p in parts {
            data.extend(p);
        }
        data
    } else {
        cast(0..buf.len())
    };
    Ok(Field::from_vec(grid.dims(), data))
}

/// Decode level 1 (the SZ3 stream) into its working grid.
///
/// Also the element-type gate for every decode path: a source whose header
/// advertises a different scalar type than `T` is rejected here, before any
/// payload is interpreted.
pub(crate) fn decode_level1<T: Scalar, S: SectionSource + ?Sized>(
    source: &S,
    plan: &LevelPlan,
) -> Result<Field<f64>> {
    if source.header().type_tag != T::TYPE_TAG {
        return Err(CodecError::corrupt(format!(
            "archive element type tag {} does not match requested type",
            source.header().type_tag
        )));
    }
    let l1 = source.l1_bytes()?;
    let a: Field<T> = stz_sz3::decompress(&l1)?;
    let expect = plan.levels[0].grid_dims;
    if a.dims().as_array() != expect.as_array() {
        return Err(CodecError::corrupt(format!(
            "level-1 stream dims {} do not match geometry {expect}",
            a.dims()
        )));
    }
    let mut wide = vec![0.0f64; a.as_slice().len()];
    T::simd_widen(stz_simd::active_lane(), a.as_slice(), &mut wide);
    Ok(Field::from_vec(expect, wide))
}

/// Decode one finer level, given the previous level's working grid.
pub(crate) fn decode_level_grid<T: Scalar, S: SectionSource + ?Sized>(
    source: &S,
    plan: &LevelPlan,
    level_index: u8,
    prev_grid: &Field<f64>,
    parallel: bool,
) -> Result<Field<f64>> {
    let level = &plan.levels[level_index as usize - 1];
    let ebs = source.header().level_ebs();
    let quant = LinearQuantizer::new(ebs[level_index as usize - 1], source.header().radius);
    let interp = source.header().interp;

    let mut next = Field::<f64>::zeros(level.grid_dims);
    upscatter(prev_grid, &mut next);

    let decode_one = |(i, block): (usize, &BlockSpec)| -> Result<Field<f64>> {
        let bytes = source.block_bytes(level_index, i)?;
        // Stage timestamps are taken only when a trace is active, so the
        // untraced hot path pays one thread-local read per block.
        let traced = stz_telemetry::trace::current_context().is_some();
        let t0 = traced.then(std::time::Instant::now);
        let (symbols, outliers) = decode_block_payload::<T>(&bytes, block.lattice.len(), parallel)?;
        let t1 = traced.then(std::time::Instant::now);
        let recon = reconstruct_block(&symbols, &outliers, &next, block, &quant, interp, parallel);
        if let (Some(t0), Some(t1)) = (t0, t1) {
            let attrs = [("block", i.to_string())];
            stz_telemetry::trace::record_span("entropy", t0, t1, &attrs);
            stz_telemetry::trace::record_span("reconstruct", t1, std::time::Instant::now(), &attrs);
        }
        Ok(recon)
    };
    let results: Vec<Result<Field<f64>>> = if parallel {
        level.blocks.par_iter().enumerate().map(decode_one).collect()
    } else {
        level.blocks.iter().enumerate().map(decode_one).collect()
    };
    for (block, recon) in level.blocks.iter().zip(results) {
        block.grid_lattice.scatter(&recon?, &mut next);
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    #[test]
    #[ignore]
    fn profile_recon_batch() {
        let dims = Dims::d3(128, 128, 128);
        let f = Field::from_fn(dims, |z, y, x| {
            let (zf, yf, xf) = (z as f32 * 0.21, y as f32 * 0.13, x as f32 * 0.17);
            zf.sin() * yf.cos() + (xf + yf).sin() + 0.3 * zf
        });
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let plan = archive.plan();
        let src = &archive;
        use crate::source::SectionSource;
        let mut grid = decode_level1::<f32, _>(src, &plan).unwrap();
        for level in &plan.levels[1..2] {
            grid = decode_level_grid::<f32, _>(src, &plan, level.index, &grid, false).unwrap();
        }
        let level = &plan.levels[2];
        let ebs = src.header().level_ebs();
        let quant = LinearQuantizer::new(ebs[2], src.header().radius);
        let interp = src.header().interp;
        let mut next = Field::<f64>::zeros(level.grid_dims);
        upscatter(&grid, &mut next);
        let lane = stz_simd::active_lane();
        for (i, block) in level.blocks.iter().enumerate() {
            let bytes = SectionSource::block_bytes(src, level.index, i).unwrap();
            let (symbols, outliers) =
                decode_block_payload::<f32>(&bytes, block.lattice.len(), false).unwrap();
            let bdims = block.lattice.dims();
            let (bz, by, bx) = (bdims.nz(), bdims.ny(), bdims.nx());
            let gbuf = next.as_slice();
            let walker = RowWalker::new(next.dims(), block, interp);
            let (mut pts_batch, mut pts_scalar) = (0usize, 0usize);
            let mut scratch = RowScratch::new(bx);
            let mut recon: Vec<f64> = Vec::with_capacity(bz * by * bx);
            let (mut t_codes, mut t_kernel, mut t_scan, mut t_row) = (0.0, 0.0, 0.0, 0.0);
            let t_all = std::time::Instant::now();
            for z in 0..bz {
                for y in 0..by {
                    let tr = std::time::Instant::now();
                    let row = (z * by + y) * bx;
                    let walk = walker.row(z, y, bx);
                    let (xa, xb) = walk.batch_range(&scratch);
                    t_row += tr.elapsed().as_secs_f64();
                    if xb > xa {
                        pts_batch += xb - xa;
                        pts_scalar += bx - (xb - xa);
                        let m = xb - xa;
                        let span = &symbols[row + xa..row + xb];
                        let t = std::time::Instant::now();
                        let codes = scratch.codes(m);
                        LinearQuantizer::codes_of_run(span, codes);
                        t_codes += t.elapsed().as_secs_f64();
                        let t = std::time::Instant::now();
                        let start = recon.len();
                        recon.resize(start + m, 0.0);
                        stz_sz3::quant::predict_reconstruct_run::<f32>(
                            &quant,
                            lane,
                            gbuf,
                            walk.row_base + walk.gx0 + 2 * xa,
                            walk.simd_stencil(),
                            codes,
                            &mut recon[start..start + m],
                        );
                        t_kernel += t.elapsed().as_secs_f64();
                        let t = std::time::Instant::now();
                        if !outliers.is_empty() {
                            let mut c = 0usize;
                            for &s in span.iter() {
                                if s == ESCAPE_SYMBOL {
                                    c += 1;
                                }
                            }
                            std::hint::black_box(c);
                        }
                        t_scan += t.elapsed().as_secs_f64();
                    } else {
                        pts_scalar += bx;
                    }
                }
            }
            let total = t_all.elapsed().as_secs_f64();
            println!(
                "block {i} axes {:?}: batch {pts_batch} scalar {pts_scalar} | row {t_row:.4} codes {t_codes:.4} kernel {t_kernel:.4} scan {t_scan:.4} total {total:.4}",
                block.active_axes
            );
            std::hint::black_box(&recon);
        }
    }

    #[test]
    #[ignore]
    fn profile_decode_stages() {
        let dims = Dims::d3(128, 128, 128);
        let f = Field::from_fn(dims, |z, y, x| {
            let (zf, yf, xf) = (z as f32 * 0.21, y as f32 * 0.13, x as f32 * 0.17);
            zf.sin() * yf.cos() + (xf + yf).sin() + 0.3 * zf
        });
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let mb = f.nbytes() as f64 / 1e6;
        // Whole decompress.
        let t = std::time::Instant::now();
        let out: Field<f32> = archive.decompress().unwrap();
        let full = t.elapsed().as_secs_f64();
        std::hint::black_box(&out);
        println!("full decompress: {:.1} MB/s ({:.3}s)", mb / full, full);
        // Stage split on the finest level (the bulk of the work).
        let plan = archive.plan();
        let src = &archive;
        use crate::source::SectionSource;
        let t = std::time::Instant::now();
        let mut grid = decode_level1::<f32, _>(src, &plan).unwrap();
        println!("  level1: {:.4}s", t.elapsed().as_secs_f64());
        for level in &plan.levels[1..2] {
            let t = std::time::Instant::now();
            grid = decode_level_grid::<f32, _>(src, &plan, level.index, &grid, false).unwrap();
            println!("  level{}: {:.4}s", level.index, t.elapsed().as_secs_f64());
        }
        let t = std::time::Instant::now();
        let fin =
            decode_level_grid::<f32, _>(src, &plan, plan.levels[2].index, &grid, false).unwrap();
        println!("  level{} (whole): {:.4}s", plan.levels[2].index, t.elapsed().as_secs_f64());
        std::hint::black_box(&fin);
        let level = &plan.levels[2];
        let ebs = src.header().level_ebs();
        let quant = LinearQuantizer::new(ebs[2], src.header().radius);
        let interp = src.header().interp;
        let mut next = Field::<f64>::zeros(level.grid_dims);
        let t = std::time::Instant::now();
        upscatter(&grid, &mut next);
        println!("  upscatter: {:.4}s", t.elapsed().as_secs_f64());
        let mut t_entropy = 0.0;
        let mut t_recon = 0.0;
        let mut t_scatter = 0.0;
        for (i, block) in level.blocks.iter().enumerate() {
            let bytes = SectionSource::block_bytes(src, level.index, i).unwrap();
            let t = std::time::Instant::now();
            let (symbols, outliers) =
                decode_block_payload::<f32>(&bytes, block.lattice.len(), false).unwrap();
            t_entropy += t.elapsed().as_secs_f64();
            let t = std::time::Instant::now();
            let recon = reconstruct_block(&symbols, &outliers, &next, block, &quant, interp, false);
            t_recon += t.elapsed().as_secs_f64();
            let t = std::time::Instant::now();
            block.grid_lattice.scatter(&recon, &mut next);
            t_scatter += t.elapsed().as_secs_f64();
        }
        println!(
            "  finest level: entropy {t_entropy:.4}s recon {t_recon:.4}s scatter {t_scatter:.4}s"
        );
        // Final cast.
        let t = std::time::Instant::now();
        let data: Vec<f32> = next.as_slice().iter().map(|&v| v as f32).collect();
        std::hint::black_box(&data);
        println!("  cast: {:.4}s", t.elapsed().as_secs_f64());
    }

    fn wavy(dims: Dims) -> Field<f32> {
        Field::from_fn(dims, |z, y, x| {
            let (zf, yf, xf) = (z as f32 * 0.21, y as f32 * 0.13, x as f32 * 0.17);
            zf.sin() * yf.cos() + (xf + yf).sin() + 0.3 * zf
        })
    }

    fn max_err(a: &Field<f32>, b: &Field<f32>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| ((x as f64) - (y as f64)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn roundtrip_three_level_error_bounded() {
        let f = wavy(Dims::d3(24, 20, 28));
        for eb in [1e-1, 1e-2, 1e-3] {
            let archive = StzCompressor::new(StzConfig::three_level(eb)).compress(&f).unwrap();
            let back = archive.decompress().unwrap();
            assert_eq!(back.dims(), f.dims());
            assert!(max_err(&f, &back) <= eb, "eb {eb}: err {}", max_err(&f, &back));
        }
    }

    #[test]
    fn roundtrip_two_level() {
        let f = wavy(Dims::d3(17, 15, 13));
        let archive = StzCompressor::new(StzConfig::two_level(1e-2)).compress(&f).unwrap();
        let back = archive.decompress().unwrap();
        assert!(max_err(&f, &back) <= 1e-2);
    }

    #[test]
    fn roundtrip_four_level() {
        let f = wavy(Dims::d3(33, 31, 35));
        let archive =
            StzCompressor::new(StzConfig::three_level(1e-2).with_levels(4)).compress(&f).unwrap();
        let back = archive.decompress().unwrap();
        assert!(max_err(&f, &back) <= 1e-2);
    }

    #[test]
    fn roundtrip_2d_and_1d() {
        for dims in [Dims::d2(30, 26), Dims::d1(100)] {
            let f = wavy(dims);
            let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
            let back = archive.decompress().unwrap();
            assert!(max_err(&f, &back) <= 1e-3, "dims {dims}");
        }
    }

    #[test]
    fn roundtrip_odd_dims() {
        for dims in [Dims::d3(7, 9, 11), Dims::d3(5, 4, 6), Dims::d3(4, 4, 4), Dims::d3(1, 1, 1)] {
            let f = wavy(dims);
            let archive = StzCompressor::new(StzConfig::three_level(1e-2)).compress(&f).unwrap();
            let back = archive.decompress().unwrap();
            assert!(max_err(&f, &back) <= 1e-2, "dims {dims}");
        }
    }

    #[test]
    fn roundtrip_f64() {
        let f = Field::from_fn(Dims::d3(16, 16, 16), |z, y, x| {
            ((z * 3 + y * 5 + x * 7) as f64 * 0.01).sin() * 1e4
        });
        let archive = StzCompressor::new(StzConfig::three_level(0.5)).compress(&f).unwrap();
        let back: Field<f64> = archive.decompress().unwrap();
        let err = f
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err <= 0.5);
    }

    #[test]
    fn parallel_compress_is_bit_identical() {
        let f = wavy(Dims::d3(32, 32, 32));
        let c = StzCompressor::new(StzConfig::three_level(1e-3));
        let serial = c.compress(&f).unwrap();
        let par = c.compress_parallel(&f).unwrap();
        assert_eq!(serial.as_bytes(), par.as_bytes());
    }

    #[test]
    fn parallel_decompress_matches_serial() {
        let f = wavy(Dims::d3(32, 32, 32));
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let a = archive.decompress().unwrap();
        let b = archive.decompress_parallel().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn decompress_level_matches_downsample_of_full() {
        // Progressive level-k preview must equal the stride-2^(L-k)
        // downsample of the full reconstruction (paper §3.3).
        let f = wavy(Dims::d3(24, 24, 24));
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let full = archive.decompress().unwrap();
        for k in 1..=3u8 {
            let preview = archive.decompress_level(k).unwrap();
            let stride = 1usize << (3 - k);
            assert_eq!(preview, full.downsample(stride), "level {k}");
        }
    }

    #[test]
    fn level1_preview_is_error_bounded_against_downsample() {
        // The coarse preview approximates the downsampled original within
        // the (tighter) level-1 bound.
        let f = wavy(Dims::d3(24, 24, 24));
        let eb = 1e-2;
        let archive = StzCompressor::new(StzConfig::three_level(eb)).compress(&f).unwrap();
        let preview = archive.decompress_level(1).unwrap();
        let coarse = f.downsample(4);
        let ebs = archive.header().level_ebs();
        assert!(max_err(&coarse, &preview) <= ebs[0] + 1e-12);
    }

    #[test]
    fn adaptive_improves_or_matches_quality_at_fixed_size() {
        // Sanity: with adaptive bounds, level-1 error is tighter.
        let f = wavy(Dims::d3(24, 24, 24));
        let adaptive = StzCompressor::new(StzConfig::three_level(1e-2)).compress(&f).unwrap();
        let flat = StzCompressor::new(StzConfig::three_level(1e-2).with_adaptive(false))
            .compress(&f)
            .unwrap();
        let pa = adaptive.decompress_level(1).unwrap();
        let pf = flat.decompress_level(1).unwrap();
        let coarse = f.downsample(4);
        assert!(max_err(&coarse, &pa) <= max_err(&coarse, &pf) + 1e-12);
    }

    #[test]
    fn extreme_values_escape_and_roundtrip() {
        let mut f = wavy(Dims::d3(12, 12, 12));
        f.set(5, 5, 5, 3e30);
        f.set(0, 0, 0, -2e30);
        f.set(11, 11, 11, f32::NAN);
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let back = archive.decompress().unwrap();
        assert_eq!(back.get(5, 5, 5), 3e30);
        assert_eq!(back.get(0, 0, 0), -2e30);
        assert!(back.get(11, 11, 11).is_nan());
    }

    #[test]
    fn archive_bytes_roundtrip_through_from_bytes() {
        let f = wavy(Dims::d3(16, 16, 16));
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let bytes = archive.as_bytes().to_vec();
        let reparsed = StzArchive::<f32>::from_bytes(bytes).unwrap();
        assert_eq!(reparsed.decompress().unwrap(), archive.decompress().unwrap());
    }

    #[test]
    fn truncated_archive_errors_cleanly() {
        let f = wavy(Dims::d3(12, 12, 12));
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let bytes = archive.as_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            if let Ok(a) = StzArchive::<f32>::from_bytes(bytes[..cut].to_vec()) {
                let _ = a.decompress();
            }
        }
    }

    #[test]
    fn compression_beats_raw_on_smooth_data() {
        let f = wavy(Dims::d3(32, 32, 32));
        let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        assert!(archive.compression_ratio() > 4.0, "CR {} too low", archive.compression_ratio());
    }

    #[test]
    fn cubic_beats_linear_rate_distortion() {
        let f = wavy(Dims::d3(32, 32, 32));
        let cubic = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let linear = StzCompressor::new(
            StzConfig::three_level(1e-3).with_interp(stz_sz3::InterpKind::Linear),
        )
        .compress(&f)
        .unwrap();
        assert!(cubic.compressed_len() < linear.compressed_len());
    }
}
