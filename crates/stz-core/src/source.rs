//! Abstraction over *where archive payload bytes live*.
//!
//! Every decompression path in this crate — full, progressive, and
//! random-access — consumes an archive through the [`SectionSource`] trait
//! rather than a concrete in-memory buffer. A source answers three
//! questions: what are the archive's parameters ([`SectionSource::header`]),
//! give me the level-1 SZ3 stream ([`SectionSource::l1_bytes`]), and give me
//! sub-block stream `i` of level `k` ([`SectionSource::block_bytes`]).
//!
//! [`StzArchive`] implements the trait by borrowing slices of its resident
//! buffer; the `stz-stream` crate implements it with positioned reads
//! against an on-disk container, fetching **only** the byte ranges a query
//! touches. Because the random-access and progressive drivers already skip
//! sub-blocks that a query does not need, an out-of-core source
//! automatically inherits the paper's I/O savings: the bytes never leave the
//! disk.

use crate::archive::{ArchiveHeader, StzArchive};
use crate::level::LevelPlan;
use crate::random_access::AccessBreakdown;
use std::borrow::Cow;
use stz_codec::Result;
use stz_field::{Field, Region, Scalar};

/// Provider of the sections of one STZ archive.
///
/// Methods that fetch payload bytes are fallible so out-of-core sources can
/// surface I/O and integrity errors; the in-memory implementation never
/// fails. Sources must be usable from multiple threads at once (`Sync`) so
/// the parallel decode paths can fetch blocks concurrently.
pub trait SectionSource: Sync {
    /// Parsed archive metadata.
    fn header(&self) -> &ArchiveHeader;

    /// The level-1 SZ3 stream.
    fn l1_bytes(&self) -> Result<Cow<'_, [u8]>>;

    /// The `i`-th sub-block stream of `level` (2-based levels, canonical
    /// block order matching [`LevelPlan`]).
    fn block_bytes(&self, level: u8, i: usize) -> Result<Cow<'_, [u8]>>;

    /// Compressed payload bytes needed to decompress levels `1..=k` — the
    /// progressive I/O cost. `k = 0` returns 0.
    fn bytes_through_level(&self, k: u8) -> usize;

    /// The hierarchy plan implied by the header (geometry is always derived
    /// from `dims` + `levels`, so reader and writer cannot disagree).
    fn plan(&self) -> LevelPlan {
        LevelPlan::new(self.header().dims, self.header().levels)
    }

    /// Number of hierarchy levels.
    fn num_levels(&self) -> u8 {
        self.header().levels
    }
}

impl<T: Scalar> SectionSource for StzArchive<T> {
    fn header(&self) -> &ArchiveHeader {
        StzArchive::header(self)
    }

    fn l1_bytes(&self) -> Result<Cow<'_, [u8]>> {
        Ok(Cow::Borrowed(StzArchive::l1_bytes(self)))
    }

    fn block_bytes(&self, level: u8, i: usize) -> Result<Cow<'_, [u8]>> {
        Ok(Cow::Borrowed(StzArchive::block_bytes(self, level, i)))
    }

    fn bytes_through_level(&self, k: u8) -> usize {
        StzArchive::bytes_through_level(self, k)
    }
}

/// Full decompression from any source.
pub fn decompress<T: Scalar, S: SectionSource + ?Sized>(
    source: &S,
    parallel: bool,
) -> Result<Field<T>> {
    crate::compressor::decompress_impl::<T, S>(source, source.num_levels(), parallel)
}

/// Progressive decompression to hierarchy level `k` (1 = coarsest): the
/// stride-`2^(levels-k)` preview of the field, reading only levels `1..=k`.
pub fn decompress_level<T: Scalar, S: SectionSource + ?Sized>(
    source: &S,
    k: u8,
) -> Result<Field<T>> {
    crate::compressor::decompress_impl::<T, S>(source, k, false)
}

/// Random-access decompression of `region` at full resolution, reading only
/// the level-1 stream plus the sub-blocks whose lattice intersects the
/// (stencil-dilated) region.
pub fn decompress_region<T: Scalar, S: SectionSource + ?Sized>(
    source: &S,
    region: &Region,
) -> Result<(Field<T>, AccessBreakdown)> {
    crate::random_access::decompress_region::<T, S>(source, region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StzCompressor, StzConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use stz_field::Dims;

    fn sample() -> (Field<f32>, StzArchive<f32>) {
        let f = Field::from_fn(Dims::d3(20, 20, 20), |z, y, x| {
            ((z as f32) * 0.2).sin() + ((y as f32) * 0.15).cos() + (x as f32) * 0.01
        });
        let a = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        (f, a)
    }

    /// A source that counts section fetches, to prove the generic paths are
    /// the ones being exercised.
    struct CountingSource<'a> {
        inner: &'a StzArchive<f32>,
        fetches: AtomicUsize,
    }

    impl SectionSource for CountingSource<'_> {
        fn header(&self) -> &ArchiveHeader {
            self.inner.header()
        }
        fn l1_bytes(&self) -> Result<Cow<'_, [u8]>> {
            self.fetches.fetch_add(1, Ordering::Relaxed);
            Ok(Cow::Borrowed(self.inner.l1_bytes()))
        }
        fn block_bytes(&self, level: u8, i: usize) -> Result<Cow<'_, [u8]>> {
            self.fetches.fetch_add(1, Ordering::Relaxed);
            Ok(Cow::Borrowed(self.inner.block_bytes(level, i)))
        }
        fn bytes_through_level(&self, k: u8) -> usize {
            self.inner.bytes_through_level(k)
        }
    }

    #[test]
    fn generic_paths_match_archive_methods() {
        let (_, a) = sample();
        let src = CountingSource { inner: &a, fetches: AtomicUsize::new(0) };
        assert_eq!(decompress::<f32, _>(&src, false).unwrap(), a.decompress().unwrap());
        assert_eq!(decompress_level::<f32, _>(&src, 1).unwrap(), a.decompress_level(1).unwrap());
        let region = Region::d3(2..8, 3..9, 4..10);
        let (roi, _) = decompress_region::<f32, _>(&src, &region).unwrap();
        assert_eq!(roi, a.decompress_region(&region).unwrap());
        assert!(src.fetches.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn level_one_preview_touches_only_l1() {
        let (_, a) = sample();
        let src = CountingSource { inner: &a, fetches: AtomicUsize::new(0) };
        decompress_level::<f32, _>(&src, 1).unwrap();
        // One fetch: the SZ3 stream. No finer-level blocks.
        assert_eq!(src.fetches.load(Ordering::Relaxed), 1);
    }
}
