//! Random-access decompression of regions of interest (paper §3.3, Table 4).
//!
//! Reconstructing an ROI needs:
//!
//! 1. **Level 1** — always decoded in full (the SZ3 stream is monolithic),
//!    but it is only ~1.6% of the data in the 3-level 3-D scheme.
//! 2. **Decode** — for every finer level, only the sub-blocks whose lattice
//!    intersects the (stencil-dilated) ROI are entropy-decoded. A 2-D slice
//!    of a 3-D grid touches only the sub-blocks matching its z-parity — 3 of
//!    7 at the finest level, the paper's ≈57% decode saving. A 3-D box
//!    intersects all sub-blocks, so decode is not reduced (also as in the
//!    paper).
//! 3. **Predict** — only the points inside the dilated ROI are predicted and
//!    reconstructed: cost proportional to the ROI, not the dataset (the
//!    paper's ≈98.4% prediction saving).
//!
//! Every stage is timed separately so the benchmark harness can regenerate
//! Table 4's breakdown.

use crate::compressor::{decode_level1, parse_block_payload, upscatter, PayloadMeta};
use crate::kernels::predict_point;
use crate::level::LevelPlan;
use crate::source::SectionSource;
use std::time::Instant;
use stz_codec::{huffman, CodecError, LinearQuantizer, Result, ESCAPE_SYMBOL};
use stz_field::{Field, Region, Scalar};
use stz_sz3::quant::reconstruct_scalar;

/// Per-stage wall-clock breakdown of one random-access decompression,
/// mirroring the columns of the paper's Table 4.
#[derive(Debug, Clone, Default)]
pub struct AccessBreakdown {
    /// Seconds decompressing the level-1 SZ3 stream ("L1 SZ3").
    pub l1_sz3: f64,
    /// Per finer level (index 0 = level 2): stage timings.
    pub levels: Vec<LevelTimes>,
    /// Total seconds.
    pub total: f64,
}

/// Stage timings for one finer level.
#[derive(Debug, Clone, Default)]
pub struct LevelTimes {
    /// 2-based level index.
    pub level: u8,
    /// Seconds entropy-decoding sub-block streams ("L* dec.").
    pub decode: f64,
    /// Seconds predicting + applying residuals for ROI points ("L* pre.").
    pub predict: f64,
    /// Seconds assembling working grids ("L* rec.").
    pub reconstruct: f64,
    /// Sub-blocks whose streams were (partially) decoded.
    pub decoded_blocks: usize,
    /// Sub-blocks skipped entirely (no intersection with the ROI).
    pub skipped_blocks: usize,
    /// Huffman chunks entropy-decoded within visited sub-blocks.
    pub decoded_chunks: usize,
    /// Huffman chunks skipped within visited sub-blocks — the paper's
    /// "random-access Huffman decoding" future-work item, realized via
    /// per-chunk escape counts in the stream.
    pub skipped_chunks: usize,
}

impl AccessBreakdown {
    /// Total seconds spent entropy-decoding across all levels.
    pub fn decode_total(&self) -> f64 {
        self.levels.iter().map(|l| l.decode).sum()
    }

    /// Total seconds spent predicting across all levels.
    pub fn predict_total(&self) -> f64 {
        self.levels.iter().map(|l| l.predict).sum()
    }
}

/// Shrink a region to the coarse (stride-2 origin) lattice, rounding
/// outwards: every even point of `r` maps to the result.
fn halve_region(r: &Region) -> Region {
    Region {
        z0: r.z0 / 2,
        z1: r.z1.div_ceil(2),
        y0: r.y0 / 2,
        y1: r.y1.div_ceil(2),
        x0: r.x0 / 2,
        x1: r.x1.div_ceil(2),
    }
}

/// The per-level needed regions (in each level's working-grid coordinates):
/// index `k-1` is the region of level `k`'s grid that must be reconstructed.
pub(crate) fn needed_regions(plan: &LevelPlan, region: &Region) -> Vec<Region> {
    let nlev = plan.num_levels() as usize;
    let mut needed = vec![region.clone(); nlev];
    for k in (0..nlev - 1).rev() {
        // The level-(k+2) prediction stencil reaches ±3 grid units around
        // its targets; those sources live at even coordinates of level
        // (k+2)'s grid, i.e. on level (k+1)'s grid at half coordinates.
        let finer = &needed[k + 1];
        let dilated = finer.dilate(3, plan.levels[k + 1].grid_dims);
        needed[k] = halve_region(&dilated);
    }
    needed
}

/// Random-access decompression of `region` with stage timings.
///
/// Generic over [`SectionSource`]: only the level-1 stream and the
/// sub-blocks whose lattice intersects the stencil-dilated region are
/// fetched, so an out-of-core source reads a fraction of the archive.
pub(crate) fn decompress_region<T: Scalar, S: SectionSource + ?Sized>(
    source: &S,
    region: &Region,
) -> Result<(Field<T>, AccessBreakdown)> {
    let dims = source.header().dims;
    if !region.fits_in(dims) {
        return Err(CodecError::corrupt(format!("region {region:?} outside grid {dims}")));
    }
    let start = Instant::now();
    let plan = source.plan();
    let needed = needed_regions(&plan, region);
    let ebs = source.header().level_ebs();
    let interp = source.header().interp;
    let mut breakdown = AccessBreakdown::default();

    // Level 1: always decoded in full.
    let t = Instant::now();
    let mut grid = decode_level1::<T, S>(source, &plan)?;
    breakdown.l1_sz3 = t.elapsed().as_secs_f64();

    for level in &plan.levels[1..] {
        let li = level.index as usize - 1;
        let quant = LinearQuantizer::new(ebs[li], source.header().radius);
        let mut times = LevelTimes { level: level.index, ..Default::default() };

        // Reconstruct: assemble the next working grid from the coarser one.
        let t = Instant::now();
        let mut next = Field::<f64>::zeros(level.grid_dims);
        upscatter(&grid, &mut next);
        times.reconstruct += t.elapsed().as_secs_f64();

        for (i, block) in level.blocks.iter().enumerate() {
            // Which of this block's points fall inside the needed region?
            let target = match needed[li].project_to_sublattice(block.grid_lattice.offset(), 2) {
                Some(t) => t,
                None => {
                    times.skipped_blocks += 1;
                    continue;
                }
            };

            // Decode only the Huffman chunks the target sub-box touches;
            // per-chunk escape counts keep the outlier cursor aligned across
            // skipped chunks (random-access Huffman decoding).
            let t = Instant::now();
            let block_bytes = source.block_bytes(level.index, i)?;
            let (meta, outliers) = parse_block_payload::<T>(&block_bytes, block.lattice.len())?;
            let sparse = SparseSymbols::decode_for(&meta, block.lattice.dims(), &target)?;
            times.decode += t.elapsed().as_secs_f64();
            times.decoded_blocks += 1;
            times.decoded_chunks += sparse.decoded_chunks;
            times.skipped_chunks += meta.chunks.len() - sparse.decoded_chunks;

            // Predict only the needed points.
            let t = Instant::now();
            predict_region::<T>(&sparse, &outliers, block, &target, &quant, interp, &mut next);
            times.predict += t.elapsed().as_secs_f64();
        }

        breakdown.levels.push(times);
        grid = next;
    }

    // Final extraction of the ROI from the full-resolution working grid.
    let t = Instant::now();
    let roi_grid = grid.extract_region(region);
    let out = Field::from_vec(
        roi_grid.dims(),
        roi_grid.as_slice().iter().map(|&v| T::from_f64(v)).collect(),
    );
    if let Some(last) = breakdown.levels.last_mut() {
        last.reconstruct += t.elapsed().as_secs_f64();
    }
    breakdown.total = start.elapsed().as_secs_f64();
    Ok((out, breakdown))
}

/// Selectively decoded symbols of one sub-block: only the Huffman chunks
/// intersecting the target sub-box are materialized.
struct SparseSymbols {
    chunk_size: usize,
    /// Decoded chunks by id; `None` for skipped chunks.
    decoded: Vec<Option<Vec<u32>>>,
    /// Global outlier rank at the start of each chunk (prefix sums of the
    /// per-chunk escape counts).
    escape_prefix: Vec<usize>,
    /// Escape positions (block-local indices) within each decoded chunk.
    escape_positions: Vec<Vec<u32>>,
    decoded_chunks: usize,
}

impl SparseSymbols {
    /// Decode exactly the chunks containing any point of `target` (C-order
    /// indices over a block of `bdims`).
    fn decode_for(
        meta: &PayloadMeta<'_>,
        bdims: stz_field::Dims,
        target: &Region,
    ) -> Result<SparseSymbols> {
        let (by, bx) = (bdims.ny(), bdims.nx());
        let nchunks = meta.chunks.len();
        let mut wanted = vec![false; nchunks];
        for z in target.z0..target.z1 {
            for y in target.y0..target.y1 {
                let row = (z * by + y) * bx;
                let first = (row + target.x0) / meta.chunk_size;
                let last = (row + target.x1 - 1) / meta.chunk_size;
                for w in &mut wanted[first..=last.min(nchunks - 1)] {
                    *w = true;
                }
            }
        }
        let mut escape_prefix = Vec::with_capacity(nchunks);
        let mut acc = 0usize;
        for &e in &meta.chunk_escapes {
            escape_prefix.push(acc);
            acc += e;
        }
        let mut decoded = Vec::with_capacity(nchunks);
        let mut escape_positions = Vec::with_capacity(nchunks);
        let mut decoded_chunks = 0;
        for (c, &want) in wanted.iter().enumerate() {
            if !want {
                decoded.push(None);
                escape_positions.push(Vec::new());
                continue;
            }
            let symbols = huffman::decode_block(meta.chunks[c])?;
            if symbols.len() != meta.len_of(c) {
                return Err(CodecError::corrupt("chunk symbol count mismatch"));
            }
            let base = c * meta.chunk_size;
            let positions: Vec<u32> = symbols
                .iter()
                .enumerate()
                .filter(|(_, &s)| s == ESCAPE_SYMBOL)
                .map(|(j, _)| (base + j) as u32)
                .collect();
            if positions.len() != meta.chunk_escapes[c] {
                return Err(CodecError::corrupt("chunk escape count mismatch"));
            }
            decoded.push(Some(symbols));
            escape_positions.push(positions);
            decoded_chunks += 1;
        }
        Ok(SparseSymbols {
            chunk_size: meta.chunk_size,
            decoded,
            escape_prefix,
            escape_positions,
            decoded_chunks,
        })
    }

    /// Symbol at block-local index `idx` (its chunk must be decoded).
    #[inline]
    fn symbol(&self, idx: usize) -> u32 {
        let c = idx / self.chunk_size;
        self.decoded[c].as_ref().expect("chunk was decoded")[idx % self.chunk_size]
    }

    /// Global outlier rank of the escape at block-local index `idx`.
    fn outlier_rank(&self, idx: usize) -> usize {
        let c = idx / self.chunk_size;
        let within = self.escape_positions[c]
            .binary_search(&(idx as u32))
            .expect("escape symbol must be catalogued");
        self.escape_prefix[c] + within
    }
}

/// Reconstruct the `target` sub-box of one block directly into the working
/// grid. `target` is in block-local coordinates.
fn predict_region<T: Scalar>(
    sparse: &SparseSymbols,
    outliers: &[T],
    block: &crate::level::BlockSpec,
    target: &Region,
    quant: &LinearQuantizer,
    interp: stz_sz3::InterpKind,
    next: &mut Field<f64>,
) {
    let bdims = block.lattice.dims();
    let (by, bx) = (bdims.ny(), bdims.nx());
    let gdims = next.dims();
    let active = &block.active_axes[..];
    for z in target.z0..target.z1 {
        for y in target.y0..target.y1 {
            let row = (z * by + y) * bx;
            for x in target.x0..target.x1 {
                let idx = row + x;
                let (gz, gy, gx) = block.grid_lattice.to_parent(z, y, x);
                let symbol = sparse.symbol(idx);
                let value = if symbol == ESCAPE_SYMBOL {
                    outliers[sparse.outlier_rank(idx)].to_f64()
                } else {
                    // Prediction sources are even-coordinate grid points,
                    // already present in `next`.
                    let pred = {
                        let gbuf = next.as_slice();
                        predict_point(gbuf, gdims, [gz, gy, gx], active, 1, interp)
                    };
                    reconstruct_scalar::<T>(quant, symbol, pred)
                };
                let gidx = gdims.index(gz, gy, gx);
                next.as_mut_slice()[gidx] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StzArchive, StzCompressor, StzConfig};
    use stz_field::Dims;

    fn field(dims: Dims) -> Field<f32> {
        Field::from_fn(dims, |z, y, x| {
            ((z as f32) * 0.17).sin() * ((y as f32) * 0.23).cos()
                + ((x as f32) * 0.11).sin()
                + 0.01 * (z + y) as f32
        })
    }

    fn archive(dims: Dims, eb: f64) -> (Field<f32>, StzArchive<f32>) {
        let f = field(dims);
        let a = StzCompressor::new(StzConfig::three_level(eb)).compress(&f).unwrap();
        (f, a)
    }

    #[test]
    fn roi_matches_full_decompression() {
        let (_, a) = archive(Dims::d3(24, 24, 24), 1e-3);
        let full = a.decompress().unwrap();
        for region in [
            Region::d3(3..9, 5..12, 7..20),
            Region::d3(0..1, 0..24, 0..24),     // 2-D slice at z = 0
            Region::d3(11..12, 0..24, 0..24),   // 2-D slice at odd z
            Region::d3(0..24, 0..24, 0..24),    // everything
            Region::d3(23..24, 23..24, 23..24), // single corner point
        ] {
            let roi = a.decompress_region(&region).unwrap();
            let expect = full.extract_region(&region);
            assert_eq!(roi, expect, "region {region:?}");
        }
    }

    #[test]
    fn roi_error_bounded() {
        let (f, a) = archive(Dims::d3(20, 22, 26), 1e-2);
        let region = Region::d3(2..10, 3..15, 4..22);
        let roi = a.decompress_region(&region).unwrap();
        let orig = f.extract_region(&region);
        let err = orig
            .as_slice()
            .iter()
            .zip(roi.as_slice())
            .map(|(&o, &r)| ((o as f64) - (r as f64)).abs())
            .fold(0.0, f64::max);
        assert!(err <= 1e-2);
    }

    #[test]
    fn slice_skips_blocks_box_does_not() {
        let (_, a) = archive(Dims::d3(32, 32, 32), 1e-3);
        // Even-z slice: level-3 blocks with oz = 1 are not needed -> 3 of 7.
        let (_, bd) =
            a.decompress_region_with_breakdown(&Region::slice_z(Dims::d3(32, 32, 32), 8)).unwrap();
        let l3 = &bd.levels[1];
        assert_eq!(l3.decoded_blocks, 3, "even slice decodes 3 of 7 level-3 blocks");
        assert_eq!(l3.skipped_blocks, 4);
        // Interior 3-D box: every level-3 block intersects.
        let (_, bd) = a.decompress_region_with_breakdown(&Region::d3(8..20, 8..20, 8..20)).unwrap();
        assert_eq!(bd.levels[1].decoded_blocks, 7);
        assert_eq!(bd.levels[1].skipped_blocks, 0);
    }

    #[test]
    fn odd_slice_uses_oz1_blocks() {
        let (_, a) = archive(Dims::d3(32, 32, 32), 1e-3);
        let full = a.decompress().unwrap();
        let region = Region::slice_z(Dims::d3(32, 32, 32), 9);
        let (roi, bd) = a.decompress_region_with_breakdown(&region).unwrap();
        assert_eq!(roi, full.extract_region(&region));
        // Odd-z slice needs the 4 blocks with oz = 1 at level 3.
        assert_eq!(bd.levels[1].decoded_blocks, 4);
    }

    #[test]
    fn needed_regions_cover_stencils() {
        let plan = LevelPlan::new(Dims::d3(32, 32, 32), 3);
        let region = Region::d3(10..12, 10..12, 10..12);
        let needed = needed_regions(&plan, &region);
        // Finest level: the region itself.
        assert_eq!(needed[2], region);
        // Level-2 grid (16^3): region/2 dilated by stencil reach.
        assert!(needed[1].contains(5, 5, 5));
        assert!(needed[1].z0 <= 4 && needed[1].z1 >= 7);
        // Level-1 grid (8^3) must cover the level-2 stencil sources.
        assert!(needed[0].z1 <= 8);
    }

    #[test]
    fn region_outside_grid_rejected() {
        let (_, a) = archive(Dims::d3(16, 16, 16), 1e-3);
        assert!(a.decompress_region(&Region::d3(0..17, 0..4, 0..4)).is_err());
    }

    #[test]
    fn roi_with_outliers_in_and_out() {
        // Escaped values inside and outside the ROI must not desynchronize
        // the outlier cursor.
        let mut f = field(Dims::d3(16, 16, 16));
        f.set(1, 1, 1, 1e30); // outside ROI (level-3 point)
        f.set(9, 9, 9, -1e30); // inside ROI (level-3 point)
        f.set(5, 9, 9, 2e30); // inside ROI
        let a = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
        let region = Region::d3(4..12, 6..12, 6..12);
        let roi = a.decompress_region(&region).unwrap();
        assert_eq!(roi.get(9 - 4, 9 - 6, 9 - 6), -1e30);
        assert_eq!(roi.get(5 - 4, 9 - 6, 9 - 6), 2e30);
        let full = a.decompress().unwrap();
        assert_eq!(roi, full.extract_region(&region));
    }

    #[test]
    fn two_level_archive_roi() {
        let f = field(Dims::d3(18, 18, 18));
        let a = StzCompressor::new(StzConfig::two_level(1e-3)).compress(&f).unwrap();
        let region = Region::d3(5..10, 0..18, 2..9);
        let roi = a.decompress_region(&region).unwrap();
        assert_eq!(roi, a.decompress().unwrap().extract_region(&region));
    }

    #[test]
    fn chunk_skipping_with_scattered_escapes() {
        // Escapes inside skipped chunks must not desynchronize outlier ranks
        // of escapes inside decoded chunks (random-access Huffman decoding).
        let mut f = field(Dims::d3(24, 24, 24));
        // Outliers spread across the whole volume (different level-3 blocks
        // and chunk positions).
        for (i, &(z, y, x)) in
            [(1, 1, 1), (3, 5, 7), (9, 9, 9), (15, 3, 21), (23, 23, 23)].iter().enumerate()
        {
            f.set(z, y, x, 1e30 + i as f32 * 1e28);
        }
        let a = StzCompressor::new(
            // Tiny radius forces extra escapes everywhere.
            StzConfig::three_level(1e-4).with_radius(16),
        )
        .compress(&f)
        .unwrap();
        let full = a.decompress().unwrap();
        for region in [
            Region::d3(8..12, 8..12, 8..12),
            Region::slice_z(Dims::d3(24, 24, 24), 9),
            Region::d3(20..24, 20..24, 20..24),
            Region::d3(0..24, 0..24, 0..24),
        ] {
            let roi = a.decompress_region(&region).unwrap();
            assert_eq!(roi, full.extract_region(&region), "{region:?}");
        }
    }

    #[test]
    fn small_roi_skips_chunks_in_large_blocks() {
        // On a block large enough to span multiple Huffman chunks, a small
        // ROI must entropy-decode only a subset of them.
        let f = field(Dims::d3(96, 96, 96));
        let a = StzCompressor::new(StzConfig::three_level(1e-2)).compress(&f).unwrap();
        let region = Region::d3(0..4, 0..4, 0..4);
        let (_, bd) = a.decompress_region_with_breakdown(&region).unwrap();
        let finest = bd.levels.last().unwrap();
        assert!(
            finest.skipped_chunks > 0,
            "expected chunk skipping: decoded {} skipped {}",
            finest.decoded_chunks,
            finest.skipped_chunks
        );
        // And correctness still holds.
        let full = a.decompress().unwrap();
        assert_eq!(a.decompress_region(&region).unwrap(), full.extract_region(&region));
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let (_, a) = archive(Dims::d3(24, 24, 24), 1e-3);
        let (_, bd) = a.decompress_region_with_breakdown(&Region::d3(0..6, 0..6, 0..6)).unwrap();
        assert!(bd.total > 0.0);
        assert!(bd.l1_sz3 > 0.0);
        assert_eq!(bd.levels.len(), 2);
        let sum = bd.l1_sz3
            + bd.decode_total()
            + bd.predict_total()
            + bd.levels.iter().map(|l| l.reconstruct).sum::<f64>();
        assert!(sum <= bd.total * 1.5, "stage sum {sum} vs total {}", bd.total);
    }
}
