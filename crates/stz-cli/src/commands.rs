//! Subcommand implementations.
//!
//! The read verbs — `list`, `inspect`, `extract`, `preview` — are
//! location-transparent: they resolve one `--from <location>` (a container
//! path, a bare archive, or an `stz://host:port/container` URI) into a
//! `Box<dyn Store>` and serve the request through the unified access API,
//! so each verb has exactly one code path for every transport. The pre-URI
//! `remote <verb> --addr … -c <name>` spellings are kept as hidden alias
//! shims that rewrite their flags into the same URI and call the same
//! functions.

use crate::args::{self, Parsed};
use crate::fmt;
use std::path::Path;
use stz_access::{
    open_store, open_store_mut, Entry, EntryPayload, EntrySel, Fetch, Location, Store, StoreMut,
};
use stz_backend::{registry, BackendScalar, Codec, ErrorBound};
use stz_core::{InterpKind, StzArchive, StzCompressor, StzConfig};
use stz_data::io::{read_raw, write_raw};
use stz_field::{Field, Scalar};
use stz_serve::{Client, ServeOptions, Server};
use stz_stream::{pack_pipelined, ForeignArchive};

/// Resolve `--backend` (default: the native stz engine).
fn backend_choice(p: &Parsed) -> Result<&'static dyn Codec, String> {
    let name = p.optional("--backend").unwrap_or("stz");
    registry().by_name(name).ok_or_else(|| {
        format!("unknown backend {name:?} (available: {})", registry().names().join(", "))
    })
}

/// Reject stz-only hierarchy flags when a foreign backend is selected.
fn reject_stz_flags(p: &Parsed, backend: &dyn Codec) -> Result<(), String> {
    for flag in ["--levels", "--linear", "--no-adaptive"] {
        let given = match flag {
            "--levels" => p.optional("--levels").is_some(),
            _ => p.switch(flag),
        };
        if given {
            return Err(format!("{flag} applies only to the stz backend, not {}", backend.name()));
        }
    }
    Ok(())
}

/// The requested error bound, before per-field resolution.
fn error_bound(p: &Parsed) -> Result<ErrorBound, String> {
    let eb: f64 =
        p.required("-e")?.parse().map_err(|_| "error bound -e must be a number".to_string())?;
    if !(eb > 0.0 && eb.is_finite()) {
        return Err("error bound must be positive and finite".into());
    }
    Ok(if p.switch("--rel") { ErrorBound::Relative(eb) } else { ErrorBound::Absolute(eb) })
}

/// Build the thread pool a subcommand will run under (`0` = auto:
/// `STZ_THREADS` or all cores). Archive bytes are identical at every width.
fn thread_pool(threads: usize) -> Result<rayon::ThreadPool, String> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| format!("cannot build thread pool: {e}"))
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv)?;
    match p.command.as_str() {
        "compress" => compress(&p),
        "decompress" => decompress(&p),
        "preview" => preview(&p),
        // `roi` predates `extract` and is the same request shape.
        "roi" | "extract" => extract(&p),
        "info" => info(&p),
        "pack" => pack(&p),
        "append" => append(&p),
        "delete" => delete(&p),
        "compact" => compact(&p),
        "list" => list(&p),
        "inspect" => inspect(&p),
        "serve" => serve(&p),
        "stats" => stats(&p),
        "trace" => trace(&p),
        // Hidden aliases (one release): the pre-URI remote twins
        // (remote_list / remote_inspect / remote_extract / remote_preview
        // as dedicated functions) are gone — each alias rewrites its
        // --addr/-c flags into an stz:// location inside `resolve_from`
        // and runs the exact same unified implementation.
        "remote-list" => list(&p),
        "remote-inspect" => inspect(&p),
        "remote-extract" => extract(&p),
        "remote-preview" => preview(&p),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// The location a read verb operates on: `--from`, or the `remote` alias
/// flags (`--addr`/`-c`), or plain `-i`.
fn resolve_from(p: &Parsed) -> Result<String, String> {
    if let Some(from) = p.optional("--from") {
        return Ok(from.to_string());
    }
    if let Some(addr) = p.optional("--addr") {
        return Ok(match p.optional("-c") {
            Some(container) => format!("stz://{addr}/{container}"),
            None => format!("stz://{addr}"),
        });
    }
    if let Some(input) = p.optional("-i") {
        return Ok(input.to_string());
    }
    Err("missing required flag --from (a path or stz://host:port/container)".into())
}

/// The entry selector of a fetch (`--entry` name, default entry 0).
fn entry_sel(p: &Parsed) -> EntrySel {
    match p.optional("--entry") {
        Some(name) => EntrySel::Name(name.to_string()),
        None => EntrySel::Index(0),
    }
}

/// Open the store at a location, stringifying the error taxonomy.
fn store_at(from: &str) -> Result<Box<dyn Store>, String> {
    open_store(from).map_err(|e| e.to_string())
}

/// Open one entry at a location.
fn open_entry(p: &Parsed, from: &str) -> Result<Box<dyn Entry>, String> {
    store_at(from)?.open(&entry_sel(p)).map_err(|e| e.to_string())
}

/// Whether `path` holds an stz-stream container (vs. a bare archive) —
/// the access layer's sniff; an unreadable file is "not a container" here
/// and produces its real diagnostic from whichever open follows.
fn is_container(path: &Path) -> bool {
    stz_access::is_container_path(path).unwrap_or(false)
}

fn build_config(p: &Parsed) -> Result<StzConfig, String> {
    let eb: f64 =
        p.required("-e")?.parse().map_err(|_| "error bound -e must be a number".to_string())?;
    if !(eb > 0.0 && eb.is_finite()) {
        return Err("error bound must be positive and finite".into());
    }
    let mut cfg = if p.switch("--rel") {
        StzConfig::three_level_relative(eb)
    } else {
        StzConfig::three_level(eb)
    };
    if let Some(l) = p.optional("--levels") {
        let levels: u8 = l.parse().map_err(|_| "--levels must be 2..=4".to_string())?;
        if !(2..=4).contains(&levels) {
            return Err("--levels must be 2..=4".into());
        }
        cfg = cfg.with_levels(levels);
    }
    if p.switch("--linear") {
        cfg = cfg.with_interp(InterpKind::Linear);
    }
    if p.switch("--no-adaptive") {
        cfg = cfg.with_adaptive(false);
    }
    Ok(cfg)
}

fn compress(p: &Parsed) -> Result<(), String> {
    let dims = args::parse_dims(p.required("-d")?)?;
    let backend = backend_choice(p)?;
    let input = Path::new(p.required("-i")?);
    let output = Path::new(p.required("-o")?);
    if backend.id() != stz_backend::id::STZ {
        // Foreign engines compress through the registry (whole-field,
        // serial); the stz path below keeps its tuned parallel pipeline.
        reject_stz_flags(p, backend)?;
        let eb = error_bound(p)?;
        return match p.required("-t")? {
            "f32" => compress_foreign::<f32>(backend, input, output, dims, &eb),
            "f64" => compress_foreign::<f64>(backend, input, output, dims, &eb),
            t => Err(format!("unknown element type {t:?} (want f32 or f64)")),
        };
    }
    let cfg = build_config(p)?;
    let threads = p.threads()?;
    match p.required("-t")? {
        "f32" => compress_typed::<f32>(input, output, dims, cfg, threads),
        "f64" => compress_typed::<f64>(input, output, dims, cfg, threads),
        t => Err(format!("unknown element type {t:?} (want f32 or f64)")),
    }
}

fn compress_foreign<T: BackendScalar>(
    backend: &dyn Codec,
    input: &Path,
    output: &Path,
    dims: stz_field::Dims,
    eb: &ErrorBound,
) -> Result<(), String> {
    let field: Field<T> = read_raw(input, dims).map_err(|e| e.to_string())?;
    let bytes = stz_backend::compress(backend, &field, eb).map_err(|e| e.to_string())?;
    let cr = field.nbytes() as f64 / bytes.len() as f64;
    let len = bytes.len();
    std::fs::write(output, bytes).map_err(|e| e.to_string())?;
    eprintln!(
        "{} -> {} [{}] ({len} bytes, CR {cr:.1}x)",
        input.display(),
        output.display(),
        backend.name()
    );
    Ok(())
}

fn compress_typed<T: Scalar>(
    input: &Path,
    output: &Path,
    dims: stz_field::Dims,
    cfg: StzConfig,
    threads: usize,
) -> Result<(), String> {
    let field: Field<T> = read_raw(input, dims).map_err(|e| e.to_string())?;
    let compressor = StzCompressor::new(cfg);
    let archive = if threads == 1 {
        compressor.compress(&field)
    } else {
        thread_pool(threads)?.install(|| compressor.compress_parallel(&field))
    }
    .map_err(|e| e.to_string())?;
    let cr = archive.compression_ratio();
    let len = archive.compressed_len();
    std::fs::write(output, archive.into_bytes()).map_err(|e| e.to_string())?;
    eprintln!("{} -> {} ({len} bytes, CR {cr:.1}x)", input.display(), output.display());
    Ok(())
}

/// Load an archive and dispatch on its element type.
fn with_archive<R>(
    path: &Path,
    f32_case: impl FnOnce(StzArchive<f32>) -> Result<R, String>,
    f64_case: impl FnOnce(StzArchive<f64>) -> Result<R, String>,
) -> Result<R, String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    match StzArchive::<f32>::from_bytes(bytes.clone()) {
        Ok(a) => f32_case(a),
        Err(_) => f64_case(StzArchive::<f64>::from_bytes(bytes).map_err(|e| e.to_string())?),
    }
}

fn decompress(p: &Parsed) -> Result<(), String> {
    let input = Path::new(p.required("-i")?);
    let output = Path::new(p.required("-o")?).to_path_buf();
    // Which engine wrote this archive? --backend wins; otherwise sniff the
    // magic so `stz decompress` keeps working on any backend's output.
    let backend = match p.optional("--backend") {
        Some(_) => backend_choice(p)?,
        None => {
            let mut prefix = [0u8; 4];
            let mut f = std::fs::File::open(input).map_err(|e| e.to_string())?;
            std::io::Read::read_exact(&mut f, &mut prefix).map_err(|e| e.to_string())?;
            registry().detect(&prefix).ok_or_else(|| {
                format!(
                    "{} is not an archive of any known backend ({})",
                    input.display(),
                    registry().names().join(", ")
                )
            })?
        }
    };
    if backend.id() != stz_backend::id::STZ {
        return decompress_foreign(backend, input, &output);
    }
    let pool = thread_pool(p.threads()?)?;
    let serial = p.threads()? == 1;
    with_archive(
        input,
        |a| {
            let f = if serial { a.decompress() } else { pool.install(|| a.decompress_parallel()) }
                .map_err(|e| e.to_string())?;
            write_raw(&output, &f).map_err(|e| e.to_string())?;
            eprintln!("wrote {} ({} f32 values)", output.display(), f.len());
            Ok(())
        },
        |a| {
            let f = if serial { a.decompress() } else { pool.install(|| a.decompress_parallel()) }
                .map_err(|e| e.to_string())?;
            write_raw(&output, &f).map_err(|e| e.to_string())?;
            eprintln!("wrote {} ({} f64 values)", output.display(), f.len());
            Ok(())
        },
    )
}

/// Decode a foreign backend's archive, dispatching on the element type the
/// archive itself declares (f32 first, f64 on a type mismatch).
fn decompress_foreign(backend: &dyn Codec, input: &Path, output: &Path) -> Result<(), String> {
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    match stz_backend::decompress::<f32>(backend, &bytes) {
        Ok(f) => {
            write_raw(output, &f).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {} ({} f32 values, {} backend)",
                output.display(),
                f.len(),
                backend.name()
            );
            Ok(())
        }
        Err(f32_err) => {
            // Both attempts failing must surface both diagnostics — the f32
            // error is the real one for a corrupt f32 archive, the f64 error
            // for a corrupt f64 archive.
            let f: Field<f64> = stz_backend::decompress(backend, &bytes)
                .map_err(|f64_err| format!("as f32: {f32_err}; as f64: {f64_err}"))?;
            write_raw(output, &f).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {} ({} f64 values, {} backend)",
                output.display(),
                f.len(),
                backend.name()
            );
            Ok(())
        }
    }
}

/// `preview`: a level-k fetch through the unified store — one code path
/// for bare archives, containers, and servers.
fn preview(p: &Parsed) -> Result<(), String> {
    let from = resolve_from(p)?;
    let output = Path::new(p.required("-o")?).to_path_buf();
    let level: u8 =
        p.required("-l")?.parse().map_err(|_| "-l must be a level number".to_string())?;
    let entry = open_entry(p, &from)?;
    let fetched = entry.fetch(&Fetch::Level(level)).map_err(|e| e.to_string())?;
    std::fs::write(&output, &fetched.data).map_err(|e| e.to_string())?;
    let desc = entry.desc();
    let cost = desc
        .level_bytes
        .get(level as usize - 1)
        .map(|b| format!(" ({b} of {} payload bytes needed)", desc.compressed_len))
        .unwrap_or_default();
    eprintln!(
        "level {level} preview of {:?} [{}]: {} -> {}{cost}",
        desc.name,
        fetched.provenance,
        fetched.dims,
        output.display()
    );
    Ok(())
}

/// `extract` (and its older spelling `roi`): a full or region fetch
/// through the unified store.
fn extract(p: &Parsed) -> Result<(), String> {
    let from = resolve_from(p)?;
    let output = Path::new(p.required("-o")?).to_path_buf();
    let fetch = match p.optional("-r") {
        Some(spec) => Fetch::Region(args::parse_region(spec)?),
        None => Fetch::Full,
    };
    let entry = open_entry(p, &from)?;
    let fetched = entry.fetch(&fetch).map_err(|e| e.to_string())?;
    std::fs::write(&output, &fetched.data).map_err(|e| e.to_string())?;
    let what = match &fetch {
        Fetch::Region(region) => format!("ROI {region:?}"),
        _ => "full field".to_string(),
    };
    eprintln!(
        "{what} of {:?} [{}]: {} ({} bytes) -> {}",
        entry.desc().name,
        fetched.provenance,
        fetched.dims,
        fetched.data.len(),
        output.display()
    );
    Ok(())
}

/// `list`: containers at a directory or server, or the entries of one
/// container/archive.
fn list(p: &Parsed) -> Result<(), String> {
    let from = resolve_from(p)?;
    let location = Location::parse(&from).map_err(|e| e.to_string())?;
    let container_level = match &location {
        Location::Remote { container, .. } => container.is_none(),
        Location::Path(path) => path.is_dir(),
    };
    if container_level {
        let containers = stz_access::list_location(&from).map_err(|e| e.to_string())?;
        println!("{} hosted container(s)", containers.len());
        for c in &containers {
            println!("  {:<24} {:>4} entries  {:>12} bytes", c.name, c.entries, c.bytes);
        }
        return Ok(());
    }
    let store = store_at(&from)?;
    let entries = store.list().map_err(|e| e.to_string())?;
    println!("{} entr{} in {}", entries.len(), if entries.len() == 1 { "y" } else { "ies" }, from);
    for d in &entries {
        println!(
            "  [{}] {:<20} {:<6} {:<4} {:>14}  {:>12} bytes",
            d.index,
            d.name,
            d.codec_name().unwrap_or("?"),
            d.type_name(),
            d.dims.to_string(),
            d.compressed_len
        );
    }
    Ok(())
}

fn info(p: &Parsed) -> Result<(), String> {
    // `--from` is accepted alongside the documented `-i`, so the inspect
    // fallback for bare archives works with either spelling.
    let from = resolve_from(p)?;
    let Location::Path(input) = Location::parse(&from).map_err(|e| e.to_string())? else {
        return Err(format!("info requires a local archive path, got {from:?}"));
    };
    with_archive(
        &input,
        |a| {
            print_info("f32", 4, &a);
            Ok(())
        },
        |a| {
            print_info("f64", 8, &a);
            Ok(())
        },
    )
}

fn print_info<T: Scalar>(type_name: &str, bytes_per: usize, a: &StzArchive<T>) {
    let h = a.header();
    println!("dims:            {}", h.dims);
    println!("element type:    {type_name}");
    println!("levels:          {}", h.levels);
    println!("interpolation:   {:?}", h.interp);
    println!("adaptive bounds: {} (ratio {})", h.adaptive, h.adaptive_ratio);
    println!("error bound:     {:.3e} (absolute, finest level)", h.eb_finest);
    println!("compressed:      {} bytes", a.compressed_len());
    println!("uncompressed:    {} bytes", h.dims.len() * bytes_per);
    println!("ratio:           {:.1}x", a.compression_ratio());
    for k in 1..=h.levels {
        println!(
            "  level {k}: preview {} — cumulative {} bytes",
            a.plan().preview_dims(k),
            a.bytes_through_level(k)
        );
    }
}

fn pack(p: &Parsed) -> Result<(), String> {
    let dims = args::parse_dims(p.required("-d")?)?;
    let backend = backend_choice(p)?;
    let threads = p.threads()?;
    let inputs: Vec<&str> = p.required("-i")?.split(',').filter(|s| !s.is_empty()).collect();
    if inputs.is_empty() {
        return Err("pack needs at least one input file".into());
    }
    if p.optional("--name").is_some() && inputs.len() > 1 {
        return Err("--name applies to a single input; multiple inputs are named by stem".into());
    }
    let output = Path::new(p.required("-o")?);
    if backend.id() != stz_backend::id::STZ {
        reject_stz_flags(p, backend)?;
        let eb = error_bound(p)?;
        return match p.required("-t")? {
            "f32" => pack_foreign::<f32>(backend, &inputs, output, dims, &eb, p, threads),
            "f64" => pack_foreign::<f64>(backend, &inputs, output, dims, &eb, p, threads),
            t => Err(format!("unknown element type {t:?} (want f32 or f64)")),
        };
    }
    let cfg = build_config(p)?;
    match p.required("-t")? {
        "f32" => pack_typed::<f32>(&inputs, output, dims, cfg, p.optional("--name"), threads),
        "f64" => pack_typed::<f64>(&inputs, output, dims, cfg, p.optional("--name"), threads),
        t => Err(format!("unknown element type {t:?} (want f32 or f64)")),
    }
}

/// Pack entries compressed by a foreign backend: each input becomes a
/// foreign-codec section, compressed on pipeline workers like the stz path.
fn pack_foreign<T: BackendScalar>(
    backend: &'static dyn Codec,
    inputs: &[&str],
    output: &Path,
    dims: stz_field::Dims,
    eb: &ErrorBound,
    p: &Parsed,
    threads: usize,
) -> Result<(), String> {
    let jobs = entry_jobs(inputs, p.optional("--name"))?;
    // Foreign engines compress serially, so pack parallelism is purely
    // entry-level: resolve the auto width (STZ_THREADS or all cores)
    // without spawning a pool that would sit idle.
    let entry_workers = match threads {
        0 => rayon::current_num_threads(),
        n => n,
    };
    let n = jobs.len();
    let compress_entry =
        |(name, input): (String, &Path)| -> stz_stream::Result<(String, stz_stream::PackEntry<T>)> {
            let field: Field<T> = read_raw(input, dims)?;
            // Resolve a relative bound once (value_range is a full-field
            // scan) and reuse the absolute value for both the compression
            // and the footer metadata.
            let abs = eb.absolute_for(&field);
            let bytes = stz_backend::compress(backend, &field, &ErrorBound::Absolute(abs))?;
            eprintln!(
                "compressed {} as {name:?} [{}] ({} bytes, CR {:.1}x)",
                input.display(),
                backend.name(),
                bytes.len(),
                field.nbytes() as f64 / bytes.len() as f64
            );
            Ok((name, ForeignArchive::new::<T>(backend.id(), dims, abs, bytes).into()))
        };
    let file = std::fs::File::create(output).map_err(|e| e.to_string())?;
    pack_pipelined(std::io::BufWriter::new(file), jobs, entry_workers, compress_entry)
        .map_err(|e| e.to_string())?;
    eprintln!("wrote {} ({n} entries, {} backend)", output.display(), backend.name());
    Ok(())
}

/// Derive every entry name up front, before any compression work, so
/// naming problems surface as plain CLI errors.
fn entry_jobs<'a>(
    inputs: &[&'a str],
    name_override: Option<&str>,
) -> Result<Vec<(String, &'a Path)>, String> {
    inputs
        .iter()
        .map(|input| {
            let input = Path::new(*input);
            let name = match name_override {
                Some(n) => n.to_string(),
                None => input
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .ok_or_else(|| format!("cannot derive entry name from {}", input.display()))?,
            };
            Ok((name, input))
        })
        .collect()
}

fn pack_typed<T: Scalar>(
    inputs: &[&str],
    output: &Path,
    dims: stz_field::Dims,
    cfg: StzConfig,
    name_override: Option<&str>,
    threads: usize,
) -> Result<(), String> {
    let jobs = entry_jobs(inputs, name_override)?;
    let pool = thread_pool(threads)?;
    // Entry-level parallelism: workers compress time steps serially while
    // the writer thread appends finished entries in order. A single entry
    // has no sibling entries to overlap with, so it parallelizes
    // *internally* over the pool instead.
    let entry_workers = if threads == 1 { 1 } else { pool.current_num_threads() };
    let single_entry = jobs.len() == 1;
    let compress_entry =
        |(name, input): (String, &Path)| -> stz_stream::Result<(String, stz_stream::PackEntry<T>)> {
            // An unreadable input is an I/O failure, not stream corruption.
            let field: Field<T> = read_raw(input, dims)?;
            let compressor = StzCompressor::new(cfg);
            let archive = if entry_workers > 1 && single_entry {
                pool.install(|| compressor.compress_parallel(&field))?
            } else {
                compressor.compress(&field)?
            };
            // Runs on a worker thread, so lines may interleave out of entry
            // order; say "compressed", which is true at this point — whether
            // every entry reached the container is confirmed by the final
            // "wrote … (N entries)" line.
            eprintln!(
                "compressed {} as {name:?} ({} bytes, CR {:.1}x)",
                input.display(),
                archive.compressed_len(),
                archive.compression_ratio()
            );
            Ok((name, archive.into()))
        };
    let file = std::fs::File::create(output).map_err(|e| e.to_string())?;
    let n = jobs.len();
    pack_pipelined(std::io::BufWriter::new(file), jobs, entry_workers, compress_entry)
        .map_err(|e| e.to_string())?;
    eprintln!("wrote {} ({n} entries)", output.display());
    Ok(())
}

/// Open the mutable store a mutation verb targets (`--to <container>`),
/// stringifying the error taxonomy. Remote locations are rejected by the
/// access layer: mutation happens on the host that owns the file.
fn store_mut_at(p: &Parsed) -> Result<Box<dyn StoreMut>, String> {
    let to = p.required("--to")?;
    open_store_mut(to).map_err(|e| e.to_string())
}

/// `append`: compress the inputs exactly like `pack` and add them to a
/// mutable container as one committed generation. A v2 container is
/// upgraded to v3 in place on open; a crash mid-append leaves the previous
/// generation intact.
fn append(p: &Parsed) -> Result<(), String> {
    let dims = args::parse_dims(p.required("-d")?)?;
    let backend = backend_choice(p)?;
    let inputs: Vec<&str> = p.required("-i")?.split(',').filter(|s| !s.is_empty()).collect();
    if inputs.is_empty() {
        return Err("append needs at least one input file".into());
    }
    if p.optional("--name").is_some() && inputs.len() > 1 {
        return Err("--name applies to a single input; multiple inputs are named by stem".into());
    }
    let jobs = entry_jobs(&inputs, p.optional("--name"))?;
    let mut store = store_mut_at(p)?;
    if backend.id() != stz_backend::id::STZ {
        reject_stz_flags(p, backend)?;
        let eb = error_bound(p)?;
        return match p.required("-t")? {
            "f32" => append_foreign::<f32>(store.as_mut(), backend, &jobs, dims, &eb),
            "f64" => append_foreign::<f64>(store.as_mut(), backend, &jobs, dims, &eb),
            t => Err(format!("unknown element type {t:?} (want f32 or f64)")),
        };
    }
    let cfg = build_config(p)?;
    let threads = p.threads()?;
    match p.required("-t")? {
        "f32" => append_typed::<f32>(store.as_mut(), &jobs, dims, cfg, threads),
        "f64" => append_typed::<f64>(store.as_mut(), &jobs, dims, cfg, threads),
        t => Err(format!("unknown element type {t:?} (want f32 or f64)")),
    }
}

fn append_typed<T: Scalar>(
    store: &mut dyn StoreMut,
    jobs: &[(String, &Path)],
    dims: stz_field::Dims,
    cfg: StzConfig,
    threads: usize,
) -> Result<(), String>
where
    EntryPayload: From<StzArchive<T>>,
{
    let pool = thread_pool(threads)?;
    let compressor = StzCompressor::new(cfg);
    for (name, input) in jobs {
        let field: Field<T> = read_raw(input, dims).map_err(|e| e.to_string())?;
        let archive = if threads == 1 {
            compressor.compress(&field)
        } else {
            pool.install(|| compressor.compress_parallel(&field))
        }
        .map_err(|e| e.to_string())?;
        eprintln!(
            "compressed {} as {name:?} ({} bytes, CR {:.1}x)",
            input.display(),
            archive.compressed_len(),
            archive.compression_ratio()
        );
        store.append(name, archive.into()).map_err(|e| e.to_string())?;
    }
    commit_and_report(store, jobs.len(), "appended")
}

fn append_foreign<T: BackendScalar>(
    store: &mut dyn StoreMut,
    backend: &'static dyn Codec,
    jobs: &[(String, &Path)],
    dims: stz_field::Dims,
    eb: &ErrorBound,
) -> Result<(), String> {
    for (name, input) in jobs {
        let field: Field<T> = read_raw(input, dims).map_err(|e| e.to_string())?;
        let abs = eb.absolute_for(&field);
        let bytes = stz_backend::compress(backend, &field, &ErrorBound::Absolute(abs))
            .map_err(|e| e.to_string())?;
        eprintln!(
            "compressed {} as {name:?} [{}] ({} bytes, CR {:.1}x)",
            input.display(),
            backend.name(),
            bytes.len(),
            field.nbytes() as f64 / bytes.len() as f64
        );
        let foreign = ForeignArchive::new::<T>(backend.id(), dims, abs, bytes);
        store.append(name, foreign.into()).map_err(|e| e.to_string())?;
    }
    commit_and_report(store, jobs.len(), "appended")
}

/// Commit staged mutations as one generation and report it.
fn commit_and_report(store: &mut dyn StoreMut, n: usize, verb: &str) -> Result<(), String> {
    let generation = store.commit().map_err(|e| e.to_string())?;
    eprintln!(
        "{verb} {n} entr{} in {} (generation {generation})",
        if n == 1 { "y" } else { "ies" },
        store.locate()
    );
    Ok(())
}

/// `delete`: drop one named entry and commit the next generation. The
/// payload bytes stay in the file as dead space until `compact`.
fn delete(p: &Parsed) -> Result<(), String> {
    let name = p.required("--entry")?;
    let mut store = store_mut_at(p)?;
    store.delete(name).map_err(|e| e.to_string())?;
    commit_and_report(store.as_mut(), 1, "deleted")
}

/// `compact`: rewrite the live entries into a dense sibling file and
/// atomically rename it into place, reclaiming dead generations' bytes.
/// Concurrent readers of the old file keep a complete generation.
fn compact(p: &Parsed) -> Result<(), String> {
    let mut store = store_mut_at(p)?;
    let r = store.compact().map_err(|e| e.to_string())?;
    eprintln!(
        "compacted {}: {} -> {} bytes, reclaimed {} (generation {})",
        store.locate(),
        r.before_bytes,
        r.after_bytes,
        r.reclaimed_bytes,
        r.generation
    );
    Ok(())
}

/// The mutable-container fields `inspect` shows for format-v3 containers
/// (`None` for immutable v1/v2 containers, whose document shape is
/// unchanged).
fn mut_info_at(path: &Path) -> Option<fmt::MutInfo> {
    let reader =
        stz_stream::ContainerReader::open(stz_stream::FileSource::open(path).ok()?).ok()?;
    (reader.version() >= 3).then(|| fmt::MutInfo {
        generation: reader.generation(),
        live_bytes: reader.live_payload_bytes(),
        dead_bytes: reader.dead_payload_bytes(),
    })
}

/// `inspect`: the full entry table of any location, through the unified
/// store. Bare local archives keep their pre-URI behavior and fall
/// through to `info`.
fn inspect(p: &Parsed) -> Result<(), String> {
    let from = resolve_from(p)?;
    if let Ok(Location::Path(path)) = Location::parse(&from) {
        if path.is_file() && !is_container(&path) {
            if p.switch("--json") {
                return Err("--json requires a container (.stzc) input".into());
            }
            return info(p);
        }
    }
    let store = store_at(&from)?;
    let entries = store.list().map_err(|e| e.to_string())?;
    // The table's source label: remote tables are headed by the container
    // name (what the pre-URI `remote inspect -c <name>` printed, and what
    // --json consumers key on), local tables by the path as typed.
    let source = match Location::parse(&from) {
        Ok(Location::Remote { container: Some(container), .. }) => container,
        _ => from.clone(),
    };
    let mutable = match Location::parse(&from) {
        Ok(Location::Path(path)) if path.is_file() => mut_info_at(&path),
        _ => None,
    };
    print_inspect(&source, &entries, mutable.as_ref(), p.switch("--json"));
    Ok(())
}

/// Render an entry table — the one formatter every transport shares.
fn print_inspect(
    source: &str,
    entries: &[stz_access::EntryDesc],
    mutable: Option<&fmt::MutInfo>,
    json: bool,
) {
    if json {
        println!("{}", fmt::render_json(source, entries, mutable));
    } else {
        print!("{}", fmt::render_text(source, entries, mutable));
    }
}

/// `stats`: the telemetry registry of a location, rendered as a sorted
/// table (or `--json`). `stz://` locations fetch the **server's** live
/// registry over one `METRICS` round-trip; local paths open the store and
/// render this process's registry — the counters the open itself
/// populated (container footer reads, fetch counters from prior verbs in
/// the same process).
fn stats(p: &Parsed) -> Result<(), String> {
    let from = resolve_from(p)?;
    let text = match Location::parse(&from).map_err(|e| e.to_string())? {
        Location::Remote { addr, .. } => {
            let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
            client.metrics().map_err(|e| e.to_string())?
        }
        Location::Path(_) => {
            let store = store_at(&from)?;
            store.list().map_err(|e| e.to_string())?;
            stz_telemetry::global().render()
        }
    };
    let samples = stz_telemetry::expo::parse(&text)
        .map_err(|e| format!("bad metrics exposition from {from}: {e}"))?;
    if p.switch("--json") {
        println!("{}", fmt::render_metrics_json(&from, &samples));
    } else {
        print!("{}", fmt::render_metrics_text(&from, &samples));
    }
    Ok(())
}

/// `trace`: request span trees of a location. `stz://` locations fetch
/// the server's tail-sampled traces (slowest + error requests per frame
/// kind, full span tables) over one `TRACE_GET` round-trip; local paths
/// trace one full fetch of the selected entry through this process's
/// collector, so the decode-stage breakdown is visible without a server.
/// Text waterfall by default; `--json` emits Chrome trace-event JSON for
/// Perfetto / chrome://tracing.
fn trace(p: &Parsed) -> Result<(), String> {
    let from = resolve_from(p)?;
    let traces = match Location::parse(&from).map_err(|e| e.to_string())? {
        Location::Remote { addr, .. } => {
            let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
            client.trace().map_err(|e| e.to_string())?
        }
        Location::Path(_) => {
            let entry = open_entry(p, &from)?;
            let result = {
                let mut root = stz_telemetry::trace::collector().start("cli", "fetch", None);
                root.attr("from", &from);
                let result = entry.fetch(&Fetch::Full);
                if result.is_err() {
                    root.set_error();
                }
                result
            };
            result.map_err(|e| e.to_string())?;
            stz_telemetry::trace::collector().snapshot()
        }
    };
    if p.switch("--json") {
        println!("{}", stz_telemetry::trace::render_chrome_trace(&traces));
    } else if traces.is_empty() {
        eprintln!("no traces retained at {from} (is STZ_TRACE=off set?)");
    } else {
        print!("{}", stz_telemetry::trace::render_waterfall(&traces));
    }
    Ok(())
}

/// Start the archive server (blocking; ^C to stop).
fn serve(p: &Parsed) -> Result<(), String> {
    let root = Path::new(p.required("-i")?);
    let cache_mb: u64 = match p.optional("--cache-mb") {
        None => 256,
        Some(v) => v.parse().map_err(|_| "--cache-mb must be a non-negative integer")?,
    };
    let cache_bytes =
        cache_mb.checked_mul(1 << 20).ok_or("--cache-mb is too large to be a byte budget")?;
    let max_conns: usize = match p.optional("--max-conns") {
        None => 64,
        Some(v) => v.parse().map_err(|_| "--max-conns must be a positive integer")?,
    };
    let opts = ServeOptions {
        root: root.to_path_buf(),
        addr: p.optional("--addr").unwrap_or("127.0.0.1:4815").to_string(),
        cache_bytes,
        threads: p.threads()?,
        max_conns,
        ..ServeOptions::default()
    };
    let server = Server::bind(opts).map_err(|e| e.to_string())?;
    let names = server.container_names();
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Stdout, flushed: scripts (and the CI smoke job) parse this line to
    // learn the ephemeral port.
    println!("hosting {} container(s) from {}: {}", names.len(), root.display(), names.join(", "));
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("stz_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn argv(s: &[String]) -> Vec<String> {
        std::iter::once("stz".to_string()).chain(s.iter().cloned()).collect()
    }

    #[test]
    fn compress_decompress_cycle() {
        let d = dir();
        let raw = d.join("in.f32");
        let stz = d.join("in.stz");
        let out = d.join("out.f32");
        let dims = Dims::d3(16, 16, 16);
        let field = stz_data::synth::miranda_like(dims, 5);
        write_raw(&raw, &field).unwrap();

        run(&argv(&[
            "compress".into(),
            "-i".into(),
            raw.display().to_string(),
            "-o".into(),
            stz.display().to_string(),
            "-d".into(),
            "16x16x16".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-3".into(),
        ]))
        .unwrap();
        run(&argv(&[
            "decompress".into(),
            "-i".into(),
            stz.display().to_string(),
            "-o".into(),
            out.display().to_string(),
        ]))
        .unwrap();

        let restored: Field<f32> = read_raw(&out, dims).unwrap();
        let err = stz_data::metrics::max_abs_error(&field, &restored);
        assert!(err <= 1e-3);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn preview_and_roi_commands() {
        let d = dir();
        let raw = d.join("a.f32");
        let stz = d.join("a.stz");
        let dims = Dims::d3(16, 16, 16);
        let field = stz_data::synth::miranda_like(dims, 6);
        write_raw(&raw, &field).unwrap();
        run(&argv(&[
            "compress".into(),
            "-i".into(),
            raw.display().to_string(),
            "-o".into(),
            stz.display().to_string(),
            "-d".into(),
            "16x16x16".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-2".into(),
            "--levels".into(),
            "2".into(),
        ]))
        .unwrap();

        // Bare archives serve previews through the same unified store API
        // as containers and servers (a single-entry MemStore).
        let prev = d.join("p.f32");
        run(&argv(&[
            "preview".into(),
            "-i".into(),
            stz.display().to_string(),
            "-o".into(),
            prev.display().to_string(),
            "-l".into(),
            "1".into(),
        ]))
        .unwrap();
        let p: Field<f32> = read_raw(&prev, Dims::d3(8, 8, 8)).unwrap();
        assert_eq!(p.dims().as_array(), [8, 8, 8]);

        let roi_out = d.join("r.f32");
        run(&argv(&[
            "roi".into(),
            "-i".into(),
            stz.display().to_string(),
            "-o".into(),
            roi_out.display().to_string(),
            "-r".into(),
            "2:6,0:16,4:8".into(),
        ]))
        .unwrap();
        let r: Field<f32> = read_raw(&roi_out, Dims::d3(4, 16, 4)).unwrap();
        assert_eq!(r.len(), 4 * 16 * 4);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn pack_inspect_extract_preview_cycle() {
        let d = dir();
        let dims = Dims::d3(16, 16, 16);
        let (raw_a, raw_b) = (d.join("step0.f32"), d.join("step1.f32"));
        let fa = stz_data::synth::miranda_like(dims, 7);
        let fb = stz_data::synth::miranda_like(dims, 8);
        write_raw(&raw_a, &fa).unwrap();
        write_raw(&raw_b, &fb).unwrap();

        let container = d.join("steps.stzc");
        run(&argv(&[
            "pack".into(),
            "-i".into(),
            format!("{},{}", raw_a.display(), raw_b.display()),
            "-o".into(),
            container.display().to_string(),
            "-d".into(),
            "16x16x16".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-3".into(),
        ]))
        .unwrap();
        run(&argv(&["inspect".into(), "--from".into(), container.display().to_string()])).unwrap();
        run(&argv(&["list".into(), "--from".into(), container.display().to_string()])).unwrap();

        // extract --region from the named second entry, addressed by URI.
        let roi_out = d.join("roi.f32");
        run(&argv(&[
            "extract".into(),
            "--from".into(),
            container.display().to_string(),
            "-o".into(),
            roi_out.display().to_string(),
            "-r".into(),
            "2:6,0:16,4:8".into(),
            "--entry".into(),
            "step1".into(),
        ]))
        .unwrap();
        let roi: Field<f32> = read_raw(&roi_out, Dims::d3(4, 16, 4)).unwrap();
        let expect = StzCompressor::new(StzConfig::three_level(1e-3))
            .compress(&fb)
            .unwrap()
            .decompress_region(&stz_field::Region::d3(2..6, 0..16, 4..8))
            .unwrap();
        assert_eq!(roi, expect, "container extract must match in-memory ROI");

        // preview --level from a container (-i stays an alias for --from).
        let prev = d.join("p.f32");
        run(&argv(&[
            "preview".into(),
            "-i".into(),
            container.display().to_string(),
            "-o".into(),
            prev.display().to_string(),
            "-l".into(),
            "1".into(),
        ]))
        .unwrap();
        let p: Field<f32> = read_raw(&prev, Dims::d3(4, 4, 4)).unwrap();
        assert_eq!(p.dims().as_array(), [4, 4, 4]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn append_delete_compact_cycle() {
        let d = dir().join("mutate_test");
        std::fs::create_dir_all(&d).unwrap();
        let dims = Dims::d3(16, 16, 16);
        let fields: Vec<_> = (0..3).map(|i| stz_data::synth::miranda_like(dims, 40 + i)).collect();
        for (i, f) in fields.iter().enumerate() {
            write_raw(&d.join(format!("step{i}.f32")), f).unwrap();
        }

        // pack writes an immutable v2 container; the first mutation verb
        // upgrades it to v3 in place.
        let container = d.join("live.stzc");
        run(&argv(&[
            "pack".into(),
            "-i".into(),
            d.join("step0.f32").display().to_string(),
            "-o".into(),
            container.display().to_string(),
            "-d".into(),
            "16x16x16".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-3".into(),
        ]))
        .unwrap();
        assert!(mut_info_at(&container).is_none(), "packed containers stay v2");

        run(&argv(&[
            "append".into(),
            "-i".into(),
            format!("{},{}", d.join("step1.f32").display(), d.join("step2.f32").display()),
            "--to".into(),
            container.display().to_string(),
            "-d".into(),
            "16x16x16".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-3".into(),
        ]))
        .unwrap();
        let info = mut_info_at(&container).expect("append upgrades to v3");
        assert_eq!(info.generation, 2, "upgrade is gen 1, the append commit gen 2");
        // The superseded generation's footer stays behind as dead bytes.
        let dead_after_append = info.dead_bytes;
        run(&argv(&["inspect".into(), "--from".into(), container.display().to_string()])).unwrap();
        run(&argv(&[
            "inspect".into(),
            "--from".into(),
            container.display().to_string(),
            "--json".into(),
        ]))
        .unwrap();

        // Appended entries decode byte-identically to an in-memory pipeline.
        let out = d.join("step1.out");
        run(&argv(&[
            "extract".into(),
            "--from".into(),
            container.display().to_string(),
            "--entry".into(),
            "step1".into(),
            "-o".into(),
            out.display().to_string(),
        ]))
        .unwrap();
        let restored: Field<f32> = read_raw(&out, dims).unwrap();
        let expect = StzCompressor::new(StzConfig::three_level(1e-3))
            .compress(&fields[1])
            .unwrap()
            .decompress()
            .unwrap();
        assert_eq!(restored, expect, "appended entry must match in-memory decode");

        // delete leaves dead bytes; compact reclaims them.
        run(&argv(&[
            "delete".into(),
            "--to".into(),
            container.display().to_string(),
            "--entry".into(),
            "step0".into(),
        ]))
        .unwrap();
        let info = mut_info_at(&container).unwrap();
        assert!(info.dead_bytes > dead_after_append, "deleted payload stays as dead bytes");
        run(&argv(&["compact".into(), "--to".into(), container.display().to_string()])).unwrap();
        let info = mut_info_at(&container).unwrap();
        assert_eq!(info.dead_bytes, 0, "compaction reclaims dead bytes");

        // The survivors still decode; the deleted entry errors cleanly.
        run(&argv(&[
            "extract".into(),
            "--from".into(),
            container.display().to_string(),
            "--entry".into(),
            "step2".into(),
            "-o".into(),
            d.join("step2.out").display().to_string(),
        ]))
        .unwrap();
        assert!(run(&argv(&[
            "extract".into(),
            "--from".into(),
            container.display().to_string(),
            "--entry".into(),
            "step0".into(),
            "-o".into(),
            d.join("gone.out").display().to_string(),
        ]))
        .is_err());

        // Mutation over the wire is rejected with a clear diagnostic.
        assert!(run(&argv(&[
            "delete".into(),
            "--to".into(),
            "stz://127.0.0.1:4815/steps".into(),
            "--entry".into(),
            "step2".into(),
        ]))
        .unwrap_err()
        .contains("read-only over the wire"));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn threads_flag_produces_identical_outputs() {
        let d = dir();
        let dims = Dims::d3(16, 16, 16);
        let (raw_a, raw_b) = (d.join("s0.f32"), d.join("s1.f32"));
        write_raw(&raw_a, &stz_data::synth::miranda_like(dims, 21)).unwrap();
        write_raw(&raw_b, &stz_data::synth::miranda_like(dims, 22)).unwrap();

        let compress_with = |threads: &str, out: &std::path::Path| {
            run(&argv(&[
                "compress".into(),
                "-i".into(),
                raw_a.display().to_string(),
                "-o".into(),
                out.display().to_string(),
                "-d".into(),
                "16x16x16".into(),
                "-t".into(),
                "f32".into(),
                "-e".into(),
                "1e-3".into(),
                "--threads".into(),
                threads.into(),
            ]))
            .unwrap();
        };
        let (one, four) = (d.join("t1.stz"), d.join("t4.stz"));
        compress_with("1", &one);
        compress_with("4", &four);
        assert_eq!(std::fs::read(&one).unwrap(), std::fs::read(&four).unwrap());

        let pack_with = |threads: &str, out: &std::path::Path| {
            run(&argv(&[
                "pack".into(),
                "-i".into(),
                format!("{},{}", raw_a.display(), raw_b.display()),
                "-o".into(),
                out.display().to_string(),
                "-d".into(),
                "16x16x16".into(),
                "-t".into(),
                "f32".into(),
                "-e".into(),
                "1e-3".into(),
                "--threads".into(),
                threads.into(),
            ]))
            .unwrap();
        };
        let (c1, c4) = (d.join("c1.stzc"), d.join("c4.stzc"));
        pack_with("1", &c1);
        pack_with("4", &c4);
        assert_eq!(std::fs::read(&c1).unwrap(), std::fs::read(&c4).unwrap());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn backend_flag_roundtrips_every_engine() {
        let d = dir();
        let raw = d.join("b.f32");
        let dims = Dims::d3(16, 16, 16);
        let field = stz_data::synth::miranda_like(dims, 9);
        write_raw(&raw, &field).unwrap();

        for backend in ["stz", "sz3", "zfp", "sperr", "mgard"] {
            let arc = d.join(format!("b.{backend}"));
            let out = d.join(format!("b.{backend}.out"));
            run(&argv(&[
                "compress".into(),
                "-i".into(),
                raw.display().to_string(),
                "-o".into(),
                arc.display().to_string(),
                "-d".into(),
                "16x16x16".into(),
                "-t".into(),
                "f32".into(),
                "-e".into(),
                "1e-3".into(),
                "--backend".into(),
                backend.into(),
            ]))
            .unwrap();
            // No --backend on decompress: the engine is sniffed from magic.
            run(&argv(&[
                "decompress".into(),
                "-i".into(),
                arc.display().to_string(),
                "-o".into(),
                out.display().to_string(),
            ]))
            .unwrap();
            let restored: Field<f32> = read_raw(&out, dims).unwrap();
            let err = stz_data::metrics::max_abs_error(&field, &restored);
            assert!(err <= 1e-3 * (1.0 + 1e-6), "{backend}: err {err}");
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn backend_pack_inspect_extract_cycle() {
        let d = dir();
        let dims = Dims::d3(16, 16, 16);
        let raw = d.join("s0.f32");
        let field = stz_data::synth::miranda_like(dims, 13);
        write_raw(&raw, &field).unwrap();

        let container = d.join("zfp.stzc");
        run(&argv(&[
            "pack".into(),
            "-i".into(),
            raw.display().to_string(),
            "-o".into(),
            container.display().to_string(),
            "-d".into(),
            "16x16x16".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-3".into(),
            "--backend".into(),
            "zfp".into(),
        ]))
        .unwrap();
        run(&argv(&["inspect".into(), "--from".into(), container.display().to_string()])).unwrap();

        // Extract works on foreign entries (full decode + crop).
        let roi_out = d.join("roi.f32");
        run(&argv(&[
            "extract".into(),
            "--from".into(),
            container.display().to_string(),
            "-o".into(),
            roi_out.display().to_string(),
            "-r".into(),
            "2:6,0:16,4:8".into(),
        ]))
        .unwrap();
        let roi: Field<f32> = read_raw(&roi_out, Dims::d3(4, 16, 4)).unwrap();
        assert_eq!(roi.len(), 4 * 16 * 4);

        // Preview needs the stz hierarchy: a zfp entry errors, no panic.
        let prev = d.join("p.f32");
        assert!(run(&argv(&[
            "preview".into(),
            "--from".into(),
            container.display().to_string(),
            "-o".into(),
            prev.display().to_string(),
            "-l".into(),
            "1".into(),
        ]))
        .is_err());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn unknown_backend_and_stz_flags_rejected() {
        assert!(run(&argv(&[
            "compress".into(),
            "-i".into(),
            "/nonexistent".into(),
            "-o".into(),
            "/tmp/x".into(),
            "-d".into(),
            "4x4x4".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-3".into(),
            "--backend".into(),
            "lz4".into(),
        ]))
        .unwrap_err()
        .contains("unknown backend"));
        // Hierarchy flags are stz-only.
        assert!(run(&argv(&[
            "compress".into(),
            "-i".into(),
            "/nonexistent".into(),
            "-o".into(),
            "/tmp/x".into(),
            "-d".into(),
            "4x4x4".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-3".into(),
            "--backend".into(),
            "zfp".into(),
            "--levels".into(),
            "3".into(),
        ]))
        .unwrap_err()
        .contains("--levels"));
    }

    #[test]
    fn uri_and_alias_commands_roundtrip_against_inprocess_server() {
        // Own subdirectory: the server scans every .stzc under its root,
        // and sibling tests create and delete containers concurrently.
        let d = dir().join("remote_test");
        std::fs::create_dir_all(&d).unwrap();
        let dims = Dims::d3(16, 16, 16);
        let raw = d.join("t0.f32");
        let field = stz_data::synth::miranda_like(dims, 31);
        write_raw(&raw, &field).unwrap();
        let container = d.join("steps.stzc");
        run(&argv(&[
            "pack".into(),
            "-i".into(),
            raw.display().to_string(),
            "-o".into(),
            container.display().to_string(),
            "-d".into(),
            "16x16x16".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "1e-3".into(),
        ]))
        .unwrap();

        let server = Server::bind(ServeOptions {
            root: d.clone(),
            addr: "127.0.0.1:0".into(),
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.spawn().unwrap();
        let uri = format!("stz://{addr}/steps");

        // The unified spellings.
        run(&argv(&["list".into(), "--from".into(), format!("stz://{addr}")])).unwrap();
        run(&argv(&["list".into(), "--from".into(), d.display().to_string()])).unwrap();
        run(&argv(&["inspect".into(), "--from".into(), uri.clone(), "--json".into()])).unwrap();

        // remote extract == local extract, byte for byte — one code path,
        // two transports.
        let (remote_out, local_out) = (d.join("remote.f32"), d.join("local.f32"));
        run(&argv(&[
            "extract".into(),
            "--from".into(),
            uri.clone(),
            "-o".into(),
            remote_out.display().to_string(),
            "-r".into(),
            "2:6,0:16,4:8".into(),
        ]))
        .unwrap();
        run(&argv(&[
            "extract".into(),
            "--from".into(),
            container.display().to_string(),
            "-o".into(),
            local_out.display().to_string(),
            "-r".into(),
            "2:6,0:16,4:8".into(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&remote_out).unwrap(),
            std::fs::read(&local_out).unwrap(),
            "remote extract must be byte-identical to local extract"
        );

        // Pre-URI alias spellings keep working for one release.
        run(&argv(&["remote".into(), "list".into(), "--addr".into(), addr.clone()])).unwrap();
        run(&argv(&[
            "remote".into(),
            "inspect".into(),
            "--addr".into(),
            addr.clone(),
            "-c".into(),
            "steps".into(),
            "--json".into(),
        ]))
        .unwrap();
        let alias_out = d.join("alias.f32");
        run(&argv(&[
            "remote".into(),
            "extract".into(),
            "--addr".into(),
            addr.clone(),
            "-c".into(),
            "steps".into(),
            "-o".into(),
            alias_out.display().to_string(),
            "-r".into(),
            "2:6,0:16,4:8".into(),
        ]))
        .unwrap();
        assert_eq!(std::fs::read(&alias_out).unwrap(), std::fs::read(&local_out).unwrap());
        let prev_out = d.join("prev.f32");
        run(&argv(&[
            "remote".into(),
            "preview".into(),
            "--addr".into(),
            addr.clone(),
            "-c".into(),
            "steps".into(),
            "-o".into(),
            prev_out.display().to_string(),
            "-l".into(),
            "1".into(),
        ]))
        .unwrap();

        // Unknown container errors cleanly over the wire.
        assert!(run(&argv(&["inspect".into(), "--from".into(), format!("stz://{addr}/nope"),]))
            .is_err());

        // stats works against the live server (table and JSON) and
        // against the local container (this process's registry).
        run(&argv(&["stats".into(), "--from".into(), uri.clone()])).unwrap();
        run(&argv(&["stats".into(), "--from".into(), uri.clone(), "--json".into()])).unwrap();
        run(&argv(&["stats".into(), "--from".into(), container.display().to_string()])).unwrap();

        // trace works against the live server (the extracts above left
        // retained traces), in both renderings, and against the local
        // container (tracing one in-process fetch).
        run(&argv(&["trace".into(), "--from".into(), uri.clone()])).unwrap();
        run(&argv(&["trace".into(), "--from".into(), uri.clone(), "--json".into()])).unwrap();
        run(&argv(&["trace".into(), "--from".into(), container.display().to_string()])).unwrap();

        handle.stop();
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(run(&argv(&["frobnicate".into()])).is_err());
        assert!(run(&argv(&["compress".into()])).is_err());
        assert!(run(&argv(&["extract".into(), "-o".into(), "/tmp/x".into()])).is_err());
        assert!(run(&argv(&[
            "extract".into(),
            "--from".into(),
            "stz://missing-a-port/steps".into(),
            "-o".into(),
            "/tmp/x".into(),
        ]))
        .is_err());
        assert!(run(&argv(&[
            "compress".into(),
            "-i".into(),
            "/nonexistent".into(),
            "-o".into(),
            "/tmp/x".into(),
            "-d".into(),
            "4x4x4".into(),
            "-t".into(),
            "f32".into(),
            "-e".into(),
            "-1".into(),
        ]))
        .is_err());
    }
}
