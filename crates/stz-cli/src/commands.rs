//! Subcommand implementations.

use crate::args::{self, Parsed};
use std::path::Path;
use stz_core::{InterpKind, StzArchive, StzCompressor, StzConfig};
use stz_data::io::{read_raw, write_raw};
use stz_field::{Field, Scalar};

pub fn run(argv: &[String]) -> Result<(), String> {
    let p = args::parse(argv)?;
    match p.command.as_str() {
        "compress" => compress(&p),
        "decompress" => decompress(&p),
        "preview" => preview(&p),
        "roi" => roi(&p),
        "info" => info(&p),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn build_config(p: &Parsed) -> Result<StzConfig, String> {
    let eb: f64 = p
        .required("-e")?
        .parse()
        .map_err(|_| "error bound -e must be a number".to_string())?;
    if !(eb > 0.0 && eb.is_finite()) {
        return Err("error bound must be positive and finite".into());
    }
    let mut cfg = if p.switch("--rel") {
        StzConfig::three_level_relative(eb)
    } else {
        StzConfig::three_level(eb)
    };
    if let Some(l) = p.optional("--levels") {
        let levels: u8 = l.parse().map_err(|_| "--levels must be 2..=4".to_string())?;
        if !(2..=4).contains(&levels) {
            return Err("--levels must be 2..=4".into());
        }
        cfg = cfg.with_levels(levels);
    }
    if p.switch("--linear") {
        cfg = cfg.with_interp(InterpKind::Linear);
    }
    if p.switch("--no-adaptive") {
        cfg = cfg.with_adaptive(false);
    }
    Ok(cfg)
}

fn compress(p: &Parsed) -> Result<(), String> {
    let dims = args::parse_dims(p.required("-d")?)?;
    let cfg = build_config(p)?;
    let input = Path::new(p.required("-i")?);
    let output = Path::new(p.required("-o")?);
    match p.required("-t")? {
        "f32" => compress_typed::<f32>(input, output, dims, cfg),
        "f64" => compress_typed::<f64>(input, output, dims, cfg),
        t => Err(format!("unknown element type {t:?} (want f32 or f64)")),
    }
}

fn compress_typed<T: Scalar>(
    input: &Path,
    output: &Path,
    dims: stz_field::Dims,
    cfg: StzConfig,
) -> Result<(), String> {
    let field: Field<T> = read_raw(input, dims).map_err(|e| e.to_string())?;
    let archive = StzCompressor::new(cfg).compress(&field).map_err(|e| e.to_string())?;
    let cr = archive.compression_ratio();
    let len = archive.compressed_len();
    std::fs::write(output, archive.into_bytes()).map_err(|e| e.to_string())?;
    eprintln!("{} -> {} ({len} bytes, CR {cr:.1}x)", input.display(), output.display());
    Ok(())
}

/// Load an archive and dispatch on its element type.
fn with_archive<R>(
    path: &Path,
    f32_case: impl FnOnce(StzArchive<f32>) -> Result<R, String>,
    f64_case: impl FnOnce(StzArchive<f64>) -> Result<R, String>,
) -> Result<R, String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    match StzArchive::<f32>::from_bytes(bytes.clone()) {
        Ok(a) => f32_case(a),
        Err(_) => f64_case(StzArchive::<f64>::from_bytes(bytes).map_err(|e| e.to_string())?),
    }
}

fn decompress(p: &Parsed) -> Result<(), String> {
    let input = Path::new(p.required("-i")?);
    let output = Path::new(p.required("-o")?).to_path_buf();
    with_archive(
        input,
        |a| {
            let f = a.decompress().map_err(|e| e.to_string())?;
            write_raw(&output, &f).map_err(|e| e.to_string())?;
            eprintln!("wrote {} ({} f32 values)", output.display(), f.len());
            Ok(())
        },
        |a| {
            let f = a.decompress().map_err(|e| e.to_string())?;
            write_raw(&output, &f).map_err(|e| e.to_string())?;
            eprintln!("wrote {} ({} f64 values)", output.display(), f.len());
            Ok(())
        },
    )
}

fn preview(p: &Parsed) -> Result<(), String> {
    let input = Path::new(p.required("-i")?);
    let output = Path::new(p.required("-o")?).to_path_buf();
    let level: u8 = p
        .required("-l")?
        .parse()
        .map_err(|_| "-l must be a level number".to_string())?;
    with_archive(
        input,
        |a| {
            let f = a.decompress_level(level).map_err(|e| e.to_string())?;
            write_raw(&output, &f).map_err(|e| e.to_string())?;
            eprintln!("level {level} preview: {} -> {}", f.dims(), output.display());
            Ok(())
        },
        |a| {
            let f = a.decompress_level(level).map_err(|e| e.to_string())?;
            write_raw(&output, &f).map_err(|e| e.to_string())?;
            eprintln!("level {level} preview: {} -> {}", f.dims(), output.display());
            Ok(())
        },
    )
}

fn roi(p: &Parsed) -> Result<(), String> {
    let input = Path::new(p.required("-i")?);
    let output = Path::new(p.required("-o")?).to_path_buf();
    let region = args::parse_region(p.required("-r")?)?;
    with_archive(
        input,
        |a| {
            let f = a.decompress_region(&region).map_err(|e| e.to_string())?;
            write_raw(&output, &f).map_err(|e| e.to_string())?;
            eprintln!("ROI {region:?}: {} values -> {}", f.len(), output.display());
            Ok(())
        },
        |a| {
            let f = a.decompress_region(&region).map_err(|e| e.to_string())?;
            write_raw(&output, &f).map_err(|e| e.to_string())?;
            eprintln!("ROI {region:?}: {} values -> {}", f.len(), output.display());
            Ok(())
        },
    )
}

fn info(p: &Parsed) -> Result<(), String> {
    let input = Path::new(p.required("-i")?);
    with_archive(
        input,
        |a| {
            print_info("f32", 4, &a);
            Ok(())
        },
        |a| {
            print_info("f64", 8, &a);
            Ok(())
        },
    )
}

fn print_info<T: Scalar>(type_name: &str, bytes_per: usize, a: &StzArchive<T>) {
    let h = a.header();
    println!("dims:            {}", h.dims);
    println!("element type:    {type_name}");
    println!("levels:          {}", h.levels);
    println!("interpolation:   {:?}", h.interp);
    println!("adaptive bounds: {} (ratio {})", h.adaptive, h.adaptive_ratio);
    println!("error bound:     {:.3e} (absolute, finest level)", h.eb_finest);
    println!("compressed:      {} bytes", a.compressed_len());
    println!("uncompressed:    {} bytes", h.dims.len() * bytes_per);
    println!("ratio:           {:.1}x", a.compression_ratio());
    for k in 1..=h.levels {
        println!(
            "  level {k}: preview {} — cumulative {} bytes",
            a.plan().preview_dims(k),
            a.bytes_through_level(k)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("stz_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn argv(s: &[String]) -> Vec<String> {
        std::iter::once("stz".to_string()).chain(s.iter().cloned()).collect()
    }

    #[test]
    fn compress_decompress_cycle() {
        let d = dir();
        let raw = d.join("in.f32");
        let stz = d.join("in.stz");
        let out = d.join("out.f32");
        let dims = Dims::d3(16, 16, 16);
        let field = stz_data::synth::miranda_like(dims, 5);
        write_raw(&raw, &field).unwrap();

        run(&argv(&[
            "compress".into(),
            "-i".into(), raw.display().to_string(),
            "-o".into(), stz.display().to_string(),
            "-d".into(), "16x16x16".into(),
            "-t".into(), "f32".into(),
            "-e".into(), "1e-3".into(),
        ]))
        .unwrap();
        run(&argv(&[
            "decompress".into(),
            "-i".into(), stz.display().to_string(),
            "-o".into(), out.display().to_string(),
        ]))
        .unwrap();

        let restored: Field<f32> = read_raw(&out, dims).unwrap();
        let err = stz_data::metrics::max_abs_error(&field, &restored);
        assert!(err <= 1e-3);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn preview_and_roi_commands() {
        let d = dir();
        let raw = d.join("a.f32");
        let stz = d.join("a.stz");
        let dims = Dims::d3(16, 16, 16);
        let field = stz_data::synth::miranda_like(dims, 6);
        write_raw(&raw, &field).unwrap();
        run(&argv(&[
            "compress".into(),
            "-i".into(), raw.display().to_string(),
            "-o".into(), stz.display().to_string(),
            "-d".into(), "16x16x16".into(),
            "-t".into(), "f32".into(),
            "-e".into(), "1e-2".into(),
            "--levels".into(), "2".into(),
        ]))
        .unwrap();

        let prev = d.join("p.f32");
        run(&argv(&[
            "preview".into(),
            "-i".into(), stz.display().to_string(),
            "-o".into(), prev.display().to_string(),
            "-l".into(), "1".into(),
        ]))
        .unwrap();
        let p: Field<f32> = read_raw(&prev, Dims::d3(8, 8, 8)).unwrap();
        assert_eq!(p.dims().as_array(), [8, 8, 8]);

        let roi_out = d.join("r.f32");
        run(&argv(&[
            "roi".into(),
            "-i".into(), stz.display().to_string(),
            "-o".into(), roi_out.display().to_string(),
            "-r".into(), "2:6,0:16,4:8".into(),
        ]))
        .unwrap();
        let r: Field<f32> = read_raw(&roi_out, Dims::d3(4, 16, 4)).unwrap();
        assert_eq!(r.len(), 4 * 16 * 4);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(run(&argv(&["frobnicate".into()])).is_err());
        assert!(run(&argv(&["compress".into()])).is_err());
        assert!(run(&argv(&[
            "compress".into(),
            "-i".into(), "/nonexistent".into(),
            "-o".into(), "/tmp/x".into(),
            "-d".into(), "4x4x4".into(),
            "-t".into(), "f32".into(),
            "-e".into(), "-1".into(),
        ]))
        .is_err());
    }
}
