//! The entry-table formatter shared by every `inspect` transport, plus
//! the `stz stats` metric-table renderer.
//!
//! All transports produce the same [`EntryDesc`] rows — from a resident
//! archive, a container footer, or an `INSPECT_OK` frame — and render them
//! here, either human-readable or as a machine-readable JSON document
//! (`--json`). One formatter means the views cannot drift. Likewise `stats`
//! parses one exposition document (local render or `METRICS_OK` payload)
//! into [`Sample`]s and renders them here for every transport.

use stz_access::EntryDesc;
use stz_telemetry::expo::{histogram_quantile, sample_value, Sample};

/// Mutable-container (format v3) fields shown by `inspect`: which
/// generation the footer commits, how many payload bytes that generation
/// references, and how many dead bytes a `compact` would reclaim.
#[derive(Debug, Clone, Copy)]
pub struct MutInfo {
    /// Committed generation number (starts at 1; each commit bumps it).
    pub generation: u64,
    /// Payload bytes the committed footer still references.
    pub live_bytes: u64,
    /// Payload bytes earlier generations left behind (== reclaimable).
    pub dead_bytes: u64,
}

/// Render the human-readable entry table.
pub fn render_text(source: &str, entries: &[EntryDesc], mutable: Option<&MutInfo>) -> String {
    let mut out = String::new();
    out.push_str(&format!("container:       {source}\n"));
    out.push_str(&format!("entries:         {}\n", entries.len()));
    if let Some(m) = mutable {
        out.push_str(&format!("generation:      {}\n", m.generation));
        out.push_str(&format!("live payload:    {} bytes\n", m.live_bytes));
        out.push_str(&format!("dead payload:    {} bytes\n", m.dead_bytes));
        out.push_str(&format!("reclaimable:     {} bytes (via stz compact)\n", m.dead_bytes));
    }
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!("[{i}] {:?}\n", e.name));
        match e.codec_name() {
            Some(name) => out.push_str(&format!("    codec:       {name}\n")),
            None => out.push_str(&format!(
                "    codec:       unknown (id {}, cannot decode)\n",
                e.codec_id
            )),
        }
        out.push_str(&format!("    dims:        {}\n", dims_text(e)));
        out.push_str(&format!("    type:        {}\n", e.type_name()));
        out.push_str(&format!("    error bound: {:.3e} (absolute)\n", e.eb));
        out.push_str(&format!(
            "    compressed:  {} bytes ({} sections, payload crc 0x{:08x})\n",
            e.compressed_len, e.sections, e.payload_crc
        ));
        if e.levels > 0 {
            match e.interp_name() {
                Some(interp) => out
                    .push_str(&format!("    levels:      {} ({interp} interpolation)\n", e.levels)),
                None => out.push_str(&format!("    levels:      {}\n", e.levels)),
            }
            for (k, &bytes) in e.level_bytes.iter().enumerate() {
                out.push_str(&format!(
                    "      level {}: cumulative {bytes} bytes ({:.1}% of payload)\n",
                    k + 1,
                    100.0 * bytes as f64 / e.compressed_len as f64
                ));
            }
        }
    }
    out
}

/// Render the machine-readable entry table (one JSON document).
pub fn render_json(source: &str, entries: &[EntryDesc], mutable: Option<&MutInfo>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"container\": {},\n", json_str(source)));
    if let Some(m) = mutable {
        out.push_str(&format!("  \"generation\": {},\n", m.generation));
        out.push_str(&format!("  \"live_bytes\": {},\n", m.live_bytes));
        out.push_str(&format!("  \"dead_bytes\": {},\n", m.dead_bytes));
        out.push_str(&format!("  \"reclaimable_bytes\": {},\n", m.dead_bytes));
    }
    out.push_str("  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let [z, y, x] = e.dims.as_array();
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_str(&e.name)));
        out.push_str(&format!("      \"codec_id\": {},\n", e.codec_id));
        out.push_str(&format!(
            "      \"codec\": {},\n",
            e.codec_name().map_or("null".to_string(), json_str)
        ));
        out.push_str(&format!("      \"type\": {},\n", json_str(e.type_name())));
        out.push_str(&format!("      \"ndim\": {},\n", e.dims.ndim()));
        out.push_str(&format!("      \"dims\": [{z}, {y}, {x}],\n"));
        out.push_str(&format!("      \"error_bound\": {},\n", json_f64(e.eb)));
        out.push_str(&format!("      \"compressed_len\": {},\n", e.compressed_len));
        out.push_str(&format!("      \"payload_crc\": {},\n", e.payload_crc));
        out.push_str(&format!("      \"sections\": {},\n", e.sections));
        out.push_str(&format!("      \"levels\": {},\n", e.levels));
        out.push_str(&format!(
            "      \"interp\": {},\n",
            e.interp_name().map_or("null".to_string(), json_str)
        ));
        let level_bytes: Vec<String> = e.level_bytes.iter().map(u64::to_string).collect();
        out.push_str(&format!("      \"level_bytes\": [{}]\n", level_bytes.join(", ")));
        out.push_str("    }");
    }
    out.push_str(if entries.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push('}');
    out
}

/// A histogram folded to one row: its series key (without the `le`
/// label), total count and sum, and nearest-rank p50/p99 bucket bounds.
struct HistRow {
    key: String,
    count: u64,
    sum: f64,
    p50: Option<f64>,
    p99: Option<f64>,
}

/// The full `name{labels}` series key for a metric.
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", pairs.join(","))
}

/// Fold every exposed histogram (recognized by its `_bucket`+`le`
/// samples) into one [`HistRow`], sorted by series key.
fn histogram_rows(samples: &[Sample]) -> Vec<HistRow> {
    let mut seen = std::collections::BTreeSet::new();
    let mut rows = Vec::new();
    for s in samples {
        let Some(base) = s.name.strip_suffix("_bucket") else { continue };
        if s.label("le").is_none() {
            continue;
        }
        let labels: Vec<(String, String)> =
            s.labels.iter().filter(|(k, _)| k != "le").cloned().collect();
        let key = series_key(base, &labels);
        if !seen.insert(key.clone()) {
            continue;
        }
        let with: Vec<(&str, &str)> =
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        rows.push(HistRow {
            key,
            count: sample_value(samples, &format!("{base}_count"), &with).unwrap_or(0.0) as u64,
            sum: sample_value(samples, &format!("{base}_sum"), &with).unwrap_or(0.0),
            p50: histogram_quantile(samples, base, &with, 0.5),
            p99: histogram_quantile(samples, base, &with, 0.99),
        });
    }
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    rows
}

/// The scalar (counter/gauge) samples: everything that is not part of a
/// folded histogram's bucket/count/sum series, sorted by series key.
fn scalar_rows(samples: &[Sample]) -> Vec<(String, f64)> {
    let hist_keys: std::collections::BTreeSet<String> =
        histogram_rows(samples).into_iter().map(|r| r.key).collect();
    let belongs_to_histogram = |s: &Sample| {
        for suffix in ["_bucket", "_count", "_sum"] {
            if let Some(base) = s.name.strip_suffix(suffix) {
                let labels: Vec<(String, String)> =
                    s.labels.iter().filter(|(k, _)| k != "le").cloned().collect();
                if hist_keys.contains(&series_key(base, &labels)) {
                    return true;
                }
            }
        }
        false
    };
    let mut rows: Vec<(String, f64)> = samples
        .iter()
        .filter(|s| !belongs_to_histogram(s))
        .map(|s| (series_key(&s.name, &s.labels), s.value))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// An exposition value for the table: integers stay integral, `+Inf`
/// (a quantile landing in the overflow bucket) renders as itself.
fn metric_num(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "+Inf".into() } else { "-Inf".into() };
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render the human-readable `stz stats` table: one line per counter or
/// gauge, histograms folded to `count/p50/p99`, sorted by series key.
pub fn render_metrics_text(source: &str, samples: &[Sample]) -> String {
    let scalars = scalar_rows(samples);
    let hists = histogram_rows(samples);
    let mut rows: Vec<(String, String)> =
        scalars.into_iter().map(|(key, v)| (key, metric_num(v))).collect();
    rows.extend(hists.into_iter().map(|r| {
        let q = |v: Option<f64>| v.map_or("-".to_string(), metric_num);
        (
            r.key,
            format!(
                "count={} p50={} p99={} sum={}",
                r.count,
                q(r.p50),
                q(r.p99),
                metric_num(r.sum)
            ),
        )
    }));
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!("metrics for:     {source}\n"));
    out.push_str(&format!("series:          {}\n", rows.len()));
    for (key, value) in &rows {
        out.push_str(&format!("  {key:<width$}  {value}\n"));
    }
    out
}

/// Render the machine-readable `stz stats` document: scalar series as a
/// key→value object, histograms folded with `null` for quantiles in the
/// overflow bucket.
pub fn render_metrics_json(source: &str, samples: &[Sample]) -> String {
    let json_q = |v: Option<f64>| match v {
        Some(v) if v.is_finite() => json_f64(v),
        _ => "null".to_string(),
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"source\": {},\n", json_str(source)));
    out.push_str("  \"scalars\": {");
    let scalars = scalar_rows(samples);
    for (i, (key, v)) in scalars.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    {}: {}", json_str(key), json_q(Some(*v))));
    }
    out.push_str(if scalars.is_empty() { "},\n" } else { "\n  },\n" });
    out.push_str("  \"histograms\": [");
    let hists = histogram_rows(samples);
    for (i, r) in hists.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"key\": {}, \"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
            json_str(&r.key),
            r.count,
            json_f64(r.sum),
            json_q(r.p50),
            json_q(r.p99)
        ));
    }
    out.push_str(if hists.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push('}');
    out
}

/// `ZxYxX` respecting the entry's logical rank.
fn dims_text(e: &EntryDesc) -> String {
    let [z, y, x] = e.dims.as_array();
    match e.dims.ndim() {
        1 => format!("{x}"),
        2 => format!("{y}x{x}"),
        _ => format!("{z}x{y}x{x}"),
    }
}

/// Quote + escape a JSON string.
fn json_str(s: impl AsRef<str>) -> String {
    let mut out = String::with_capacity(s.as_ref().len() + 2);
    out.push('"');
    for c in s.as_ref().chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite `f64` as a JSON number (shortest round-trip form).
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "error bounds are finite by construction");
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    fn row() -> EntryDesc {
        EntryDesc {
            index: 0,
            name: "step \"0\"".into(),
            codec_id: 0,
            type_tag: 0,
            dims: Dims::d3(16, 16, 16),
            eb: 1e-3,
            compressed_len: 4000,
            payload_crc: 0x1234_5678,
            sections: 15,
            levels: 2,
            interp: 2,
            level_bytes: vec![64, 4000],
        }
    }

    #[test]
    fn text_table_mentions_every_field() {
        let text = render_text("steps.stzc", &[row()], None);
        for needle in [
            "steps.stzc",
            "step \\\"0\\\"",
            "stz",
            "16x16x16",
            "f32",
            "1.000e-3",
            "4000",
            "15",
            "cubic",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_is_parseable_and_escaped() {
        let json = render_json("steps.stzc", &[row()], None);
        // The bench json module is the closest thing to a reference
        // parser in-tree; keep the formatter honest against it.
        // (stz-cli cannot depend on stz-bench, so check structure by hand.)
        assert!(json.contains("\"step \\\"0\\\"\""), "name must be escaped: {json}");
        assert!(json.contains("\"codec\": \"stz\""));
        assert!(json.contains("\"dims\": [16, 16, 16]"));
        assert!(json.contains("\"error_bound\": 0.001"));
        assert!(json.contains("\"level_bytes\": [64, 4000]"));
        assert!(json.contains("\"interp\": \"cubic\""));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = json.matches(open).count();
            let c = json.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close} in:\n{json}");
        }
    }

    #[test]
    fn empty_table_renders() {
        let json = render_json("empty", &[], None);
        assert!(json.contains("\"entries\": []"));
        assert!(render_text("empty", &[], None).contains("entries:         0"));
    }

    #[test]
    fn mutable_info_renders_in_both_views() {
        let m = MutInfo { generation: 7, live_bytes: 4000, dead_bytes: 1234 };
        let text = render_text("live.stzc", &[row()], Some(&m));
        for needle in ["generation:      7", "live payload:    4000", "reclaimable:     1234"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let json = render_json("live.stzc", &[row()], Some(&m));
        for needle in ["\"generation\": 7", "\"dead_bytes\": 1234", "\"reclaimable_bytes\": 1234"] {
            assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
        }
        // Immutable (v1/v2) containers keep the exact pre-v3 document shape.
        assert!(!render_json("old.stzc", &[row()], None).contains("generation"));
    }

    fn metric_samples() -> Vec<Sample> {
        let r = stz_telemetry::Registry::new();
        r.counter("stzp_requests_total", &[("kind", "full")]).add(7);
        r.gauge("stzp_connections_active", &[]).set(2);
        let h = r.histogram("stzp_request_latency_ns", &[("kind", "full")], 100);
        for v in [80, 150, 150, 150] {
            h.record(v);
        }
        stz_telemetry::expo::parse(&r.render()).expect("own exposition parses")
    }

    #[test]
    fn metrics_table_folds_histograms() {
        let text = render_metrics_text("stz://host:1/steps", &metric_samples());
        assert!(text.contains("metrics for:     stz://host:1/steps"), "{text}");
        assert!(text.contains("stzp_requests_total{kind=\"full\"}"), "{text}");
        assert!(text.contains("stzp_connections_active"), "{text}");
        // One folded row per histogram, no raw bucket/count/sum lines.
        assert!(text.contains("count=4 p50=200 p99=200"), "{text}");
        assert!(!text.contains("_bucket"), "buckets must fold: {text}");
        assert!(!text.contains("_count"), "counts must fold: {text}");
        // Sorted by series key.
        let conns = text.find("stzp_connections_active").unwrap();
        let reqs = text.find("stzp_requests_total").unwrap();
        assert!(conns < reqs, "table must sort by key: {text}");
    }

    #[test]
    fn metrics_json_is_structured() {
        let json = render_metrics_json("local", &metric_samples());
        assert!(json.contains("\"source\": \"local\""), "{json}");
        assert!(json.contains("\"stzp_requests_total{kind=\\\"full\\\"}\": 7"), "{json}");
        assert!(json.contains("\"count\": 4"), "{json}");
        assert!(json.contains("\"p50\": 200"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            // Series keys contribute braces inside strings; strip strings
            // crudely by dropping quoted spans before balancing.
            let mut bare = String::new();
            let mut in_str = false;
            let mut prev = ' ';
            for c in json.chars() {
                if c == '"' && prev != '\\' {
                    in_str = !in_str;
                } else if !in_str {
                    bare.push(c);
                }
                prev = c;
            }
            assert_eq!(bare.matches(open).count(), bare.matches(close).count());
        }
    }

    #[test]
    fn empty_metrics_render() {
        assert!(render_metrics_text("x", &[]).contains("series:          0"));
        let json = render_metrics_json("x", &[]);
        assert!(json.contains("\"scalars\": {}"));
        assert!(json.contains("\"histograms\": []"));
    }
}
