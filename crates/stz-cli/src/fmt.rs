//! The entry-table formatter shared by every `inspect` transport.
//!
//! All transports produce the same [`EntryDesc`] rows — from a resident
//! archive, a container footer, or an `INSPECT_OK` frame — and render them
//! here, either human-readable or as a machine-readable JSON document
//! (`--json`). One formatter means the views cannot drift.

use stz_access::EntryDesc;

/// Render the human-readable entry table.
pub fn render_text(source: &str, entries: &[EntryDesc]) -> String {
    let mut out = String::new();
    out.push_str(&format!("container:       {source}\n"));
    out.push_str(&format!("entries:         {}\n", entries.len()));
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!("[{i}] {:?}\n", e.name));
        match e.codec_name() {
            Some(name) => out.push_str(&format!("    codec:       {name}\n")),
            None => out.push_str(&format!(
                "    codec:       unknown (id {}, cannot decode)\n",
                e.codec_id
            )),
        }
        out.push_str(&format!("    dims:        {}\n", dims_text(e)));
        out.push_str(&format!("    type:        {}\n", e.type_name()));
        out.push_str(&format!("    error bound: {:.3e} (absolute)\n", e.eb));
        out.push_str(&format!(
            "    compressed:  {} bytes ({} sections, payload crc 0x{:08x})\n",
            e.compressed_len, e.sections, e.payload_crc
        ));
        if e.levels > 0 {
            match e.interp_name() {
                Some(interp) => out
                    .push_str(&format!("    levels:      {} ({interp} interpolation)\n", e.levels)),
                None => out.push_str(&format!("    levels:      {}\n", e.levels)),
            }
            for (k, &bytes) in e.level_bytes.iter().enumerate() {
                out.push_str(&format!(
                    "      level {}: cumulative {bytes} bytes ({:.1}% of payload)\n",
                    k + 1,
                    100.0 * bytes as f64 / e.compressed_len as f64
                ));
            }
        }
    }
    out
}

/// Render the machine-readable entry table (one JSON document).
pub fn render_json(source: &str, entries: &[EntryDesc]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"container\": {},\n", json_str(source)));
    out.push_str("  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let [z, y, x] = e.dims.as_array();
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_str(&e.name)));
        out.push_str(&format!("      \"codec_id\": {},\n", e.codec_id));
        out.push_str(&format!(
            "      \"codec\": {},\n",
            e.codec_name().map_or("null".to_string(), json_str)
        ));
        out.push_str(&format!("      \"type\": {},\n", json_str(e.type_name())));
        out.push_str(&format!("      \"ndim\": {},\n", e.dims.ndim()));
        out.push_str(&format!("      \"dims\": [{z}, {y}, {x}],\n"));
        out.push_str(&format!("      \"error_bound\": {},\n", json_f64(e.eb)));
        out.push_str(&format!("      \"compressed_len\": {},\n", e.compressed_len));
        out.push_str(&format!("      \"payload_crc\": {},\n", e.payload_crc));
        out.push_str(&format!("      \"sections\": {},\n", e.sections));
        out.push_str(&format!("      \"levels\": {},\n", e.levels));
        out.push_str(&format!(
            "      \"interp\": {},\n",
            e.interp_name().map_or("null".to_string(), json_str)
        ));
        let level_bytes: Vec<String> = e.level_bytes.iter().map(u64::to_string).collect();
        out.push_str(&format!("      \"level_bytes\": [{}]\n", level_bytes.join(", ")));
        out.push_str("    }");
    }
    out.push_str(if entries.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push('}');
    out
}

/// `ZxYxX` respecting the entry's logical rank.
fn dims_text(e: &EntryDesc) -> String {
    let [z, y, x] = e.dims.as_array();
    match e.dims.ndim() {
        1 => format!("{x}"),
        2 => format!("{y}x{x}"),
        _ => format!("{z}x{y}x{x}"),
    }
}

/// Quote + escape a JSON string.
fn json_str(s: impl AsRef<str>) -> String {
    let mut out = String::with_capacity(s.as_ref().len() + 2);
    out.push('"');
    for c in s.as_ref().chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite `f64` as a JSON number (shortest round-trip form).
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "error bounds are finite by construction");
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    fn row() -> EntryDesc {
        EntryDesc {
            index: 0,
            name: "step \"0\"".into(),
            codec_id: 0,
            type_tag: 0,
            dims: Dims::d3(16, 16, 16),
            eb: 1e-3,
            compressed_len: 4000,
            payload_crc: 0x1234_5678,
            sections: 15,
            levels: 2,
            interp: 2,
            level_bytes: vec![64, 4000],
        }
    }

    #[test]
    fn text_table_mentions_every_field() {
        let text = render_text("steps.stzc", &[row()]);
        for needle in [
            "steps.stzc",
            "step \\\"0\\\"",
            "stz",
            "16x16x16",
            "f32",
            "1.000e-3",
            "4000",
            "15",
            "cubic",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_is_parseable_and_escaped() {
        let json = render_json("steps.stzc", &[row()]);
        // The bench json module is the closest thing to a reference
        // parser in-tree; keep the formatter honest against it.
        // (stz-cli cannot depend on stz-bench, so check structure by hand.)
        assert!(json.contains("\"step \\\"0\\\"\""), "name must be escaped: {json}");
        assert!(json.contains("\"codec\": \"stz\""));
        assert!(json.contains("\"dims\": [16, 16, 16]"));
        assert!(json.contains("\"error_bound\": 0.001"));
        assert!(json.contains("\"level_bytes\": [64, 4000]"));
        assert!(json.contains("\"interp\": \"cubic\""));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = json.matches(open).count();
            let c = json.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close} in:\n{json}");
        }
    }

    #[test]
    fn empty_table_renders() {
        let json = render_json("empty", &[]);
        assert!(json.contains("\"entries\": []"));
        assert!(render_text("empty", &[]).contains("entries:         0"));
    }
}
