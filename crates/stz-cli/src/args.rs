//! Flag parsing for the `stz` CLI (no external dependencies).

use std::collections::HashMap;
use stz_field::{Dims, Region};

pub const USAGE: &str = "\
USAGE:
  stz compress   -i <raw> -o <archive> -d <Z>x<Y>x<X> -t <f32|f64> -e <bound>
                 [--backend <stz|sz3|zfp|sperr|mgard>] [--rel]
                 [--levels <2..4>] [--linear] [--no-adaptive] [--threads <N>]
  stz decompress -i <archive> -o <raw> [--backend <name>] [--threads <N>]
  stz info       -i <archive>

  stz pack       -i <raw>[,<raw>...] -o <container> -d <Z>x<Y>x<X> -t <f32|f64>
                 -e <bound> [--backend <name>] [--rel] [--levels <2..4>]
                 [--linear] [--no-adaptive] [--name <entry>] [--threads <N>]

  stz list       --from <dir|server>
  stz inspect    --from <location> [--json]
  stz extract    --from <location> -o <raw> [-r <z0:z1,y0:y1,x0:x1>]
                 [--entry <name>]
  stz preview    --from <location> -o <raw> -l <level> [--entry <name>]

  stz append     -i <raw>[,<raw>...] --to <container> -d <Z>x<Y>x<X> -t <f32|f64>
                 -e <bound> [--backend <name>] [--rel] [--levels <2..4>]
                 [--linear] [--no-adaptive] [--name <entry>] [--threads <N>]
  stz delete     --to <container> --entry <name>
  stz compact    --to <container>

  stz serve      -i <dir|container> [--addr <host:port>] [--cache-mb <MB>]
                 [--max-conns <N>] [--threads <N>]
  stz stats      --from <location> [--json]
  stz trace      --from <location> [--json] [--entry <name>]

Raw files are flat little-endian arrays in C order (x fastest).
Containers (.stzc) hold one entry per input file, named by file stem; preview
and extract read only the byte ranges the query needs.

A <location> is transport-transparent: a container path (steps.stzc), a bare
archive (field.stz), or a hosted container on an stz-serve server
(stz://host:port/steps). list also accepts a directory of containers or a
bare server URI (stz://host:port) and shows what it holds. Every read verb
has ONE code path dispatching through the unified Store API, so local and
remote results are byte-identical. -i is accepted as an alias for --from on
the read verbs, and the pre-URI `stz remote <verb> --addr ... -c <name>`
spellings remain as hidden aliases for one release.

--backend selects the compression engine (default stz, the native streaming
compressor); decompress sniffs the engine from the archive magic when the
flag is omitted. Containers may mix engines per entry; progressive preview
needs stz entries, while decompress/extract work for every engine.
--levels/--linear/--no-adaptive tune the stz hierarchy and apply only to it.
--threads 0 (the default) uses STZ_THREADS or all cores; output bytes are
identical at every thread count. pack parallelizes across entries, so its
effective width is capped at the input count (one input parallelizes
internally instead).
append/delete/compact are the mutation verbs: they operate on a local
mutable (v3) container named by --to and commit one new generation per
invocation. append compresses its inputs exactly like pack and adds them to
the container; delete drops one named entry; compact rewrites the live
entries into a dense sibling file and atomically renames it into place,
reclaiming the bytes dead generations left behind. A v2 container is
upgraded to v3 in place the first time a mutation verb opens it. Readers
(including a running stz-serve) always see a complete generation: a crash
at any point leaves the previous generation intact. inspect shows the
generation number and live/dead/reclaimable bytes for v3 containers.
serve hosts every .stzc under a directory over the STZP binary protocol
(port 0 picks an ephemeral port, printed on startup). --json prints the
machine-readable entry table, identical for every transport.
stats renders the telemetry registry as a sorted table (histograms fold to
count/p50/p99): for stz:// locations it fetches the server's live registry
over one METRICS round-trip; for local paths it opens the store and shows
the counters the read populated in this process.
trace shows request span trees: for stz:// locations it fetches the
server's tail-sampled traces (slowest + error requests per frame kind)
over one TRACE_GET round-trip; for local paths it traces one full fetch
of the selected entry in this process. The default rendering is a text
waterfall; --json emits Chrome trace-event JSON, loadable in Perfetto
(ui.perfetto.dev) or chrome://tracing.";

/// Parsed command line: subcommand + flag map.
#[derive(Debug)]
pub struct Parsed {
    pub command: String,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Which flags take a value, per the USAGE above.
const VALUED: &[&str] = &[
    "-i",
    "-o",
    "-d",
    "-t",
    "-e",
    "-l",
    "-r",
    "-c",
    "--levels",
    "--from",
    "--to",
    "--entry",
    "--name",
    "--threads",
    "--backend",
    "--addr",
    "--cache-mb",
    "--max-conns",
];

pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut command = argv.get(1).ok_or("missing subcommand")?.clone();
    // `remote` takes a positional sub-subcommand: fold the pair into one
    // command word ("remote list" parses as "remote-list").
    let mut rest_from = 2;
    if command == "remote" {
        let sub = argv.get(2).ok_or("remote needs a subcommand (list/inspect/extract/preview)")?;
        command = format!("remote-{sub}");
        rest_from = 3;
    }
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let mut it = argv[rest_from..].iter();
    while let Some(a) = it.next() {
        if VALUED.contains(&a.as_str()) {
            let v = it.next().ok_or_else(|| format!("flag {a} requires a value"))?;
            flags.insert(a.clone(), v.clone());
        } else if a.starts_with('-') {
            switches.push(a.clone());
        } else {
            return Err(format!("unexpected argument {a}"));
        }
    }
    Ok(Parsed { command, flags, switches })
}

impl Parsed {
    pub fn required(&self, flag: &str) -> Result<&str, String> {
        self.flags
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag {flag}"))
    }

    pub fn optional(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Worker-thread count from `--threads` (`0` = auto: `STZ_THREADS` or
    /// all cores).
    pub fn threads(&self) -> Result<usize, String> {
        match self.optional("--threads") {
            None => Ok(0),
            Some(v) => v.parse().map_err(|_| "--threads must be a non-negative integer".into()),
        }
    }
}

/// Parse `ZxYxX` (or `YxX`, or `X`) into dims.
pub fn parse_dims(s: &str) -> Result<Dims, String> {
    let parts: Vec<usize> = s
        .split('x')
        .map(|p| p.parse().map_err(|_| format!("bad extent {p:?} in dims {s:?}")))
        .collect::<Result<_, _>>()?;
    match parts[..] {
        [x] if x > 0 => Ok(Dims::d1(x)),
        [y, x] if y > 0 && x > 0 => Ok(Dims::d2(y, x)),
        [z, y, x] if z > 0 && y > 0 && x > 0 => Ok(Dims::d3(z, y, x)),
        _ => Err(format!("dims {s:?} must be 1–3 positive extents separated by 'x'")),
    }
}

/// Parse `z0:z1,y0:y1,x0:x1` into a region (missing leading axes default to
/// the full `0:1` plane, mirroring [`Dims`]'s normalization).
pub fn parse_region(s: &str) -> Result<Region, String> {
    let ranges: Vec<(usize, usize)> = s
        .split(',')
        .map(|r| {
            let (a, b) =
                r.split_once(':').ok_or_else(|| format!("bad range {r:?} (want start:end)"))?;
            let a: usize = a.parse().map_err(|_| format!("bad range start {a:?}"))?;
            let b: usize = b.parse().map_err(|_| format!("bad range end {b:?}"))?;
            if a >= b {
                return Err(format!("empty range {r:?}"));
            }
            Ok((a, b))
        })
        .collect::<Result<_, _>>()?;
    match ranges[..] {
        [(x0, x1)] => Ok(Region::d3(0..1, 0..1, x0..x1)),
        [(y0, y1), (x0, x1)] => Ok(Region::d3(0..1, y0..y1, x0..x1)),
        [(z0, z1), (y0, y1), (x0, x1)] => Ok(Region::d3(z0..z1, y0..y1, x0..x1)),
        _ => Err(format!("region {s:?} must have 1–3 ranges")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        std::iter::once("stz").chain(s.iter().copied()).map(str::to_string).collect()
    }

    #[test]
    fn parse_compress_line() {
        let p = parse(&argv(&[
            "compress", "-i", "a.f32", "-o", "a.stz", "-d", "8x8x8", "-t", "f32", "-e", "1e-3",
            "--rel",
        ]))
        .unwrap();
        assert_eq!(p.command, "compress");
        assert_eq!(p.required("-i").unwrap(), "a.f32");
        assert_eq!(p.required("-e").unwrap(), "1e-3");
        assert!(p.switch("--rel"));
        assert!(!p.switch("--linear"));
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&argv(&["compress", "-i"])).is_err());
        assert!(parse(&argv(&[])).is_err());
    }

    #[test]
    fn remote_subcommand_folds() {
        let p = parse(&argv(&[
            "remote",
            "extract",
            "--addr",
            "127.0.0.1:4815",
            "-c",
            "steps",
            "-o",
            "out.f32",
        ]))
        .unwrap();
        assert_eq!(p.command, "remote-extract");
        assert_eq!(p.required("--addr").unwrap(), "127.0.0.1:4815");
        assert_eq!(p.required("-c").unwrap(), "steps");
        assert!(parse(&argv(&["remote"])).is_err());
    }

    #[test]
    fn threads_flag_parses_with_auto_default() {
        let p = parse(&argv(&["compress", "--threads", "4"])).unwrap();
        assert_eq!(p.threads().unwrap(), 4);
        let p = parse(&argv(&["compress"])).unwrap();
        assert_eq!(p.threads().unwrap(), 0);
        let p = parse(&argv(&["compress", "--threads", "many"])).unwrap();
        assert!(p.threads().is_err());
    }

    #[test]
    fn dims_forms() {
        assert_eq!(parse_dims("100").unwrap(), Dims::d1(100));
        assert_eq!(parse_dims("4x5").unwrap(), Dims::d2(4, 5));
        assert_eq!(parse_dims("4x5x6").unwrap(), Dims::d3(4, 5, 6));
        assert!(parse_dims("0x5").is_err());
        assert!(parse_dims("4x5x6x7").is_err());
        assert!(parse_dims("abc").is_err());
    }

    #[test]
    fn region_forms() {
        assert_eq!(parse_region("2:4").unwrap(), Region::d3(0..1, 0..1, 2..4));
        assert_eq!(parse_region("1:2,3:9").unwrap(), Region::d3(0..1, 1..2, 3..9));
        assert_eq!(parse_region("0:1,2:3,4:5").unwrap(), Region::d3(0..1, 2..3, 4..5));
        assert!(parse_region("3:3").is_err());
        assert!(parse_region("5").is_err());
    }
}
