//! `stz` — command-line interface to the STZ streaming lossy compressor.
//!
//! Operates on flat little-endian binary arrays (the interchange format of
//! the SZ/ZFP ecosystems). Subcommands:
//!
//! ```text
//! stz compress   -i data.f32 -o data.stz -d 512x512x512 -t f32 -e 1e-3 [--rel] [--levels 3]
//! stz decompress -i data.stz -o out.f32
//! stz preview    -i data.stz -o coarse.f32 -l 1
//! stz roi        -i data.stz -o roi.f32 -r z0:z1,y0:y1,x0:x1
//! stz info       -i data.stz
//!
//! stz pack       -i t0.f32,t1.f32 -o steps.stzc -d 512x512x512 -t f32 -e 1e-3
//! stz inspect    -i steps.stzc [--json]
//! stz extract    -i steps.stzc -o roi.f32 -r z0:z1,y0:y1,x0:x1 [--entry t1]
//! stz preview    -i steps.stzc -o coarse.f32 -l 1 [--entry t0]
//!
//! stz serve      -i archives/ --addr 127.0.0.1:4815
//! stz remote list    --addr HOST:PORT
//! stz remote inspect --addr HOST:PORT -c steps [--json]
//! stz remote extract --addr HOST:PORT -c steps -o roi.f32 -r z0:z1,y0:y1,x0:x1
//! stz remote preview --addr HOST:PORT -c steps -o coarse.f32 -l 1
//! ```
//!
//! `pack` writes the stz-stream on-disk container; `extract` and `preview`
//! on a container read only the byte ranges the query needs. `serve` hosts
//! a directory of containers over the STZP binary protocol (stz-serve);
//! the `remote` commands are the network twins of the local queries.

mod args;
mod commands;
mod fmt;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
