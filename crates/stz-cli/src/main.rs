//! `stz` — command-line interface to the STZ streaming lossy compressor.
//!
//! Operates on flat little-endian binary arrays (the interchange format of
//! the SZ/ZFP ecosystems). Subcommands:
//!
//! ```text
//! stz compress   -i data.f32 -o data.stz -d 512x512x512 -t f32 -e 1e-3 [--rel] [--levels 3]
//! stz decompress -i data.stz -o out.f32
//! stz preview    -i data.stz -o coarse.f32 -l 1
//! stz roi        -i data.stz -o roi.f32 -r z0:z1,y0:y1,x0:x1
//! stz info       -i data.stz
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
