//! Compressor configuration.

use stz_field::{Field, Scalar};

/// Error-bound specification shared by every compressor in the workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Point-wise absolute bound: `|recon - orig| <= eb`.
    Absolute(f64),
    /// Bound relative to the field's value range:
    /// `|recon - orig| <= eb * (max - min)`.
    Relative(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound for a concrete field.
    pub fn absolute_for<T: Scalar>(&self, field: &Field<T>) -> f64 {
        match *self {
            ErrorBound::Absolute(eb) => eb,
            ErrorBound::Relative(rel) => {
                let (lo, hi) = field.value_range();
                let range = hi - lo;
                if range > 0.0 {
                    rel * range
                } else {
                    // Constant field: any positive bound works.
                    rel.max(f64::MIN_POSITIVE)
                }
            }
        }
    }
}

/// Interpolation order for the prediction stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpKind {
    /// 2-point linear interpolation.
    Linear,
    /// 4-point cubic spline (not-a-knot), SZ3's default.
    Cubic,
}

/// Configuration for the SZ3-style compressor.
#[derive(Debug, Clone, Copy)]
pub struct Sz3Config {
    /// Error bound.
    pub eb: ErrorBound,
    /// Quantizer radius: maximum |code| before escaping (SZ3 default 2^15).
    pub radius: i64,
    /// Interpolation order (SZ3 default cubic).
    pub interp: InterpKind,
}

impl Sz3Config {
    /// Default-configured compressor at absolute error bound `eb`.
    pub fn absolute(eb: f64) -> Self {
        Sz3Config { eb: ErrorBound::Absolute(eb), radius: 1 << 15, interp: InterpKind::Cubic }
    }

    /// Default-configured compressor at value-range-relative bound `rel`.
    pub fn relative(rel: f64) -> Self {
        Sz3Config { eb: ErrorBound::Relative(rel), radius: 1 << 15, interp: InterpKind::Cubic }
    }

    pub fn with_interp(mut self, interp: InterpKind) -> Self {
        self.interp = interp;
        self
    }

    pub fn with_radius(mut self, radius: i64) -> Self {
        self.radius = radius;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    #[test]
    fn absolute_passthrough() {
        let f = Field::from_fn(Dims::d1(4), |_, _, x| x as f32);
        assert_eq!(ErrorBound::Absolute(0.5).absolute_for(&f), 0.5);
    }

    #[test]
    fn relative_scales_by_range() {
        let f = Field::from_fn(Dims::d1(5), |_, _, x| x as f32 * 2.0); // range 8
        assert!((ErrorBound::Relative(0.01).absolute_for(&f) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn relative_on_constant_field_is_positive() {
        let f = Field::from_fn(Dims::d1(5), |_, _, _| 3.0f32);
        assert!(ErrorBound::Relative(1e-3).absolute_for(&f) > 0.0);
    }

    #[test]
    fn builders() {
        let c = Sz3Config::absolute(0.1).with_interp(InterpKind::Linear).with_radius(64);
        assert_eq!(c.interp, InterpKind::Linear);
        assert_eq!(c.radius, 64);
    }
}
