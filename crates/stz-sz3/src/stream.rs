//! Archive header and payload serialization.

use crate::config::InterpKind;
use stz_codec::{check_decode_alloc, ByteReader, ByteWriter, CodecError, Result};
use stz_field::{Dims, Scalar};

/// Magic bytes of an SZ3-style archive.
pub const MAGIC: [u8; 4] = *b"SZ3R";
/// Current format version.
pub const VERSION: u8 = 1;

/// Sanity cap on the number of points a header may declare, to bound
/// allocations when reading untrusted data (2^40 points ≈ 8 TB of f64).
pub const MAX_POINTS: u64 = 1 << 40;

/// Decoded archive header.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    pub dims: Dims,
    pub type_tag: u8,
    pub eb: f64,
    pub radius: i64,
    pub interp: InterpKind,
}

/// Serialize the header.
pub fn write_header(w: &mut ByteWriter, h: &Header) {
    w.put_raw(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(h.type_tag);
    w.put_u8(h.dims.ndim());
    let [nz, ny, nx] = h.dims.as_array();
    w.put_uvarint(nz as u64);
    w.put_uvarint(ny as u64);
    w.put_uvarint(nx as u64);
    w.put_f64(h.eb);
    w.put_uvarint(h.radius as u64);
    w.put_u8(match h.interp {
        InterpKind::Linear => 0,
        InterpKind::Cubic => 1,
    });
}

/// Parse and validate the header.
pub fn read_header(r: &mut ByteReader<'_>) -> Result<Header> {
    let magic = r.get_raw(4)?;
    if magic != MAGIC {
        return Err(CodecError::corrupt("bad SZ3 magic"));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(CodecError::unsupported(format!("SZ3 format version {version}")));
    }
    let type_tag = r.get_u8()?;
    if type_tag > 1 {
        return Err(CodecError::unsupported(format!("element type tag {type_tag}")));
    }
    let ndim = r.get_u8()?;
    if !(1..=3).contains(&ndim) {
        return Err(CodecError::corrupt(format!("invalid ndim {ndim}")));
    }
    let nz = r.get_uvarint()?;
    let ny = r.get_uvarint()?;
    let nx = r.get_uvarint()?;
    if nz == 0 || ny == 0 || nx == 0 || nz.saturating_mul(ny).saturating_mul(nx) > MAX_POINTS {
        return Err(CodecError::corrupt(format!("invalid dims {nz}x{ny}x{nx}")));
    }
    if (ndim < 3 && nz != 1) || (ndim < 2 && ny != 1) {
        return Err(CodecError::corrupt("dims inconsistent with ndim"));
    }
    // Reject before the decoder reserves its dims-sized f64 work buffer.
    check_decode_alloc(nz.saturating_mul(ny).saturating_mul(nx), 8, "sz3 field")?;
    let eb = r.get_f64()?;
    if !(eb > 0.0 && eb.is_finite()) {
        return Err(CodecError::corrupt(format!("invalid error bound {eb}")));
    }
    let radius = r.get_uvarint()?;
    if radius == 0 || radius > i64::MAX as u64 {
        return Err(CodecError::corrupt("invalid quantizer radius"));
    }
    let interp = match r.get_u8()? {
        0 => InterpKind::Linear,
        1 => InterpKind::Cubic,
        k => return Err(CodecError::unsupported(format!("interp kind {k}"))),
    };
    Ok(Header {
        dims: Dims::from_parts(ndim, nz as usize, ny as usize, nx as usize),
        type_tag,
        eb,
        radius: radius as i64,
        interp,
    })
}

/// Serialize the escaped (bit-exact) values.
pub fn write_outliers<T: Scalar>(w: &mut ByteWriter, outliers: &[T]) {
    w.put_uvarint(outliers.len() as u64);
    let mut raw = Vec::with_capacity(outliers.len() * T::BYTES);
    for &v in outliers {
        v.write_exact(&mut raw);
    }
    w.put_raw(&raw);
}

/// Deserialize the escaped values.
pub fn read_outliers<T: Scalar>(r: &mut ByteReader<'_>) -> Result<Vec<T>> {
    let n = r.get_uvarint()?;
    if n.saturating_mul(T::BYTES as u64) > r.remaining() as u64 {
        return Err(CodecError::UnexpectedEof { context: "outlier values" });
    }
    let raw = r.get_raw(n as usize * T::BYTES)?;
    Ok(raw.chunks_exact(T::BYTES).map(T::read_exact).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            dims: Dims::d3(5, 6, 7),
            type_tag: 0,
            eb: 1e-3,
            radius: 1 << 15,
            interp: InterpKind::Cubic,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let mut w = ByteWriter::new();
        write_header(&mut w, &h);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_header(&mut r).unwrap(), h);
    }

    #[test]
    fn header_roundtrip_2d() {
        let h = Header { dims: Dims::d2(6, 7), ..sample_header() };
        let mut w = ByteWriter::new();
        write_header(&mut w, &h);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let back = read_header(&mut r).unwrap();
        assert_eq!(back.dims.ndim(), 2);
        assert_eq!(back.dims.as_array(), [1, 6, 7]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut w = ByteWriter::new();
        write_header(&mut w, &sample_header());
        let mut bytes = w.finish();
        bytes[0] = b'X';
        assert!(read_header(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut w = ByteWriter::new();
        write_header(&mut w, &sample_header());
        let mut bytes = w.finish();
        bytes[4] = 99;
        assert!(matches!(
            read_header(&mut ByteReader::new(&bytes)),
            Err(CodecError::Unsupported(_))
        ));
    }

    #[test]
    fn oversized_dims_rejected() {
        let mut w = ByteWriter::new();
        w.put_raw(&MAGIC);
        w.put_u8(VERSION);
        w.put_u8(0);
        w.put_u8(3);
        w.put_uvarint(u32::MAX as u64);
        w.put_uvarint(u32::MAX as u64);
        w.put_uvarint(u32::MAX as u64);
        w.put_f64(0.1);
        w.put_uvarint(8);
        w.put_u8(1);
        let bytes = w.finish();
        assert!(read_header(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn outliers_roundtrip_f32() {
        let vals = vec![1.5f32, -2.25, f32::MAX, 0.0];
        let mut w = ByteWriter::new();
        write_outliers(&mut w, &vals);
        let bytes = w.finish();
        let back: Vec<f32> = read_outliers(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn outliers_truncated_is_eof() {
        let vals = vec![1.0f64; 10];
        let mut w = ByteWriter::new();
        write_outliers(&mut w, &vals);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(read_outliers::<f64>(&mut r), Err(CodecError::UnexpectedEof { .. })));
    }
}
