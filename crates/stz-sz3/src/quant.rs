//! Scalar-type-aware quantization.
//!
//! Predictions and differences are computed in `f64`, but the decompressor
//! ultimately materializes values in the field's scalar type `T`. To keep the
//! error bound exact *in the stored type* — and compression/decompression
//! bit-reproducible — every reconstruction is rounded through `T` before the
//! bound is re-checked and before it is used as a prediction source.

use stz_codec::{LinearQuantizer, QuantOutcome};
use stz_field::Scalar;

/// Result of quantizing one scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarQuant {
    /// Emit `symbol`; the reconstruction (already rounded through `T`).
    Code { symbol: u32, recon: f64 },
    /// Emit [`stz_codec::ESCAPE_SYMBOL`] and store the value exactly.
    Escape,
}

/// Quantize `actual` against `pred` with reconstruction rounded through `T`.
#[inline]
pub fn quantize_scalar<T: Scalar>(q: &LinearQuantizer, actual: f64, pred: f64) -> ScalarQuant {
    match q.quantize(actual, pred) {
        QuantOutcome::Escape => ScalarQuant::Escape,
        QuantOutcome::Code { symbol, reconstructed } => {
            let rounded = T::from_f64(reconstructed).to_f64();
            if (rounded - actual).abs() > q.error_bound() {
                ScalarQuant::Escape
            } else {
                ScalarQuant::Code { symbol, recon: rounded }
            }
        }
    }
}

/// Reconstruct the value for a non-escape symbol, rounded through `T` —
/// the decompression mirror of [`quantize_scalar`].
#[inline]
pub fn reconstruct_scalar<T: Scalar>(q: &LinearQuantizer, symbol: u32, pred: f64) -> f64 {
    T::from_f64(q.reconstruct(symbol, pred)).to_f64()
}

/// Batch [`quantize_scalar`] on a SIMD lane, selecting the `T`-rounded
/// variant by [`Scalar::TYPE_TAG`]. Outputs as in
/// [`LinearQuantizer::quantize_run_f64`]; bit-identical to the per-point
/// function on every lane.
#[inline]
pub fn quantize_run<T: Scalar>(
    q: &LinearQuantizer,
    lane: stz_simd::Lane,
    actuals: &[f64],
    preds: &[f64],
    q_out: &mut [f64],
    recon_out: &mut [f64],
    escape_out: &mut [u8],
) {
    if T::TYPE_TAG == f32::TYPE_TAG {
        q.quantize_run_f32(lane, actuals, preds, q_out, recon_out, escape_out);
    } else {
        q.quantize_run_f64(lane, actuals, preds, q_out, recon_out, escape_out);
    }
}

/// Batch [`reconstruct_scalar`] on a SIMD lane: `out[i]` from `preds[i]`
/// and the signed code `codes[i]` (as `f64`), rounded through `T`.
#[inline]
pub fn reconstruct_run<T: Scalar>(
    q: &LinearQuantizer,
    lane: stz_simd::Lane,
    preds: &[f64],
    codes: &[f64],
    out: &mut [f64],
) {
    if T::TYPE_TAG == f32::TYPE_TAG {
        q.reconstruct_run_f32(lane, preds, codes, out);
    } else {
        q.reconstruct_run_f64(lane, preds, codes, out);
    }
}

/// Fused batch predict + [`reconstruct_run`]: `out[i]` reconstructs the
/// grid point at `base + 2*i` from its interior stencil prediction and the
/// signed code `codes[i]`, rounded through `T`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn predict_reconstruct_run<T: Scalar>(
    q: &LinearQuantizer,
    lane: stz_simd::Lane,
    gbuf: &[f64],
    base: usize,
    st: &stz_simd::Stencil,
    codes: &[f64],
    out: &mut [f64],
) {
    if T::TYPE_TAG == f32::TYPE_TAG {
        q.predict_reconstruct_run_f32(lane, gbuf, base, st, codes, out);
    } else {
        q.predict_reconstruct_run_f64(lane, gbuf, base, st, codes, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_matches_plain_quantizer() {
        let q = LinearQuantizer::new(1e-3, 1 << 15);
        let (actual, pred) = (1.234567, 1.2);
        match (quantize_scalar::<f64>(&q, actual, pred), q.quantize(actual, pred)) {
            (
                ScalarQuant::Code { symbol: s1, recon: r1 },
                QuantOutcome::Code { symbol: s2, reconstructed: r2 },
            ) => {
                assert_eq!(s1, s2);
                assert_eq!(r1.to_bits(), r2.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn f32_rounding_respects_bound() {
        let eb = 1e-4;
        let q = LinearQuantizer::new(eb, 1 << 15);
        // Values whose f64 reconstruction is near the bound edge must still
        // satisfy the bound after f32 rounding, or escape.
        for i in 0..10_000 {
            let actual = 1.0 + i as f64 * 1.37e-5;
            let pred = 1.0;
            match quantize_scalar::<f32>(&q, actual, pred) {
                ScalarQuant::Code { symbol, recon } => {
                    assert!((recon - actual).abs() <= eb, "bound violated at {actual}");
                    // Decompressor arrives at the identical value.
                    let dec = reconstruct_scalar::<f32>(&q, symbol, pred);
                    assert_eq!(dec.to_bits(), recon.to_bits());
                }
                ScalarQuant::Escape => {}
            }
        }
    }

    #[test]
    fn escape_passthrough() {
        let q = LinearQuantizer::new(1e-9, 4);
        assert_eq!(quantize_scalar::<f32>(&q, 100.0, 0.0), ScalarQuant::Escape);
    }

    #[test]
    fn batch_matches_per_point_for_both_types() {
        let q = LinearQuantizer::new(1e-4, 1 << 15);
        let preds: Vec<f64> = (0..200).map(|i| 1.0 + (i as f64 * 0.413).cos()).collect();
        let actuals: Vec<f64> =
            preds.iter().enumerate().map(|(i, &p)| p + (i as f64 - 100.0) * 1.7e-5).collect();
        let n = actuals.len();
        fn check<T: Scalar>(q: &LinearQuantizer, actuals: &[f64], preds: &[f64]) {
            let n = actuals.len();
            for lane in stz_simd::available_lanes() {
                let mut qs = vec![0.0; n];
                let mut rs = vec![0.0; n];
                let mut es = vec![0u8; n];
                quantize_run::<T>(q, lane, actuals, preds, &mut qs, &mut rs, &mut es);
                for i in 0..n {
                    match quantize_scalar::<T>(q, actuals[i], preds[i]) {
                        ScalarQuant::Escape => assert_eq!(es[i], 1),
                        ScalarQuant::Code { symbol, recon } => {
                            assert_eq!(es[i], 0);
                            assert_eq!(LinearQuantizer::symbol_of(qs[i] as i64), symbol);
                            assert_eq!(rs[i].to_bits(), recon.to_bits());
                            let code = [LinearQuantizer::code_of(symbol) as f64];
                            let mut out = [0.0];
                            reconstruct_run::<T>(q, lane, &preds[i..i + 1], &code, &mut out);
                            let dec = reconstruct_scalar::<T>(q, symbol, preds[i]);
                            assert_eq!(out[0].to_bits(), dec.to_bits());
                        }
                    }
                }
            }
        }
        check::<f32>(&q, &actuals, &preds);
        check::<f64>(&q, &actuals, &preds);
        assert_eq!(n, 200);
    }

    #[test]
    fn f32_recon_is_f32_representable() {
        let q = LinearQuantizer::new(0.01, 1 << 15);
        if let ScalarQuant::Code { recon, .. } = quantize_scalar::<f32>(&q, 0.3333333, 0.0) {
            assert_eq!(recon, recon as f32 as f64);
        } else {
            panic!("should code");
        }
    }
}
