//! Scalar-type-aware quantization.
//!
//! Predictions and differences are computed in `f64`, but the decompressor
//! ultimately materializes values in the field's scalar type `T`. To keep the
//! error bound exact *in the stored type* — and compression/decompression
//! bit-reproducible — every reconstruction is rounded through `T` before the
//! bound is re-checked and before it is used as a prediction source.

use stz_codec::{LinearQuantizer, QuantOutcome};
use stz_field::Scalar;

/// Result of quantizing one scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarQuant {
    /// Emit `symbol`; the reconstruction (already rounded through `T`).
    Code { symbol: u32, recon: f64 },
    /// Emit [`stz_codec::ESCAPE_SYMBOL`] and store the value exactly.
    Escape,
}

/// Quantize `actual` against `pred` with reconstruction rounded through `T`.
#[inline]
pub fn quantize_scalar<T: Scalar>(q: &LinearQuantizer, actual: f64, pred: f64) -> ScalarQuant {
    match q.quantize(actual, pred) {
        QuantOutcome::Escape => ScalarQuant::Escape,
        QuantOutcome::Code { symbol, reconstructed } => {
            let rounded = T::from_f64(reconstructed).to_f64();
            if (rounded - actual).abs() > q.error_bound() {
                ScalarQuant::Escape
            } else {
                ScalarQuant::Code { symbol, recon: rounded }
            }
        }
    }
}

/// Reconstruct the value for a non-escape symbol, rounded through `T` —
/// the decompression mirror of [`quantize_scalar`].
#[inline]
pub fn reconstruct_scalar<T: Scalar>(q: &LinearQuantizer, symbol: u32, pred: f64) -> f64 {
    T::from_f64(q.reconstruct(symbol, pred)).to_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_matches_plain_quantizer() {
        let q = LinearQuantizer::new(1e-3, 1 << 15);
        let (actual, pred) = (1.234567, 1.2);
        match (quantize_scalar::<f64>(&q, actual, pred), q.quantize(actual, pred)) {
            (
                ScalarQuant::Code { symbol: s1, recon: r1 },
                QuantOutcome::Code { symbol: s2, reconstructed: r2 },
            ) => {
                assert_eq!(s1, s2);
                assert_eq!(r1.to_bits(), r2.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn f32_rounding_respects_bound() {
        let eb = 1e-4;
        let q = LinearQuantizer::new(eb, 1 << 15);
        // Values whose f64 reconstruction is near the bound edge must still
        // satisfy the bound after f32 rounding, or escape.
        for i in 0..10_000 {
            let actual = 1.0 + i as f64 * 1.37e-5;
            let pred = 1.0;
            match quantize_scalar::<f32>(&q, actual, pred) {
                ScalarQuant::Code { symbol, recon } => {
                    assert!((recon - actual).abs() <= eb, "bound violated at {actual}");
                    // Decompressor arrives at the identical value.
                    let dec = reconstruct_scalar::<f32>(&q, symbol, pred);
                    assert_eq!(dec.to_bits(), recon.to_bits());
                }
                ScalarQuant::Escape => {}
            }
        }
    }

    #[test]
    fn escape_passthrough() {
        let q = LinearQuantizer::new(1e-9, 4);
        assert_eq!(quantize_scalar::<f32>(&q, 100.0, 0.0), ScalarQuant::Escape);
    }

    #[test]
    fn f32_recon_is_f32_representable() {
        let q = LinearQuantizer::new(0.01, 1 << 15);
        if let ScalarQuant::Code { recon, .. } = quantize_scalar::<f32>(&q, 0.3333333, 0.0) {
            assert_eq!(recon, recon as f32 as f64);
        } else {
            panic!("should code");
        }
    }
}
