//! SZ3-style error-bounded lossy compressor.
//!
//! This crate reimplements the interpolation variant of SZ3 (Zhao et al.,
//! ICDE'21; Liang et al.) that the STZ paper uses both as its strongest
//! non-streaming baseline and as the substrate that compresses STZ's
//! coarsest hierarchy level (§3.1–3.2).
//!
//! The pipeline is the classic three stages (paper §2.1):
//!
//! 1. **Predict** — multi-level 1-D cubic-spline interpolation: starting from
//!    the single corner point, each level halves the grid spacing and
//!    predicts the new points dimension-by-dimension from the already
//!    reconstructed lattice ([`interp`]).
//! 2. **Quantize** — linear error-bounded quantization with bit-exact escape
//!    for unpredictable values ([`stz_codec::LinearQuantizer`]).
//! 3. **Encode** — canonical Huffman over the quantization codes.
//!
//! Compression operates on the *reconstructed* values (prediction sources are
//! always what the decompressor will see), so the absolute error bound holds
//! point-wise by construction; [`quant::quantize_scalar`] additionally rounds
//! reconstructions through the field's scalar type so `f32` archives are
//! bit-reproducible.

pub mod compressor;
pub mod config;
pub mod interp;
pub mod quant;
pub mod stream;

pub use compressor::{compress, compress_full, compress_with_stats, decompress, CompressStats};
pub use config::{ErrorBound, InterpKind, Sz3Config};
