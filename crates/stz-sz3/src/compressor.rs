//! The SZ3-style compression and decompression driver.

use crate::config::Sz3Config;
use crate::interp::{for_each_target, plan, predict_1d, Pass};
use crate::quant::{quantize_scalar, reconstruct_scalar, ScalarQuant};
use crate::stream::{self, Header};
use stz_codec::{
    huffman, ByteReader, ByteWriter, CodecError, LinearQuantizer, Result, ESCAPE_SYMBOL,
};
use stz_field::{Dims, Field, Scalar};

/// Compression statistics for analysis and the benchmark harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressStats {
    /// Total points compressed.
    pub total_points: usize,
    /// Points that escaped the quantizer (stored bit-exact).
    pub escapes: usize,
    /// Absolute error bound actually used.
    pub eb_used: f64,
    /// Bytes of the Huffman-coded symbol stream (incl. table).
    pub code_bytes: usize,
    /// Bytes of bit-exact outliers.
    pub outlier_bytes: usize,
}

/// Compress a field; returns the self-contained archive bytes.
pub fn compress<T: Scalar>(field: &Field<T>, config: &Sz3Config) -> Vec<u8> {
    compress_with_stats(field, config).0
}

/// Compress a field and report statistics.
pub fn compress_with_stats<T: Scalar>(
    field: &Field<T>,
    config: &Sz3Config,
) -> (Vec<u8>, CompressStats) {
    let (bytes, stats, _recon) = compress_full(field, config);
    (bytes, stats)
}

/// Compress a field, additionally returning the reconstructed values the
/// decompressor will produce (in C order, already rounded through `T`).
///
/// STZ uses this to obtain its reconstructed level-1 lattice — the prediction
/// source for finer levels — without paying for a decompression round-trip.
pub fn compress_full<T: Scalar>(
    field: &Field<T>,
    config: &Sz3Config,
) -> (Vec<u8>, CompressStats, Vec<f64>) {
    let dims = field.dims();
    let eb = config.eb.absolute_for(field);
    let quant = LinearQuantizer::new(eb, config.radius);

    // Working buffer holds the evolving *reconstructed* values.
    let mut buf: Vec<f64> = field.as_slice().iter().map(|v| v.to_f64()).collect();
    let mut symbols: Vec<u32> = Vec::with_capacity(dims.len());
    let mut outliers: Vec<T> = Vec::new();

    // The corner point is predicted as 0 (SZ3 convention).
    quantize_point::<T>(&quant, &mut buf, 0, 0.0, field.as_slice(), &mut symbols, &mut outliers);

    for pass in plan(dims) {
        run_pass_compress::<T>(
            dims,
            &pass,
            config,
            &quant,
            &mut buf,
            field.as_slice(),
            &mut symbols,
            &mut outliers,
        );
    }

    let mut w = ByteWriter::with_capacity(symbols.len() / 2 + 64);
    let header =
        Header { dims, type_tag: T::TYPE_TAG, eb, radius: config.radius, interp: config.interp };
    stream::write_header(&mut w, &header);
    let code_block = huffman::encode_block(&symbols);
    let code_bytes = code_block.len();
    w.put_block(&code_block);
    let before_outliers = w.len();
    stream::write_outliers(&mut w, &outliers);
    let outlier_bytes = w.len() - before_outliers;

    let stats = CompressStats {
        total_points: dims.len(),
        escapes: outliers.len(),
        eb_used: eb,
        code_bytes,
        outlier_bytes,
    };
    (w.finish(), stats, buf)
}

#[inline]
fn quantize_point<T: Scalar>(
    quant: &LinearQuantizer,
    buf: &mut [f64],
    idx: usize,
    pred: f64,
    original: &[T],
    symbols: &mut Vec<u32>,
    outliers: &mut Vec<T>,
) {
    match quantize_scalar::<T>(quant, buf[idx], pred) {
        ScalarQuant::Code { symbol, recon } => {
            symbols.push(symbol);
            buf[idx] = recon;
        }
        ScalarQuant::Escape => {
            symbols.push(ESCAPE_SYMBOL);
            outliers.push(original[idx]);
            // buf[idx] keeps the exact value: that is what the decompressor
            // will reconstruct from the outlier store.
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_pass_compress<T: Scalar>(
    dims: Dims,
    pass: &Pass,
    config: &Sz3Config,
    quant: &LinearQuantizer,
    buf: &mut [f64],
    original: &[T],
    symbols: &mut Vec<u32>,
    outliers: &mut Vec<T>,
) {
    let n_axis = dims.as_array()[pass.axis];
    let s = pass.stride;
    let axis = pass.axis;
    let kind = config.interp;
    for_each_target(dims, pass, |z, y, x| {
        let t = [z, y, x][axis];
        let pred = {
            let at = |p: usize| {
                let mut c = [z, y, x];
                c[axis] = p;
                buf[dims.index(c[0], c[1], c[2])]
            };
            predict_1d(at, t, s, n_axis, kind)
        };
        let idx = dims.index(z, y, x);
        quantize_point::<T>(quant, buf, idx, pred, original, symbols, outliers);
    });
}

/// Decompress an archive produced by [`compress`].
///
/// The element type `T` must match the archive's; a mismatch is reported as
/// [`CodecError::Corrupt`].
pub fn decompress<T: Scalar>(bytes: &[u8]) -> Result<Field<T>> {
    let mut r = ByteReader::new(bytes);
    let header = stream::read_header(&mut r)?;
    if header.type_tag != T::TYPE_TAG {
        return Err(CodecError::corrupt(format!(
            "archive element type tag {} does not match requested type",
            header.type_tag
        )));
    }
    let dims = header.dims;
    let quant = LinearQuantizer::new(header.eb, header.radius);
    let config = Sz3Config {
        eb: crate::config::ErrorBound::Absolute(header.eb),
        radius: header.radius,
        interp: header.interp,
    };

    let code_block = r.get_block()?;
    let symbols = huffman::decode_block(code_block)?;
    if symbols.len() != dims.len() {
        return Err(CodecError::corrupt(format!(
            "symbol count {} does not match dims {dims}",
            symbols.len()
        )));
    }
    let outliers: Vec<T> = stream::read_outliers(&mut r)?;
    let expected_escapes = symbols.iter().filter(|&&s| s == ESCAPE_SYMBOL).count();
    if outliers.len() != expected_escapes {
        return Err(CodecError::corrupt("outlier count does not match escape symbols"));
    }

    let mut buf = vec![0.0f64; dims.len()];
    let mut cursor = Cursor { symbols: &symbols, outliers: &outliers, pos: 0, out_pos: 0 };

    reconstruct_point::<T>(&quant, &mut buf, 0, 0.0, &mut cursor);
    for pass in plan(dims) {
        let n_axis = dims.as_array()[pass.axis];
        let s = pass.stride;
        let axis = pass.axis;
        let kind = config.interp;
        for_each_target(dims, &pass, |z, y, x| {
            let t = [z, y, x][axis];
            let pred = {
                let at = |p: usize| {
                    let mut c = [z, y, x];
                    c[axis] = p;
                    buf[dims.index(c[0], c[1], c[2])]
                };
                predict_1d(at, t, s, n_axis, kind)
            };
            let idx = dims.index(z, y, x);
            reconstruct_point::<T>(&quant, &mut buf, idx, pred, &mut cursor);
        });
    }

    let data: Vec<T> = buf.into_iter().map(T::from_f64).collect();
    Ok(Field::from_vec(dims, data))
}

struct Cursor<'a, T> {
    symbols: &'a [u32],
    outliers: &'a [T],
    pos: usize,
    out_pos: usize,
}

#[inline]
fn reconstruct_point<T: Scalar>(
    quant: &LinearQuantizer,
    buf: &mut [f64],
    idx: usize,
    pred: f64,
    cursor: &mut Cursor<'_, T>,
) {
    let symbol = cursor.symbols[cursor.pos];
    cursor.pos += 1;
    if symbol == ESCAPE_SYMBOL {
        buf[idx] = cursor.outliers[cursor.out_pos].to_f64();
        cursor.out_pos += 1;
    } else {
        buf[idx] = reconstruct_scalar::<T>(quant, symbol, pred);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ErrorBound, InterpKind};

    fn smooth_3d(n: usize) -> Field<f32> {
        Field::from_fn(Dims::d3(n, n, n), |z, y, x| {
            let (zf, yf, xf) = (z as f32 / n as f32, y as f32 / n as f32, x as f32 / n as f32);
            (6.0 * zf).sin() + (5.0 * yf).cos() * (7.0 * xf).sin() + 0.5 * xf * yf
        })
    }

    fn max_err(a: &Field<f32>, b: &Field<f32>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| ((x as f64) - (y as f64)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn roundtrip_error_bounded() {
        let f = smooth_3d(20);
        for eb in [1e-1, 1e-2, 1e-3, 1e-4] {
            let bytes = compress(&f, &Sz3Config::absolute(eb));
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert_eq!(back.dims(), f.dims());
            assert!(max_err(&f, &back) <= eb, "eb {eb}");
        }
    }

    #[test]
    fn compresses_smooth_data_well() {
        let f = smooth_3d(32);
        let (bytes, stats) = compress_with_stats(&f, &Sz3Config::absolute(1e-3));
        let cr = f.nbytes() as f64 / bytes.len() as f64;
        assert!(cr > 4.0, "compression ratio {cr} too low for smooth data");
        assert_eq!(stats.total_points, f.len());
        assert!(stats.escapes < f.len() / 100);
    }

    #[test]
    fn cubic_beats_linear_on_smooth_data() {
        let f = smooth_3d(32);
        let cubic = compress(&f, &Sz3Config::absolute(1e-3));
        let linear = compress(&f, &Sz3Config::absolute(1e-3).with_interp(InterpKind::Linear));
        assert!(cubic.len() < linear.len(), "cubic {} vs linear {}", cubic.len(), linear.len());
    }

    #[test]
    fn roundtrip_f64() {
        let f = Field::from_fn(Dims::d3(9, 9, 9), |z, y, x| {
            ((z + 2 * y + 3 * x) as f64 * 0.01).sin() * 1e6
        });
        let bytes = compress(&f, &Sz3Config::absolute(1.0));
        let back: Field<f64> = decompress(&bytes).unwrap();
        let err = f
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err <= 1.0);
    }

    #[test]
    fn roundtrip_1d_2d_and_tiny() {
        for dims in [Dims::d1(1), Dims::d1(2), Dims::d1(100), Dims::d2(17, 9), Dims::d3(2, 2, 2)] {
            let f = Field::from_fn(dims, |z, y, x| ((z * 31 + y * 7 + x) as f32).sqrt());
            let bytes = compress(&f, &Sz3Config::absolute(1e-2));
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert!(max_err(&f, &back) <= 1e-2, "dims {dims}");
        }
    }

    #[test]
    fn relative_bound_respects_range() {
        let f = smooth_3d(16).map(|v| v * 1000.0);
        let rel = 1e-4;
        let bytes = compress(
            &f,
            &Sz3Config { eb: ErrorBound::Relative(rel), ..Sz3Config::absolute(0.0_f64.max(1.0)) },
        );
        let back: Field<f32> = decompress(&bytes).unwrap();
        let (lo, hi) = f.value_range();
        assert!(max_err(&f, &back) <= rel * (hi - lo) * (1.0 + 1e-9));
    }

    #[test]
    fn outliers_survive_extreme_values() {
        let mut f = smooth_3d(8);
        f.set(3, 3, 3, 1e30);
        f.set(0, 0, 0, -1e30);
        let bytes = compress(&f, &Sz3Config::absolute(1e-3));
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert_eq!(back.get(3, 3, 3), 1e30);
        assert_eq!(back.get(0, 0, 0), -1e30);
        assert!(max_err(&f, &back) <= 1e-3);
    }

    #[test]
    fn nan_values_roundtrip_exactly() {
        let mut f = smooth_3d(8);
        f.set(1, 2, 3, f32::NAN);
        let bytes = compress(&f, &Sz3Config::absolute(1e-3));
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert!(back.get(1, 2, 3).is_nan());
    }

    #[test]
    fn wrong_type_rejected() {
        let f = smooth_3d(8);
        let bytes = compress(&f, &Sz3Config::absolute(1e-3));
        assert!(decompress::<f64>(&bytes).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let f = smooth_3d(8);
        let bytes = compress(&f, &Sz3Config::absolute(1e-3));
        for cut in 0..bytes.len().min(200) {
            let _ = decompress::<f32>(&bytes[..cut]);
        }
        // Also try a corrupted interior byte.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        let _ = decompress::<f32>(&corrupted);
    }

    #[test]
    fn compress_full_recon_matches_decompress() {
        // The recon buffer returned at compression time must be bit-identical
        // to what decompression produces — this is the contract STZ's
        // hierarchical prediction relies on.
        let f = smooth_3d(16);
        let (bytes, _, recon) = compress_full(&f, &Sz3Config::absolute(1e-3));
        let back: Field<f32> = decompress(&bytes).unwrap();
        for (i, (&r, &d)) in recon.iter().zip(back.as_slice()).enumerate() {
            assert_eq!((r as f32).to_bits(), d.to_bits(), "mismatch at {i}");
        }
    }

    #[test]
    fn decompression_is_deterministic() {
        let f = smooth_3d(12);
        let bytes = compress(&f, &Sz3Config::absolute(1e-3));
        let a: Field<f32> = decompress(&bytes).unwrap();
        let b: Field<f32> = decompress(&bytes).unwrap();
        assert_eq!(a, b);
    }
}
