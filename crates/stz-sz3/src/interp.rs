//! 1-D interpolation kernels and the multi-level traversal plan.
//!
//! SZ3's predictor walks the grid coarse-to-fine: at each level with spacing
//! `s`, the lattice of spacing `2s` is known and the points at odd multiples
//! of `s` are predicted **dimension by dimension** (first `z`, then `y`, then
//! `x`), so each pass can use points refined by the previous passes of the
//! same level. The traversal is deterministic and identical at compression
//! and decompression time; the quantization-code stream is emitted in exactly
//! this order.

use crate::config::InterpKind;
use stz_field::Dims;

/// Weights of the 4-point cubic spline interpolant at the midpoint
/// (not-a-knot boundary conditions; paper Eq. 6).
pub const CUBIC_W: [f64; 4] = [-1.0 / 16.0, 9.0 / 16.0, 9.0 / 16.0, -1.0 / 16.0];

/// Midpoint cubic interpolation from 4 equally spaced points.
#[inline(always)]
pub fn cubic4(a0: f64, a1: f64, a2: f64, a3: f64) -> f64 {
    CUBIC_W[0] * a0 + CUBIC_W[1] * a1 + CUBIC_W[2] * a2 + CUBIC_W[3] * a3
}

/// Midpoint linear interpolation.
#[inline(always)]
pub fn linear2(a: f64, b: f64) -> f64 {
    0.5 * (a + b)
}

/// Predict the value at position `t` (an odd multiple of the level stride)
/// along one axis of length `n`, from the reconstructed `line` at spacing
/// `2*s` around it. `at` fetches the value at an absolute axis position.
///
/// Interior points use the full stencil; near the boundary the kernel
/// degrades gracefully: cubic → linear → copy of the left neighbour,
/// matching the reference SZ3 boundary handling.
#[inline]
pub fn predict_1d(
    at: impl Fn(usize) -> f64,
    t: usize,
    s: usize,
    n: usize,
    kind: InterpKind,
) -> f64 {
    debug_assert!(t >= s);
    let has_right = t + s < n;
    if !has_right {
        // Only the left neighbour exists.
        return at(t - s);
    }
    match kind {
        InterpKind::Linear => linear2(at(t - s), at(t + s)),
        InterpKind::Cubic => {
            let has_left2 = t >= 3 * s;
            let has_right2 = t + 3 * s < n;
            if has_left2 && has_right2 {
                cubic4(at(t - 3 * s), at(t - s), at(t + s), at(t + 3 * s))
            } else {
                linear2(at(t - s), at(t + s))
            }
        }
    }
}

/// Number of refinement levels for a grid: the smallest `L` with
/// `2^L >= max_extent`, so the level-`L` known lattice is the single corner
/// point.
pub fn num_levels(dims: Dims) -> u32 {
    let m = dims.as_array().into_iter().max().unwrap();
    let mut l = 0u32;
    while (1usize << l) < m {
        l += 1;
    }
    l
}

/// One dimension-pass of one level of the traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pass {
    /// Level stride `s`: targets are odd multiples of `s` along `axis`.
    pub stride: usize,
    /// Axis being refined: 0 = z, 1 = y, 2 = x.
    pub axis: usize,
    /// Lattice spacing along each axis for source points: axes already
    /// refined at this level have spacing `s`, the rest `2s`.
    pub spacing: [usize; 3],
}

/// The complete coarse-to-fine traversal plan for `dims`.
///
/// Visiting passes in order and, within each pass, target points in C order,
/// defines the canonical quantization-code ordering.
pub fn plan(dims: Dims) -> Vec<Pass> {
    let levels = num_levels(dims);
    let [nz, ny, nx] = dims.as_array();
    let n = [nz, ny, nx];
    let mut passes = Vec::new();
    for level in (1..=levels).rev() {
        let s = 1usize << (level - 1);
        for axis in 0..3 {
            // Skip degenerate axes (extent too small to have targets).
            if n[axis] <= s {
                continue;
            }
            let mut spacing = [0usize; 3];
            for (d, sp) in spacing.iter_mut().enumerate() {
                *sp = if d < axis { s } else { 2 * s };
            }
            spacing[axis] = 2 * s; // source spacing along the refined axis
            passes.push(Pass { stride: s, axis, spacing });
        }
    }
    passes
}

/// Visit every target point of `pass` in C order as `(z, y, x)`.
pub fn for_each_target(dims: Dims, pass: &Pass, mut f: impl FnMut(usize, usize, usize)) {
    let [nz, ny, nx] = dims.as_array();
    let s = pass.stride;
    // Iteration ranges: the refined axis walks odd multiples of s; other axes
    // walk their current lattice spacing.
    let range = |axis: usize, _n: usize| -> (usize, usize) {
        if axis == pass.axis {
            (s, 2 * s) // start at s, step 2s -> odd multiples of s
        } else {
            (0, pass.spacing[axis])
        }
    };
    let (z0, zs) = range(0, nz);
    let (y0, ys) = range(1, ny);
    let (x0, xs) = range(2, nx);
    let mut z = z0;
    while z < nz {
        let mut y = y0;
        while y < ny {
            let mut x = x0;
            while x < nx {
                f(z, y, x);
                x += xs;
            }
            y += ys;
        }
        z += zs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cubic_weights_sum_to_one() {
        assert!((CUBIC_W.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cubic_reproduces_cubic_polynomials() {
        // Exact for polynomials up to degree 3 at the midpoint of a uniform grid.
        let p = |x: f64| 2.0 - x + 0.5 * x * x + 0.25 * x * x * x;
        let pred = cubic4(p(-3.0), p(-1.0), p(1.0), p(3.0));
        assert!((pred - p(0.0)).abs() < 1e-12, "pred {pred} vs {}", p(0.0));
    }

    #[test]
    fn linear_reproduces_affine() {
        let p = |x: f64| 7.0 - 3.0 * x;
        assert!((linear2(p(-1.0), p(1.0)) - p(0.0)).abs() < 1e-12);
    }

    #[test]
    fn num_levels_bounds() {
        assert_eq!(num_levels(Dims::d1(1)), 0);
        assert_eq!(num_levels(Dims::d1(2)), 1);
        assert_eq!(num_levels(Dims::d1(3)), 2);
        assert_eq!(num_levels(Dims::d3(8, 8, 8)), 3);
        assert_eq!(num_levels(Dims::d3(9, 4, 4)), 4);
    }

    #[test]
    fn plan_covers_every_point_once() {
        // Union of all pass targets + the corner = the whole grid, disjoint.
        for dims in [
            Dims::d3(8, 8, 8),
            Dims::d3(7, 5, 9),
            Dims::d2(6, 11),
            Dims::d1(17),
            Dims::d3(2, 2, 2),
            Dims::d3(1, 1, 1),
        ] {
            let mut seen = HashSet::new();
            seen.insert((0usize, 0usize, 0usize));
            for pass in plan(dims) {
                for_each_target(dims, &pass, |z, y, x| {
                    assert!(seen.insert((z, y, x)), "duplicate target {z},{y},{x} in {dims}");
                });
            }
            assert_eq!(seen.len(), dims.len(), "coverage for {dims}");
        }
    }

    #[test]
    fn sources_precede_targets() {
        // Every stencil source of a pass must be either the corner or a
        // target of an earlier pass (i.e. already reconstructed).
        let dims = Dims::d3(9, 6, 7);
        let mut known: HashSet<(usize, usize, usize)> = HashSet::new();
        known.insert((0, 0, 0));
        for pass in plan(dims) {
            let mut new_points = Vec::new();
            for_each_target(dims, &pass, |z, y, x| {
                let s = pass.stride;
                let n = dims.as_array()[pass.axis];
                let t = [z, y, x][pass.axis];
                // All in-range stencil positions must be known.
                for offset in [-3i64, -1, 1, 3] {
                    let pos = t as i64 + offset * s as i64;
                    if pos >= 0 && (pos as usize) < n {
                        let mut c = [z, y, x];
                        c[pass.axis] = pos as usize;
                        assert!(
                            known.contains(&(c[0], c[1], c[2])),
                            "stencil source {c:?} of target {:?} unknown",
                            (z, y, x)
                        );
                    }
                }
                new_points.push((z, y, x));
            });
            known.extend(new_points);
        }
    }

    #[test]
    fn predict_1d_boundary_fallbacks() {
        let line = [10.0, 20.0, 30.0, 40.0, 50.0];
        let at = |i: usize| line[i];
        // t=1, s=1, n=5: cubic needs t-3 (out) -> linear fallback
        let p = predict_1d(at, 1, 1, 5, InterpKind::Cubic);
        assert!((p - linear2(10.0, 30.0)).abs() < 1e-12);
        // t=3, s=1, n=5: cubic needs t+3=6 (out) -> linear
        let p = predict_1d(at, 3, 1, 5, InterpKind::Cubic);
        assert!((p - linear2(30.0, 50.0)).abs() < 1e-12);
        // t=4 with n=5, s=1: right neighbour out -> copy left
        let p = predict_1d(at, 4, 1, 5, InterpKind::Cubic);
        assert!((p - 40.0).abs() < 1e-12);
    }

    #[test]
    fn predict_1d_interior_cubic() {
        let vals: Vec<f64> = (0..9).map(|i| (i as f64).powi(2)).collect();
        let at = |i: usize| vals[i];
        // t=4, s=1, n=9: full stencil 1,3,5,7
        let p = predict_1d(at, 4, 1, 9, InterpKind::Cubic);
        assert!((p - cubic4(1.0, 9.0, 25.0, 49.0)).abs() < 1e-12);
    }
}
