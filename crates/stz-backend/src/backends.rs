//! [`Codec`] implementations for the five engines.
//!
//! Each implementation is a zero-sized adapter: parameters beyond the
//! error bound use the engine's defaults (the same defaults the paper's
//! evaluation uses — STZ's 3-level adaptive hierarchy, SZ3's cubic
//! interpolation with radius 2^15, and so on). Callers who need the full
//! engine-specific surface use the engine crates directly.

use crate::{Codec, Result};
use stz_codec::CodecError;
use stz_core::{StzArchive, StzCompressor, StzConfig};
use stz_field::{Field, Scalar};

/// Reject a non-positive or non-finite bound before it reaches an engine
/// constructor (several of which assert) — typed compress entry points
/// must error, never panic.
fn check_eb(eb: f64) -> Result<()> {
    if eb > 0.0 && eb.is_finite() {
        Ok(())
    } else {
        Err(CodecError::unsupported(format!("error bound must be positive and finite, got {eb}")))
    }
}

/// The native STZ streaming compressor (3-level adaptive configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct Stz;

impl Stz {
    fn compress<T: Scalar>(field: &Field<T>, eb: f64) -> Result<Vec<u8>> {
        StzCompressor::new(StzConfig::three_level(eb)).compress(field).map(StzArchive::into_bytes)
    }

    fn decompress<T: Scalar>(bytes: &[u8]) -> Result<Field<T>> {
        StzArchive::<T>::from_bytes(bytes.to_vec())?.decompress()
    }
}

impl Codec for Stz {
    fn id(&self) -> u8 {
        crate::id::STZ
    }
    fn name(&self) -> &'static str {
        "stz"
    }
    fn magic(&self) -> [u8; 4] {
        stz_core::archive::MAGIC
    }
    fn compress_f32(&self, field: &Field<f32>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Stz::compress(field, eb)
    }
    fn compress_f64(&self, field: &Field<f64>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Stz::compress(field, eb)
    }
    fn decompress_f32(&self, bytes: &[u8]) -> Result<Field<f32>> {
        Stz::decompress(bytes)
    }
    fn decompress_f64(&self, bytes: &[u8]) -> Result<Field<f64>> {
        Stz::decompress(bytes)
    }
}

/// The SZ3-style interpolation compressor (cubic, radius 2^15).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sz3;

impl Codec for Sz3 {
    fn id(&self) -> u8 {
        crate::id::SZ3
    }
    fn name(&self) -> &'static str {
        "sz3"
    }
    fn magic(&self) -> [u8; 4] {
        stz_sz3::stream::MAGIC
    }
    fn compress_f32(&self, field: &Field<f32>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Ok(stz_sz3::compress(field, &stz_sz3::Sz3Config::absolute(eb)))
    }
    fn compress_f64(&self, field: &Field<f64>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Ok(stz_sz3::compress(field, &stz_sz3::Sz3Config::absolute(eb)))
    }
    fn decompress_f32(&self, bytes: &[u8]) -> Result<Field<f32>> {
        stz_sz3::decompress(bytes)
    }
    fn decompress_f64(&self, bytes: &[u8]) -> Result<Field<f64>> {
        stz_sz3::decompress(bytes)
    }
}

/// The ZFP-style block-transform compressor (fixed-accuracy mode).
#[derive(Debug, Clone, Copy, Default)]
pub struct Zfp;

impl Codec for Zfp {
    fn id(&self) -> u8 {
        crate::id::ZFP
    }
    fn name(&self) -> &'static str {
        "zfp"
    }
    fn magic(&self) -> [u8; 4] {
        stz_zfp::compressor::MAGIC
    }
    fn compress_f32(&self, field: &Field<f32>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Ok(stz_zfp::compress(field, &stz_zfp::ZfpConfig::new(eb)))
    }
    fn compress_f64(&self, field: &Field<f64>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Ok(stz_zfp::compress(field, &stz_zfp::ZfpConfig::new(eb)))
    }
    fn decompress_f32(&self, bytes: &[u8]) -> Result<Field<f32>> {
        stz_zfp::decompress(bytes)
    }
    fn decompress_f64(&self, bytes: &[u8]) -> Result<Field<f64>> {
        stz_zfp::decompress(bytes)
    }
}

/// The SPERR-style wavelet compressor (outlier-corrected).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sperr;

impl Codec for Sperr {
    fn id(&self) -> u8 {
        crate::id::SPERR
    }
    fn name(&self) -> &'static str {
        "sperr"
    }
    fn magic(&self) -> [u8; 4] {
        stz_sperr::compressor::MAGIC
    }
    fn compress_f32(&self, field: &Field<f32>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Ok(stz_sperr::compress(field, &stz_sperr::SperrConfig::new(eb)))
    }
    fn compress_f64(&self, field: &Field<f64>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Ok(stz_sperr::compress(field, &stz_sperr::SperrConfig::new(eb)))
    }
    fn decompress_f32(&self, bytes: &[u8]) -> Result<Field<f32>> {
        stz_sperr::decompress(bytes)
    }
    fn decompress_f64(&self, bytes: &[u8]) -> Result<Field<f64>> {
        stz_sperr::decompress(bytes)
    }
}

/// The MGARD-style multigrid compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mgard;

impl Codec for Mgard {
    fn id(&self) -> u8 {
        crate::id::MGARD
    }
    fn name(&self) -> &'static str {
        "mgard"
    }
    fn magic(&self) -> [u8; 4] {
        stz_mgard::compressor::MAGIC
    }
    fn compress_f32(&self, field: &Field<f32>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Ok(stz_mgard::compress(field, &stz_mgard::MgardConfig::new(eb)))
    }
    fn compress_f64(&self, field: &Field<f64>, eb: f64) -> Result<Vec<u8>> {
        check_eb(eb)?;
        Ok(stz_mgard::compress(field, &stz_mgard::MgardConfig::new(eb)))
    }
    fn decompress_f32(&self, bytes: &[u8]) -> Result<Field<f32>> {
        stz_mgard::decompress(bytes)
    }
    fn decompress_f64(&self, bytes: &[u8]) -> Result<Field<f64>> {
        stz_mgard::decompress(bytes)
    }
}
