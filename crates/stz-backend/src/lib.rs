//! # stz-backend — one codec abstraction over every compressor
//!
//! The workspace implements five error-bounded lossy compressors: the
//! native streaming STZ compressor (`stz-core`) and the four baselines the
//! paper evaluates against (`stz-sz3`, `stz-zfp`, `stz-sperr`,
//! `stz-mgard`). This crate unifies them behind a single [`Codec`] trait
//! and a name-/id-keyed [`Registry`], so the CLI, the STZC container and
//! the benchmark harness can select a compression engine at runtime:
//!
//! ```
//! use stz_backend::{registry, ErrorBound};
//! use stz_field::{Dims, Field};
//!
//! let field = Field::from_fn(Dims::d3(12, 12, 12), |z, y, x| {
//!     ((z as f32) * 0.3).sin() + ((y as f32) * 0.2).cos() + x as f32 * 0.01
//! });
//! for codec in registry().all() {
//!     let bytes =
//!         stz_backend::compress(codec, &field, &ErrorBound::Absolute(1e-3)).unwrap();
//!     let back: Field<f32> = stz_backend::decompress(codec, &bytes).unwrap();
//!     assert_eq!(back.dims(), field.dims());
//! }
//! ```
//!
//! The trait surface is deliberately the common denominator — compress and
//! decompress a whole [`Field`] under an absolute error bound. Engine
//! specialities (STZ's progressive levels and ROI decoding, ZFP's
//! per-block random access, SPERR's precision previews) stay on the
//! engines' own APIs; see `docs/BACKENDS.md` for the contract and the
//! codec-id table.

#![warn(missing_docs)]

pub mod backends;
pub mod registry;

pub use backends::{Mgard, Sperr, Stz, Sz3, Zfp};
pub use registry::{registry, Registry};
pub use stz_codec::{CodecError, Result};
pub use stz_sz3::ErrorBound;

use stz_field::{Field, Scalar};

/// Stable wire identifiers for the built-in codecs.
///
/// These bytes are recorded per entry in the STZC container (format v2)
/// and must never be reassigned; add new codecs at the end.
pub mod id {
    /// Native STZ streaming compressor (`stz-core`).
    pub const STZ: u8 = 0;
    /// SZ3-style interpolation compressor (`stz-sz3`).
    pub const SZ3: u8 = 1;
    /// ZFP-style block-transform compressor (`stz-zfp`).
    pub const ZFP: u8 = 2;
    /// SPERR-style wavelet compressor (`stz-sperr`).
    pub const SPERR: u8 = 3;
    /// MGARD-style multigrid compressor (`stz-mgard`).
    pub const MGARD: u8 = 4;
}

/// A whole-field error-bounded compression engine.
///
/// The trait is object-safe: element types are covered by paired
/// `f32`/`f64` methods, and the generic entry points
/// [`compress`]/[`decompress`] dispatch on [`Scalar::TYPE_TAG`]. The
/// contract every implementation must honour (and that
/// `tests/roundtrip_all.rs` plus the property suite enforce):
///
/// * **Error bound** — `compress(field, eb)` followed by `decompress`
///   reconstructs every point to within `eb` (point-wise absolute).
/// * **Self-contained archives** — the returned bytes carry everything
///   needed to decompress (dims, element type, parameters); decompression
///   takes no side channel.
/// * **Total decoding** — `decompress_*` on arbitrary bytes returns an
///   error, never panics, and rejects other codecs' archives (distinct
///   magic).
/// * **Determinism** — identical input and bound produce identical bytes.
pub trait Codec: Send + Sync + std::fmt::Debug {
    /// Stable wire identifier (see [`id`]); recorded in container entries.
    fn id(&self) -> u8;

    /// Registry key and display name (lowercase, e.g. `"sz3"`).
    fn name(&self) -> &'static str;

    /// The 4-byte magic opening this codec's archives (used to sniff the
    /// codec of a bare archive file).
    fn magic(&self) -> [u8; 4];

    /// Compress an `f32` field under absolute point-wise bound `eb`.
    fn compress_f32(&self, field: &Field<f32>, eb: f64) -> Result<Vec<u8>>;

    /// Compress an `f64` field under absolute point-wise bound `eb`.
    fn compress_f64(&self, field: &Field<f64>, eb: f64) -> Result<Vec<u8>>;

    /// Decompress an archive produced by [`Codec::compress_f32`].
    fn decompress_f32(&self, bytes: &[u8]) -> Result<Field<f32>>;

    /// Decompress an archive produced by [`Codec::compress_f64`].
    fn decompress_f64(&self, bytes: &[u8]) -> Result<Field<f64>>;
}

/// Scalar types a [`Codec`] can process; routes a generic call to the
/// matching typed trait method.
pub trait BackendScalar: Scalar {
    /// Compress `field` with `codec` at absolute bound `eb`.
    fn compress_with(codec: &dyn Codec, field: &Field<Self>, eb: f64) -> Result<Vec<u8>>;
    /// Decompress `bytes` with `codec`.
    fn decompress_with(codec: &dyn Codec, bytes: &[u8]) -> Result<Field<Self>>;
}

impl BackendScalar for f32 {
    fn compress_with(codec: &dyn Codec, field: &Field<Self>, eb: f64) -> Result<Vec<u8>> {
        codec.compress_f32(field, eb)
    }
    fn decompress_with(codec: &dyn Codec, bytes: &[u8]) -> Result<Field<Self>> {
        codec.decompress_f32(bytes)
    }
}

impl BackendScalar for f64 {
    fn compress_with(codec: &dyn Codec, field: &Field<Self>, eb: f64) -> Result<Vec<u8>> {
        codec.compress_f64(field, eb)
    }
    fn decompress_with(codec: &dyn Codec, bytes: &[u8]) -> Result<Field<Self>> {
        codec.decompress_f64(bytes)
    }
}

/// Compress `field` with `codec`, resolving a relative bound against the
/// field's value range first.
pub fn compress<T: BackendScalar>(
    codec: &dyn Codec,
    field: &Field<T>,
    eb: &ErrorBound,
) -> Result<Vec<u8>> {
    let abs = eb.absolute_for(field);
    if !(abs > 0.0 && abs.is_finite()) {
        return Err(CodecError::unsupported(format!(
            "error bound must resolve to a positive finite value, got {abs}"
        )));
    }
    T::compress_with(codec, field, abs)
}

/// Decompress an archive produced by [`compress`] with the same codec.
pub fn decompress<T: BackendScalar>(codec: &dyn Codec, bytes: &[u8]) -> Result<Field<T>> {
    T::decompress_with(codec, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    fn field() -> Field<f32> {
        stz_data::synth::miranda_like(Dims::d3(16, 16, 16), 9)
    }

    #[test]
    fn generic_dispatch_matches_typed_calls() {
        let f = field();
        let codec = registry().by_name("zfp").unwrap();
        let via_generic = compress(codec, &f, &ErrorBound::Absolute(1e-3)).unwrap();
        let via_typed = codec.compress_f32(&f, 1e-3).unwrap();
        assert_eq!(via_generic, via_typed);
    }

    #[test]
    fn relative_bound_resolves_against_range() {
        let f = field();
        let (lo, hi) = f.value_range();
        let codec = registry().by_name("sz3").unwrap();
        let rel = compress(codec, &f, &ErrorBound::Relative(1e-3)).unwrap();
        let abs = compress(codec, &f, &ErrorBound::Absolute(1e-3 * (hi - lo))).unwrap();
        assert_eq!(rel, abs);
    }

    #[test]
    fn nonpositive_bound_rejected() {
        let f = field();
        let codec = registry().by_name("stz").unwrap();
        assert!(compress(codec, &f, &ErrorBound::Absolute(0.0)).is_err());
        assert!(compress(codec, &f, &ErrorBound::Absolute(f64::NAN)).is_err());
    }
}
