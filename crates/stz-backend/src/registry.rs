//! Name- and id-keyed lookup over the built-in codecs.

use crate::backends::{Mgard, Sperr, Stz, Sz3, Zfp};
use crate::Codec;

/// The built-in codecs, in evaluation order. Index equals wire id by
/// construction (checked by a test, not assumed by lookups).
static CODECS: [&dyn Codec; 5] = [&Stz, &Sz3, &Zfp, &Sperr, &Mgard];

/// A fixed set of [`Codec`]s addressable by name or wire id.
///
/// The process-wide instance (every built-in engine) is [`registry()`];
/// the struct is public so tests and tools can build restricted sets.
#[derive(Debug, Clone, Copy)]
pub struct Registry {
    codecs: &'static [&'static dyn Codec],
}

impl Registry {
    /// A registry over an explicit codec slice.
    pub const fn new(codecs: &'static [&'static dyn Codec]) -> Self {
        Registry { codecs }
    }

    /// All codecs, in registration order.
    pub fn all(&self) -> impl Iterator<Item = &'static dyn Codec> + '_ {
        self.codecs.iter().copied()
    }

    /// Number of registered codecs.
    pub fn len(&self) -> usize {
        self.codecs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.codecs.is_empty()
    }

    /// Look up a codec by its registry name (e.g. `"sperr"`).
    pub fn by_name(&self, name: &str) -> Option<&'static dyn Codec> {
        self.codecs.iter().copied().find(|c| c.name() == name)
    }

    /// Look up a codec by its wire id (see [`crate::id`]).
    pub fn by_id(&self, id: u8) -> Option<&'static dyn Codec> {
        self.codecs.iter().copied().find(|c| c.id() == id)
    }

    /// Sniff the codec of a bare archive from its magic bytes.
    pub fn detect(&self, bytes: &[u8]) -> Option<&'static dyn Codec> {
        let prefix = bytes.get(0..4)?;
        self.codecs.iter().copied().find(|c| c.magic() == prefix)
    }

    /// Registered names, in order (for usage strings and diagnostics).
    pub fn names(&self) -> Vec<&'static str> {
        self.codecs.iter().map(|c| c.name()).collect()
    }
}

/// The process-wide registry of every built-in codec.
pub fn registry() -> &'static Registry {
    static REGISTRY: Registry = Registry::new(&CODECS);
    &REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn five_codecs_with_stable_ids() {
        let r = registry();
        assert_eq!(r.len(), 5);
        assert_eq!(r.names(), ["stz", "sz3", "zfp", "sperr", "mgard"]);
        // Wire ids are stable and equal to registration order.
        for (i, c) in r.all().enumerate() {
            assert_eq!(c.id() as usize, i, "{} id drifted", c.name());
        }
    }

    #[test]
    fn lookups_agree() {
        let r = registry();
        for c in r.all() {
            assert_eq!(r.by_name(c.name()).unwrap().id(), c.id());
            assert_eq!(r.by_id(c.id()).unwrap().name(), c.name());
        }
        assert!(r.by_name("lz4").is_none());
        assert!(r.by_id(200).is_none());
    }

    #[test]
    fn magics_are_distinct_and_detected() {
        let r = registry();
        let magics: HashSet<[u8; 4]> = r.all().map(|c| c.magic()).collect();
        assert_eq!(magics.len(), r.len(), "magic collision between codecs");
        for c in r.all() {
            let mut bytes = c.magic().to_vec();
            bytes.extend_from_slice(&[0; 8]);
            assert_eq!(r.detect(&bytes).unwrap().id(), c.id());
        }
        assert!(r.detect(b"????rest").is_none());
        assert!(r.detect(b"ab").is_none());
    }

    #[test]
    fn every_codec_roundtrips_both_types() {
        use stz_field::{Dims, Field};
        let f32_field = stz_data::synth::miranda_like(Dims::d3(12, 12, 12), 3);
        let f64_field = stz_data::synth::warpx_like(Dims::d3(8, 8, 32), 3);
        for c in registry().all() {
            let b = c.compress_f32(&f32_field, 1e-3).unwrap();
            let r: Field<f32> = c.decompress_f32(&b).unwrap();
            let err = stz_data::metrics::max_abs_error(&f32_field, &r);
            assert!(err <= 1e-3 * (1.0 + 1e-9), "{} f32 err {err}", c.name());

            let eb = {
                let (lo, hi) = f64_field.value_range();
                1e-3 * (hi - lo)
            };
            let b = c.compress_f64(&f64_field, eb).unwrap();
            let r: Field<f64> = c.decompress_f64(&b).unwrap();
            let err = stz_data::metrics::max_abs_error(&f64_field, &r);
            assert!(err <= eb * (1.0 + 1e-9), "{} f64 err {err}", c.name());
        }
    }

    #[test]
    fn foreign_archives_rejected() {
        let f = stz_data::synth::miranda_like(stz_field::Dims::d3(10, 10, 10), 4);
        let r = registry();
        for producer in r.all() {
            let bytes = producer.compress_f32(&f, 1e-3).unwrap();
            for consumer in r.all() {
                if consumer.id() == producer.id() {
                    continue;
                }
                assert!(
                    consumer.decompress_f32(&bytes).is_err(),
                    "{} decoded a {} archive",
                    consumer.name(),
                    producer.name()
                );
            }
        }
    }
}
