//! SPERR-style archive: wavelet + bit-plane coding + outlier correction.

use crate::coder;
use crate::wavelet;
use stz_codec::{
    check_decode_alloc, BitReader, BitWriter, ByteReader, ByteWriter, CodecError, Result,
};
use stz_field::{Dims, Field, Scalar};

/// Magic bytes of a SPERR-style archive.
pub const MAGIC: [u8; 4] = *b"SPR1";
/// Format version.
pub const VERSION: u8 = 1;

/// Quantization fraction bits for coefficient integerization.
const PBITS: i32 = 40;

/// Configuration: absolute error tolerance.
#[derive(Debug, Clone, Copy)]
pub struct SperrConfig {
    pub tolerance: f64,
}

impl SperrConfig {
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance > 0.0 && tolerance.is_finite());
        SperrConfig { tolerance }
    }
}

/// Compress a field. The returned archive reconstructs every point to
/// within `tolerance` (enforced by the correction pass).
pub fn compress<T: Scalar>(field: &Field<T>, config: &SperrConfig) -> Vec<u8> {
    let dims = field.dims();
    let tol = config.tolerance;

    // Lift to f64, quarantining non-finite values.
    let mut buf: Vec<f64> = Vec::with_capacity(dims.len());
    let mut nonfinite: Vec<(usize, T)> = Vec::new();
    for (i, &v) in field.as_slice().iter().enumerate() {
        let f = v.to_f64();
        if f.is_finite() {
            buf.push(f);
        } else {
            nonfinite.push((i, v));
            buf.push(0.0);
        }
    }
    let orig = buf.clone();

    let levels = wavelet::num_levels(dims);
    wavelet::fwd_nd(&mut buf, dims, levels);

    let max_abs = buf.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let mut w = ByteWriter::with_capacity(dims.len() / 2 + 64);
    w.put_raw(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(T::TYPE_TAG);
    w.put_u8(dims.ndim());
    let [nz, ny, nx] = dims.as_array();
    w.put_uvarint(nz as u64);
    w.put_uvarint(ny as u64);
    w.put_uvarint(nx as u64);
    w.put_f64(tol);
    w.put_u8(levels);

    let mut recon = vec![0.0f64; dims.len()];
    if max_abs == 0.0 {
        w.put_u8(0); // zero-coefficient field
    } else {
        w.put_u8(1);
        let emax = max_abs.log2().floor() as i32;
        let scale = ((PBITS - 1 - emax) as f64).exp2();
        let (kmax, kmin) = plane_range(tol, scale);
        w.put_ivarint(emax as i64);
        w.put_u8(kmax as u8);
        w.put_u8(kmin as u8);

        let mut mags = Vec::with_capacity(buf.len());
        let mut signs = Vec::with_capacity(buf.len());
        for &c in &buf {
            mags.push((c.abs() * scale).round() as u64);
            signs.push(c < 0.0);
        }
        let mut bw = BitWriter::with_capacity(dims.len() / 2);
        coder::encode(&mags, &signs, kmax, kmin, &mut bw);
        w.put_block(&bw.finish());

        // Encoder-side reconstruction mirrors the decoder exactly.
        let mask = if kmin == 0 { u64::MAX } else { !((1u64 << kmin) - 1) };
        for (i, r) in recon.iter_mut().enumerate() {
            let m = coder::dequant_magnitude(mags[i] & mask, kmin);
            *r = if signs[i] { -m } else { m } / scale;
        }
        wavelet::inv_nd(&mut recon, dims, levels);
    }

    // Correction pass: quantized residuals wherever the bound is violated.
    let mut corrections: Vec<(usize, i64)> = Vec::new();
    for (i, (&o, r)) in orig.iter().zip(recon.iter()).enumerate() {
        let r_t = T::from_f64(*r).to_f64();
        let err = o - r_t;
        if err.abs() > tol {
            let c = (err / tol).round() as i64;
            corrections.push((i, c));
        }
    }
    w.put_uvarint(corrections.len() as u64);
    let mut prev = 0usize;
    for &(idx, c) in &corrections {
        w.put_uvarint((idx - prev) as u64);
        w.put_ivarint(c);
        prev = idx;
    }

    w.put_uvarint(nonfinite.len() as u64);
    let mut prev = 0usize;
    for &(idx, v) in &nonfinite {
        w.put_uvarint((idx - prev) as u64);
        let mut raw = Vec::with_capacity(T::BYTES);
        v.write_exact(&mut raw);
        w.put_raw(&raw);
        prev = idx;
    }
    w.finish()
}

/// Plane range `(kmax, kmin)` for a tolerance at a given coefficient scale.
fn plane_range(tol: f64, scale: f64) -> (u32, u32) {
    let kmax = (PBITS + 2) as u32;
    let tol_scaled = tol * scale;
    let kmin = if tol_scaled <= 2.0 {
        0
    } else {
        (tol_scaled.log2().floor() as i32 - 1).clamp(0, kmax as i32) as u32
    };
    (kmax, kmin)
}

struct Parsed<'a> {
    dims: Dims,
    tol: f64,
    levels: u8,
    /// `None` for an all-zero coefficient field.
    coded: Option<(i32, u32, u32, &'a [u8])>,
    corrections: Vec<(usize, i64)>,
    nonfinite_raw: Vec<(usize, Vec<u8>)>,
}

fn parse<T: Scalar>(bytes: &[u8]) -> Result<Parsed<'_>> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(4)? != MAGIC {
        return Err(CodecError::corrupt("bad SPERR magic"));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(CodecError::unsupported(format!("SPERR format version {version}")));
    }
    if r.get_u8()? != T::TYPE_TAG {
        return Err(CodecError::corrupt("SPERR element type mismatch"));
    }
    let ndim = r.get_u8()?;
    if !(1..=3).contains(&ndim) {
        return Err(CodecError::corrupt("invalid ndim"));
    }
    let nz = r.get_uvarint()? as usize;
    let ny = r.get_uvarint()? as usize;
    let nx = r.get_uvarint()? as usize;
    if nz == 0 || ny == 0 || nx == 0 || nz.saturating_mul(ny).saturating_mul(nx) > (1 << 40) {
        return Err(CodecError::corrupt("invalid dims"));
    }
    if (ndim < 3 && nz != 1) || (ndim < 2 && ny != 1) {
        return Err(CodecError::corrupt("dims inconsistent with ndim"));
    }
    let dims = Dims::from_parts(ndim, nz, ny, nx);
    // Reject before the dims-sized recon/magnitude/sign buffers and the
    // dims-bounded correction tables are reserved.
    check_decode_alloc(dims.len() as u64, 8, "sperr field")?;
    let tol = r.get_f64()?;
    if !(tol > 0.0 && tol.is_finite()) {
        return Err(CodecError::corrupt("invalid tolerance"));
    }
    let levels = r.get_u8()?;
    if levels > 8 {
        return Err(CodecError::corrupt("invalid level count"));
    }
    let coded = match r.get_u8()? {
        0 => None,
        1 => {
            let emax = r.get_ivarint()?;
            if !(-16000..=16000).contains(&emax) {
                return Err(CodecError::corrupt("invalid emax"));
            }
            let kmax = r.get_u8()? as u32;
            let kmin = r.get_u8()? as u32;
            if kmin > kmax || kmax > 64 {
                return Err(CodecError::corrupt("invalid plane range"));
            }
            let payload = r.get_block()?;
            Some((emax as i32, kmax, kmin, payload))
        }
        f => return Err(CodecError::corrupt(format!("invalid coded flag {f}"))),
    };
    let ncorr = r.get_uvarint()?;
    if ncorr > dims.len() as u64 {
        return Err(CodecError::corrupt("too many corrections"));
    }
    let mut corrections = Vec::with_capacity(ncorr as usize);
    let mut idx = 0usize;
    for i in 0..ncorr {
        let delta = r.get_uvarint()? as usize;
        idx = if i == 0 { delta } else { idx + delta };
        if idx >= dims.len() {
            return Err(CodecError::corrupt("correction index out of range"));
        }
        corrections.push((idx, r.get_ivarint()?));
    }
    let nnf = r.get_uvarint()?;
    if nnf > dims.len() as u64 {
        return Err(CodecError::corrupt("too many outliers"));
    }
    let mut nonfinite_raw = Vec::with_capacity(nnf as usize);
    let mut idx = 0usize;
    for i in 0..nnf {
        let delta = r.get_uvarint()? as usize;
        idx = if i == 0 { delta } else { idx + delta };
        if idx >= dims.len() {
            return Err(CodecError::corrupt("outlier index out of range"));
        }
        nonfinite_raw.push((idx, r.get_raw(T::BYTES)?.to_vec()));
    }
    Ok(Parsed { dims, tol, levels, coded, corrections, nonfinite_raw })
}

/// Decompress the full field at full precision.
pub fn decompress<T: Scalar>(bytes: &[u8]) -> Result<Field<T>> {
    decompress_impl::<T>(bytes, 0, true)
}

/// Precision-progressive preview: decode `skip_planes` fewer bit-planes
/// (coarser quality, faster, reads a prefix of the coefficient stream) and
/// skip corrections. `skip_planes = 0` plus corrections equals full
/// decompression.
pub fn decompress_preview<T: Scalar>(bytes: &[u8], skip_planes: u32) -> Result<Field<T>> {
    decompress_impl::<T>(bytes, skip_planes, false)
}

fn decompress_impl<T: Scalar>(
    bytes: &[u8],
    skip_planes: u32,
    apply_corrections: bool,
) -> Result<Field<T>> {
    let p = parse::<T>(bytes)?;
    let mut recon = vec![0.0f64; p.dims.len()];
    if let Some((emax, kmax, kmin, payload)) = p.coded {
        let scale = ((PBITS - 1 - emax) as f64).exp2();
        let kmin_eff = (kmin + skip_planes).min(kmax);
        let mut br = BitReader::new(payload);
        let (mags, signs) = coder::decode(p.dims.len(), kmax, kmin_eff, &mut br)?;
        for (i, r) in recon.iter_mut().enumerate() {
            let m = coder::dequant_magnitude(mags[i], kmin_eff);
            *r = if signs[i] { -m } else { m } / scale;
        }
        wavelet::inv_nd(&mut recon, p.dims, p.levels);
    }
    if apply_corrections {
        for &(idx, c) in &p.corrections {
            let r_t = T::from_f64(recon[idx]).to_f64();
            recon[idx] = r_t + c as f64 * p.tol;
        }
    }
    for &(idx, ref raw) in &p.nonfinite_raw {
        recon[idx] = T::read_exact(raw).to_f64();
    }
    Ok(Field::from_vec(p.dims, recon.into_iter().map(T::from_f64).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: Dims) -> Field<f32> {
        Field::from_fn(dims, |z, y, x| {
            ((z as f32) * 0.2).sin() * 3.0
                + ((y as f32) * 0.15).cos() * 2.0
                + ((x as f32) * 0.1).sin()
        })
    }

    fn max_err(a: &Field<f32>, b: &Field<f32>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| ((x as f64) - (y as f64)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn roundtrip_within_tolerance() {
        let f = smooth(Dims::d3(24, 20, 28));
        for tol in [1e-1, 1e-2, 1e-3, 1e-4] {
            let bytes = compress(&f, &SperrConfig::new(tol));
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert_eq!(back.dims(), f.dims());
            let err = max_err(&f, &back);
            assert!(err <= tol * (1.0 + 1e-6), "tol {tol}: err {err}");
        }
    }

    #[test]
    fn compresses_smooth_data_well() {
        let f = smooth(Dims::d3(32, 32, 32));
        let bytes = compress(&f, &SperrConfig::new(1e-3));
        let cr = f.nbytes() as f64 / bytes.len() as f64;
        assert!(cr > 8.0, "CR {cr}");
    }

    #[test]
    fn roundtrip_f64() {
        let f = Field::from_fn(Dims::d3(16, 16, 16), |z, y, x| {
            ((z as f64) * 0.31).sin() * 1e5 + ((y + x) as f64) * 7.0
        });
        let tol = 0.5;
        let bytes = compress(&f, &SperrConfig::new(tol));
        let back: Field<f64> = decompress(&bytes).unwrap();
        let err = f
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err <= tol * (1.0 + 1e-9), "err {err}");
    }

    #[test]
    fn roundtrip_odd_dims_and_low_rank() {
        for dims in [Dims::d3(11, 7, 9), Dims::d2(30, 17), Dims::d1(65), Dims::d1(2)] {
            let f = smooth(dims);
            let bytes = compress(&f, &SperrConfig::new(1e-2));
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert!(max_err(&f, &back) <= 1e-2 * (1.0 + 1e-6), "dims {dims}");
        }
    }

    #[test]
    fn zero_field_is_tiny_and_exact() {
        let f = Field::<f32>::zeros(Dims::d3(16, 16, 16));
        let bytes = compress(&f, &SperrConfig::new(1e-3));
        assert!(bytes.len() < 64, "{} bytes", bytes.len());
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn nonfinite_values_roundtrip_exactly() {
        let mut f = smooth(Dims::d3(10, 10, 10));
        f.set(3, 4, 5, f32::NAN);
        f.set(0, 0, 0, f32::NEG_INFINITY);
        let bytes = compress(&f, &SperrConfig::new(1e-3));
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert!(back.get(3, 4, 5).is_nan());
        assert_eq!(back.get(0, 0, 0), f32::NEG_INFINITY);
        // Finite points still bounded.
        let err = f
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .filter(|(&a, _)| a.is_finite())
            .map(|(&a, &b)| ((a as f64) - (b as f64)).abs())
            .fold(0.0, f64::max);
        assert!(err <= 1e-3 * (1.0 + 1e-6));
    }

    #[test]
    fn preview_is_coarser_but_cheap() {
        let f = smooth(Dims::d3(24, 24, 24));
        let tol = 1e-4;
        let bytes = compress(&f, &SperrConfig::new(tol));
        let full: Field<f32> = decompress(&bytes).unwrap();
        let preview: Field<f32> = decompress_preview(&bytes, 6).unwrap();
        let err_full = max_err(&f, &full);
        let err_prev = max_err(&f, &preview);
        assert!(err_prev > err_full, "preview {err_prev} vs full {err_full}");
        // But the preview is still a recognizable approximation.
        assert!(err_prev < 1.0);
    }

    #[test]
    fn preview_zero_skip_without_corrections_close_to_full() {
        let f = smooth(Dims::d3(16, 16, 16));
        let bytes = compress(&f, &SperrConfig::new(1e-3));
        let p: Field<f32> = decompress_preview(&bytes, 0).unwrap();
        // Corrections only fix outliers; most points identical.
        let close = f
            .as_slice()
            .iter()
            .zip(p.as_slice())
            .filter(|(&a, &b)| ((a as f64) - (b as f64)).abs() <= 1e-3)
            .count();
        assert!(close as f64 > 0.99 * f.len() as f64);
    }

    #[test]
    fn truncation_never_panics() {
        let f = smooth(Dims::d3(12, 12, 12));
        let bytes = compress(&f, &SperrConfig::new(1e-3));
        for cut in (0..bytes.len()).step_by(9) {
            let _ = decompress::<f32>(&bytes[..cut]);
        }
    }

    #[test]
    fn wrong_type_rejected() {
        let f = smooth(Dims::d3(8, 8, 8));
        let bytes = compress(&f, &SperrConfig::new(1e-3));
        assert!(decompress::<f64>(&bytes).is_err());
    }
}
