//! Bit-plane significance/refinement coder for wavelet coefficients.
//!
//! A simplified set-partitioning coder in the SPIHT/SPECK family, as used
//! by SPERR: coefficients are quantized to sign+magnitude integers and
//! coded plane by plane. Each plane has
//!
//! * a **significance pass** — Elias-γ coded gaps between newly significant
//!   coefficients, each followed by its sign bit; and
//! * a **refinement pass** — one raw bit per previously significant
//!   coefficient (in discovery order).
//!
//! Decoding a prefix of the planes yields a valid lower-precision
//! reconstruction, which is what makes the stream precision-progressive.

use stz_codec::{BitReader, BitWriter, CodecError, Result};

/// Write `v >= 1` in Elias-γ: `⌊log2 v⌋` zeros, then `v`'s binary digits.
#[inline]
pub fn put_gamma(w: &mut BitWriter, v: u64) {
    debug_assert!(v >= 1);
    let bits = 64 - v.leading_zeros();
    w.put(0, bits - 1);
    w.put_wide(v, bits);
}

/// Read an Elias-γ coded integer.
#[inline]
pub fn get_gamma(r: &mut BitReader<'_>) -> Result<u64> {
    let mut zeros = 0u32;
    while !r.get_bit()? {
        zeros += 1;
        if zeros > 63 {
            return Err(CodecError::corrupt("gamma code too long"));
        }
    }
    let rest = if zeros == 0 { 0 } else { r.get_wide(zeros)? };
    Ok((1u64 << zeros) | rest)
}

/// Encode magnitude planes `kmin..kmax` (top-down) of `magnitudes` with
/// `signs` (true = negative). Returns the number of coefficients that
/// became significant.
pub fn encode(
    magnitudes: &[u64],
    signs: &[bool],
    kmax: u32,
    kmin: u32,
    w: &mut BitWriter,
) -> usize {
    debug_assert_eq!(magnitudes.len(), signs.len());
    let n = magnitudes.len();
    let mut significant = vec![false; n];
    let mut sig_list: Vec<u32> = Vec::new();
    for k in (kmin..kmax).rev() {
        // Refinement pass over coefficients significant before this plane.
        let old_len = sig_list.len();
        for &i in &sig_list[..old_len] {
            w.put_bit((magnitudes[i as usize] >> k) & 1 == 1);
        }
        // Significance pass: γ-coded gaps to newly significant coefficients.
        let mut last: i64 = -1;
        for (i, &m) in magnitudes.iter().enumerate() {
            if !significant[i] && (m >> k) != 0 {
                put_gamma(w, (i as i64 - last) as u64);
                w.put_bit(signs[i]);
                significant[i] = true;
                sig_list.push(i as u32);
                last = i as i64;
            }
        }
        // Terminator: gap past the end.
        put_gamma(w, (n as i64 - last) as u64);
    }
    sig_list.len()
}

/// Decode planes `kmin..kmax` into magnitude/sign arrays of length `n`.
/// Decoding fewer planes than were encoded (larger `kmin`) is valid and
/// yields a coarser reconstruction, provided the caller knows the plane
/// boundaries — here we decode exactly the planes requested and expect the
/// stream to contain at least those.
pub fn decode(
    n: usize,
    kmax: u32,
    kmin: u32,
    r: &mut BitReader<'_>,
) -> Result<(Vec<u64>, Vec<bool>)> {
    let mut magnitudes = vec![0u64; n];
    let mut signs = vec![false; n];
    let mut significant = vec![false; n];
    let mut sig_list: Vec<u32> = Vec::new();
    for k in (kmin..kmax).rev() {
        let old_len = sig_list.len();
        for &s in &sig_list[..old_len] {
            let i = s as usize;
            if r.get_bit()? {
                magnitudes[i] |= 1u64 << k;
            }
        }
        let mut pos: i64 = -1;
        loop {
            let gap = get_gamma(r)? as i64;
            pos += gap;
            if pos >= n as i64 {
                if pos > n as i64 {
                    return Err(CodecError::corrupt("significance gap past terminator"));
                }
                break;
            }
            let i = pos as usize;
            if significant[i] {
                return Err(CodecError::corrupt("coefficient declared significant twice"));
            }
            signs[i] = r.get_bit()?;
            magnitudes[i] |= 1u64 << k;
            significant[i] = true;
            sig_list.push(i as u32);
        }
    }
    Ok((magnitudes, signs))
}

/// Mid-tread reconstruction offset: decoded magnitudes are truncated at
/// `kmin`; adding half the last-coded step halves the worst-case error.
pub fn dequant_magnitude(m: u64, kmin: u32) -> f64 {
    if m == 0 {
        0.0
    } else {
        m as f64 + if kmin > 0 { (1u64 << (kmin - 1)) as f64 } else { 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_roundtrip() {
        let mut w = BitWriter::new();
        let vals = [1u64, 2, 3, 4, 7, 8, 100, 1000, u32::MAX as u64];
        for &v in &vals {
            put_gamma(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(get_gamma(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn gamma_is_compact_for_small_values() {
        let mut w = BitWriter::new();
        put_gamma(&mut w, 1);
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        put_gamma(&mut w, 2);
        assert_eq!(w.bit_len(), 3);
    }

    fn roundtrip(mags: &[u64], signs: &[bool], kmax: u32, kmin: u32) -> (Vec<u64>, Vec<bool>) {
        let mut w = BitWriter::new();
        encode(mags, signs, kmax, kmin, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        decode(mags.len(), kmax, kmin, &mut r).unwrap()
    }

    #[test]
    fn lossless_at_kmin_zero() {
        let mags = vec![0u64, 5, 1000, 0, 1, 0, 0, 255, 12];
        let signs = vec![false, true, false, false, true, false, false, false, true];
        let (m, s) = roundtrip(&mags, &signs, 12, 0);
        assert_eq!(m, mags);
        // Signs only meaningful for nonzero magnitudes.
        for i in 0..mags.len() {
            if mags[i] != 0 {
                assert_eq!(s[i], signs[i], "sign of {i}");
            }
        }
    }

    #[test]
    fn truncated_planes_keep_top_bits() {
        let mags = vec![0b1101_0110u64, 0b100, 0b1000_0000, 1];
        let signs = vec![false; 4];
        let kmin = 4;
        let (m, _) = roundtrip(&mags, &signs, 10, kmin);
        for (got, want) in m.iter().zip(&mags) {
            assert_eq!(*got, want & !((1u64 << kmin) - 1));
        }
    }

    #[test]
    fn sparse_stream_is_small() {
        let mut mags = vec![0u64; 10_000];
        mags[17] = 1 << 20;
        mags[5000] = 3 << 19;
        let signs = vec![false; 10_000];
        let mut w = BitWriter::new();
        encode(&mags, &signs, 22, 0, &mut w);
        // 22 planes × terminator + a few positions: far below 1 bit/coeff.
        assert!(w.bit_len() < 2000, "{} bits", w.bit_len());
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (m, _) = decode(10_000, 22, 0, &mut r).unwrap();
        assert_eq!(m, mags);
    }

    #[test]
    fn empty_and_all_zero() {
        let (m, _) = roundtrip(&[], &[], 10, 0);
        assert!(m.is_empty());
        let (m, _) = roundtrip(&[0, 0, 0], &[false; 3], 10, 0);
        assert_eq!(m, vec![0, 0, 0]);
    }

    #[test]
    fn dequant_adds_half_step() {
        assert_eq!(dequant_magnitude(0, 5), 0.0);
        assert_eq!(dequant_magnitude(32, 5), 32.0 + 16.0);
        assert_eq!(dequant_magnitude(7, 0), 7.0);
    }

    #[test]
    fn corrupt_stream_errors() {
        let mags = vec![1u64 << 8; 64];
        let signs = vec![false; 64];
        let mut w = BitWriter::new();
        encode(&mags, &signs, 10, 0, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..2]);
        assert!(decode(64, 10, 0, &mut r).is_err());
    }
}
