//! SPERR-style wavelet lossy compressor (baseline).
//!
//! Reimplements the structure of SPERR (Li, Lindstrom & Clyne, IPDPS'23),
//! the paper's high-quality / low-speed / progressive baseline:
//!
//! 1. a multi-level CDF 9/7 discrete wavelet transform decorrelates the
//!    field globally ([`wavelet`]) — global support is why SPERR captures
//!    "widespread high-frequency components" better than local predictors
//!    (paper §4.2), and its cost is why SPERR is up to 37× slower (§4.3);
//! 2. coefficients are coded bit-plane by bit-plane with a set-partitioning
//!    style significance/refinement scheme ([`coder`]), giving
//!    precision-progressive decoding;
//! 3. an **outlier correction pass** ([`compressor`]) stores quantized
//!    corrections for any point whose reconstruction error exceeds the
//!    requested tolerance — SPERR's mechanism for converting a wavelet
//!    coder into a strict error-bounded compressor.

pub mod coder;
pub mod compressor;
pub mod wavelet;

pub use compressor::{compress, decompress, decompress_preview, SperrConfig};
