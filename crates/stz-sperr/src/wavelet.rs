//! Multi-level CDF 9/7 discrete wavelet transform via lifting.
//!
//! The 1-D transform follows the Daubechies–Sweldens lifting factorization
//! with whole-point symmetric boundary extension; the N-D transform applies
//! it separably along every axis, recursing on the low-pass corner. This is
//! the same transform SPERR (and JPEG 2000's lossy path) uses.

use stz_field::Dims;

/// Lifting coefficients of the CDF 9/7 factorization.
pub const ALPHA: f64 = -1.586_134_342_059_924;
pub const BETA: f64 = -0.052_980_118_572_961;
pub const GAMMA: f64 = 0.882_911_075_530_934;
pub const DELTA: f64 = 0.443_506_852_043_971;
/// Low-pass scaling factor.
pub const ZETA: f64 = 1.149_604_398_860_241;

/// One forward lifting level on `x[0..n]`, leaving low-pass coefficients in
/// the front `ceil(n/2)` slots and high-pass in the back.
pub fn fwd_1d(x: &mut [f64], scratch: &mut Vec<f64>) {
    let n = x.len();
    if n < 2 {
        return;
    }
    lift(x, ALPHA);
    update(x, BETA);
    lift(x, GAMMA);
    update(x, DELTA);
    // Scale and deinterleave: evens (low) to the front, odds (high) behind.
    scratch.clear();
    scratch.resize(n, 0.0);
    let ne = n.div_ceil(2);
    for i in 0..n {
        if i % 2 == 0 {
            scratch[i / 2] = x[i] * ZETA;
        } else {
            scratch[ne + i / 2] = x[i] / ZETA;
        }
    }
    x.copy_from_slice(scratch);
}

/// Inverse of [`fwd_1d`].
pub fn inv_1d(x: &mut [f64], scratch: &mut Vec<f64>) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let ne = n.div_ceil(2);
    scratch.clear();
    scratch.resize(n, 0.0);
    for i in 0..n {
        if i % 2 == 0 {
            scratch[i] = x[i / 2] / ZETA;
        } else {
            scratch[i] = x[ne + i / 2] * ZETA;
        }
    }
    x.copy_from_slice(scratch);
    update(x, -DELTA);
    lift(x, -GAMMA);
    update(x, -BETA);
    lift(x, -ALPHA);
}

/// Predict step: odd samples gain `a * (left even + right even)`, with
/// symmetric extension past the ends.
#[inline]
fn lift(x: &mut [f64], a: f64) {
    let n = x.len();
    let mut i = 1;
    while i < n {
        let left = x[i - 1];
        let right = if i + 1 < n { x[i + 1] } else { x[i - 1] };
        x[i] += a * (left + right);
        i += 2;
    }
}

/// Update step: even samples gain `a * (left odd + right odd)`, with
/// symmetric extension past the ends.
#[inline]
fn update(x: &mut [f64], a: f64) {
    let n = x.len();
    let mut i = 0;
    while i < n {
        let left = if i > 0 {
            x[i - 1]
        } else if n > 1 {
            x[1]
        } else {
            x[0]
        };
        let right = if i + 1 < n { x[i + 1] } else { left };
        x[i] += a * (left + right);
        i += 2;
    }
}

/// Number of transform levels for a grid: halve until the smallest
/// transformable extent would drop below 8, capped at 5 (SPERR's policy).
pub fn num_levels(dims: Dims) -> u8 {
    let min_ext = dims.as_array().into_iter().filter(|&n| n > 1).min().unwrap_or(1);
    let mut l = 0u8;
    let mut e = min_ext;
    while e >= 16 && l < 5 {
        e = e.div_ceil(2);
        l += 1;
    }
    l.max(u8::from(min_ext >= 8))
}

/// Extents of the low-pass corner after `levels` transform levels.
pub fn band_dims(dims: Dims, levels: u8) -> Dims {
    let mut d = dims.as_array();
    for _ in 0..levels {
        for v in d.iter_mut() {
            if *v > 1 {
                *v = v.div_ceil(2);
            }
        }
    }
    Dims::from_parts(dims.ndim(), d[0], d[1], d[2])
}

/// Forward N-D transform: `levels` rounds of separable 1-D transforms on
/// the shrinking low-pass corner of `data` (C-order, extents `dims`).
pub fn fwd_nd(data: &mut [f64], dims: Dims, levels: u8) {
    let mut cur = dims.as_array();
    let mut line = Vec::new();
    let mut scratch = Vec::new();
    for _ in 0..levels {
        transform_axes(data, dims, cur, &mut line, &mut scratch, true);
        for v in cur.iter_mut() {
            if *v > 1 {
                *v = v.div_ceil(2);
            }
        }
    }
}

/// Inverse of [`fwd_nd`].
pub fn inv_nd(data: &mut [f64], dims: Dims, levels: u8) {
    // Recompute the corner extents at each level, then undo deepest-first.
    let mut stack = Vec::with_capacity(levels as usize);
    let mut cur = dims.as_array();
    for _ in 0..levels {
        stack.push(cur);
        for v in cur.iter_mut() {
            if *v > 1 {
                *v = v.div_ceil(2);
            }
        }
    }
    let mut line = Vec::new();
    let mut scratch = Vec::new();
    for ext in stack.into_iter().rev() {
        transform_axes(data, dims, ext, &mut line, &mut scratch, false);
    }
}

/// Apply the 1-D transform along x, y, z (or inverse along z, y, x) of the
/// `ext` sub-box of `data`.
fn transform_axes(
    data: &mut [f64],
    dims: Dims,
    ext: [usize; 3],
    line: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
    forward: bool,
) {
    let (ny, nx) = (dims.ny(), dims.nx());
    let idx = |z: usize, y: usize, x: usize| (z * ny + y) * nx + x;
    let [ez, ey, ex] = ext;

    let axes: [u8; 3] = if forward { [2, 1, 0] } else { [0, 1, 2] };
    for axis in axes {
        match axis {
            2 if ex > 1 => {
                for z in 0..ez {
                    for y in 0..ey {
                        line.clear();
                        line.extend((0..ex).map(|x| data[idx(z, y, x)]));
                        if forward {
                            fwd_1d(line, scratch);
                        } else {
                            inv_1d(line, scratch);
                        }
                        for (x, &v) in line.iter().enumerate() {
                            data[idx(z, y, x)] = v;
                        }
                    }
                }
            }
            1 if ey > 1 => {
                for z in 0..ez {
                    for x in 0..ex {
                        line.clear();
                        line.extend((0..ey).map(|y| data[idx(z, y, x)]));
                        if forward {
                            fwd_1d(line, scratch);
                        } else {
                            inv_1d(line, scratch);
                        }
                        for (y, &v) in line.iter().enumerate() {
                            data[idx(z, y, x)] = v;
                        }
                    }
                }
            }
            0 if ez > 1 => {
                for y in 0..ey {
                    for x in 0..ex {
                        line.clear();
                        line.extend((0..ez).map(|z| data[idx(z, y, x)]));
                        if forward {
                            fwd_1d(line, scratch);
                        } else {
                            inv_1d(line, scratch);
                        }
                        for (z, &v) in line.iter().enumerate() {
                            data[idx(z, y, x)] = v;
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
        let max = a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
        assert!(max <= tol, "{what}: max diff {max}");
    }

    #[test]
    fn fwd_inv_1d_perfect_reconstruction() {
        let mut scratch = Vec::new();
        for n in [2usize, 3, 4, 5, 8, 9, 16, 17, 100, 101] {
            let orig: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin() * 10.0).collect();
            let mut x = orig.clone();
            fwd_1d(&mut x, &mut scratch);
            inv_1d(&mut x, &mut scratch);
            assert_close(&x, &orig, 1e-9, &format!("n={n}"));
        }
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        let mut scratch = Vec::new();
        let mut x = vec![5.0; 16];
        fwd_1d(&mut x, &mut scratch);
        // High-pass half must vanish for constants (vanishing moments).
        for &d in &x[8..] {
            assert!(d.abs() < 1e-9, "detail {d}");
        }
        // Low-pass is uniform (a scaled constant).
        for &s in &x[..8] {
            assert!((s - x[0]).abs() < 1e-9, "lowpass {s} vs {}", x[0]);
            assert!(s > 5.0, "low-pass DC gain should exceed 1 (zeta)");
        }
    }

    #[test]
    fn linear_signal_has_zero_detail() {
        // CDF 9/7 has 4 vanishing moments; linears must vanish in detail
        // away from boundaries.
        let mut scratch = Vec::new();
        let mut x: Vec<f64> = (0..32).map(|i| 3.0 + 2.0 * i as f64).collect();
        fwd_1d(&mut x, &mut scratch);
        for &d in &x[18..30] {
            assert!(d.abs() < 1e-9, "interior detail {d}");
        }
    }

    #[test]
    fn fwd_inv_nd_perfect_reconstruction() {
        for (dims, levels) in [
            (Dims::d3(16, 16, 16), 2u8),
            (Dims::d3(17, 13, 21), 2),
            (Dims::d2(33, 20), 3),
            (Dims::d1(64), 3),
            (Dims::d3(8, 8, 8), 1),
        ] {
            let orig: Vec<f64> = (0..dims.len())
                .map(|i| ((i as f64) * 0.13).sin() + ((i as f64) * 0.031).cos() * 3.0)
                .collect();
            let mut x = orig.clone();
            fwd_nd(&mut x, dims, levels);
            inv_nd(&mut x, dims, levels);
            assert_close(&x, &orig, 1e-8, &format!("{dims} L{levels}"));
        }
    }

    #[test]
    fn energy_concentrates_in_low_band() {
        let dims = Dims::d2(32, 32);
        let mut x: Vec<f64> = (0..dims.len())
            .map(|i| {
                let (y, xx) = (i / 32, i % 32);
                ((y as f64) * 0.2).sin() + ((xx as f64) * 0.15).cos()
            })
            .collect();
        let total: f64 = x.iter().map(|v| v * v).sum();
        fwd_nd(&mut x, dims, 2);
        let band = band_dims(dims, 2);
        let mut low = 0.0;
        for y in 0..band.ny() {
            for x_ in 0..band.nx() {
                low += x[y * 32 + x_] * x[y * 32 + x_];
            }
        }
        assert!(low > 0.9 * total, "low-band energy {low} of {total}");
    }

    #[test]
    fn num_levels_policy() {
        assert_eq!(num_levels(Dims::d3(512, 512, 512)), 5);
        assert_eq!(num_levels(Dims::d3(64, 64, 64)), 3);
        assert_eq!(num_levels(Dims::d3(16, 16, 16)), 1);
        assert_eq!(num_levels(Dims::d3(8, 8, 8)), 1);
        assert_eq!(num_levels(Dims::d3(4, 4, 4)), 0);
        // 2-D field: the nz = 1 axis does not limit depth.
        assert_eq!(num_levels(Dims::d2(256, 256)), 5);
    }

    #[test]
    fn band_dims_shrink() {
        assert_eq!(band_dims(Dims::d3(16, 16, 16), 2).as_array(), [4, 4, 4]);
        assert_eq!(band_dims(Dims::d3(17, 9, 5), 1).as_array(), [9, 5, 3]);
        assert_eq!(band_dims(Dims::d2(20, 12), 2).as_array(), [1, 5, 3]);
    }
}
