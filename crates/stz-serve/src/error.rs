//! Error type for the archive server and client.

use std::fmt;
use std::io;
use stz_stream::StreamError;

/// Failure while speaking STZP or serving a container over it.
///
/// Like the rest of the stack, both endpoints are total over arbitrary
/// input: a malformed or truncated frame, a checksum mismatch, or a peer
/// disconnect surfaces as an error — never a panic or a hang (socket reads
/// are bounded by the frame length prefix and an optional timeout).
#[derive(Debug)]
pub enum ServeError {
    /// The socket (or local file) failed.
    Io(io::Error),
    /// The byte stream violates the STZP framing or payload encoding
    /// (bad magic, unknown version, oversized length prefix, CRC
    /// mismatch, truncated payload, …).
    Protocol(String),
    /// The peer answered with an `ERR` frame.
    Remote {
        /// Machine-readable error class (see [`crate::proto::err_code`]).
        code: u16,
        /// Human-readable diagnostic from the peer.
        message: String,
    },
    /// A hosted container failed locally (server side).
    Stream(StreamError),
}

impl ServeError {
    /// Build a [`ServeError::Protocol`].
    pub fn protocol(msg: impl Into<String>) -> Self {
        ServeError::Protocol(msg.into())
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ServeError::Stream(e) => write!(f, "container error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

/// Result alias for server/client operations.
pub type Result<T> = std::result::Result<T, ServeError>;
