//! Byte-budgeted sharded LRU cache of decoded blocks.
//!
//! The server's hot path is "same entry, same request, many clients":
//! dashboards polling a preview level, analysts re-reading a popular ROI.
//! Decoding is orders of magnitude more expensive than a memcpy, so the
//! server caches the *encoded `FETCH_OK` payload* of each decode — a hit
//! skips decompression **and** response re-encoding; the handler just
//! frames cached bytes onto the socket.
//!
//! Design:
//!
//! * **Sharded.** Keys hash to one of [`DecodedCache::SHARDS`] independent
//!   `Mutex<Shard>`s, so concurrent connections rarely contend on the same
//!   lock. The byte budget is split evenly across shards.
//! * **Exact LRU, O(n) eviction.** Each shard stamps entries with a
//!   monotonic tick on every touch and evicts the smallest stamp until it
//!   is back under budget. Values are whole decoded blocks (KBs–MBs), so
//!   shard populations stay small and the linear eviction scan is noise
//!   next to one saved decompression.
//! * **Oversized values bypass.** A value larger than a whole shard's
//!   budget is returned to the caller but never inserted — one giant ROI
//!   cannot wipe the cache.
//! * **Counters.** Hits, misses, insertions and evictions are per-instance
//!   [`stz_telemetry::Counter`]s, exposed over the wire via the `STATS`
//!   frame and — once [`DecodedCache::register_metrics`] has published the
//!   handles — via the `METRICS` exposition.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use stz_telemetry::{Counter, Metric, Registry};

use crate::proto::RequestKind;

/// Cache key: one decoded block is identified by its container, the
/// container *generation* the request pinned, entry index, and request
/// kind (full / level-k / ROI box / raw payload). Name-addressed fetches
/// resolve to the entry index *before* lookup, so `--entry t0` and entry
/// index 0 share a slot. The generation keeps mutable (v3) containers
/// honest: after an append/delete/compact flips the footer, stale blocks
/// simply stop being addressed and age out of the LRU — no invalidation
/// pass needed. Immutable v1/v2 containers always key generation 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Hosted container name.
    pub container: String,
    /// Committed generation of the snapshot that served the request
    /// (always 1 for immutable containers).
    pub generation: u64,
    /// Entry index within the container.
    pub entry: u32,
    /// What was decoded.
    pub kind: RequestKind,
}

#[derive(Debug)]
struct Slot {
    value: Arc<Vec<u8>>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Slot>,
    bytes: usize,
    tick: u64,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Values inserted.
    pub insertions: u64,
    /// Values evicted for space.
    pub evictions: u64,
    /// Resident values right now.
    pub entries: u64,
    /// Resident bytes right now.
    pub bytes: u64,
    /// Configured byte budget.
    pub capacity: u64,
}

/// The decoded-block cache. See the module docs for the design.
#[derive(Debug)]
pub struct DecodedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_budget: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    insertions: Arc<Counter>,
    evictions: Arc<Counter>,
    capacity: u64,
}

impl DecodedCache {
    /// Number of independent shards.
    pub const SHARDS: usize = 8;

    /// A cache bounded by `budget_bytes` in total (split evenly across
    /// shards; a zero budget yields a cache that never stores anything
    /// but still counts hits and misses).
    pub fn new(budget_bytes: u64) -> Self {
        let per_shard_budget = (budget_bytes as usize) / Self::SHARDS;
        DecodedCache {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_budget,
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            insertions: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
            capacity: budget_bytes,
        }
    }

    /// Publish this cache's counters into `registry` under the
    /// `stz_serve_cache_*_total` names. The cache keeps the handles (its
    /// per-instance accounting is unchanged); the registry renders them.
    /// Last registration wins, so the serving cache is the one exposed.
    pub fn register_metrics(&self, registry: &Registry) {
        for (name, counter) in [
            ("stz_serve_cache_hits_total", &self.hits),
            ("stz_serve_cache_misses_total", &self.misses),
            ("stz_serve_cache_insertions_total", &self.insertions),
            ("stz_serve_cache_evictions_total", &self.evictions),
        ] {
            registry.register(name, &[], Metric::Counter(Arc::clone(counter)));
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a decoded block, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let mut shard = self.shard(key).lock().unwrap_or_else(|p| p.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.inc();
                Some(Arc::clone(&slot.value))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert a freshly decoded block, evicting least-recently-used
    /// values until the shard is back under its budget. Values larger
    /// than a whole shard's budget are not cached.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<u8>>) {
        if value.len() > self.per_shard_budget {
            return;
        }
        let mut shard = self.shard(&key).lock().unwrap_or_else(|p| p.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(old) =
            shard.map.insert(key, Slot { value: Arc::clone(&value), last_used: tick })
        {
            // Replaced in place (two threads decoded the same miss
            // concurrently): swap the byte accounting, nothing to evict.
            shard.bytes -= old.value.len();
        } else {
            self.insertions.inc();
        }
        shard.bytes += value.len();
        while shard.bytes > self.per_shard_budget {
            let Some(lru) =
                shard.map.iter().min_by_key(|(_, slot)| slot.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            let removed = shard.map.remove(&lru).expect("key just found in this shard");
            shard.bytes -= removed.value.len();
            self.evictions.inc();
        }
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        let (entries, bytes) = self
            .shards
            .iter()
            .map(|s| {
                let s = s.lock().unwrap_or_else(|p| p.into_inner());
                (s.map.len() as u64, s.bytes as u64)
            })
            .fold((0, 0), |(e, b), (se, sb)| (e + se, b + sb));
        CacheCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            entries,
            bytes,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(container: &str, entry: u32, kind: RequestKind) -> CacheKey {
        CacheKey { container: container.into(), generation: 0, entry, kind }
    }

    fn block(len: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; len])
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = DecodedCache::new(1 << 20);
        let k = key("steps", 0, RequestKind::Full);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), block(100, 1));
        assert_eq!(cache.get(&k).unwrap().len(), 100);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
        assert_eq!((c.entries, c.bytes), (1, 100));

        // Different request kinds are distinct blocks.
        assert!(cache.get(&key("steps", 0, RequestKind::Level(1))).is_none());
        assert!(cache.get(&key("steps", 1, RequestKind::Full)).is_none());
        assert!(cache.get(&key("other", 0, RequestKind::Full)).is_none());
        // So are different container generations: a footer flip re-keys
        // every block instead of serving the superseded decode.
        let flipped = CacheKey { generation: 1, ..k.clone() };
        assert!(cache.get(&flipped).is_none());
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        // One shard's budget is total/SHARDS; craft keys that land in the
        // same shard by reusing one key's fields except the ROI box, and
        // just verify the *global* invariant: resident bytes never exceed
        // the budget and the evicted block is the stalest of its shard.
        let budget = (DecodedCache::SHARDS * 1000) as u64;
        let cache = DecodedCache::new(budget);
        for i in 0..100u64 {
            cache.insert(key("c", 0, RequestKind::Roi([i, i + 1, 0, 1, 0, 1])), block(400, 0));
        }
        let c = cache.counters();
        assert!(c.bytes <= budget, "resident {} bytes > budget {budget}", c.bytes);
        assert!(c.evictions > 0, "inserting 40 KB into 8 KB must evict");
        assert_eq!(c.bytes, c.entries * 400);
    }

    #[test]
    fn recently_used_survives_eviction() {
        let cache = DecodedCache::new((DecodedCache::SHARDS * 1000) as u64);
        // Insert enough same-shard-or-not blocks to force evictions while
        // keeping one key hot; the hot key must survive.
        let hot = key("c", 0, RequestKind::Full);
        cache.insert(hot.clone(), block(300, 7));
        for i in 0..200u64 {
            cache.insert(key("c", 0, RequestKind::Roi([i, i + 1, 0, 1, 0, 1])), block(300, 0));
            assert!(cache.get(&hot).is_some(), "hot key evicted at step {i}");
        }
    }

    #[test]
    fn oversized_values_bypass() {
        let cache = DecodedCache::new(800);
        let k = key("c", 0, RequestKind::Full);
        cache.insert(k.clone(), block(500, 0)); // > 800/8 per-shard budget
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.counters().insertions, 0);
    }

    #[test]
    fn duplicate_insert_replaces_without_leaking_bytes() {
        let cache = DecodedCache::new(1 << 20);
        let k = key("c", 0, RequestKind::Full);
        cache.insert(k.clone(), block(100, 1));
        cache.insert(k.clone(), block(250, 2));
        let c = cache.counters();
        assert_eq!((c.entries, c.bytes, c.insertions), (1, 250, 1));
        assert_eq!(cache.get(&k).unwrap()[0], 2);
    }

    #[test]
    fn zero_budget_stores_nothing() {
        let cache = DecodedCache::new(0);
        let k = key("c", 0, RequestKind::Full);
        cache.insert(k.clone(), block(1, 0));
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.counters().bytes, 0);
    }

    #[test]
    fn registered_counters_render_in_the_exposition() {
        let registry = Registry::new();
        let cache = DecodedCache::new(1 << 20);
        cache.register_metrics(&registry);
        let k = key("steps", 0, RequestKind::Full);
        cache.get(&k);
        cache.insert(k.clone(), block(10, 1));
        cache.get(&k);
        let text = registry.render();
        assert!(text.contains("stz_serve_cache_hits_total 1"), "{text}");
        assert!(text.contains("stz_serve_cache_misses_total 1"), "{text}");
        assert!(text.contains("stz_serve_cache_insertions_total 1"), "{text}");
        assert!(text.contains("stz_serve_cache_evictions_total 0"), "{text}");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(DecodedCache::new(1 << 16));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let k =
                            key("c", (i % 7) as u32, RequestKind::Roi([t, t + 1, 0, 1, 0, i + 1]));
                        if cache.get(&k).is_none() {
                            cache.insert(k, block(64, t as u8));
                        }
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, 8 * 500);
        assert!(c.bytes <= 1 << 16);
    }
}
