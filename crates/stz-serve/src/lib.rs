//! # stz-serve — concurrent archive server + STZP wire protocol
//!
//! The storage stack ends at a `.stzc` container on one machine; this
//! crate puts it on the network. A [`Server`] hosts a directory of
//! containers over a small length-prefixed binary protocol (STZP v1, see
//! [`mod@proto`]) and lets many concurrent clients fetch **full**,
//! **progressive**, and **ROI** decodes — plus raw compressed payloads —
//! without ever shipping a whole container:
//!
//! * every connection shares the same open [`ContainerReader`]s, sound
//!   because all container I/O is positioned (`pread`-style) reads with
//!   no seek state ([`stz_stream::ByteSource`]);
//! * decode work runs under the workspace thread pool
//!   (`crates/shims/rayon`), so one busy request parallelizes across
//!   cores while other connections keep being accepted;
//! * decoded blocks pass through a byte-budgeted sharded LRU cache
//!   ([`DecodedCache`]) keyed by container/entry/request-kind — a repeat
//!   request skips decompression *and* response encoding, and the hit /
//!   miss / eviction counters are queryable over the wire (`STATS`);
//! * both endpoints are total over arbitrary bytes: truncated frames,
//!   bad magic, oversized length prefixes, CRC mismatches and mid-stream
//!   disconnects surface as [`ServeError`]s, never panics or hangs.
//!
//! The CLI front ends live in `stz-cli` (`stz serve`, `stz remote …`);
//! `docs/SERVER.md` is the normative frame spec.
//!
//! ## Quick start
//!
//! ```no_run
//! use stz_serve::{Client, EntrySel, ServeOptions, Server};
//!
//! // Host every .stzc under ./archives on an ephemeral loopback port.
//! let server = Server::bind(ServeOptions {
//!     root: "./archives".into(),
//!     ..ServeOptions::default()
//! })?;
//! let addr = server.local_addr()?;
//! let handle = server.spawn()?;
//!
//! // Any number of concurrent clients:
//! let mut client = Client::connect(addr)?;
//! for c in client.list()? {
//!     println!("{} ({} entries)", c.name, c.entries);
//! }
//! let preview = client.fetch_level("steps", EntrySel::Name("t0".into()), 1)?;
//! let field: stz_field::Field<f32> = preview.into_field()?;
//! handle.stop();
//! # Ok::<(), stz_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod error;
pub mod proto;
pub mod server;

pub use cache::{CacheCounters, CacheKey, DecodedCache};
pub use client::Client;
pub use error::{Result, ServeError};
pub use proto::{
    ContainerInfo, EntryInfo, EntrySel, FetchReq, FetchedField, RequestKind, ServerStats,
};
pub use server::{ServeOptions, Server, ServerHandle};

// Resolves the crate-docs link; also a downstream convenience.
#[doc(hidden)]
pub use stz_stream::ContainerReader;
