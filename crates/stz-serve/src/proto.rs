//! STZP v1 — the length-prefixed binary wire protocol shared by the
//! archive server and client.
//!
//! ## Framing
//!
//! Every message travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "STZP"
//! 4       1     protocol version (1)
//! 5       1     frame type (see [`FrameType`])
//! 6       2     reserved (0; receivers ignore)
//! 8       4     payload length, u32 LE (≤ [`MAX_FRAME_PAYLOAD`])
//! 12      4     CRC-32 of the payload, u32 LE
//! 16      n     payload
//! ```
//!
//! The fixed header makes framing self-synchronizing and cheap to
//! validate before any allocation: a receiver rejects a bad magic, an
//! unknown version, or an oversized length prefix from the first 16 bytes
//! alone, and verifies the payload CRC before decoding a single field.
//! Integers are little-endian throughout; strings are u32-length-prefixed
//! UTF-8. Unknown *frame types* are surfaced to the dispatcher (not an
//! I/O error), so future frame kinds degrade to a clean `ERR` response
//! instead of a torn connection — the forward-compatibility story of v1.
//!
//! ## Request/response vocabulary
//!
//! | request              | response     | meaning |
//! |----------------------|--------------|---------|
//! | `HELLO`              | `HELLO_OK`   | version handshake, once per connection |
//! | `LIST`               | `LIST_OK`    | hosted containers |
//! | `INSPECT`            | `INSPECT_OK` | entry table of one container |
//! | `FETCH_FULL`         | `FETCH_OK`   | full decode of one entry |
//! | `FETCH_ROI`          | `FETCH_OK`   | region decode |
//! | `FETCH_PROGRESSIVE`  | `FETCH_OK`   | level-k preview decode |
//! | `FETCH_RAW_SECTION`  | `RAW_OK`     | the compressed payload bytes |
//! | `STATS`              | `STATS_OK`   | request + cache counters |
//! | `METRICS`            | `METRICS_OK` | versioned text exposition of the server's telemetry registry |
//! | `TRACE_GET`          | `TRACE_OK`   | retained request traces from the server's tail sampler |
//! | —                    | `ERR`        | any failure (code + message) |
//!
//! Fetch requests may additionally carry an optional **trace-context
//! extension**: a 17-byte suffix (`u8` version, `u64` trace id, `u64`
//! parent span id) appended after the request body. A request without the
//! suffix encodes byte-identically to pre-extension builds, so old and
//! new peers interoperate; a server that understands the extension parents
//! its span tree under the client's ids (see [`TraceContextExt`]).
//!
//! `FETCH_OK` carries the decoded field as dims + element type + raw
//! little-endian scalars — byte-identical to what a local
//! `ContainerReader` decode followed by `write_raw` would produce, which
//! is what the integration tests and the CI round-trip gate assert.

use crate::error::{Result, ServeError};
use std::io::{Read, Write};
use stz_field::{Dims, Region};
use stz_stream::crc::crc32;

/// Frame magic, first on the wire in both directions.
pub const PROTO_MAGIC: [u8; 4] = *b"STZP";

/// Protocol version this build speaks.
pub const PROTO_VERSION: u8 = 1;

/// Fixed frame-header length in bytes.
pub const FRAME_HEADER_LEN: usize = 16;

/// Upper bound on a frame payload. A length prefix above this is rejected
/// *before* any allocation — a corrupt or hostile peer cannot make either
/// endpoint reserve gigabytes.
pub const MAX_FRAME_PAYLOAD: u32 = 256 << 20;

/// Machine-readable `ERR` classes.
pub mod err_code {
    /// Malformed request (bad selector, empty region, region out of
    /// bounds, …).
    pub const BAD_REQUEST: u16 = 1;
    /// Unknown container or entry.
    pub const NOT_FOUND: u16 = 2;
    /// The request is valid but this entry cannot serve it (e.g. a
    /// progressive preview of a foreign-codec entry).
    pub const UNSUPPORTED: u16 = 3;
    /// The hosted container failed to decode (corrupt section, checksum
    /// mismatch).
    pub const CORRUPT: u16 = 4;
    /// Internal server failure (I/O on the hosted file, …).
    pub const INTERNAL: u16 = 5;
    /// The server is at its connection limit.
    pub const BUSY: u16 = 6;
}

/// Frame kinds of STZP v1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)] // the table in the module docs is the reference
pub enum FrameType {
    Hello = 0x01,
    HelloOk = 0x02,
    List = 0x10,
    ListOk = 0x11,
    Inspect = 0x12,
    InspectOk = 0x13,
    FetchFull = 0x20,
    FetchOk = 0x21,
    FetchRoi = 0x22,
    FetchProgressive = 0x24,
    FetchRawSection = 0x26,
    RawOk = 0x27,
    Stats = 0x30,
    StatsOk = 0x31,
    Metrics = 0x32,
    MetricsOk = 0x33,
    TraceGet = 0x34,
    TraceOk = 0x35,
    Err = 0x7F,
}

impl FrameType {
    /// Map a wire byte to a known frame type.
    pub fn from_byte(b: u8) -> Option<FrameType> {
        use FrameType::*;
        Some(match b {
            0x01 => Hello,
            0x02 => HelloOk,
            0x10 => List,
            0x11 => ListOk,
            0x12 => Inspect,
            0x13 => InspectOk,
            0x20 => FetchFull,
            0x21 => FetchOk,
            0x22 => FetchRoi,
            0x24 => FetchProgressive,
            0x26 => FetchRawSection,
            0x27 => RawOk,
            0x30 => Stats,
            0x31 => StatsOk,
            0x32 => Metrics,
            0x33 => MetricsOk,
            0x34 => TraceGet,
            0x35 => TraceOk,
            0x7F => Err,
            _ => return None,
        })
    }
}

/// One frame as read off the wire: the (possibly unknown) type byte plus
/// the CRC-verified payload.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Raw frame-type byte (may not map to a [`FrameType`] this build
    /// knows; dispatchers answer `ERR` rather than tearing the stream).
    pub kind: u8,
    /// CRC-verified payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// The frame type, if this build knows it.
    pub fn frame_type(&self) -> Option<FrameType> {
        FrameType::from_byte(self.kind)
    }
}

/// Serialize and send one frame.
pub fn write_frame(w: &mut impl Write, kind: FrameType, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(ServeError::protocol(format!(
            "refusing to send a {} byte payload (max {MAX_FRAME_PAYLOAD})",
            payload.len()
        )));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&PROTO_MAGIC);
    header[4] = PROTO_VERSION;
    header[5] = kind as u8;
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[12..16].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, or `None` on a clean end-of-stream (the peer closed
/// between frames). EOF *inside* a frame — a truncated header or payload
/// — is a protocol error, as are a bad magic, an unsupported version, a
/// length prefix above [`MAX_FRAME_PAYLOAD`], and a payload CRC mismatch.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // First byte decides "clean close" vs. "torn frame".
    match r.read(&mut header[..1])? {
        0 => return Ok(None),
        _ => r
            .read_exact(&mut header[1..])
            .map_err(|e| ServeError::protocol(format!("truncated frame header: {e}")))?,
    }
    if header[0..4] != PROTO_MAGIC {
        return Err(ServeError::protocol("bad frame magic (not an STZP stream)"));
    }
    if header[4] != PROTO_VERSION {
        return Err(ServeError::protocol(format!(
            "unsupported protocol version {} (this build speaks {PROTO_VERSION})",
            header[4]
        )));
    }
    let kind = header[5];
    let len = u32::from_le_bytes(header[8..12].try_into().expect("fixed slice"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(ServeError::protocol(format!(
            "frame length prefix {len} exceeds the {MAX_FRAME_PAYLOAD} byte cap"
        )));
    }
    let want_crc = u32::from_le_bytes(header[12..16].try_into().expect("fixed slice"));
    // Fill the payload in bounded chunks rather than reserving `len` up
    // front: a 16-byte header alone must not commit 256 MiB — memory grows
    // only as declared bytes actually arrive on the wire.
    const READ_CHUNK: usize = 1 << 20;
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + take, 0);
        r.read_exact(&mut payload[start..])
            .map_err(|e| ServeError::protocol(format!("truncated frame payload: {e}")))?;
    }
    if crc32(&payload) != want_crc {
        return Err(ServeError::protocol("frame payload CRC mismatch"));
    }
    Ok(Some(Frame { kind, payload }))
}

// ---------------------------------------------------------------------------
// Payload encoding primitives.
// ---------------------------------------------------------------------------

/// Append-only payload encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Start an empty payload.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Start a payload over a recycled buffer (cleared, capacity kept) —
    /// how the client encodes per-request payloads without allocating per
    /// call.
    pub fn reuse(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Enc { buf }
    }

    /// Finish, yielding the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16` (LE).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (LE).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes with no length prefix (trailing blob).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked payload decoder.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ServeError::protocol("truncated payload field"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16` (LE).
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("fixed slice")))
    }

    /// Read a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("fixed slice")))
    }

    /// Read a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("fixed slice")))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::protocol("payload string is not UTF-8"))
    }

    /// The unread remainder (trailing blob).
    pub fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Require that every byte has been consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::protocol(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Message bodies.
// ---------------------------------------------------------------------------

/// Which entry of a container a fetch addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntrySel {
    /// By position in the container index.
    Index(u32),
    /// By entry name.
    Name(String),
}

impl EntrySel {
    fn encode(&self, e: &mut Enc) {
        match self {
            EntrySel::Index(i) => {
                e.u8(0);
                e.u32(*i);
            }
            EntrySel::Name(n) => {
                e.u8(1);
                e.string(n);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<EntrySel> {
        match d.u8()? {
            0 => Ok(EntrySel::Index(d.u32()?)),
            1 => Ok(EntrySel::Name(d.string()?)),
            t => Err(ServeError::protocol(format!("unknown entry selector tag {t}"))),
        }
    }
}

/// The decode a fetch requests — also the cache key discriminant on the
/// server, so equal requests share one cached decoded block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Full-resolution decode of the whole entry.
    Full,
    /// Progressive preview through level `k`.
    Level(u8),
    /// Region decode, half-open bounds `[z0,z1) × [y0,y1) × [x0,x1)`.
    Roi([u64; 6]),
    /// The compressed payload bytes, undecoded.
    Raw,
}

impl RequestKind {
    /// Wire tag for `FETCH_OK` payloads.
    pub fn tag(&self) -> u8 {
        match self {
            RequestKind::Full => 0,
            RequestKind::Level(_) => 1,
            RequestKind::Roi(_) => 2,
            RequestKind::Raw => 3,
        }
    }

    /// Build an ROI kind from a [`Region`].
    pub fn roi(region: &Region) -> RequestKind {
        RequestKind::Roi([
            region.z0 as u64,
            region.z1 as u64,
            region.y0 as u64,
            region.y1 as u64,
            region.x0 as u64,
            region.x1 as u64,
        ])
    }

    /// The [`Region`] of an ROI kind. `None` for other kinds and for
    /// hostile bounds (`Region` construction requires non-empty ranges,
    /// so empty or inverted wire bounds must be caught here, not panic).
    pub fn region(&self) -> Option<Region> {
        match self {
            RequestKind::Roi(b) => {
                let c = |v: u64| usize::try_from(v).ok();
                let [z0, z1, y0, y1, x0, x1] =
                    [c(b[0])?, c(b[1])?, c(b[2])?, c(b[3])?, c(b[4])?, c(b[5])?];
                if z0 >= z1 || y0 >= y1 || x0 >= x1 {
                    return None;
                }
                Some(Region::d3(z0..z1, y0..y1, x0..x1))
            }
            _ => None,
        }
    }
}

/// Version byte of the trace-context extension suffix on fetch frames.
pub const TRACE_CONTEXT_VERSION: u8 = 1;

/// The optional trace-context extension a fetch request may carry: the
/// client's trace id plus the span that issued the fetch, so the server's
/// span tree parents under the client's root. Ids are never zero (zero is
/// the no-parent sentinel in span records), and a request without the
/// extension encodes byte-identically to pre-extension builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContextExt {
    /// Client-generated trace id (nonzero).
    pub trace_id: u64,
    /// The client span the server-side tree parents under (nonzero).
    pub parent_span: u64,
}

/// A fetch request: container, entry, and what to decode.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchReq {
    /// Hosted container name (file stem of the `.stzc`).
    pub container: String,
    /// Which entry.
    pub entry: EntrySel,
    /// What to decode.
    pub kind: RequestKind,
    /// Optional trace-context extension (absent = no suffix on the wire).
    pub trace: Option<TraceContextExt>,
}

impl FetchReq {
    /// The frame type this request travels as.
    pub fn frame_type(&self) -> FrameType {
        match self.kind {
            RequestKind::Full => FrameType::FetchFull,
            RequestKind::Level(_) => FrameType::FetchProgressive,
            RequestKind::Roi(_) => FrameType::FetchRoi,
            RequestKind::Raw => FrameType::FetchRawSection,
        }
    }

    /// Encode the request payload.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_reusing(Vec::new())
    }

    /// Encode the request payload into a recycled buffer (cleared first),
    /// returning it — so a steady request stream reuses one allocation.
    pub fn encode_reusing(&self, buf: Vec<u8>) -> Vec<u8> {
        let mut e = Enc::reuse(buf);
        e.string(&self.container);
        self.entry.encode(&mut e);
        match self.kind {
            RequestKind::Full | RequestKind::Raw => {}
            RequestKind::Level(k) => e.u8(k),
            RequestKind::Roi(b) => {
                for v in b {
                    e.u64(v);
                }
            }
        }
        if let Some(t) = self.trace {
            e.u8(TRACE_CONTEXT_VERSION);
            e.u64(t.trace_id);
            e.u64(t.parent_span);
        }
        e.finish()
    }

    /// Decode a request payload arriving as frame type `ft`.
    pub fn decode(ft: FrameType, payload: &[u8]) -> Result<FetchReq> {
        let mut d = Dec::new(payload);
        let container = d.string()?;
        let entry = EntrySel::decode(&mut d)?;
        let kind = match ft {
            FrameType::FetchFull => RequestKind::Full,
            FrameType::FetchRawSection => RequestKind::Raw,
            FrameType::FetchProgressive => RequestKind::Level(d.u8()?),
            FrameType::FetchRoi => {
                let mut b = [0u64; 6];
                for v in &mut b {
                    *v = d.u64()?;
                }
                RequestKind::Roi(b)
            }
            other => return Err(ServeError::protocol(format!("{other:?} is not a fetch frame"))),
        };
        let trace = if d.remaining() == 0 {
            None
        } else {
            let version = d.u8()?;
            if version != TRACE_CONTEXT_VERSION {
                return Err(ServeError::protocol(format!(
                    "trace-context extension version {version} is not the v{TRACE_CONTEXT_VERSION} \
                     this build understands"
                )));
            }
            let trace_id = d.u64()?;
            let parent_span = d.u64()?;
            if trace_id == 0 || parent_span == 0 {
                return Err(ServeError::protocol("trace-context extension carries a zero id"));
            }
            Some(TraceContextExt { trace_id, parent_span })
        };
        d.expect_end()?;
        Ok(FetchReq { container, entry, kind, trace })
    }
}

/// A decoded field as carried by `FETCH_OK`.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedField {
    /// Which request produced it (wire tag of [`RequestKind`]).
    pub kind_tag: u8,
    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub type_tag: u8,
    /// Grid extents of the decoded block.
    pub dims: Dims,
    /// Raw little-endian scalars, `dims.len() * bytes_per` long — the
    /// exact bytes a local decode + `write_raw` would produce.
    pub data: Vec<u8>,
}

impl FetchedField {
    /// Encode the `FETCH_OK` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(self.kind_tag);
        e.u8(self.type_tag);
        e.u8(self.dims.ndim());
        e.u8(0); // reserved
        let [z, y, x] = self.dims.as_array();
        e.u64(z as u64);
        e.u64(y as u64);
        e.u64(x as u64);
        e.raw(&self.data);
        e.finish()
    }

    /// Decode and validate a `FETCH_OK` payload.
    pub fn decode(payload: &[u8]) -> Result<FetchedField> {
        let mut d = Dec::new(payload);
        let kind_tag = d.u8()?;
        let type_tag = d.u8()?;
        let ndim = d.u8()?;
        let _reserved = d.u8()?;
        let z = d.u64()?;
        let y = d.u64()?;
        let x = d.u64()?;
        let dims = wire_dims(ndim, z, y, x).ok_or_else(|| {
            ServeError::protocol(format!("bad dims [{z}, {y}, {x}] for ndim {ndim}"))
        })?;
        let bytes_per: usize = match type_tag {
            0 => 4,
            1 => 8,
            t => return Err(ServeError::protocol(format!("unknown element type tag {t}"))),
        };
        let data = d.rest().to_vec();
        let want = dims
            .len()
            .checked_mul(bytes_per)
            .ok_or_else(|| ServeError::protocol("dims overflow"))?;
        if data.len() != want {
            return Err(ServeError::protocol(format!(
                "FETCH_OK carries {} data bytes, dims {dims} require {want}",
                data.len()
            )));
        }
        Ok(FetchedField { kind_tag, type_tag, dims, data })
    }

    /// Reinterpret the payload as a typed field; fails on a type mismatch.
    pub fn into_field<T: stz_field::Scalar>(self) -> Result<stz_field::Field<T>> {
        if self.type_tag != T::TYPE_TAG {
            return Err(ServeError::protocol(format!(
                "fetched element type tag {} does not match requested type",
                self.type_tag
            )));
        }
        let values: Vec<T> = self.data.chunks_exact(T::BYTES).map(T::read_exact).collect();
        Ok(stz_field::Field::from_vec(self.dims, values))
    }
}

/// One hosted container, as listed by `LIST_OK`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Container name (file stem; what fetches address).
    pub name: String,
    /// Number of entries in its index.
    pub entries: u32,
    /// On-disk size in bytes.
    pub file_len: u64,
}

/// Encode a `LIST_OK` payload.
pub fn encode_list(containers: &[ContainerInfo]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(containers.len() as u32);
    for c in containers {
        e.string(&c.name);
        e.u32(c.entries);
        e.u64(c.file_len);
    }
    e.finish()
}

/// Decode a `LIST_OK` payload.
pub fn decode_list(payload: &[u8]) -> Result<Vec<ContainerInfo>> {
    let mut d = Dec::new(payload);
    let n = d.u32()?;
    let mut out = Vec::with_capacity(bounded_count(n)?);
    for _ in 0..n {
        out.push(ContainerInfo { name: d.string()?, entries: d.u32()?, file_len: d.u64()? });
    }
    d.expect_end()?;
    Ok(out)
}

/// One entry of a container's index, as carried by `INSPECT_OK` — the
/// machine-readable entry table local `inspect --json` and remote
/// `inspect` both render through one formatter.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryInfo {
    /// Entry name.
    pub name: String,
    /// Codec wire id of the payload.
    pub codec_id: u8,
    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub type_tag: u8,
    /// Number of grid axes (1–3).
    pub ndim: u8,
    /// Grid extents, `[z, y, x]`.
    pub dims: [u64; 3],
    /// Absolute error bound.
    pub eb: f64,
    /// Compressed payload size in bytes.
    pub compressed_len: u64,
    /// CRC-32 of the whole compressed payload.
    pub payload_crc: u32,
    /// Independently fetchable sections in the index.
    pub sections: u32,
    /// Hierarchy depth (0 for foreign codecs).
    pub levels: u8,
    /// Interpolation kind of the stz hierarchy (0 = none/foreign,
    /// 1 = linear, 2 = cubic).
    pub interp: u8,
    /// Cumulative compressed bytes through level `k` (`levels` values;
    /// empty for foreign codecs).
    pub level_bytes: Vec<u64>,
}

impl EntryInfo {
    /// Build the wire row for one container entry — the single source of
    /// the entry table that local `inspect --json` and the server's
    /// `INSPECT_OK` both use.
    pub fn from_meta(meta: &stz_stream::EntryMeta<'_>) -> EntryInfo {
        let levels = meta.header().map(|h| h.levels).unwrap_or(0);
        let interp = match meta.header().map(|h| h.interp) {
            Some(stz_core::InterpKind::Linear) => 1,
            Some(stz_core::InterpKind::Cubic) => 2,
            None => 0,
        };
        let [z, y, x] = meta.dims().as_array();
        EntryInfo {
            name: meta.name().to_string(),
            codec_id: meta.codec_id(),
            type_tag: meta.type_tag(),
            ndim: meta.dims().ndim(),
            dims: [z as u64, y as u64, x as u64],
            eb: meta.error_bound(),
            compressed_len: meta.compressed_len(),
            payload_crc: meta.payload_crc(),
            sections: meta.section_count() as u32,
            levels,
            interp,
            level_bytes: (1..=levels).map(|k| meta.bytes_through_level(k)).collect(),
        }
    }

    /// Registry name of the entry's codec, or `None` when this build
    /// does not know the id.
    pub fn codec_name(&self) -> Option<&'static str> {
        stz_backend::registry().by_id(self.codec_id).map(|c| c.name())
    }

    /// `"f32"` / `"f64"`.
    pub fn type_name(&self) -> &'static str {
        if self.type_tag == 0 {
            "f32"
        } else {
            "f64"
        }
    }

    /// Interpolation-kind label of the stz hierarchy (`None` for foreign
    /// codecs or an interp code this build does not know).
    pub fn interp_name(&self) -> Option<&'static str> {
        match self.interp {
            1 => Some("linear"),
            2 => Some("cubic"),
            _ => None,
        }
    }
}

/// Encode an `INSPECT_OK` payload.
pub fn encode_inspect(entries: &[EntryInfo]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(entries.len() as u32);
    for i in entries {
        e.string(&i.name);
        e.u8(i.codec_id);
        e.u8(i.type_tag);
        e.u8(i.ndim);
        e.u8(i.levels);
        e.u8(i.interp);
        for v in i.dims {
            e.u64(v);
        }
        e.f64(i.eb);
        e.u64(i.compressed_len);
        e.u32(i.payload_crc);
        e.u32(i.sections);
        debug_assert_eq!(i.level_bytes.len(), i.levels as usize);
        for &b in &i.level_bytes {
            e.u64(b);
        }
    }
    e.finish()
}

/// Decode an `INSPECT_OK` payload.
pub fn decode_inspect(payload: &[u8]) -> Result<Vec<EntryInfo>> {
    let mut d = Dec::new(payload);
    let n = d.u32()?;
    let mut out = Vec::with_capacity(bounded_count(n)?);
    for _ in 0..n {
        let name = d.string()?;
        let codec_id = d.u8()?;
        let type_tag = d.u8()?;
        let ndim = d.u8()?;
        let levels = d.u8()?;
        let interp = d.u8()?;
        let mut dims = [0u64; 3];
        for v in &mut dims {
            *v = d.u64()?;
        }
        let eb = d.f64()?;
        let compressed_len = d.u64()?;
        let payload_crc = d.u32()?;
        let sections = d.u32()?;
        let mut level_bytes = Vec::with_capacity(levels as usize);
        for _ in 0..levels {
            level_bytes.push(d.u64()?);
        }
        out.push(EntryInfo {
            name,
            codec_id,
            type_tag,
            ndim,
            dims,
            eb,
            compressed_len,
            payload_crc,
            sections,
            levels,
            interp,
            level_bytes,
        });
    }
    d.expect_end()?;
    Ok(out)
}

/// Cache + request counters, as carried by `STATS_OK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests served since startup (all kinds).
    pub requests: u64,
    /// Hosted containers.
    pub containers: u32,
    /// Cache lookups answered from a cached decoded block.
    pub cache_hits: u64,
    /// Cache lookups that had to decode.
    pub cache_misses: u64,
    /// Decoded blocks evicted to stay under the byte budget.
    pub cache_evictions: u64,
    /// Decoded blocks currently resident.
    pub cache_entries: u64,
    /// Bytes currently resident in the cache.
    pub cache_bytes: u64,
    /// Configured cache byte budget.
    pub cache_capacity: u64,
}

impl ServerStats {
    /// Encode the `STATS_OK` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.requests);
        e.u32(self.containers);
        e.u64(self.cache_hits);
        e.u64(self.cache_misses);
        e.u64(self.cache_evictions);
        e.u64(self.cache_entries);
        e.u64(self.cache_bytes);
        e.u64(self.cache_capacity);
        e.finish()
    }

    /// Decode a `STATS_OK` payload.
    pub fn decode(payload: &[u8]) -> Result<ServerStats> {
        let mut d = Dec::new(payload);
        let s = ServerStats {
            requests: d.u64()?,
            containers: d.u32()?,
            cache_hits: d.u64()?,
            cache_misses: d.u64()?,
            cache_evictions: d.u64()?,
            cache_entries: d.u64()?,
            cache_bytes: d.u64()?,
            cache_capacity: d.u64()?,
        };
        d.expect_end()?;
        Ok(s)
    }

    /// Hit fraction of all cache lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Encode a `METRICS_OK` payload: one exposition-version byte (so a
/// consumer can reject grammars it does not understand before parsing a
/// single line) followed by the u32-length-prefixed exposition text.
pub fn encode_metrics_ok(text: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(stz_telemetry::EXPOSITION_VERSION);
    e.string(text);
    e.finish()
}

/// Decode a `METRICS_OK` payload into the exposition text. Rejects an
/// unknown exposition version, a truncated payload, and trailing bytes.
pub fn decode_metrics_ok(payload: &[u8]) -> Result<String> {
    let mut d = Dec::new(payload);
    let version = d.u8()?;
    if version != stz_telemetry::EXPOSITION_VERSION {
        return Err(ServeError::protocol(format!(
            "exposition version {version} is not the v{} this build understands",
            stz_telemetry::EXPOSITION_VERSION
        )));
    }
    let text = d.string()?;
    d.expect_end()?;
    Ok(text)
}

/// Version byte of the `TRACE_OK` payload encoding.
pub const TRACE_WIRE_VERSION: u8 = 1;

/// Encode a `TRACE_OK` payload: one wire-version byte, then the retained
/// traces with their full span tables. Per-span attributes are capped at
/// 255 (the `u8` count); spans never carry more in practice.
pub fn encode_trace_ok(traces: &[stz_telemetry::trace::TraceRecord]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(TRACE_WIRE_VERSION);
    e.u32(traces.len() as u32);
    for t in traces {
        e.u64(t.trace_id);
        e.string(&t.kind);
        e.u8(u8::from(t.error));
        e.u64(t.duration_ns);
        e.u32(t.dropped_spans);
        e.u32(t.spans.len() as u32);
        for s in &t.spans {
            e.u64(s.id);
            e.u64(s.parent);
            e.string(&s.name);
            e.u64(s.start_ns);
            e.u64(s.duration_ns);
            let attrs = &s.attrs[..s.attrs.len().min(255)];
            e.u8(attrs.len() as u8);
            for (k, v) in attrs {
                e.string(k);
                e.string(v);
            }
        }
    }
    e.finish()
}

/// Decode a `TRACE_OK` payload. Rejects an unknown wire version, hostile
/// count prefixes, truncated span tables, and trailing bytes.
pub fn decode_trace_ok(payload: &[u8]) -> Result<Vec<stz_telemetry::trace::TraceRecord>> {
    use stz_telemetry::trace::{SpanRecord, TraceRecord};
    let mut d = Dec::new(payload);
    let version = d.u8()?;
    if version != TRACE_WIRE_VERSION {
        return Err(ServeError::protocol(format!(
            "TRACE_OK wire version {version} is not the v{TRACE_WIRE_VERSION} this build \
             understands"
        )));
    }
    let n = d.u32()?;
    let mut out = Vec::with_capacity(bounded_count(n)?);
    for _ in 0..n {
        let trace_id = d.u64()?;
        let kind = d.string()?;
        let flags = d.u8()?;
        let duration_ns = d.u64()?;
        let dropped_spans = d.u32()?;
        let span_count = d.u32()?;
        let mut spans = Vec::with_capacity(bounded_count(span_count)?);
        for _ in 0..span_count {
            let id = d.u64()?;
            let parent = d.u64()?;
            let name = d.string()?;
            let start_ns = d.u64()?;
            let span_duration_ns = d.u64()?;
            let attr_count = d.u8()?;
            let mut attrs = Vec::with_capacity(attr_count as usize);
            for _ in 0..attr_count {
                attrs.push((d.string()?, d.string()?));
            }
            spans.push(SpanRecord {
                id,
                parent,
                name,
                start_ns,
                duration_ns: span_duration_ns,
                attrs,
            });
        }
        out.push(TraceRecord {
            trace_id,
            kind,
            error: flags & 1 != 0,
            duration_ns,
            dropped_spans,
            spans,
        });
    }
    d.expect_end()?;
    Ok(out)
}

/// Encode an `ERR` payload.
pub fn encode_err(code: u16, message: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.u16(code);
    e.string(message);
    e.finish()
}

/// Decode an `ERR` payload into the error it describes.
pub fn decode_err(payload: &[u8]) -> ServeError {
    let mut d = Dec::new(payload);
    match (d.u16(), d.string()) {
        (Ok(code), Ok(message)) => ServeError::Remote { code, message },
        _ => ServeError::protocol("malformed ERR payload"),
    }
}

/// Validate untrusted wire dims — `usize` range, extent/`ndim`
/// consistency, no zero axes — *before* [`Dims::from_parts`] can assert
/// on them. `None` means the peer lied. The one checked constructor every
/// wire consumer (`FETCH_OK` decoding here, `INSPECT_OK` rows in the
/// access layer) shares, so the hostile-dims rules cannot drift.
pub fn wire_dims(ndim: u8, z: u64, y: u64, x: u64) -> Option<Dims> {
    let c = |v: u64| usize::try_from(v).ok();
    let (z, y, x) = (c(z)?, c(y)?, c(x)?);
    let consistent = match ndim {
        1 => z == 1 && y == 1,
        2 => z == 1,
        3 => true,
        _ => false,
    };
    if !consistent || x == 0 || y == 0 || z == 0 {
        return None;
    }
    Some(Dims::from_parts(ndim, z, y, x))
}

/// Guard collection preallocation against hostile count prefixes: the
/// count is trusted only up to what the frame cap could actually carry.
fn bounded_count(n: u32) -> Result<usize> {
    const MAX: u32 = 1 << 20;
    if n > MAX {
        return Err(ServeError::protocol(format!("collection count {n} exceeds {MAX}")));
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::List, b"").unwrap();
        write_frame(&mut wire, FrameType::Inspect, b"hello payload").unwrap();
        let mut r = &wire[..];
        let f1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(f1.frame_type(), Some(FrameType::List));
        assert!(f1.payload.is_empty());
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(f2.frame_type(), Some(FrameType::Inspect));
        assert_eq!(f2.payload, b"hello payload");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn frame_rejects_corruption() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::List, b"payload").unwrap();

        // Bad magic.
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert!(matches!(read_frame(&mut &bad[..]), Err(ServeError::Protocol(_))));

        // Unknown version.
        let mut bad = wire.clone();
        bad[4] = 9;
        assert!(matches!(read_frame(&mut &bad[..]), Err(ServeError::Protocol(_))));

        // Oversized length prefix: rejected from the header, no allocation.
        let mut bad = wire.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&mut &bad[..]), Err(ServeError::Protocol(_))));

        // Flipped payload byte: CRC catches it.
        let mut bad = wire.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(read_frame(&mut &bad[..]), Err(ServeError::Protocol(_))));

        // Truncated mid-header and mid-payload.
        assert!(matches!(read_frame(&mut &wire[..7]), Err(ServeError::Protocol(_))));
        assert!(matches!(
            read_frame(&mut &wire[..FRAME_HEADER_LEN + 3]),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn unknown_frame_type_is_not_a_stream_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::List, b"").unwrap();
        wire[5] = 0x55; // not a v1 frame type
                        // Header CRC covers the payload only, so the frame still parses...
        let f = read_frame(&mut &wire[..]).unwrap().unwrap();
        // ...and the dispatcher sees "unknown", not a torn connection.
        assert_eq!(f.frame_type(), None);
        assert_eq!(f.kind, 0x55);
    }

    #[test]
    fn fetch_requests_roundtrip() {
        let reqs = [
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Index(3),
                kind: RequestKind::Full,
                trace: None,
            },
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Name("t0".into()),
                kind: RequestKind::Level(2),
                trace: None,
            },
            FetchReq {
                container: "runs/x".into(),
                entry: EntrySel::Index(0),
                kind: RequestKind::Roi([1, 4, 0, 16, 2, 8]),
                trace: Some(TraceContextExt { trace_id: 0xDEAD_BEEF, parent_span: 7 }),
            },
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Name("t1".into()),
                kind: RequestKind::Raw,
                trace: Some(TraceContextExt { trace_id: u64::MAX, parent_span: 1 }),
            },
        ];
        for req in reqs {
            let back = FetchReq::decode(req.frame_type(), &req.encode()).unwrap();
            assert_eq!(back, req);
        }
        // Trailing garbage that is not a valid extension is rejected.
        let mut p = FetchReq {
            container: "c".into(),
            entry: EntrySel::Index(0),
            kind: RequestKind::Full,
            trace: None,
        }
        .encode();
        p.push(0);
        assert!(FetchReq::decode(FrameType::FetchFull, &p).is_err());
    }

    #[test]
    fn trace_context_extension_is_backward_compatible() {
        // Absent extension → byte-identical to the pre-extension encoding.
        let bare = FetchReq {
            container: "steps".into(),
            entry: EntrySel::Index(3),
            kind: RequestKind::Level(2),
            trace: None,
        };
        let mut legacy = Enc::new();
        legacy.string("steps");
        legacy.u8(0);
        legacy.u32(3);
        legacy.u8(2);
        assert_eq!(bare.encode(), legacy.finish());

        // Present extension → exactly 17 extra bytes.
        let traced = FetchReq {
            trace: Some(TraceContextExt { trace_id: 42, parent_span: 9 }),
            ..bare.clone()
        };
        assert_eq!(traced.encode().len(), bare.encode().len() + 17);
    }

    #[test]
    fn hostile_trace_context_extension_rejected() {
        let base = FetchReq {
            container: "c".into(),
            entry: EntrySel::Index(0),
            kind: RequestKind::Full,
            trace: Some(TraceContextExt { trace_id: 5, parent_span: 6 }),
        };
        let good = base.encode();
        assert!(FetchReq::decode(FrameType::FetchFull, &good).is_ok());

        // Unknown extension version byte.
        let mut bad = good.clone();
        let at = bad.len() - 17;
        bad[at] = 99;
        assert!(FetchReq::decode(FrameType::FetchFull, &bad).is_err());

        // Truncated extension (version byte present, ids cut short).
        assert!(FetchReq::decode(FrameType::FetchFull, &good[..good.len() - 3]).is_err());

        // Zero trace id (zero is the no-parent sentinel, never a real id).
        let zeroed = FetchReq {
            trace: Some(TraceContextExt { trace_id: 0, parent_span: 6 }),
            ..base.clone()
        };
        assert!(FetchReq::decode(FrameType::FetchFull, &zeroed.encode()).is_err());
    }

    #[test]
    fn trace_ok_roundtrip_and_hostile_rejection() {
        use stz_telemetry::trace::{SpanRecord, TraceRecord};
        let traces = vec![
            TraceRecord {
                trace_id: 0xABCD,
                kind: "full".into(),
                error: false,
                duration_ns: 1_500_000,
                dropped_spans: 0,
                spans: vec![
                    SpanRecord {
                        id: 1,
                        parent: 0,
                        name: "request".into(),
                        start_ns: 0,
                        duration_ns: 1_500_000,
                        attrs: vec![("kind".into(), "full".into())],
                    },
                    SpanRecord {
                        id: 2,
                        parent: 1,
                        name: "decode".into(),
                        start_ns: 100,
                        duration_ns: 1_000_000,
                        attrs: vec![],
                    },
                ],
            },
            TraceRecord {
                trace_id: 7,
                kind: "roi".into(),
                error: true,
                duration_ns: 9,
                dropped_spans: 3,
                spans: vec![],
            },
        ];
        let wire = encode_trace_ok(&traces);
        assert_eq!(decode_trace_ok(&wire).unwrap(), traces);

        // Unknown wire version.
        let mut bad = wire.clone();
        bad[0] = 99;
        assert!(decode_trace_ok(&bad).is_err());

        // Truncated span table.
        assert!(decode_trace_ok(&wire[..wire.len() - 5]).is_err());

        // Trailing byte after the last trace.
        let mut bad = wire.clone();
        bad.push(0xEE);
        assert!(decode_trace_ok(&bad).is_err());

        // Lying trace count (claims more than the payload carries).
        let mut bad = wire.clone();
        bad[1..5].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode_trace_ok(&bad).is_err());

        // Hostile count prefix: rejected before preallocation.
        let mut e = Enc::new();
        e.u8(TRACE_WIRE_VERSION);
        e.u32(u32::MAX);
        assert!(decode_trace_ok(&e.finish()).is_err());
    }

    #[test]
    fn fetched_field_roundtrip_and_validation() {
        let f = FetchedField {
            kind_tag: RequestKind::Full.tag(),
            type_tag: 0,
            dims: Dims::d3(2, 3, 4),
            data: (0..2 * 3 * 4 * 4u32).map(|i| i as u8).collect(),
        };
        let back = FetchedField::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
        let field: stz_field::Field<f32> = back.into_field().unwrap();
        assert_eq!(field.dims(), Dims::d3(2, 3, 4));

        // Wrong data length for the declared dims.
        let mut bad = f.encode();
        bad.pop();
        assert!(FetchedField::decode(&bad).is_err());

        // Wrong requested type.
        let again = FetchedField::decode(&f.encode()).unwrap();
        assert!(again.into_field::<f64>().is_err());
    }

    #[test]
    fn list_inspect_stats_err_roundtrip() {
        let list = vec![
            ContainerInfo { name: "a".into(), entries: 2, file_len: 1234 },
            ContainerInfo { name: "b".into(), entries: 1, file_len: 99 },
        ];
        assert_eq!(decode_list(&encode_list(&list)).unwrap(), list);

        let entries = vec![EntryInfo {
            name: "t0".into(),
            codec_id: 0,
            type_tag: 1,
            ndim: 3,
            dims: [16, 16, 16],
            eb: 1e-3,
            compressed_len: 4096,
            payload_crc: 0xDEAD_BEEF,
            sections: 15,
            levels: 3,
            interp: 2,
            level_bytes: vec![64, 512, 4096],
        }];
        assert_eq!(decode_inspect(&encode_inspect(&entries)).unwrap(), entries);

        let stats = ServerStats {
            requests: 10,
            containers: 2,
            cache_hits: 6,
            cache_misses: 4,
            cache_evictions: 1,
            cache_entries: 3,
            cache_bytes: 1 << 20,
            cache_capacity: 1 << 26,
        };
        assert_eq!(ServerStats::decode(&stats.encode()).unwrap(), stats);
        assert!((stats.hit_rate() - 0.6).abs() < 1e-12);

        match decode_err(&encode_err(err_code::NOT_FOUND, "no such container")) {
            ServeError::Remote { code, message } => {
                assert_eq!(code, err_code::NOT_FOUND);
                assert_eq!(message, "no such container");
            }
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn hostile_count_prefix_rejected() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // claims 4 billion containers
        assert!(decode_list(&e.finish()).is_err());
    }

    #[test]
    fn roi_kind_region_conversion() {
        let region = Region::d3(1..4, 0..16, 2..8);
        let kind = RequestKind::roi(&region);
        assert_eq!(kind.region().unwrap(), region);
        assert_eq!(RequestKind::Full.region(), None);
    }
}
