//! The concurrent archive server.
//!
//! [`Server::bind`] opens every `.stzc` under a root directory **once**;
//! from then on all connections share the same open
//! [`ContainerReader`]s, which is sound because every read is a
//! positioned (`pread`-style) [`ByteSource`] access with no seek
//! state. Each accepted connection runs on its own
//! thread; decode work inside a connection runs under the shared
//! rayon-shim pool, and every decoded block passes through the
//! [`DecodedCache`] so repeated requests skip decompression entirely.

use crate::cache::{CacheKey, DecodedCache};
use crate::error::{Result, ServeError};
use crate::proto::{
    encode_err, encode_inspect, encode_list, encode_metrics_ok, encode_trace_ok, err_code,
    read_frame, write_frame, ContainerInfo, EntryInfo, EntrySel, FetchReq, FetchedField, Frame,
    FrameType, RequestKind, ServerStats, PROTO_VERSION,
};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant, SystemTime};
use stz_backend::BackendScalar;
use stz_stream::{ByteSource, ContainerReader, FileSource, StreamError};
use stz_telemetry::{log_debug, log_warn, trace, Counter, Gauge, Histogram, LogLimiter, Registry};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Directory of `.stzc` containers to host (or a single `.stzc`
    /// file). Containers are addressed by file stem.
    pub root: PathBuf,
    /// Bind address; port `0` picks an ephemeral port (query it with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Byte budget of the decoded-block cache (`0` disables caching).
    pub cache_bytes: u64,
    /// Worker threads for decode work (`0` = auto: `STZ_THREADS` or all
    /// cores).
    pub threads: usize,
    /// Connections served concurrently before new ones are turned away
    /// with `ERR BUSY`.
    pub max_conns: usize,
    /// Per-socket read timeout: an idle or half-open peer cannot pin a
    /// connection thread forever. `None` waits indefinitely.
    pub read_timeout: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            root: PathBuf::from("."),
            addr: "127.0.0.1:0".into(),
            cache_bytes: 256 << 20,
            threads: 0,
            max_conns: 64,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// One hosted container: a path plus the currently pinned [`Snapshot`].
///
/// Requests **pin** a snapshot ([`Hosted::pin`]) for their whole
/// lifetime, so a concurrent `stz append`/`compact` on the same file
/// never changes what an in-flight request reads: the old generation's
/// `FileSource` keeps its file descriptor (and, across a compaction
/// rename, the old inode) alive until the last pin drops. New requests
/// probe the file's length+mtime and reopen on change, picking up the
/// freshly committed generation without a server restart.
#[derive(Debug)]
struct Hosted {
    path: PathBuf,
    current: RwLock<Arc<Snapshot>>,
}

/// One pinned view of a container: a complete committed generation.
#[derive(Debug)]
struct Snapshot {
    reader: ContainerReader<FileSource>,
    file_len: u64,
    mtime: Option<SystemTime>,
    /// Committed generation (always 1 for immutable v1/v2 containers) —
    /// part of every [`CacheKey`], so a flip re-keys the decoded cache.
    generation: u64,
}

impl Snapshot {
    fn open(path: &Path) -> std::result::Result<Snapshot, StreamError> {
        // Stat *before* opening: if the file changes between the stat and
        // the open, the recorded stamp is stale and the next probe simply
        // reopens again — converging, never serving a torn view (the
        // reader itself only trusts committed generations).
        let meta = std::fs::metadata(path)?;
        let mtime = meta.modified().ok();
        let reader = ContainerReader::open_path(path)?;
        let file_len = reader.source().len();
        let generation = reader.generation();
        Ok(Snapshot { reader, file_len, mtime, generation })
    }
}

impl Hosted {
    fn open(path: PathBuf) -> std::result::Result<Hosted, StreamError> {
        let snapshot = Snapshot::open(&path)?;
        Ok(Hosted { path, current: RwLock::new(Arc::new(snapshot)) })
    }

    /// Pin the current generation, reopening first if the file changed on
    /// disk (length or mtime — covering both in-place commits and the
    /// compaction rename). If a reopen fails mid-mutation, the previous
    /// snapshot keeps serving: readers never lose a committed generation.
    fn pin(&self) -> Arc<Snapshot> {
        let current = self.current.read().expect("snapshot lock poisoned").clone();
        let Ok(meta) = std::fs::metadata(&self.path) else { return current };
        let (len, mtime) = (meta.len(), meta.modified().ok());
        if len == current.file_len && mtime == current.mtime {
            return current;
        }
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        // Another request may have reopened while this one waited.
        if len == slot.file_len && mtime == slot.mtime {
            return slot.clone();
        }
        match Snapshot::open(&self.path) {
            Ok(next) => {
                log_debug!("stz-serve", "reopened changed container";
                    "path" => self.path.display(), "generation" => next.generation);
                *slot = Arc::new(next);
            }
            Err(e) => {
                static REOPEN_LOGS: LogLimiter = LogLimiter::new(1_000);
                if let Some(suppressed) = REOPEN_LOGS.permit() {
                    log_warn!("stz-serve", "cannot reopen changed container, serving pinned generation: {e}";
                        "path" => self.path.display(), "suppressed" => suppressed);
                }
            }
        }
        slot.clone()
    }
}

/// Request-kind labels used on the per-kind metrics; the last entry is
/// the bucket for frame types this server does not recognize.
const KIND_LABELS: [&str; 10] = [
    "list",
    "inspect",
    "stats",
    "metrics",
    "trace",
    "full",
    "roi",
    "progressive",
    "raw",
    "unknown",
];

/// Telemetry handles for one request kind.
#[derive(Debug)]
struct KindMetrics {
    requests: Arc<Counter>,
    latency: Arc<Histogram>,
    bytes: Arc<Histogram>,
}

/// All server-side telemetry handles, resolved once at bind time so the
/// request path never touches the registry lock.
#[derive(Debug)]
struct ServeMetrics {
    /// Parallel to [`KIND_LABELS`].
    kinds: Vec<KindMetrics>,
    connections_total: Arc<Counter>,
    connections_active: Arc<Gauge>,
    connections_rejected: Arc<Counter>,
    decode_ns: Arc<Histogram>,
}

impl ServeMetrics {
    fn resolve(reg: &Registry) -> ServeMetrics {
        ServeMetrics {
            kinds: KIND_LABELS
                .iter()
                .map(|kind| KindMetrics {
                    requests: reg.counter("stzp_requests_total", &[("kind", kind)]),
                    latency: reg.latency("stzp_request_latency_ns", &[("kind", kind)]),
                    bytes: reg.histogram("stzp_response_bytes", &[("kind", kind)], 64),
                })
                .collect(),
            connections_total: reg.counter("stzp_connections_total", &[]),
            connections_active: reg.gauge("stzp_connections_active", &[]),
            connections_rejected: reg.counter("stzp_connections_rejected_total", &[]),
            decode_ns: reg.latency("stz_serve_decode_ns", &[]),
        }
    }

    fn kind(&self, label: &str) -> &KindMetrics {
        let i = KIND_LABELS.iter().position(|k| *k == label).unwrap_or(KIND_LABELS.len() - 1);
        &self.kinds[i]
    }
}

/// State shared by the accept loop and every connection thread.
#[derive(Debug)]
struct ServerState {
    containers: BTreeMap<String, Hosted>,
    cache: DecodedCache,
    pool: rayon::ThreadPool,
    requests: AtomicU64,
    active: AtomicUsize,
    max_conns: usize,
    read_timeout: Option<Duration>,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
}

/// A bound (but not yet accepting) archive server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Open every container under `opts.root` and bind the listen socket.
    ///
    /// Unreadable or corrupt `.stzc` files are skipped with a warning on
    /// stderr — one bad file must not take the whole archive service
    /// down. Hosting an empty directory is allowed (the server answers
    /// `LIST` with nothing).
    pub fn bind(opts: ServeOptions) -> Result<Server> {
        // Resolve SIMD dispatch up front so the stz_simd_dispatch gauge is
        // in every `stz stats` exposition, not only after the first decode.
        let lane = stz_simd::announce();
        log_debug!("stz-serve", "simd dispatch resolved"; "lane" => lane.name());
        let containers = scan_containers(&opts.root)?;
        let listener = TcpListener::bind(&opts.addr)?;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(opts.threads)
            .build()
            .map_err(|e| ServeError::protocol(format!("cannot build thread pool: {e}")))?;
        let cache = DecodedCache::new(opts.cache_bytes);
        cache.register_metrics(stz_telemetry::global());
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                containers,
                cache,
                pool,
                requests: AtomicU64::new(0),
                active: AtomicUsize::new(0),
                max_conns: opts.max_conns.max(1),
                read_timeout: opts.read_timeout,
                shutdown: AtomicBool::new(false),
                metrics: ServeMetrics::resolve(stz_telemetry::global()),
            }),
        })
    }

    /// The bound address (the real port when `addr` requested port 0).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Names of the hosted containers.
    pub fn container_names(&self) -> Vec<&str> {
        self.state.containers.keys().map(String::as_str).collect()
    }

    /// Serve until [`ServerHandle::stop`] is called (blocking). Accept
    /// and thread-spawn errors on individual connections are logged and
    /// survived — nothing a single peer does stops the accept loop.
    pub fn run(self) -> Result<()> {
        // Connections beyond `max_conns` get a short-lived thread whose
        // only job is to say `ERR BUSY`; beyond this extra headroom a
        // flood is shed by closing the socket without spawning anything,
        // so thread count stays bounded at max_conns + HEADROOM.
        const BUSY_HEADROOM: usize = 8;
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(stream) => stream,
                Err(e) => {
                    log_warn!("stz-serve", "accept failed: {e}");
                    continue;
                }
            };
            self.state.metrics.connections_total.inc();
            let peer = peer_label(&stream);
            // Claim the connection slot *before* spawning, so the cap is
            // enforced here, not in a thread that already exists.
            let active = self.state.active.fetch_add(1, Ordering::SeqCst) + 1;
            self.state.metrics.connections_active.inc();
            if active > self.state.max_conns + BUSY_HEADROOM {
                self.state.active.fetch_sub(1, Ordering::SeqCst);
                self.state.metrics.connections_active.dec();
                self.state.metrics.connections_rejected.inc();
                log_debug!("stz-serve", "shedding connection over busy headroom"; "peer" => peer);
                drop(stream);
                continue;
            }
            let busy = active > self.state.max_conns;
            let state = Arc::clone(&self.state);
            let spawned =
                std::thread::Builder::new().name("stz-serve-conn".into()).spawn(move || {
                    let _guard = ActiveGuard(&state);
                    handle_connection(&state, stream, busy);
                });
            if let Err(e) = spawned {
                self.state.active.fetch_sub(1, Ordering::SeqCst);
                self.state.metrics.connections_active.dec();
                log_warn!("stz-serve", "cannot spawn connection thread: {e}"; "peer" => peer);
            }
        }
        Ok(())
    }

    /// Run the accept loop on a background thread, returning a handle
    /// that stops it on [`ServerHandle::stop`] (or drop). This is how
    /// tests and the bench harness host a loopback server in-process.
    pub fn spawn(self) -> Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let join = std::thread::Builder::new()
            .name("stz-serve-accept".into())
            .spawn(move || {
                let _ = self.run();
            })
            .map_err(ServeError::Io)?;
        Ok(ServerHandle { addr, state, join: Some(join) })
    }
}

/// Handle to a running [`Server`]; stops it when dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and join the accept loop. In-flight connections
    /// finish their current request; no new connections are accepted.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(join) = self.join.take() else { return };
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = join.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Open the containers under `root` (or the single file `root`).
fn scan_containers(root: &Path) -> Result<BTreeMap<String, Hosted>> {
    let mut out = BTreeMap::new();
    let mut paths: Vec<PathBuf> = Vec::new();
    if root.is_file() {
        paths.push(root.to_path_buf());
    } else {
        for entry in std::fs::read_dir(root)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "stzc") {
                paths.push(path);
            }
        }
    }
    for path in paths {
        let Some(name) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
            continue;
        };
        match Hosted::open(path.clone()) {
            Ok(hosted) => {
                out.insert(name, hosted);
            }
            Err(e) => {
                log_warn!("stz-serve", "skipping unreadable container: {e}"; "path" => path.display())
            }
        }
    }
    Ok(out)
}

/// Decrement the active-connection count (and its gauge) when a
/// connection thread exits, however it exits.
struct ActiveGuard<'a>(&'a ServerState);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
        self.0.metrics.connections_active.dec();
    }
}

/// The peer address as a log label (`"?"` when the socket cannot say).
fn peer_label(stream: &TcpStream) -> String {
    stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into())
}

fn handle_connection(state: &ServerState, mut stream: TcpStream, busy: bool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(state.read_timeout);
    let _ = stream.set_write_timeout(state.read_timeout);
    if busy {
        state.metrics.connections_rejected.inc();
        log_debug!("stz-serve", "connection over limit answered BUSY";
            "peer" => peer_label(&stream));
        let payload = encode_err(err_code::BUSY, "server is at its connection limit");
        let _ = write_frame(&mut stream, FrameType::Err, &payload);
        return;
    }
    // Serve until the peer closes, a frame is malformed, or I/O fails.
    // Protocol violations get a best-effort ERR before the close so
    // well-meaning-but-buggy clients see *why*.
    if let Err(e) = serve_loop(state, &mut stream) {
        let (code, msg) = match &e {
            ServeError::Protocol(msg) => (err_code::BAD_REQUEST, msg.clone()),
            _ => {
                // I/O errors: the socket is gone, nothing to say to the
                // peer — note it for anyone watching at debug.
                log_debug!("stz-serve", "connection dropped: {e}"; "peer" => peer_label(&stream));
                return;
            }
        };
        // A misbehaving peer (or a port scanner) can produce these at
        // line rate; collapse the flood into one line per interval.
        static REJECT_LOGS: LogLimiter = LogLimiter::new(1_000);
        if let Some(suppressed) = REJECT_LOGS.permit() {
            log_warn!("stz-serve", "rejecting connection: {msg}";
                "peer" => peer_label(&stream), "suppressed" => suppressed);
        }
        let _ = write_frame(&mut stream, FrameType::Err, &encode_err(code, &msg));
    }
}

fn serve_loop(state: &ServerState, stream: &mut TcpStream) -> Result<()> {
    // Handshake first: HELLO in, HELLO_OK out.
    let Some(hello) = read_frame(stream)? else { return Ok(()) };
    if hello.frame_type() != Some(FrameType::Hello) {
        return Err(ServeError::protocol("expected HELLO as the first frame"));
    }
    let client_version = *hello.payload.first().unwrap_or(&0);
    if client_version != PROTO_VERSION {
        let payload = encode_err(
            err_code::UNSUPPORTED,
            &format!("client speaks STZP v{client_version}, server speaks v{PROTO_VERSION}"),
        );
        write_frame(stream, FrameType::Err, &payload)?;
        return Ok(());
    }
    let mut hello_ok = crate::proto::Enc::new();
    hello_ok.u8(PROTO_VERSION);
    hello_ok.string(concat!("stz-serve/", env!("CARGO_PKG_VERSION")));
    write_frame(stream, FrameType::HelloOk, &hello_ok.finish())?;

    let peer = peer_label(stream);
    while let Some(frame) = read_frame(stream)? {
        state.requests.fetch_add(1, Ordering::Relaxed);
        dispatch(state, stream, frame, &peer)?;
    }
    Ok(())
}

/// A response body: freshly encoded bytes, or a shared cached block.
enum Body {
    Owned(Vec<u8>),
    Cached(Arc<Vec<u8>>),
}

impl Body {
    fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Cached(v) => v,
        }
    }
}

/// The metric `kind` label of one request frame (see [`KIND_LABELS`]).
fn frame_kind(frame: &Frame) -> &'static str {
    match frame.frame_type() {
        Some(FrameType::List) => "list",
        Some(FrameType::Inspect) => "inspect",
        Some(FrameType::Stats) => "stats",
        Some(FrameType::Metrics) => "metrics",
        Some(FrameType::TraceGet) => "trace",
        Some(FrameType::FetchFull) => "full",
        Some(FrameType::FetchRoi) => "roi",
        Some(FrameType::FetchProgressive) => "progressive",
        Some(FrameType::FetchRawSection) => "raw",
        _ => "unknown",
    }
}

/// Answer one request frame. Request-level failures are answered with
/// `ERR` and the connection stays up; only framing/socket failures
/// propagate and tear it down. Every reply — `ERR` included — flows
/// through this single write site, which records the request count,
/// wall-clock latency, and response size under the frame's `kind` label.
///
/// This is also where the request's trace root opens. Fetch payloads are
/// decoded *before* the root so the client's trace-context extension (if
/// any) can parent the server-side span tree under the client's ids; the
/// parse interval itself is then recorded as a leaf span (clamped to the
/// trace origin). `TRACE_GET` is served untraced — a trace of the trace
/// fetch would never be complete when it is snapshotted.
fn dispatch(state: &ServerState, stream: &mut TcpStream, frame: Frame, peer: &str) -> Result<()> {
    let kind_label = frame_kind(&frame);
    let m = state.metrics.kind(kind_label);
    m.requests.inc();
    let started = Instant::now();

    let fetch_req = match frame.frame_type() {
        Some(
            ft @ (FrameType::FetchFull
            | FrameType::FetchRoi
            | FrameType::FetchProgressive
            | FrameType::FetchRawSection),
        ) => Some(FetchReq::decode(ft, &frame.payload)?),
        _ => None,
    };
    let parsed = Instant::now();

    let link = fetch_req.as_ref().and_then(|r| r.trace).map(|t| (t.trace_id, t.parent_span));
    let mut guard = (frame.frame_type() != Some(FrameType::TraceGet))
        .then(|| trace::collector().start(kind_label, "request", link));
    if let Some(g) = guard.as_mut().filter(|g| g.is_active()) {
        g.attr("kind", kind_label);
        if let Some(req) = &fetch_req {
            g.attr("container", &req.container);
        }
        trace::record_span("connection", started, started, &[("peer", peer.to_string())]);
        trace::record_span(
            "parse",
            started,
            parsed,
            &[("payload_bytes", frame.payload.len().to_string())],
        );
    }

    let (reply, body) = respond(state, &frame, fetch_req.as_ref())?;

    let write_started = Instant::now();
    let result = write_frame(stream, reply, body.as_slice());
    if let Some(g) = guard.as_mut().filter(|g| g.is_active()) {
        trace::record_span(
            "write",
            write_started,
            Instant::now(),
            &[("bytes", body.as_slice().len().to_string())],
        );
        if reply == FrameType::Err || result.is_err() {
            g.set_error();
        }
    }
    m.latency.record_duration(started.elapsed());
    m.bytes.record(body.as_slice().len() as u64);
    result
}

/// Build the reply to one request frame. Fetch requests arrive
/// pre-decoded from [`dispatch`] (their payload carries the trace link).
fn respond(
    state: &ServerState,
    frame: &Frame,
    fetch_req: Option<&FetchReq>,
) -> Result<(FrameType, Body)> {
    let err = |code: u16, msg: &str| Ok((FrameType::Err, Body::Owned(encode_err(code, msg))));
    match frame.frame_type() {
        Some(FrameType::List) => {
            let list: Vec<ContainerInfo> = state
                .containers
                .iter()
                .map(|(name, hosted)| {
                    let snapshot = hosted.pin();
                    ContainerInfo {
                        name: name.clone(),
                        entries: snapshot.reader.entry_count() as u32,
                        file_len: snapshot.file_len,
                    }
                })
                .collect();
            Ok((FrameType::ListOk, Body::Owned(encode_list(&list))))
        }
        Some(FrameType::Inspect) => {
            let mut d = crate::proto::Dec::new(&frame.payload);
            let name = d.string()?;
            d.expect_end()?;
            match state.containers.get(&name) {
                Some(hosted) => {
                    let snapshot = hosted.pin();
                    let entries: Vec<EntryInfo> =
                        snapshot.reader.entries().map(|m| EntryInfo::from_meta(&m)).collect();
                    Ok((FrameType::InspectOk, Body::Owned(encode_inspect(&entries))))
                }
                None => err(err_code::NOT_FOUND, &format!("no hosted container named {name:?}")),
            }
        }
        Some(FrameType::Stats) => {
            let c = state.cache.counters();
            let stats = ServerStats {
                requests: state.requests.load(Ordering::Relaxed),
                containers: state.containers.len() as u32,
                cache_hits: c.hits,
                cache_misses: c.misses,
                cache_evictions: c.evictions,
                cache_entries: c.entries,
                cache_bytes: c.bytes,
                cache_capacity: c.capacity,
            };
            Ok((FrameType::StatsOk, Body::Owned(stats.encode())))
        }
        Some(FrameType::Metrics) => {
            let text = stz_telemetry::global().render();
            Ok((FrameType::MetricsOk, Body::Owned(encode_metrics_ok(&text))))
        }
        Some(FrameType::TraceGet) => {
            let d = crate::proto::Dec::new(&frame.payload);
            d.expect_end()?;
            let retained = trace::collector().snapshot();
            Ok((FrameType::TraceOk, Body::Owned(encode_trace_ok(&retained))))
        }
        Some(
            FrameType::FetchFull
            | FrameType::FetchRoi
            | FrameType::FetchProgressive
            | FrameType::FetchRawSection,
        ) => {
            let req = fetch_req.expect("dispatch decodes every fetch frame");
            match handle_fetch(state, req) {
                Ok(payload) => {
                    let reply = if req.kind == RequestKind::Raw {
                        FrameType::RawOk
                    } else {
                        FrameType::FetchOk
                    };
                    Ok((reply, Body::Cached(payload)))
                }
                Err((code, msg)) => err(code, &msg),
            }
        }
        // HELLO twice, response types, or a frame type from the future:
        // answer ERR, keep the connection.
        _ => err(
            err_code::BAD_REQUEST,
            &format!("frame type 0x{:02x} is not a request this server knows", frame.kind),
        ),
    }
}

/// Serve one fetch: resolve, consult the cache, decode on a miss.
fn handle_fetch(
    state: &ServerState,
    req: &FetchReq,
) -> std::result::Result<Arc<Vec<u8>>, (u16, String)> {
    let hosted = state.containers.get(&req.container).ok_or_else(|| {
        (err_code::NOT_FOUND, format!("no hosted container named {:?}", req.container))
    })?;
    // Pin one generation for the whole request: resolve, cache lookup, and
    // decode all read the same committed view even if a writer commits or
    // compacts concurrently.
    let snapshot = hosted.pin();
    let reader = &snapshot.reader;
    let index = match &req.entry {
        EntrySel::Index(i) => {
            let i = *i as usize;
            if i >= reader.entry_count() {
                return Err((
                    err_code::NOT_FOUND,
                    format!(
                        "entry index {i} out of range ({} entries in {:?})",
                        reader.entry_count(),
                        req.container
                    ),
                ));
            }
            i
        }
        EntrySel::Name(name) => reader.find(name).ok_or_else(|| {
            (err_code::NOT_FOUND, format!("no entry named {name:?} in {:?}", req.container))
        })?,
    };
    let meta = reader.entry_meta(index).expect("index validated above");

    // Validate request-specific parameters *before* touching the cache so
    // malformed requests are cheap and never occupy a slot.
    let bytes_per: u64 = if meta.type_tag() == 0 { 4 } else { 8 };
    let too_big = |decoded: u64| {
        (
            err_code::UNSUPPORTED,
            format!(
                "response of {decoded} bytes exceeds the {} byte frame cap; \
                 fetch an ROI or a preview level instead",
                crate::proto::MAX_FRAME_PAYLOAD
            ),
        )
    };
    match req.kind {
        RequestKind::Roi(_) => {
            let region = req
                .kind
                .region()
                .ok_or_else(|| (err_code::BAD_REQUEST, "empty or inverted ROI bounds".into()))?;
            if !region.fits_in(meta.dims()) {
                return Err((
                    err_code::BAD_REQUEST,
                    format!("ROI {region:?} outside entry dims {}", meta.dims()),
                ));
            }
            if region.len() as u64 * bytes_per >= crate::proto::MAX_FRAME_PAYLOAD as u64 {
                return Err(too_big(region.len() as u64 * bytes_per));
            }
        }
        RequestKind::Level(0) => {
            return Err((err_code::BAD_REQUEST, "preview level must be ≥ 1".into()));
        }
        // Full decodes and raw payloads have statically known sizes:
        // refuse ones the frame cap cannot carry *before* decoding
        // anything (level previews are checked post-decode below — their
        // size needs the level plan, and they are the small requests).
        RequestKind::Full => {
            if meta.dims().len() as u64 * bytes_per >= crate::proto::MAX_FRAME_PAYLOAD as u64 {
                return Err(too_big(meta.dims().len() as u64 * bytes_per));
            }
        }
        RequestKind::Raw => {
            if meta.compressed_len() >= crate::proto::MAX_FRAME_PAYLOAD as u64 {
                return Err(too_big(meta.compressed_len()));
            }
        }
        RequestKind::Level(_) => {}
    }

    let key = CacheKey {
        container: req.container.clone(),
        generation: snapshot.generation,
        entry: index as u32,
        kind: req.kind,
    };
    let cached = {
        let mut cache_span = trace::span("cache");
        let cached = state.cache.get(&key);
        cache_span.attr("hit", cached.is_some());
        cached
    };
    if let Some(cached) = cached {
        return Ok(cached);
    }

    let decoded = {
        let _decode = state.metrics.decode_ns.span();
        let _decode_span = trace::span("decode");
        state.pool.install(|| match meta.type_tag() {
            0 => decode_block::<f32>(reader, index, &req.kind),
            _ => decode_block::<f64>(reader, index, &req.kind),
        })
    }
    .map_err(|e| stream_err(&e))?;
    // Backstop for the one kind whose size is only known post-decode
    // (level previews): never hand `write_frame` a payload it will
    // refuse — that would read as a framing error and tear the
    // connection instead of answering `ERR`.
    if decoded.len() > crate::proto::MAX_FRAME_PAYLOAD as usize {
        return Err(too_big(decoded.len() as u64));
    }
    let decoded = Arc::new(decoded);
    state.cache.insert(key, Arc::clone(&decoded));
    Ok(decoded)
}

/// Decode one block to its response payload (`FETCH_OK` body, or the raw
/// compressed payload for [`RequestKind::Raw`]).
fn decode_block<T: BackendScalar>(
    reader: &ContainerReader<FileSource>,
    index: usize,
    kind: &RequestKind,
) -> std::result::Result<Vec<u8>, StreamError> {
    let entry = reader.entry::<T>(index)?;
    let field = match kind {
        RequestKind::Raw => return entry.read_payload(),
        RequestKind::Full => entry.decompress_parallel()?,
        RequestKind::Level(k) => entry.decompress_level(*k)?,
        RequestKind::Roi(_) => {
            let region = kind.region().expect("validated by handle_fetch");
            entry.decompress_region(&region)?
        }
    };
    let mut encode_span = trace::span("encode");
    let mut data = Vec::with_capacity(field.nbytes());
    for &v in field.as_slice() {
        v.write_exact(&mut data);
    }
    encode_span.attr("bytes", data.len());
    Ok(FetchedField { kind_tag: kind.tag(), type_tag: T::TYPE_TAG, dims: field.dims(), data }
        .encode())
}

/// Map a container failure to an `ERR` code + message.
fn stream_err(e: &StreamError) -> (u16, String) {
    let code = match e {
        StreamError::Unsupported(_) => err_code::UNSUPPORTED,
        StreamError::Corrupt(_) | StreamError::Codec(_) => err_code::CORRUPT,
        StreamError::Io(_) => err_code::INTERNAL,
    };
    (code, e.to_string())
}
