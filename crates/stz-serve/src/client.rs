//! Blocking STZP client.
//!
//! One [`Client`] wraps one connection: a version handshake up front,
//! then synchronous request/response pairs. Every response frame is
//! CRC-verified by the framing layer and validated against the request
//! before it is returned, so a corrupted or lying server yields a clean
//! [`ServeError`] — never a panic, and (with the default timeout) never
//! a hang.
//!
//! The transport is generic: [`Client::connect`] produces the everyday
//! `Client<TcpStream>`, while [`Client::handshake`] accepts any
//! [`Read`]`+`[`Write`] stream — tests and fuzz harnesses drive the full
//! response-validation path against scripted in-memory peers without a
//! socket.

use crate::error::{Result, ServeError};
use crate::proto::{
    decode_err, decode_inspect, decode_list, decode_trace_ok, read_frame, write_frame,
    ContainerInfo, Enc, EntryInfo, EntrySel, FetchReq, FetchedField, Frame, FrameType, RequestKind,
    ServerStats, TraceContextExt, PROTO_VERSION,
};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use stz_field::Region;

/// Default socket timeout for reads and writes.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A connected STZP client over any bidirectional byte stream.
#[derive(Debug)]
pub struct Client<S: Read + Write = TcpStream> {
    stream: S,
    /// Server software identifier from the handshake.
    server: String,
    /// Recycled request-encoding buffer: fetches on a steady connection
    /// reuse one allocation instead of building a fresh `Vec` per call.
    scratch: Vec<u8>,
}

impl Client<TcpStream> {
    /// Connect and complete the version handshake with the default
    /// timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, Some(DEFAULT_TIMEOUT))
    }

    /// Connect with an explicit socket timeout (`None` = block forever).
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Client::handshake(stream)
    }
}

impl<S: Read + Write> Client<S> {
    /// Complete the version handshake over an already-connected stream.
    pub fn handshake(stream: S) -> Result<Client<S>> {
        let mut client = Client { stream, server: String::new(), scratch: Vec::new() };
        let mut hello = Enc::new();
        hello.u8(PROTO_VERSION);
        let reply = client.roundtrip(FrameType::Hello, &hello.finish())?;
        let payload = expect(reply, FrameType::HelloOk)?;
        let mut d = crate::proto::Dec::new(&payload);
        let version = d.u8()?;
        if version != PROTO_VERSION {
            return Err(ServeError::protocol(format!(
                "server speaks STZP v{version}, this client speaks v{PROTO_VERSION}"
            )));
        }
        client.server = d.string().unwrap_or_default();
        Ok(client)
    }

    /// Server software identifier (e.g. `stz-serve/0.1.0`).
    pub fn server_id(&self) -> &str {
        &self.server
    }

    /// Send one frame and read the response, surfacing `ERR` replies as
    /// [`ServeError::Remote`].
    fn roundtrip(&mut self, kind: FrameType, payload: &[u8]) -> Result<Frame> {
        write_frame(&mut self.stream, kind, payload)?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::protocol("server closed the connection mid-request"))?;
        if frame.frame_type() == Some(FrameType::Err) {
            return Err(decode_err(&frame.payload));
        }
        Ok(frame)
    }

    /// The hosted containers.
    pub fn list(&mut self) -> Result<Vec<ContainerInfo>> {
        let reply = self.roundtrip(FrameType::List, &[])?;
        decode_list(&expect(reply, FrameType::ListOk)?)
    }

    /// The entry table of one hosted container.
    pub fn inspect(&mut self, container: &str) -> Result<Vec<EntryInfo>> {
        let mut e = Enc::new();
        e.string(container);
        let reply = self.roundtrip(FrameType::Inspect, &e.finish())?;
        decode_inspect(&expect(reply, FrameType::InspectOk)?)
    }

    /// Request + cache counters.
    pub fn stats(&mut self) -> Result<ServerStats> {
        let reply = self.roundtrip(FrameType::Stats, &[])?;
        ServerStats::decode(&expect(reply, FrameType::StatsOk)?)
    }

    /// The server's telemetry exposition (versioned Prometheus-style
    /// text; parse it with [`stz_telemetry::expo::parse`]).
    pub fn metrics(&mut self) -> Result<String> {
        let reply = self.roundtrip(FrameType::Metrics, &[])?;
        crate::proto::decode_metrics_ok(&expect(reply, FrameType::MetricsOk)?)
    }

    /// Issue any decoded fetch ([`RequestKind::Raw`] has its own method).
    pub fn fetch(&mut self, req: &FetchReq) -> Result<FetchedField> {
        if req.kind == RequestKind::Raw {
            return Err(ServeError::protocol("use fetch_raw for raw-section fetches"));
        }
        let reply = self.roundtrip_reusing(req)?;
        let fetched = FetchedField::decode(&expect(reply, FrameType::FetchOk)?)?;
        if fetched.kind_tag != req.kind.tag() {
            return Err(ServeError::protocol(format!(
                "response kind tag {} does not match request kind {}",
                fetched.kind_tag,
                req.kind.tag()
            )));
        }
        Ok(fetched)
    }

    /// The server's retained request traces (tail-sampled slowest/error
    /// traces per frame kind), full span tables included.
    pub fn trace(&mut self) -> Result<Vec<stz_telemetry::trace::TraceRecord>> {
        let reply = self.roundtrip(FrameType::TraceGet, &[])?;
        decode_trace_ok(&expect(reply, FrameType::TraceOk)?)
    }

    /// Full decode of one entry.
    pub fn fetch_full(&mut self, container: &str, entry: EntrySel) -> Result<FetchedField> {
        self.fetch(&FetchReq {
            container: container.into(),
            entry,
            kind: RequestKind::Full,
            trace: None,
        })
    }

    /// Progressive preview through level `k`.
    pub fn fetch_level(&mut self, container: &str, entry: EntrySel, k: u8) -> Result<FetchedField> {
        self.fetch(&FetchReq {
            container: container.into(),
            entry,
            kind: RequestKind::Level(k),
            trace: None,
        })
    }

    /// Region decode.
    pub fn fetch_roi(
        &mut self,
        container: &str,
        entry: EntrySel,
        region: &Region,
    ) -> Result<FetchedField> {
        self.fetch(&FetchReq {
            container: container.into(),
            entry,
            kind: RequestKind::roi(region),
            trace: None,
        })
    }

    /// The compressed payload bytes of one entry, undecoded (CRC-verified
    /// by the server against the container index, and by this client
    /// against the frame checksum).
    pub fn fetch_raw(&mut self, container: &str, entry: EntrySel) -> Result<Vec<u8>> {
        let req =
            FetchReq { container: container.into(), entry, kind: RequestKind::Raw, trace: None };
        let reply = self.roundtrip_reusing(&req)?;
        expect(reply, FrameType::RawOk)
    }

    /// Send a fetch request encoded into the recycled scratch buffer and
    /// read the response. The buffer survives errors, so a failed fetch
    /// does not cost the next one its allocation. When the calling thread
    /// has an active trace and the request carries no explicit context,
    /// the thread's trace id + current span are injected as the wire
    /// extension — distributed tracing with zero caller changes.
    fn roundtrip_reusing(&mut self, req: &FetchReq) -> Result<Frame> {
        let injected;
        let req = match (&req.trace, stz_telemetry::trace::current_context()) {
            (None, Some(ctx)) => {
                injected = FetchReq {
                    trace: Some(TraceContextExt {
                        trace_id: ctx.trace_id(),
                        parent_span: ctx.span_id(),
                    }),
                    ..req.clone()
                };
                &injected
            }
            _ => req,
        };
        let payload = req.encode_reusing(std::mem::take(&mut self.scratch));
        let result = self.roundtrip(req.frame_type(), &payload);
        self.scratch = payload;
        result
    }
}

/// Require a specific response type, yielding its payload.
fn expect(frame: Frame, want: FrameType) -> Result<Vec<u8>> {
    match frame.frame_type() {
        Some(t) if t == want => Ok(frame.payload),
        _ => Err(ServeError::protocol(format!(
            "expected {want:?}, server sent frame type 0x{:02x}",
            frame.kind
        ))),
    }
}
