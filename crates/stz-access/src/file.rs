//! [`FileStore`] — the out-of-core store over an on-disk (or any
//! [`ByteSource`]-backed) container.

use crate::desc::EntryDesc;
use crate::error::Result;
use crate::{resolve_sel, validate_fetch, Entry, EntrySel, Fetch, FetchedField, Provenance, Store};
use std::path::Path;
use std::sync::Arc;
use stz_backend::BackendScalar;
use stz_stream::{ByteSource, ContainerReader, FileSource};

/// The out-of-core [`Store`]: wraps a [`ContainerReader`] over any
/// [`ByteSource`], so fetches read **only the byte ranges the request
/// needs** (a level-1 preview touches ~2% of the file; an ROI touches the
/// level-1 stream plus intersecting sub-blocks).
///
/// The reader is shared behind an [`Arc`]; all container I/O is positioned
/// reads, so opened entries can fetch concurrently.
#[derive(Debug)]
pub struct FileStore<S: ByteSource + 'static> {
    reader: Arc<ContainerReader<S>>,
    label: String,
    /// Descriptors built once at open — the footer is already parsed and
    /// the container immutable behind this reader; `list`/`open` clone.
    descs: Vec<EntryDesc>,
}

impl FileStore<FileSource> {
    /// Open a `.stzc` container file from disk.
    pub fn open_path(path: impl AsRef<Path>) -> Result<FileStore<FileSource>> {
        let path = path.as_ref();
        FileStore::open_source(FileSource::open(path)?, path.display().to_string())
    }
}

impl<S: ByteSource + 'static> FileStore<S> {
    /// Open a container over an arbitrary byte source (a memory buffer, a
    /// [`CountingSource`](stz_stream::CountingSource) wrapper, …),
    /// labelled for provenance.
    pub fn open_source(source: S, label: impl Into<String>) -> Result<FileStore<S>> {
        let reader = ContainerReader::open(source)?;
        let descs = reader
            .entries()
            .enumerate()
            .map(|(i, meta)| EntryDesc::from_meta(i as u32, &meta))
            .collect();
        Ok(FileStore { reader: Arc::new(reader), label: label.into(), descs })
    }

    /// The underlying container reader (e.g. to inspect a counting
    /// source's tallies).
    pub fn reader(&self) -> &ContainerReader<S> {
        &self.reader
    }
}

impl<S: ByteSource + 'static> Store for FileStore<S> {
    fn locate(&self) -> String {
        self.label.clone()
    }

    fn list(&self) -> Result<Vec<EntryDesc>> {
        Ok(self.descs.clone())
    }

    fn open(&self, sel: &EntrySel) -> Result<Box<dyn Entry>> {
        let desc = resolve_sel(&self.descs, sel, &self.label)?.clone();
        Ok(Box::new(FileEntry {
            reader: Arc::clone(&self.reader),
            label: self.label.clone(),
            desc,
        }))
    }
}

/// One opened [`FileStore`] entry. Holds its own handle on the shared
/// reader, so it outlives the store that opened it.
struct FileEntry<S: ByteSource + 'static> {
    reader: Arc<ContainerReader<S>>,
    label: String,
    desc: EntryDesc,
}

impl<S: ByteSource + 'static> FileEntry<S> {
    fn fetch_typed<T: BackendScalar>(&self, fetch: &Fetch) -> Result<FetchedField> {
        let entry = self.reader.entry::<T>(self.desc.index as usize)?;
        let provenance = Provenance::File(self.label.clone());
        let field = match fetch {
            Fetch::Full => entry.decompress()?,
            Fetch::Level(k) => entry.decompress_level(*k)?,
            Fetch::Region(region) => entry.decompress_region(region)?,
            Fetch::Progressive(k) => entry.progressive()?.decode_to(*k)?,
            Fetch::RawSection(_) => {
                return Ok(FetchedField {
                    fetch: fetch.clone(),
                    dims: self.desc.dims,
                    type_tag: self.desc.type_tag,
                    codec_id: self.desc.codec_id,
                    data: entry.read_payload()?,
                    provenance,
                })
            }
        };
        Ok(FetchedField::from_field(fetch.clone(), self.desc.codec_id, &field, provenance))
    }
}

impl<S: ByteSource + 'static> Entry for FileEntry<S> {
    fn desc(&self) -> &EntryDesc {
        &self.desc
    }

    fn fetch(&self, fetch: &Fetch) -> Result<FetchedField> {
        validate_fetch(fetch, &self.desc)?;
        let started = std::time::Instant::now();
        let fetched = match self.desc.type_tag {
            0 => self.fetch_typed::<f32>(fetch),
            _ => self.fetch_typed::<f64>(fetch),
        }?;
        crate::record_fetch("file", fetched.data.len(), started);
        Ok(fetched)
    }
}
