//! Location strings: paths and `stz://` URIs, and the [`open_store`]
//! front door that turns either into a `Box<dyn Store>`.

use crate::error::{AccessError, Result};
use crate::remote::{list_containers, ContainerDesc, RemoteStore};
use crate::{FileStore, MemStore, Store};
use std::path::{Path, PathBuf};

/// A parsed archive location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A local filesystem path: a `.stzc` container, a bare `.stz`
    /// archive, or a directory of containers.
    Path(PathBuf),
    /// An STZP server, optionally scoped to one hosted container.
    Remote {
        /// `host:port` of the server.
        addr: String,
        /// Hosted container name, when the URI carries a path component.
        container: Option<String>,
    },
}

impl Location {
    /// Parse a location string. Anything starting with `stz://` is a
    /// remote URI (`stz://host:port[/container]`); everything else is a
    /// filesystem path.
    pub fn parse(s: &str) -> Result<Location> {
        let Some(rest) = s.strip_prefix("stz://") else {
            if s.is_empty() {
                return Err(AccessError::bad_uri("empty location"));
            }
            return Ok(Location::Path(PathBuf::from(s)));
        };
        let (addr, container) = match rest.split_once('/') {
            Some((addr, container)) if !container.is_empty() => (addr, Some(container.to_string())),
            Some((addr, _)) => (addr, None),
            None => (rest, None),
        };
        if addr.is_empty() || !addr.contains(':') {
            return Err(AccessError::bad_uri(format!(
                "remote URI needs host:port, got {s:?} (want stz://host:port/container)"
            )));
        }
        Ok(Location::Remote { addr: addr.to_string(), container })
    }
}

/// Open the [`Store`] a location names:
///
/// * `stz://host:port/container` → [`RemoteStore`]
/// * a `.stzc` container file → [`FileStore`]
/// * a bare `.stz` archive file → single-entry [`MemStore`]
///
/// A remote URI without a container and a directory path are listable
/// ([`list_location`]) but not openable — a store is one container's worth
/// of entries.
pub fn open_store(location: &str) -> Result<Box<dyn Store>> {
    match Location::parse(location)? {
        Location::Remote { addr, container: Some(container) } => {
            Ok(Box::new(RemoteStore::connect(addr.as_str(), &container)?))
        }
        Location::Remote { addr, container: None } => Err(AccessError::bad_uri(format!(
            "stz://{addr} names a server; add the container (stz://{addr}/<name>, \
             see `list` for names)"
        ))),
        Location::Path(path) => {
            if path.is_dir() {
                return Err(AccessError::bad_uri(format!(
                    "{} is a directory; name a container inside it",
                    path.display()
                )));
            }
            if is_container_path(&path)? {
                Ok(Box::new(FileStore::open_path(&path)?))
            } else {
                Ok(Box::new(MemStore::open_path(&path)?))
            }
        }
    }
}

/// List the containers at a location: every `.stzc` under a directory, or
/// the hosted containers of a server. A single container/archive path
/// lists as one pseudo-container.
pub fn list_location(location: &str) -> Result<Vec<ContainerDesc>> {
    match Location::parse(location)? {
        Location::Remote { addr, container: None } => list_containers(addr.as_str()),
        Location::Remote { addr, container: Some(container) } => {
            let matched: Vec<ContainerDesc> = list_containers(addr.as_str())?
                .into_iter()
                .filter(|c| c.name == container)
                .collect();
            // A named-but-absent container is NotFound here exactly as it
            // is from open_store — the taxonomy must not depend on the
            // entry point.
            if matched.is_empty() {
                return Err(AccessError::not_found(format!(
                    "no hosted container named {container:?} on {addr}"
                )));
            }
            Ok(matched)
        }
        Location::Path(path) => {
            let scanning_dir = path.is_dir();
            let mut paths: Vec<PathBuf> = Vec::new();
            if scanning_dir {
                for entry in std::fs::read_dir(&path)? {
                    let p = entry?.path();
                    if p.extension().is_some_and(|e| e == "stzc") {
                        paths.push(p);
                    }
                }
                paths.sort();
            } else {
                paths.push(path);
            }
            let mut out = Vec::with_capacity(paths.len());
            for p in paths {
                let store = match open_store(&p.display().to_string()) {
                    Ok(store) => store,
                    // Directory scans skip unopenable containers with a
                    // warning — exactly what a server hosting the same
                    // directory does — so local and remote listings of one
                    // directory cannot diverge. A path named *directly*
                    // still propagates its real error.
                    Err(e) if scanning_dir => {
                        eprintln!("stz-access: skipping {}: {e}", p.display());
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                let name = p
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.display().to_string());
                out.push(ContainerDesc {
                    name,
                    entries: store.list()?.len() as u32,
                    bytes: std::fs::metadata(&p)?.len(),
                });
            }
            Ok(out)
        }
    }
}

/// Whether `path` holds an stz-stream container (vs. a bare archive) —
/// the one magic sniff `open_store` and the CLI's inspect fallback share.
pub fn is_container_path(path: &Path) -> Result<bool> {
    use std::io::Read;
    let mut prefix = [0u8; 4];
    let mut f = std::fs::File::open(path)?;
    match f.read_exact(&mut prefix) {
        Ok(()) => Ok(stz_stream::is_container_prefix(&prefix)),
        // Shorter than a magic: certainly not a container; let the
        // archive parser produce the real diagnostic.
        Err(_) => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        assert_eq!(Location::parse("a/b.stzc").unwrap(), Location::Path("a/b.stzc".into()));
        assert_eq!(
            Location::parse("stz://127.0.0.1:4815/steps").unwrap(),
            Location::Remote { addr: "127.0.0.1:4815".into(), container: Some("steps".into()) }
        );
        assert_eq!(
            Location::parse("stz://127.0.0.1:4815").unwrap(),
            Location::Remote { addr: "127.0.0.1:4815".into(), container: None }
        );
        assert_eq!(
            Location::parse("stz://h:1/").unwrap(),
            Location::Remote { addr: "h:1".into(), container: None }
        );
        assert!(Location::parse("stz://noport/steps").is_err());
        assert!(Location::parse("").is_err());
    }

    #[test]
    fn open_store_rejects_unopenable_locations() {
        assert!(matches!(open_store("stz://127.0.0.1:1"), Err(AccessError::BadUri(_))));
        let dir = std::env::temp_dir();
        assert!(matches!(open_store(&dir.display().to_string()), Err(AccessError::BadUri(_))));
    }
}
