//! # stz-access — one read surface for in-memory, on-disk, and remote archives
//!
//! The workspace grew three incompatible ways to read compressed fields:
//! resident [`StzArchive`](stz_core::StzArchive)s, on-disk containers via
//! [`stz_stream::ContainerReader`], and the STZP network client
//! ([`stz_serve::Client`]). Every consumer — CLI, benches, examples — had to
//! pick a transport up front and re-implement its fetch logic per transport.
//!
//! This crate collapses them behind two object-safe traits:
//!
//! * [`Store`] — a collection of entries somewhere: [`list`](Store::list)
//!   the [`EntryDesc`]s, [`open`](Store::open) one by [`EntrySel`].
//! * [`Entry`] — one opened entry: serve any [`Fetch`] request, returning a
//!   [`FetchedField`] whose bytes are **identical across transports** — the
//!   core decode drivers are shared, so a `MemStore`, `FileStore`, and
//!   `RemoteStore` answering the same `Fetch` produce the same bytes, and
//!   the access-matrix integration test pins that.
//!
//! Three stores ship:
//!
//! | store | wraps | bytes live |
//! |---|---|---|
//! | [`MemStore`] | `StzArchive` / `ForeignArchive` | in this process |
//! | [`FileStore`] | `ContainerReader` over any [`ByteSource`](stz_stream::ByteSource) | on disk (or wherever the source reads) |
//! | [`RemoteStore`] | `stz_serve::Client` | behind an STZP server |
//!
//! [`open_store`] turns a location string — a filesystem path or an
//! `stz://host:port/container` URI — into the right `Box<dyn Store>`, which
//! is how the CLI serves `list` / `inspect` / `extract` / `preview` from a
//! single `--from` flag with one code path per verb.
//!
//! Errors fold onto one taxonomy ([`AccessError`]) on every transport: a
//! missing entry is `NotFound` whether the lookup failed in a `Vec`, a
//! footer index, or an `INSPECT` round-trip. See `docs/ACCESS.md` for the
//! normative contract.
//!
//! ## Quick start
//!
//! ```
//! use stz_access::{EntrySel, Fetch, MemStore, Store};
//! use stz_core::{StzCompressor, StzConfig};
//! use stz_field::{Dims, Field, Region};
//!
//! let field = Field::from_fn(Dims::d3(16, 16, 16), |z, y, x| {
//!     ((z as f32) * 0.3).sin() + ((y as f32) * 0.2).cos() + x as f32 * 0.01
//! });
//! let archive = StzCompressor::new(StzConfig::three_level(1e-3))
//!     .compress(&field)
//!     .unwrap();
//!
//! let mut store = MemStore::new();
//! store.add("density", archive);
//!
//! // The same calls work verbatim against a FileStore or RemoteStore.
//! let entry = store.open(&EntrySel::Name("density".into())).unwrap();
//! let preview = entry.fetch(&Fetch::Level(1)).unwrap();
//! let roi = entry.fetch(&Fetch::Region(Region::d3(2..6, 0..16, 4..8))).unwrap();
//! assert_eq!(preview.dims, Dims::d3(4, 4, 4));
//! assert_eq!(roi.dims, Dims::d3(4, 16, 4));
//! ```

#![warn(missing_docs)]

pub mod desc;
pub mod error;
pub mod file;
pub mod mem;
pub mod remote;
pub mod uri;
pub mod write;

pub use desc::EntryDesc;
pub use error::{AccessError, Result};
pub use file::FileStore;
pub use mem::MemStore;
pub use remote::{list_containers, ContainerDesc, RemoteStore};
pub use uri::{is_container_path, list_location, open_store, Location};
pub use write::{
    open_store_mut, CompactReport, EntryMut, EntryPayload, FileStoreMut, MutStatus, StoreMut,
};

// One selector type across the whole stack: the access layer and the wire
// protocol address entries identically.
pub use stz_serve::EntrySel;

use stz_field::{Dims, Field, Region, Scalar};

/// A typed read request — the one vocabulary every transport serves.
#[derive(Debug, Clone, PartialEq)]
pub enum Fetch {
    /// Full-resolution decode of the whole entry.
    Full,
    /// Preview through hierarchy level `k` (1 = coarsest). STZ entries
    /// only.
    Level(u8),
    /// Full-resolution decode of a region (half-open bounds). STZ entries
    /// read only the intersecting sections; foreign entries decode fully
    /// and crop.
    Region(Region),
    /// Preview through level `k`, produced by the *incremental* refinement
    /// path (one level at a time) instead of the direct preview decode.
    /// Byte-identical to [`Fetch::Level`] by construction; on the wire both
    /// travel as `FETCH_PROGRESSIVE`. STZ entries only.
    Progressive(u8),
    /// The compressed payload bytes of raw section `s`, undecoded.
    /// Section `0` — the whole payload — is the only index every
    /// transport can address today; other indices are `Unsupported`.
    RawSection(u32),
}

impl Fetch {
    /// Whether the fetched bytes are compressed payload (not decoded
    /// scalars).
    pub fn is_raw(&self) -> bool {
        matches!(self, Fetch::RawSection(_))
    }
}

/// Where fetched bytes came from — diagnostic provenance, the one field of
/// a [`FetchedField`] that legitimately differs across transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// A resident archive in this process.
    Memory,
    /// A container file (label is the path or source description).
    File(String),
    /// An STZP server (label is `host:port/container`).
    Remote(String),
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::Memory => write!(f, "memory"),
            Provenance::File(label) => write!(f, "file:{label}"),
            Provenance::Remote(label) => write!(f, "stz://{label}"),
        }
    }
}

/// The result of a [`Fetch`]: data + dims + codec + provenance.
///
/// For decoded fetches, `data` is the raw little-endian scalars of the
/// decoded block (`dims.len() * bytes_per` long) — the exact bytes a local
/// decode followed by `write_raw` would produce. For
/// [`Fetch::RawSection`], `data` is the compressed payload and
/// `dims`/`type_tag` describe the *encoded* field, not the byte layout.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedField {
    /// The request that produced this field.
    pub fetch: Fetch,
    /// Grid extents of the decoded block (entry extents for raw fetches).
    pub dims: Dims,
    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub type_tag: u8,
    /// Codec wire id of the entry's payload.
    pub codec_id: u8,
    /// The fetched bytes (see type-level docs).
    pub data: Vec<u8>,
    /// Where the bytes came from.
    pub provenance: Provenance,
}

impl FetchedField {
    /// Build a decoded result from a field.
    pub(crate) fn from_field<T: Scalar>(
        fetch: Fetch,
        codec_id: u8,
        field: &Field<T>,
        provenance: Provenance,
    ) -> FetchedField {
        let mut data = Vec::with_capacity(field.nbytes());
        for &v in field.as_slice() {
            v.write_exact(&mut data);
        }
        FetchedField {
            fetch,
            dims: field.dims(),
            type_tag: T::TYPE_TAG,
            codec_id,
            data,
            provenance,
        }
    }

    /// Reinterpret a decoded fetch as a typed field. Fails on a type
    /// mismatch or a raw fetch.
    pub fn into_field<T: Scalar>(self) -> Result<Field<T>> {
        if self.fetch.is_raw() {
            return Err(AccessError::bad_request(
                "a raw-section fetch carries compressed bytes, not a decodable field",
            ));
        }
        if self.type_tag != T::TYPE_TAG {
            return Err(AccessError::bad_request(format!(
                "fetched element type tag {} does not match the requested type",
                self.type_tag
            )));
        }
        let values: Vec<T> = self.data.chunks_exact(T::BYTES).map(T::read_exact).collect();
        Ok(Field::from_vec(self.dims, values))
    }
}

/// A collection of compressed entries somewhere — in memory, on disk, or
/// behind a server. Object-safe; `&self` methods so one store can serve
/// concurrent readers (remote stores serialize internally).
pub trait Store: Send + Sync {
    /// Human-readable location (path, URI, …) for diagnostics.
    fn locate(&self) -> String;

    /// Describe every entry, in store order.
    fn list(&self) -> Result<Vec<EntryDesc>>;

    /// Open one entry for fetching.
    fn open(&self, sel: &EntrySel) -> Result<Box<dyn Entry>>;
}

/// One opened entry: a location-transparent fetch handle.
pub trait Entry: Send + Sync {
    /// The entry's descriptor (resolved at open time; no payload reads).
    fn desc(&self) -> &EntryDesc;

    /// Serve one [`Fetch`]. Identical requests against identical entries
    /// return byte-identical [`FetchedField::data`] on every transport.
    fn fetch(&self, fetch: &Fetch) -> Result<FetchedField>;
}

/// Record one completed fetch into the process-wide telemetry registry:
/// `stz_access_fetch_total`, `stz_access_fetch_bytes_total`, and the
/// `stz_access_fetch_latency_ns` histogram, all labeled by `transport`
/// (`"memory"`, `"file"`, or `"remote"`). Called by every store's
/// [`Entry::fetch`] on success, so the three transports stay comparable.
pub(crate) fn record_fetch(transport: &'static str, bytes: usize, started: std::time::Instant) {
    let reg = stz_telemetry::global();
    let labels = [("transport", transport)];
    reg.counter("stz_access_fetch_total", &labels).inc();
    reg.counter("stz_access_fetch_bytes_total", &labels).add(bytes as u64);
    reg.latency("stz_access_fetch_latency_ns", &labels).record_duration(started.elapsed());
}

/// The request validation shared by every store, so malformed fetches are
/// classified identically on every transport — before any bytes move.
pub(crate) fn validate_fetch(fetch: &Fetch, desc: &EntryDesc) -> Result<()> {
    match fetch {
        Fetch::Full => Ok(()),
        Fetch::Region(region) => {
            if !region.fits_in(desc.dims) {
                return Err(AccessError::bad_request(format!(
                    "region {region:?} outside entry dims {}",
                    desc.dims
                )));
            }
            Ok(())
        }
        Fetch::Level(k) | Fetch::Progressive(k) => {
            if desc.codec_id != stz_backend::id::STZ || desc.levels == 0 {
                return Err(AccessError::unsupported(format!(
                    "level previews require a native stz entry; entry {:?} uses codec {}",
                    desc.name,
                    desc.codec_name()
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("id {}", desc.codec_id)),
                )));
            }
            if *k == 0 {
                return Err(AccessError::bad_request("preview level must be ≥ 1"));
            }
            if *k > desc.levels {
                return Err(AccessError::bad_request(format!(
                    "preview level {k} exceeds the entry's {} levels",
                    desc.levels
                )));
            }
            Ok(())
        }
        Fetch::RawSection(0) => Ok(()),
        Fetch::RawSection(s) => Err(AccessError::unsupported(format!(
            "raw section {s}: only section 0 (the whole payload) is addressable today"
        ))),
    }
}

/// Resolve an [`EntrySel`] against a descriptor list.
pub(crate) fn resolve_sel<'a>(
    descs: &'a [EntryDesc],
    sel: &EntrySel,
    locate: &str,
) -> Result<&'a EntryDesc> {
    match sel {
        EntrySel::Index(i) => descs.get(*i as usize).ok_or_else(|| {
            AccessError::not_found(format!(
                "entry index {i} out of range ({} entries in {locate})",
                descs.len()
            ))
        }),
        EntrySel::Name(name) => descs
            .iter()
            .find(|d| d.name == *name)
            .ok_or_else(|| AccessError::not_found(format!("no entry named {name:?} in {locate}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(codec_id: u8, levels: u8) -> EntryDesc {
        EntryDesc {
            index: 0,
            name: "t0".into(),
            codec_id,
            type_tag: 0,
            dims: Dims::d3(16, 16, 16),
            eb: 1e-3,
            compressed_len: 100,
            payload_crc: 0,
            sections: 1,
            levels,
            interp: if levels > 0 { 2 } else { 0 },
            level_bytes: (1..=levels as u64).collect(),
        }
    }

    #[test]
    fn validation_classes_are_transport_independent() {
        let stz = desc(stz_backend::id::STZ, 3);
        let zfp = desc(stz_backend::id::ZFP, 0);
        assert!(validate_fetch(&Fetch::Full, &stz).is_ok());
        assert!(validate_fetch(&Fetch::Full, &zfp).is_ok());
        assert!(validate_fetch(&Fetch::Level(3), &stz).is_ok());
        assert!(matches!(validate_fetch(&Fetch::Level(1), &zfp), Err(AccessError::Unsupported(_))));
        assert!(matches!(validate_fetch(&Fetch::Level(0), &stz), Err(AccessError::BadRequest(_))));
        assert!(matches!(
            validate_fetch(&Fetch::Progressive(4), &stz),
            Err(AccessError::BadRequest(_))
        ));
        assert!(matches!(
            validate_fetch(&Fetch::Region(Region::d3(0..32, 0..1, 0..1)), &stz),
            Err(AccessError::BadRequest(_))
        ));
        assert!(validate_fetch(&Fetch::RawSection(0), &zfp).is_ok());
        assert!(matches!(
            validate_fetch(&Fetch::RawSection(1), &stz),
            Err(AccessError::Unsupported(_))
        ));
    }

    #[test]
    fn selector_resolution() {
        let descs = vec![desc(0, 3)];
        assert!(resolve_sel(&descs, &EntrySel::Index(0), "here").is_ok());
        assert!(matches!(
            resolve_sel(&descs, &EntrySel::Index(1), "here"),
            Err(AccessError::NotFound(_))
        ));
        assert!(resolve_sel(&descs, &EntrySel::Name("t0".into()), "here").is_ok());
        assert!(matches!(
            resolve_sel(&descs, &EntrySel::Name("nope".into()), "here"),
            Err(AccessError::NotFound(_))
        ));
    }
}
