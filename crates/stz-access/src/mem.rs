//! [`MemStore`] — the in-process store over resident archives.

use crate::desc::EntryDesc;
use crate::error::{AccessError, Result};
use crate::{resolve_sel, validate_fetch, Entry, EntrySel, Fetch, FetchedField, Provenance, Store};
use std::sync::Arc;
use stz_backend::BackendScalar;
use stz_core::StzArchive;
use stz_field::{Field, Scalar};
use stz_stream::ForeignArchive;

/// A resident archive a [`MemStore`] can host.
#[derive(Debug, Clone)]
pub enum MemArchive {
    /// A native STZ archive over `f32`.
    F32(Arc<StzArchive<f32>>),
    /// A native STZ archive over `f64`.
    F64(Arc<StzArchive<f64>>),
    /// A foreign codec's archive (decoded through the registry).
    Foreign(Arc<ForeignArchive>),
}

impl From<StzArchive<f32>> for MemArchive {
    fn from(a: StzArchive<f32>) -> Self {
        MemArchive::F32(Arc::new(a))
    }
}

impl From<StzArchive<f64>> for MemArchive {
    fn from(a: StzArchive<f64>) -> Self {
        MemArchive::F64(Arc::new(a))
    }
}

impl From<ForeignArchive> for MemArchive {
    fn from(a: ForeignArchive) -> Self {
        MemArchive::Foreign(Arc::new(a))
    }
}

impl MemArchive {
    fn desc(&self, index: u32, name: &str) -> EntryDesc {
        match self {
            MemArchive::F32(a) => EntryDesc::from_archive(index, name, a),
            MemArchive::F64(a) => EntryDesc::from_archive(index, name, a),
            MemArchive::Foreign(f) => EntryDesc::from_foreign(index, name, f),
        }
    }
}

/// The in-process [`Store`]: entries are resident
/// [`StzArchive`]s/[`ForeignArchive`]s, fetches are direct decodes. The
/// zero-transport baseline the other stores are byte-identical to.
///
/// Descriptors (including the payload CRC, a full-payload hash) are
/// computed once per [`add`](MemStore::add); `list`/`open` only clone
/// them, honoring the "no payload reads" descriptor contract.
#[derive(Debug)]
pub struct MemStore {
    archives: Vec<MemArchive>,
    descs: Vec<EntryDesc>,
    /// Mutation bookkeeping for the [`StoreMut`] surface: resident data
    /// has no crash window, but the generation/staged contract still
    /// holds so callers can treat every backend identically.
    generation: u64,
    staged: bool,
}

impl Default for MemStore {
    fn default() -> MemStore {
        MemStore { archives: Vec::new(), descs: Vec::new(), generation: 1, staged: false }
    }
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Append an entry (a `StzArchive<f32>`, `StzArchive<f64>`, or
    /// [`ForeignArchive`], via `Into`).
    pub fn add(&mut self, name: &str, archive: impl Into<MemArchive>) {
        let archive = archive.into();
        self.descs.push(archive.desc(self.archives.len() as u32, name));
        self.archives.push(archive);
    }

    /// Load a bare `.stz` archive file as a single-entry store named by
    /// file stem — how the CLI serves `--from <bare archive>` through the
    /// same code path as containers and servers.
    pub fn open_path(path: impl AsRef<std::path::Path>) -> Result<MemStore> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "archive".to_string());
        // Dispatch f32/f64 from the header's type-tag byte (magic[4] +
        // version + tag; see `stz_core::archive`) instead of
        // parse-and-retry on a clone — no second copy of a possibly large
        // file. A wrong or corrupt tag byte still ends in `from_bytes`'s
        // own validation error.
        let parsed = match bytes.get(5) {
            Some(&1) => StzArchive::<f64>::from_bytes(bytes).map(MemArchive::from),
            _ => StzArchive::<f32>::from_bytes(bytes).map(MemArchive::from),
        };
        let archive = parsed.map_err(|e| {
            AccessError::corrupt(format!("{} is not an stz archive: {e}", path.display()))
        })?;
        let mut store = MemStore::new();
        store.add(&name, archive);
        Ok(store)
    }

    /// Number of hosted entries.
    pub fn len(&self) -> usize {
        self.archives.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.archives.is_empty()
    }
}

impl crate::write::StoreMut for MemStore {
    fn locate(&self) -> String {
        Store::locate(self)
    }

    fn list_staged(&self) -> Result<Vec<EntryDesc>> {
        Store::list(self)
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn append(&mut self, name: &str, payload: crate::write::EntryPayload) -> Result<()> {
        crate::write::ensure_absent(self.descs.iter().map(|d| d.name.as_str()), name)?;
        self.add(name, payload);
        self.staged = true;
        Ok(())
    }

    fn replace(&mut self, name: &str, payload: crate::write::EntryPayload) -> Result<()> {
        let locate = Store::locate(self);
        crate::write::ensure_present(self.descs.iter().map(|d| d.name.as_str()), name, &locate)?;
        let index = self.descs.iter().position(|d| d.name == name).expect("checked present");
        let archive: MemArchive = payload.into();
        self.descs[index] = archive.desc(index as u32, name);
        self.archives[index] = archive;
        self.staged = true;
        Ok(())
    }

    fn delete(&mut self, name: &str) -> Result<()> {
        let locate = Store::locate(self);
        crate::write::ensure_present(self.descs.iter().map(|d| d.name.as_str()), name, &locate)?;
        let index = self.descs.iter().position(|d| d.name == name).expect("checked present");
        self.archives.remove(index);
        self.descs.remove(index);
        for (i, d) in self.descs.iter_mut().enumerate() {
            d.index = i as u32;
        }
        self.staged = true;
        Ok(())
    }

    fn open_mut<'s>(&'s mut self, sel: &EntrySel) -> Result<Box<dyn crate::write::EntryMut + 's>> {
        crate::write::open_entry_mut(self, sel)
    }

    fn commit(&mut self) -> Result<u64> {
        if self.staged {
            self.generation += 1;
            self.staged = false;
        }
        Ok(self.generation)
    }

    fn compact(&mut self) -> Result<crate::write::CompactReport> {
        crate::write::StoreMut::commit(self)?;
        // Resident archives have no dead bytes; compaction is the no-op
        // that reports so.
        let live: u64 = self.descs.iter().map(|d| d.compressed_len).sum();
        Ok(crate::write::CompactReport {
            generation: self.generation,
            before_bytes: live,
            after_bytes: live,
            reclaimed_bytes: 0,
        })
    }

    fn status(&self) -> crate::write::MutStatus {
        crate::write::MutStatus {
            generation: self.generation,
            entries: self.descs.len(),
            staged: self.staged,
            live_bytes: self.descs.iter().map(|d| d.compressed_len).sum(),
            dead_bytes: 0,
        }
    }
}

impl From<crate::write::EntryPayload> for MemArchive {
    fn from(p: crate::write::EntryPayload) -> Self {
        match p {
            crate::write::EntryPayload::F32(a) => a.into(),
            crate::write::EntryPayload::F64(a) => a.into(),
            crate::write::EntryPayload::Foreign(f) => f.into(),
        }
    }
}

impl Store for MemStore {
    fn locate(&self) -> String {
        format!("<memory: {} entries>", self.archives.len())
    }

    fn list(&self) -> Result<Vec<EntryDesc>> {
        Ok(self.descs.clone())
    }

    fn open(&self, sel: &EntrySel) -> Result<Box<dyn Entry>> {
        let desc = resolve_sel(&self.descs, sel, &self.locate())?.clone();
        let archive = self.archives[desc.index as usize].clone();
        Ok(Box::new(MemEntry { archive, desc }))
    }
}

/// One opened [`MemStore`] entry.
struct MemEntry {
    archive: MemArchive,
    desc: EntryDesc,
}

impl MemEntry {
    fn fetch_stz<T: Scalar>(&self, archive: &StzArchive<T>, fetch: &Fetch) -> Result<FetchedField> {
        let done = |field: &Field<T>| {
            Ok(FetchedField::from_field(
                fetch.clone(),
                self.desc.codec_id,
                field,
                Provenance::Memory,
            ))
        };
        match fetch {
            Fetch::Full => done(&archive.decompress()?),
            Fetch::Level(k) => done(&archive.decompress_level(*k)?),
            Fetch::Region(region) => done(&archive.decompress_region(region)?),
            Fetch::Progressive(k) => done(&archive.progressive().decode_to(*k)?),
            Fetch::RawSection(_) => Ok(FetchedField {
                fetch: fetch.clone(),
                dims: self.desc.dims,
                type_tag: self.desc.type_tag,
                codec_id: self.desc.codec_id,
                data: archive.as_bytes().to_vec(),
                provenance: Provenance::Memory,
            }),
        }
    }

    fn fetch_foreign(&self, foreign: &ForeignArchive, fetch: &Fetch) -> Result<FetchedField> {
        if let Fetch::RawSection(_) = fetch {
            return Ok(FetchedField {
                fetch: fetch.clone(),
                dims: self.desc.dims,
                type_tag: self.desc.type_tag,
                codec_id: self.desc.codec_id,
                data: foreign.bytes.clone(),
                provenance: Provenance::Memory,
            });
        }
        match self.desc.type_tag {
            0 => self.fetch_foreign_typed::<f32>(foreign, fetch),
            _ => self.fetch_foreign_typed::<f64>(foreign, fetch),
        }
    }

    fn fetch_foreign_typed<T: BackendScalar>(
        &self,
        foreign: &ForeignArchive,
        fetch: &Fetch,
    ) -> Result<FetchedField> {
        let codec = stz_backend::registry().by_id(foreign.codec).ok_or_else(|| {
            AccessError::unsupported(format!(
                "entry {:?} uses codec id {}, which this build does not know",
                self.desc.name, foreign.codec
            ))
        })?;
        let field = stz_backend::decompress::<T>(codec, &foreign.bytes)?;
        if field.dims() != self.desc.dims {
            return Err(AccessError::corrupt(format!(
                "entry {:?} payload decodes to {}, descriptor says {}",
                self.desc.name,
                field.dims(),
                self.desc.dims
            )));
        }
        let field = match fetch {
            Fetch::Region(region) => field.extract_region(region),
            _ => field,
        };
        Ok(FetchedField::from_field(fetch.clone(), self.desc.codec_id, &field, Provenance::Memory))
    }
}

impl Entry for MemEntry {
    fn desc(&self) -> &EntryDesc {
        &self.desc
    }

    fn fetch(&self, fetch: &Fetch) -> Result<FetchedField> {
        validate_fetch(fetch, &self.desc)?;
        let started = std::time::Instant::now();
        let fetched = match &self.archive {
            MemArchive::F32(a) => self.fetch_stz(a, fetch),
            MemArchive::F64(a) => self.fetch_stz(a, fetch),
            MemArchive::Foreign(f) => self.fetch_foreign(f, fetch),
        }?;
        crate::record_fetch("memory", fetched.data.len(), started);
        Ok(fetched)
    }
}
