//! The unified error taxonomy of the access layer.
//!
//! Every [`Store`](crate::Store) implementation maps its transport's
//! failures onto the same small set of classes, so a consumer can match on
//! *what went wrong* without knowing *where the bytes live*: a missing
//! entry is [`AccessError::NotFound`] whether the lookup failed in a
//! `Vec`, a footer index, or an `INSPECT` round-trip; a progressive
//! preview of a foreign-codec entry is [`AccessError::Unsupported`] on
//! every transport.

use std::fmt;
use std::io;
use stz_codec::CodecError;
use stz_serve::ServeError;
use stz_stream::StreamError;

/// Failure while listing, opening, or fetching through the access layer.
#[derive(Debug)]
pub enum AccessError {
    /// The addressed container or entry does not exist.
    NotFound(String),
    /// The request is valid but this entry (or this build) cannot serve it
    /// — e.g. a level preview of a foreign-codec entry, or a codec id the
    /// registry does not know.
    Unsupported(String),
    /// The request itself is malformed: an out-of-bounds region, a zero
    /// preview level, a level beyond the entry's hierarchy.
    BadRequest(String),
    /// The stored bytes are damaged (checksum mismatch, truncated
    /// section, impossible index) — on any transport.
    Corrupt(String),
    /// A location string failed to parse (see [`crate::Location`]).
    BadUri(String),
    /// The underlying file or socket failed.
    Io(io::Error),
    /// A remote failure that maps onto no local class (server busy,
    /// internal server error, an error code from the future).
    Remote {
        /// STZP error code (see `stz_serve::proto::err_code`).
        code: u16,
        /// Human-readable diagnostic from the server.
        message: String,
    },
    /// The remote byte stream violated the STZP protocol.
    Protocol(String),
}

impl AccessError {
    /// Build an [`AccessError::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> Self {
        AccessError::NotFound(msg.into())
    }

    /// Build an [`AccessError::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        AccessError::Unsupported(msg.into())
    }

    /// Build an [`AccessError::BadRequest`].
    pub fn bad_request(msg: impl Into<String>) -> Self {
        AccessError::BadRequest(msg.into())
    }

    /// Build an [`AccessError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        AccessError::Corrupt(msg.into())
    }

    /// Build an [`AccessError::BadUri`].
    pub fn bad_uri(msg: impl Into<String>) -> Self {
        AccessError::BadUri(msg.into())
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::NotFound(msg) => write!(f, "not found: {msg}"),
            AccessError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            AccessError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            AccessError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            AccessError::BadUri(msg) => write!(f, "bad location: {msg}"),
            AccessError::Io(e) => write!(f, "I/O error: {e}"),
            AccessError::Remote { code, message } => write!(f, "server error {code}: {message}"),
            AccessError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for AccessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccessError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for AccessError {
    fn from(e: io::Error) -> Self {
        AccessError::Io(e)
    }
}

impl From<CodecError> for AccessError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Unsupported(msg) => AccessError::Unsupported(msg),
            other => AccessError::Corrupt(other.to_string()),
        }
    }
}

impl From<StreamError> for AccessError {
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::Io(e) => AccessError::Io(e),
            StreamError::Codec(e) => e.into(),
            StreamError::Corrupt(msg) => AccessError::Corrupt(msg),
            StreamError::Unsupported(msg) => AccessError::Unsupported(msg),
        }
    }
}

impl From<ServeError> for AccessError {
    fn from(e: ServeError) -> Self {
        use stz_serve::proto::err_code;
        match e {
            ServeError::Io(e) => AccessError::Io(e),
            ServeError::Protocol(msg) => AccessError::Protocol(msg),
            ServeError::Stream(e) => e.into(),
            // `ERR` replies fold onto the local taxonomy, so a consumer
            // matching NotFound/Unsupported/… behaves identically against
            // every transport. Codes with no local twin stay Remote.
            ServeError::Remote { code, message } => match code {
                err_code::NOT_FOUND => AccessError::NotFound(message),
                err_code::UNSUPPORTED => AccessError::Unsupported(message),
                err_code::BAD_REQUEST => AccessError::BadRequest(message),
                err_code::CORRUPT => AccessError::Corrupt(message),
                code => AccessError::Remote { code, message },
            },
        }
    }
}

/// Result alias for access-layer operations.
pub type Result<T> = std::result::Result<T, AccessError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_err_codes_fold_onto_local_classes() {
        use stz_serve::proto::err_code;
        let map = |code| AccessError::from(ServeError::Remote { code, message: "m".into() });
        assert!(matches!(map(err_code::NOT_FOUND), AccessError::NotFound(_)));
        assert!(matches!(map(err_code::UNSUPPORTED), AccessError::Unsupported(_)));
        assert!(matches!(map(err_code::BAD_REQUEST), AccessError::BadRequest(_)));
        assert!(matches!(map(err_code::CORRUPT), AccessError::Corrupt(_)));
        assert!(matches!(map(err_code::BUSY), AccessError::Remote { .. }));
    }

    #[test]
    fn stream_and_codec_errors_map() {
        let e: AccessError = StreamError::corrupt("bad footer").into();
        assert!(matches!(e, AccessError::Corrupt(_)));
        let e: AccessError = CodecError::unsupported("codec id 9").into();
        assert!(matches!(e, AccessError::Unsupported(_)));
        let e: AccessError = CodecError::UnexpectedEof { context: "header" }.into();
        assert!(matches!(e, AccessError::Corrupt(_)));
    }
}
