//! [`RemoteStore`] — the network store over an STZP server.

use crate::desc::EntryDesc;
use crate::error::{AccessError, Result};
use crate::{resolve_sel, validate_fetch, Entry, EntrySel, Fetch, FetchedField, Provenance, Store};
use std::net::ToSocketAddrs;
use std::sync::{Arc, Mutex};
use stz_serve::{Client, FetchReq, RequestKind};

/// The network [`Store`]: one hosted container on an STZP server,
/// addressed as `stz://host:port/container`.
///
/// [`Fetch`] variants map 1:1 onto STZP frames (`FETCH_FULL`, `FETCH_ROI`,
/// `FETCH_PROGRESSIVE`, `FETCH_RAW_SECTION`), and the server runs the same
/// decode drivers as the local stores, so responses are byte-identical to
/// a local decode of the same container. The wrapped [`Client`] is
/// synchronous; the store and every entry it opens share one connection,
/// serialized by a mutex.
pub struct RemoteStore {
    client: Arc<Mutex<Client>>,
    addr: String,
    container: String,
    /// Entry descriptors, fetched once at connect time (one `INSPECT`
    /// round-trip) — hosted containers are opened once by the server and
    /// immutable thereafter, and pinning matches the `Entry` contract.
    /// [`RemoteStore::refresh`] re-fetches on demand.
    descs: Vec<EntryDesc>,
}

impl RemoteStore {
    /// Connect to `addr` and bind this store to one hosted `container`.
    /// The single connect-time `INSPECT` round-trip both verifies the
    /// container exists (a missing name is [`AccessError::NotFound`]) and
    /// caches its entry descriptors, so `list`/`open` are free of network
    /// traffic.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display, container: &str) -> Result<Self> {
        let addr_label = addr.to_string();
        let mut client = Client::connect(addr)?;
        let descs = fetch_descs(&mut client, container)?;
        Ok(RemoteStore {
            client: Arc::new(Mutex::new(client)),
            addr: addr_label,
            container: container.to_string(),
            descs,
        })
    }

    /// Re-fetch the descriptor cache from the server (one `INSPECT`).
    pub fn refresh(&mut self) -> Result<()> {
        self.descs = with_client(&self.client, |c| fetch_descs(c, &self.container))?;
        Ok(())
    }

    fn label(&self) -> String {
        format!("{}/{}", self.addr, self.container)
    }
}

/// One `INSPECT` round-trip, decoded into validated descriptors.
fn fetch_descs(client: &mut Client, container: &str) -> Result<Vec<EntryDesc>> {
    let infos = client.inspect(container).map_err(AccessError::from)?;
    infos.iter().enumerate().map(|(i, info)| EntryDesc::from_wire(i as u32, info)).collect()
}

/// Run one request against a shared client connection.
fn with_client<R>(client: &Mutex<Client>, f: impl FnOnce(&mut Client) -> R) -> R {
    let mut client = client.lock().unwrap_or_else(|p| p.into_inner());
    f(&mut client)
}

impl Store for RemoteStore {
    fn locate(&self) -> String {
        format!("stz://{}", self.label())
    }

    fn list(&self) -> Result<Vec<EntryDesc>> {
        Ok(self.descs.clone())
    }

    fn open(&self, sel: &EntrySel) -> Result<Box<dyn Entry>> {
        let desc = resolve_sel(&self.descs, sel, &self.locate())?.clone();
        Ok(Box::new(RemoteEntry {
            client: Arc::clone(&self.client),
            addr: self.addr.clone(),
            container: self.container.clone(),
            desc,
        }))
    }
}

/// One opened [`RemoteStore`] entry; shares the store's connection.
struct RemoteEntry {
    client: Arc<Mutex<Client>>,
    addr: String,
    container: String,
    desc: EntryDesc,
}

impl Entry for RemoteEntry {
    fn desc(&self) -> &EntryDesc {
        &self.desc
    }

    fn fetch(&self, fetch: &Fetch) -> Result<FetchedField> {
        validate_fetch(fetch, &self.desc)?;
        // Open a client-side trace root: the wrapped `Client` injects this
        // trace's id into the fetch frame, so the server's span tree
        // parents under the "roundtrip" span recorded here.
        let mut trace = stz_telemetry::trace::collector().start("client", "fetch", None);
        trace.attr("container", &self.container);
        trace.attr("entry", self.desc.index);
        let started = std::time::Instant::now();
        let result = {
            let mut roundtrip = stz_telemetry::trace::span("roundtrip");
            roundtrip.attr("addr", &self.addr);
            self.fetch_remote(fetch)
        };
        match &result {
            Ok(fetched) => crate::record_fetch("remote", fetched.data.len(), started),
            Err(_) => trace.set_error(),
        }
        result
    }
}

impl RemoteEntry {
    fn fetch_remote(&self, fetch: &Fetch) -> Result<FetchedField> {
        let provenance = Provenance::Remote(format!("{}/{}", self.addr, self.container));
        // Address by resolved index: the descriptor was pinned at open
        // time, so later renames cannot redirect the fetch.
        let entry = EntrySel::Index(self.desc.index);
        if let Fetch::RawSection(_) = fetch {
            let data = with_client(&self.client, |c| c.fetch_raw(&self.container, entry))?;
            return Ok(FetchedField {
                fetch: fetch.clone(),
                dims: self.desc.dims,
                type_tag: self.desc.type_tag,
                codec_id: self.desc.codec_id,
                data,
                provenance,
            });
        }
        let kind = match fetch {
            Fetch::Full => RequestKind::Full,
            Fetch::Level(k) | Fetch::Progressive(k) => RequestKind::Level(*k),
            Fetch::Region(region) => RequestKind::roi(region),
            Fetch::RawSection(_) => unreachable!("handled above"),
        };
        let req = FetchReq { container: self.container.clone(), entry, kind, trace: None };
        let fetched = with_client(&self.client, |c| c.fetch(&req))?;
        Ok(FetchedField {
            fetch: fetch.clone(),
            dims: fetched.dims,
            type_tag: fetched.type_tag,
            codec_id: self.desc.codec_id,
            data: fetched.data,
            provenance,
        })
    }
}

/// One hosted container, as reported by a server (or a local directory
/// scan — see [`crate::list_location`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerDesc {
    /// Container name (what fetch URIs address).
    pub name: String,
    /// Number of entries in its index.
    pub entries: u32,
    /// Total size in bytes.
    pub bytes: u64,
}

/// List the containers hosted by an STZP server.
pub fn list_containers(addr: impl ToSocketAddrs) -> Result<Vec<ContainerDesc>> {
    let mut client = Client::connect(addr)?;
    Ok(client
        .list()?
        .into_iter()
        .map(|c| ContainerDesc { name: c.name, entries: c.entries, bytes: c.file_len })
        .collect())
}
