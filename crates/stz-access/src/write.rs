//! Object-safe mutation surface: [`StoreMut`] / [`EntryMut`], the write
//! twins of [`Store`](crate::Store) / [`Entry`](crate::Entry).
//!
//! The same contract philosophy as the read side: one vocabulary
//! ([`EntryPayload`]), one error taxonomy (appending an existing name is
//! `BadRequest`, replacing a missing one is `NotFound` — on every
//! backend), and object safety so the CLI's `append`/`delete`/`compact`
//! verbs hold a `Box<dyn StoreMut>` without caring where the bytes land.
//!
//! Two backends implement it:
//!
//! | store | wraps | commit means |
//! |---|---|---|
//! | [`FileStoreMut`] | [`stz_mutate::MutableContainer`] over a file | atomic generation flip (v3 shadow slots) |
//! | [`MemStore`](crate::MemStore) | resident archives | bump the in-process generation counter |
//!
//! Remote stores are deliberately absent: STZP is a read protocol, and
//! mutation happens where the bytes live — [`open_store_mut`] says so
//! rather than pretending.

use crate::desc::EntryDesc;
use crate::error::{AccessError, Result};
use crate::{resolve_sel, EntrySel};
use std::path::Path;
use stz_core::StzArchive;
use stz_mutate::{FileBacking, MutableContainer};
use stz_stream::{EntryMeta, ForeignArchive, PackEntry};

/// One entry's payload, ready to be appended or replaced — the write-side
/// counterpart of [`FetchedField`](crate::FetchedField), typed by value so
/// the trait stays object-safe.
#[derive(Debug, Clone)]
pub enum EntryPayload {
    /// A native STZ archive over `f32`.
    F32(StzArchive<f32>),
    /// A native STZ archive over `f64`.
    F64(StzArchive<f64>),
    /// A foreign codec's archive.
    Foreign(ForeignArchive),
}

impl From<StzArchive<f32>> for EntryPayload {
    fn from(a: StzArchive<f32>) -> Self {
        EntryPayload::F32(a)
    }
}

impl From<StzArchive<f64>> for EntryPayload {
    fn from(a: StzArchive<f64>) -> Self {
        EntryPayload::F64(a)
    }
}

impl From<ForeignArchive> for EntryPayload {
    fn from(a: ForeignArchive) -> Self {
        EntryPayload::Foreign(a)
    }
}

/// Mutation-side accounting of a store (see
/// [`StoreMut::status`]). Byte fields are compressed payload bytes; a
/// memory store has no dead bytes by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutStatus {
    /// Committed generation number.
    pub generation: u64,
    /// Entries in the current (possibly uncommitted) index.
    pub entries: usize,
    /// Whether uncommitted mutations are staged.
    pub staged: bool,
    /// Payload bytes the current index references.
    pub live_bytes: u64,
    /// Committed payload bytes no longer referenced (reclaimable by
    /// [`StoreMut::compact`]).
    pub dead_bytes: u64,
}

/// Outcome of one [`StoreMut::compact`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Generation number of the compacted store.
    pub generation: u64,
    /// Committed bytes before compaction.
    pub before_bytes: u64,
    /// Committed bytes after compaction.
    pub after_bytes: u64,
    /// Dead bytes reclaimed.
    pub reclaimed_bytes: u64,
}

/// A mutable collection of entries. Mutations *stage*; readers see them
/// only after [`commit`](StoreMut::commit) — which is atomic on every
/// backend that can crash (the file store's shadow-slot flip).
pub trait StoreMut: Send {
    /// Human-readable location for diagnostics.
    fn locate(&self) -> String;

    /// Describe every entry of the current — staged mutations included —
    /// index, in store order. Named apart from [`Store::list`](crate::Store::list)
    /// so types implementing both traits stay unambiguous to call.
    fn list_staged(&self) -> Result<Vec<EntryDesc>>;

    /// Committed generation number.
    fn generation(&self) -> u64;

    /// Stage a new entry. Appending a name that already exists is a
    /// `BadRequest` (use [`replace`](StoreMut::replace)).
    fn append(&mut self, name: &str, payload: EntryPayload) -> Result<()>;

    /// Stage a replacement payload for the entry named `name`
    /// (`NotFound` if absent).
    fn replace(&mut self, name: &str, payload: EntryPayload) -> Result<()>;

    /// Stage removal of the entry named `name` (`NotFound` if absent).
    fn delete(&mut self, name: &str) -> Result<()>;

    /// Open one entry as a mutation handle.
    fn open_mut<'s>(&'s mut self, sel: &EntrySel) -> Result<Box<dyn EntryMut + 's>>;

    /// Atomically publish all staged mutations as the next generation and
    /// return its number (a no-op returning the current generation when
    /// nothing is staged).
    fn commit(&mut self) -> Result<u64>;

    /// Commit, then reclaim dead bytes (rewrite live payloads; atomic
    /// swap). Concurrent readers pinned to older generations are
    /// unaffected.
    fn compact(&mut self) -> Result<CompactReport>;

    /// Point-in-time accounting.
    fn status(&self) -> MutStatus;
}

/// One opened entry of a [`StoreMut`]: a mutation handle that borrows the
/// store exclusively for its lifetime.
pub trait EntryMut: Send {
    /// The entry's descriptor as of open time.
    fn desc(&self) -> &EntryDesc;

    /// Stage a replacement payload for this entry.
    fn replace(&mut self, payload: EntryPayload) -> Result<()>;

    /// Stage removal of this entry, consuming the handle.
    fn delete(self: Box<Self>) -> Result<()>;
}

/// The shared duplicate-name check, so every backend classifies it
/// identically.
pub(crate) fn ensure_absent(
    names: impl Iterator<Item = impl AsRef<str>>,
    name: &str,
) -> Result<()> {
    for n in names {
        if n.as_ref() == name {
            return Err(AccessError::bad_request(format!(
                "entry {name:?} already exists; replace or delete it first"
            )));
        }
    }
    Ok(())
}

/// The shared presence check for replace/delete.
pub(crate) fn ensure_present(
    mut names: impl Iterator<Item = impl AsRef<str>>,
    name: &str,
    locate: &str,
) -> Result<()> {
    if names.any(|n| n.as_ref() == name) {
        Ok(())
    } else {
        Err(AccessError::not_found(format!("no entry named {name:?} in {locate}")))
    }
}

/// The mutable on-disk store: a [`MutableContainer`] over a container
/// file, committing through the v3 shadow-generation-slot protocol.
/// Opening a missing path creates an empty container; opening a
/// write-once (v1/v2) container upgrades it in place first (atomic
/// rename; same payload bytes).
#[derive(Debug)]
pub struct FileStoreMut {
    container: MutableContainer<FileBacking>,
    label: String,
}

impl FileStoreMut {
    /// Open (creating or upgrading as needed) the container at `path` for
    /// mutation.
    pub fn open_path(path: impl AsRef<Path>) -> Result<FileStoreMut> {
        let path = path.as_ref();
        let container = MutableContainer::open_path(path)?;
        Ok(FileStoreMut { container, label: path.display().to_string() })
    }

    /// The underlying mutable container.
    pub fn container(&self) -> &MutableContainer<FileBacking> {
        &self.container
    }

    fn put(&mut self, name: &str, payload: EntryPayload, replacing: bool) -> Result<()> {
        fn go<T: stz_field::Scalar>(
            c: &mut MutableContainer<FileBacking>,
            name: &str,
            entry: PackEntry<T>,
            replacing: bool,
        ) -> Result<()> {
            if replacing {
                c.replace(name, &entry)?;
            } else {
                c.append(name, &entry)?;
            }
            Ok(())
        }
        match payload {
            EntryPayload::F32(a) => go(&mut self.container, name, a.into(), replacing),
            EntryPayload::F64(a) => go(&mut self.container, name, a.into(), replacing),
            EntryPayload::Foreign(f) => {
                go(&mut self.container, name, PackEntry::<f32>::Foreign(f), replacing)
            }
        }
    }
}

impl StoreMut for FileStoreMut {
    fn locate(&self) -> String {
        self.label.clone()
    }

    fn list_staged(&self) -> Result<Vec<EntryDesc>> {
        Ok(self
            .container
            .records()
            .iter()
            .enumerate()
            .map(|(i, r)| EntryDesc::from_meta(i as u32, &EntryMeta::from_record(r)))
            .collect())
    }

    fn generation(&self) -> u64 {
        self.container.generation()
    }

    fn append(&mut self, name: &str, payload: EntryPayload) -> Result<()> {
        ensure_absent(self.container.names(), name)?;
        self.put(name, payload, false)
    }

    fn replace(&mut self, name: &str, payload: EntryPayload) -> Result<()> {
        ensure_present(self.container.names(), name, &self.label)?;
        self.put(name, payload, true)
    }

    fn delete(&mut self, name: &str) -> Result<()> {
        ensure_present(self.container.names(), name, &self.label)?;
        self.container.delete(name)?;
        Ok(())
    }

    fn open_mut<'s>(&'s mut self, sel: &EntrySel) -> Result<Box<dyn EntryMut + 's>> {
        let descs = self.list_staged()?;
        let desc = resolve_sel(&descs, sel, &self.label)?.clone();
        Ok(Box::new(StoreEntryMut { store: self, desc }))
    }

    fn commit(&mut self) -> Result<u64> {
        Ok(self.container.commit()?)
    }

    fn compact(&mut self) -> Result<CompactReport> {
        let stats = self.container.compact()?;
        Ok(CompactReport {
            generation: stats.generation,
            before_bytes: stats.before_bytes,
            after_bytes: stats.after_bytes,
            reclaimed_bytes: stats.reclaimed_bytes,
        })
    }

    fn status(&self) -> MutStatus {
        let s = self.container.stats();
        MutStatus {
            generation: s.generation,
            entries: s.entries,
            staged: self.container.is_dirty(),
            live_bytes: s.live_payload_bytes,
            dead_bytes: s.dead_payload_bytes,
        }
    }
}

/// The one [`EntryMut`] implementation: a name pinned at open time over
/// any exclusively borrowed [`StoreMut`].
struct StoreEntryMut<'s, S: StoreMut + ?Sized> {
    store: &'s mut S,
    desc: EntryDesc,
}

impl<S: StoreMut + ?Sized> EntryMut for StoreEntryMut<'_, S> {
    fn desc(&self) -> &EntryDesc {
        &self.desc
    }

    fn replace(&mut self, payload: EntryPayload) -> Result<()> {
        let name = self.desc.name.clone();
        self.store.replace(&name, payload)
    }

    fn delete(self: Box<Self>) -> Result<()> {
        let name = self.desc.name.clone();
        self.store.delete(&name)
    }
}

/// Open one entry of `store` as a mutation handle — the shared
/// implementation behind every backend's
/// [`open_mut`](StoreMut::open_mut).
pub(crate) fn open_entry_mut<'s, S: StoreMut>(
    store: &'s mut S,
    sel: &EntrySel,
) -> Result<Box<dyn EntryMut + 's>> {
    let descs = store.list_staged()?;
    let desc = resolve_sel(&descs, sel, &store.locate())?.clone();
    Ok(Box::new(StoreEntryMut { store, desc }))
}

/// Open the [`StoreMut`] a location names. Only local containers are
/// writable: a remote URI is rejected with `Unsupported` (STZP is a read
/// protocol — mutate on the serving host, the server picks up the new
/// generation on its next open).
pub fn open_store_mut(location: &str) -> Result<Box<dyn StoreMut>> {
    match crate::uri::Location::parse(location)? {
        crate::uri::Location::Remote { addr, .. } => Err(AccessError::unsupported(format!(
            "stz://{addr} is read-only over the wire; run the mutation on the host serving it"
        ))),
        crate::uri::Location::Path(path) => {
            if path.is_dir() {
                return Err(AccessError::bad_uri(format!(
                    "{} is a directory; name a container inside it",
                    path.display()
                )));
            }
            Ok(Box::new(FileStoreMut::open_path(&path)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fetch, MemStore};
    use stz_core::{StzCompressor, StzConfig};
    use stz_field::{Dims, Field};

    fn archive(seed: f32) -> StzArchive<f32> {
        let f = Field::from_fn(Dims::d3(12, 12, 12), |z, y, x| {
            ((z as f32) * 0.2 + seed).sin() + ((y as f32) * 0.1).cos() + x as f32 * 0.01
        });
        StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap()
    }

    fn drive(store: &mut dyn StoreMut) {
        assert_eq!(store.list_staged().unwrap().len(), 0);
        store.append("a", archive(0.0).into()).unwrap();
        store.append("b", archive(1.0).into()).unwrap();
        assert!(matches!(store.append("a", archive(9.0).into()), Err(AccessError::BadRequest(_))));
        assert!(matches!(
            store.replace("nope", archive(9.0).into()),
            Err(AccessError::NotFound(_))
        ));
        assert!(matches!(store.delete("nope"), Err(AccessError::NotFound(_))));
        let g0 = store.generation();
        let g1 = store.commit().unwrap();
        assert!(g1 > g0);
        assert_eq!(store.commit().unwrap(), g1, "clean commit is a no-op");

        // Entry-handle mutation.
        let mut handle = store.open_mut(&EntrySel::Name("b".into())).unwrap();
        assert_eq!(handle.desc().name, "b");
        handle.replace(archive(2.0).into()).unwrap();
        drop(handle);
        store.open_mut(&EntrySel::Index(0)).unwrap().delete().unwrap();
        store.commit().unwrap();

        let names: Vec<String> = store.list_staged().unwrap().into_iter().map(|d| d.name).collect();
        assert_eq!(names, ["b"]);
        let report = store.compact().unwrap();
        assert_eq!(report.before_bytes - report.reclaimed_bytes, report.after_bytes);
        assert!(!store.status().staged);
        assert_eq!(store.status().dead_bytes, 0);
    }

    #[test]
    fn mem_store_mutation_contract() {
        let mut store = MemStore::new();
        drive(&mut store);
    }

    #[test]
    fn file_store_mutation_contract_and_read_parity() {
        let path = std::env::temp_dir().join(format!("stz_access_mut_{}.stzc", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileStoreMut::open_path(&path).unwrap();
            drive(&mut store);
        }
        // What the write surface committed, the read surface serves.
        let store = crate::open_store(&path.display().to_string()).unwrap();
        let descs = store.list().unwrap();
        assert_eq!(descs.len(), 1);
        assert_eq!(descs[0].name, "b");
        let entry = store.open(&EntrySel::Name("b".into())).unwrap();
        let got = entry.fetch(&Fetch::Full).unwrap().into_field::<f32>().unwrap();
        assert_eq!(got, archive(2.0).decompress().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_store_mut_rejects_remote_and_dirs() {
        assert!(matches!(
            open_store_mut("stz://127.0.0.1:1/steps"),
            Err(AccessError::Unsupported(_))
        ));
        let dir = std::env::temp_dir();
        assert!(matches!(open_store_mut(&dir.display().to_string()), Err(AccessError::BadUri(_))));
    }
}
