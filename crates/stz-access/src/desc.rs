//! [`EntryDesc`] — the transport-independent entry descriptor.

use crate::error::{AccessError, Result};
use stz_core::archive::ArchiveHeader;
use stz_core::{InterpKind, StzArchive};
use stz_field::{Dims, Scalar};
use stz_serve::EntryInfo;
use stz_stream::crc::crc32;
use stz_stream::{EntryMeta, ForeignArchive};

/// What every [`Store`](crate::Store) reports about one entry, regardless
/// of where the bytes live.
///
/// The fields mirror the container footer (and its wire twin, the STZP
/// `INSPECT_OK` row): enough to plan a fetch — dims, element type, codec,
/// hierarchy depth, per-level byte costs — without touching any payload
/// bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryDesc {
    /// Position of the entry in the store's listing order.
    pub index: u32,
    /// Entry name (e.g. a field name or time-step label).
    pub name: String,
    /// Codec wire id of the payload (see `stz_backend::id`).
    pub codec_id: u8,
    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub type_tag: u8,
    /// Grid extents of the encoded field.
    pub dims: Dims,
    /// Absolute point-wise error bound (finest level for STZ entries).
    pub eb: f64,
    /// Compressed payload size in bytes.
    pub compressed_len: u64,
    /// CRC-32 of the whole compressed payload.
    pub payload_crc: u32,
    /// Independently fetchable sections (1 for foreign codecs).
    pub sections: u32,
    /// Hierarchy depth (0 for foreign codecs).
    pub levels: u8,
    /// Interpolation kind of the stz hierarchy (0 = none/foreign,
    /// 1 = linear, 2 = cubic).
    pub interp: u8,
    /// Cumulative compressed bytes through level `k` (`levels` values;
    /// empty for foreign codecs).
    pub level_bytes: Vec<u64>,
}

/// Map an [`InterpKind`] to the wire byte used across the stack.
fn interp_tag(interp: Option<InterpKind>) -> u8 {
    match interp {
        Some(InterpKind::Linear) => 1,
        Some(InterpKind::Cubic) => 2,
        None => 0,
    }
}

impl EntryDesc {
    /// Describe one container entry (used by `FileStore`; no payload
    /// bytes are touched).
    pub fn from_meta(index: u32, meta: &EntryMeta<'_>) -> EntryDesc {
        let levels = meta.header().map(|h| h.levels).unwrap_or(0);
        EntryDesc {
            index,
            name: meta.name().to_string(),
            codec_id: meta.codec_id(),
            type_tag: meta.type_tag(),
            dims: meta.dims(),
            eb: meta.error_bound(),
            compressed_len: meta.compressed_len(),
            payload_crc: meta.payload_crc(),
            sections: meta.section_count() as u32,
            levels,
            interp: interp_tag(meta.header().map(|h| h.interp)),
            level_bytes: (1..=levels).map(|k| meta.bytes_through_level(k)).collect(),
        }
    }

    /// Describe a resident [`StzArchive`] (used by `MemStore`). The
    /// payload CRC is computed over the archive bytes — the same value the
    /// container writer would record.
    pub fn from_archive<T: Scalar>(index: u32, name: &str, archive: &StzArchive<T>) -> EntryDesc {
        let h: &ArchiveHeader = archive.header();
        let sections = 1 + (2..=h.levels).map(|k| archive.num_blocks(k)).sum::<usize>();
        EntryDesc {
            index,
            name: name.to_string(),
            codec_id: stz_backend::id::STZ,
            type_tag: h.type_tag,
            dims: h.dims,
            eb: h.eb_finest,
            compressed_len: archive.compressed_len() as u64,
            payload_crc: crc32(archive.as_bytes()),
            sections: sections as u32,
            levels: h.levels,
            interp: interp_tag(Some(h.interp)),
            level_bytes: (1..=h.levels).map(|k| archive.bytes_through_level(k) as u64).collect(),
        }
    }

    /// Describe a resident [`ForeignArchive`] (used by `MemStore`).
    pub fn from_foreign(index: u32, name: &str, foreign: &ForeignArchive) -> EntryDesc {
        EntryDesc {
            index,
            name: name.to_string(),
            codec_id: foreign.codec,
            type_tag: foreign.type_tag,
            dims: foreign.dims,
            eb: foreign.eb,
            compressed_len: foreign.bytes.len() as u64,
            payload_crc: crc32(&foreign.bytes),
            sections: 1,
            levels: 0,
            interp: 0,
            level_bytes: Vec::new(),
        }
    }

    /// Describe an entry from an `INSPECT_OK` wire row (used by
    /// `RemoteStore`). The row arrives from an untrusted peer, so the dims
    /// go through the wire protocol's shared checked constructor before
    /// [`Dims`]'s own constructor can assert on them.
    pub fn from_wire(index: u32, info: &EntryInfo) -> Result<EntryDesc> {
        let [z, y, x] = info.dims;
        let dims = stz_serve::proto::wire_dims(info.ndim, z, y, x).ok_or_else(|| {
            AccessError::Protocol(format!("bad entry dims [{z}, {y}, {x}] for ndim {}", info.ndim))
        })?;
        Ok(EntryDesc {
            index,
            name: info.name.clone(),
            codec_id: info.codec_id,
            type_tag: info.type_tag,
            dims,
            eb: info.eb,
            compressed_len: info.compressed_len,
            payload_crc: info.payload_crc,
            sections: info.sections,
            levels: info.levels,
            interp: info.interp,
            level_bytes: info.level_bytes.clone(),
        })
    }

    /// Registry name of the entry's codec, or `None` when this build does
    /// not know the id.
    pub fn codec_name(&self) -> Option<&'static str> {
        stz_backend::registry().by_id(self.codec_id).map(|c| c.name())
    }

    /// `"f32"` / `"f64"`.
    pub fn type_name(&self) -> &'static str {
        if self.type_tag == 0 {
            "f32"
        } else {
            "f64"
        }
    }

    /// Interpolation-kind label of the stz hierarchy (`None` for foreign
    /// codecs or an interp code this build does not know).
    pub fn interp_name(&self) -> Option<&'static str> {
        match self.interp {
            1 => Some("linear"),
            2 => Some("cubic"),
            _ => None,
        }
    }

    /// Bytes per element of the entry's scalar type.
    pub fn bytes_per(&self) -> usize {
        if self.type_tag == 0 {
            4
        } else {
            8
        }
    }
}
