//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Every independently fetchable section of a container — the footer index
//! and each payload block — carries a CRC so a reader that touches only a
//! few thousand bytes of a multi-gigabyte file still detects corruption in
//! exactly the bytes it used.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state, for checksumming data written in chunks.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh state (equivalent to having hashed zero bytes).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The CRC-32 of everything folded in so far (does not consume the
    /// state; more bytes may still be added).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), base, "flip at {i} undetected");
            data[i] ^= 0x01;
        }
    }
}
