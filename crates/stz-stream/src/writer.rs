//! Incremental container writer.

use crate::crc::{crc32, Crc32};
use crate::error::Result;
use crate::format::{
    encode_footer, encode_trailer, EntryRecord, SectionLoc, CONTAINER_MAGIC, CONTAINER_VERSION,
};
use std::io::Write;
use std::path::Path;
use stz_core::StzArchive;
use stz_field::Scalar;

/// Chunk size for streaming payload bytes to the sink.
const COPY_CHUNK: usize = 64 * 1024;

/// Streams STZ archives into a container with bounded memory.
///
/// Entries are written strictly forward — payload bytes go to the sink in
/// 64 KiB pieces and are never buffered whole — while the
/// writer accumulates only the per-entry index records (a few hundred bytes
/// each). Packing a long time-step sequence therefore needs memory
/// proportional to *one* archive (the one currently being added), not the
/// dataset: compress a step, [`add_archive`](ContainerWriter::add_archive)
/// it, drop it, repeat.
///
/// [`finish`](ContainerWriter::finish) writes the footer index and trailer;
/// a container without a trailer (writer crashed mid-stream) is rejected by
/// the reader.
///
/// To overlap compression with writing, see
/// [`pack_pipelined`](crate::pack_pipelined), which drives a
/// `ContainerWriter` from a pool of compression workers while preserving
/// the exact bytes of a sequential pack.
#[derive(Debug)]
pub struct ContainerWriter<W: Write> {
    out: W,
    /// Absolute offset of the next byte to be written.
    pos: u64,
    entries: Vec<EntryRecord>,
}

impl<W: Write> ContainerWriter<W> {
    /// Start a container on `out` (writes the 8-byte file header).
    pub fn new(mut out: W) -> Result<Self> {
        out.write_all(&CONTAINER_MAGIC)?;
        out.write_all(&[CONTAINER_VERSION, 0, 0, 0])?;
        Ok(ContainerWriter { out, pos: crate::format::HEADER_LEN, entries: Vec::new() })
    }

    /// Number of entries added so far.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Append one archive as entry `name`.
    ///
    /// The archive's section layout (level-1 stream, per-level sub-block
    /// streams) is indexed and checksummed from its existing layout
    /// accessors; the payload bytes are copied through verbatim, so a
    /// container entry decompresses bit-identically to the archive it came
    /// from.
    pub fn add_archive<T: Scalar>(&mut self, name: &str, archive: &StzArchive<T>) -> Result<()> {
        let bytes = archive.as_bytes();
        let base = self.pos;

        // Index every independently fetchable section, relative to `base`.
        let abs = |r: std::ops::Range<usize>| -> SectionLoc {
            SectionLoc {
                off: base + r.start as u64,
                len: (r.end - r.start) as u64,
                crc: crc32(&bytes[r]),
            }
        };
        let l1 = abs(archive.l1_range());
        let plan = archive.plan();
        let mut blocks = Vec::with_capacity(archive.num_levels() as usize - 1);
        for level in &plan.levels[1..] {
            let level_blocks: Vec<SectionLoc> =
                (0..level.blocks.len()).map(|i| abs(archive.block_range(level.index, i))).collect();
            blocks.push(level_blocks);
        }

        // Stream the payload out in bounded chunks.
        let mut payload_crc = Crc32::new();
        for chunk in bytes.chunks(COPY_CHUNK) {
            payload_crc.update(chunk);
            self.out.write_all(chunk)?;
        }
        self.pos += bytes.len() as u64;

        self.entries.push(EntryRecord {
            name: name.to_string(),
            header: archive.header().clone(),
            payload: SectionLoc { off: base, len: bytes.len() as u64, crc: payload_crc.finish() },
            l1,
            blocks,
        });
        Ok(())
    }

    /// Write the footer and trailer, returning the sink.
    pub fn finish(mut self) -> Result<W> {
        let footer = encode_footer(&self.entries);
        let footer_off = self.pos;
        self.out.write_all(&footer)?;
        let trailer = encode_trailer(footer_off, footer.len() as u64, crc32(&footer));
        self.out.write_all(&trailer)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Pack archives into a container file at `path` (single-shot convenience;
/// for bounded-memory packing of many entries, drive a [`ContainerWriter`]
/// directly and drop each archive after adding it).
pub fn pack_to_file<T: Scalar>(
    path: impl AsRef<Path>,
    entries: &[(&str, &StzArchive<T>)],
) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = ContainerWriter::new(std::io::BufWriter::new(file))?;
    for (name, archive) in entries {
        w.add_archive(name, archive)?;
    }
    w.finish()?;
    Ok(())
}

/// Pack archives into an in-memory container image.
pub fn pack_to_vec<T: Scalar>(entries: &[(&str, &StzArchive<T>)]) -> Result<Vec<u8>> {
    let mut w = ContainerWriter::new(Vec::new())?;
    for (name, archive) in entries {
        w.add_archive(name, archive)?;
    }
    w.finish()
}
