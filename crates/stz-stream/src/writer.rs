//! Incremental container writer.

use crate::crc::crc32;
use crate::error::{Result, StreamError};
use crate::format::{
    encode_footer, encode_trailer, EntryDetail, EntryRecord, ForeignDetail, SectionLoc, StzDetail,
    CONTAINER_MAGIC, CONTAINER_VERSION,
};
use std::io::Write;
use std::path::Path;
use stz_core::StzArchive;
use stz_field::{Dims, Scalar};

/// Chunk size for streaming payload bytes to the sink.
const COPY_CHUNK: usize = 64 * 1024;

/// A compressed field from a non-STZ codec, ready to be packed as a
/// container entry.
///
/// The bytes are one self-contained archive of the codec identified by
/// `codec` (a `stz_backend::id` wire id); the container indexes it as a
/// single payload section. `dims`/`type_tag`/`eb` are duplicated into the
/// footer so `inspect` and fetch planning never touch the payload.
#[derive(Debug, Clone)]
pub struct ForeignArchive {
    /// Codec wire id (must not be `stz_backend::id::STZ` — native archives
    /// pack through [`ContainerWriter::add_archive`] with a full section
    /// index).
    pub codec: u8,
    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub type_tag: u8,
    /// Grid extents of the encoded field.
    pub dims: Dims,
    /// Absolute point-wise error bound used at compression.
    pub eb: f64,
    /// The codec's archive bytes.
    pub bytes: Vec<u8>,
}

impl ForeignArchive {
    /// Build a record for `bytes` compressed from a `T` field.
    pub fn new<T: Scalar>(codec: u8, dims: Dims, eb: f64, bytes: Vec<u8>) -> Self {
        ForeignArchive { codec, type_tag: T::TYPE_TAG, dims, eb, bytes }
    }
}

/// One entry ready for packing: a native STZ archive (indexed per section,
/// so streamed queries fetch only what they need) or a foreign codec's
/// archive (indexed as one opaque payload).
#[derive(Debug, Clone)]
pub enum PackEntry<T: Scalar> {
    /// A native STZ archive.
    Stz(StzArchive<T>),
    /// A foreign codec's archive.
    Foreign(ForeignArchive),
}

impl<T: Scalar> From<StzArchive<T>> for PackEntry<T> {
    fn from(archive: StzArchive<T>) -> Self {
        PackEntry::Stz(archive)
    }
}

impl<T: Scalar> From<ForeignArchive> for PackEntry<T> {
    fn from(foreign: ForeignArchive) -> Self {
        PackEntry::Foreign(foreign)
    }
}

impl<T: Scalar> PackEntry<T> {
    /// Compressed payload size in bytes.
    pub fn compressed_len(&self) -> usize {
        match self {
            PackEntry::Stz(a) => a.compressed_len(),
            PackEntry::Foreign(f) => f.bytes.len(),
        }
    }

    /// Codec wire id of the payload.
    pub fn codec_id(&self) -> u8 {
        match self {
            PackEntry::Stz(_) => stz_backend::id::STZ,
            PackEntry::Foreign(f) => f.codec,
        }
    }
}

/// Build the footer index record for `entry` as if its payload bytes
/// began at absolute file offset `base`, returning the record and the
/// payload bytes to write there.
///
/// This is the single source of truth for entry indexing: the write-once
/// [`ContainerWriter`] and the mutable-archive append path both call it,
/// so an appended entry is indexed byte-identically to a packed one.
/// Validates the same invariants the reader enforces (codec 0 must use
/// the STZ layout, type tags ≤ 1, finite positive error bounds, the
/// point cap), so a writer can never emit an entry its own reader
/// rejects.
pub fn index_pack_entry<'e, T: Scalar>(
    name: &str,
    entry: &'e PackEntry<T>,
    base: u64,
) -> Result<(EntryRecord, &'e [u8])> {
    match entry {
        PackEntry::Stz(archive) => Ok(index_stz_archive(name, archive, base)),
        PackEntry::Foreign(foreign) => index_foreign_archive(name, foreign, base),
    }
}

/// Index one native STZ archive's sections as if its bytes began at
/// absolute offset `base`. See [`index_pack_entry`].
pub fn index_stz_archive<'e, T: Scalar>(
    name: &str,
    archive: &'e StzArchive<T>,
    base: u64,
) -> (EntryRecord, &'e [u8]) {
    let bytes = archive.as_bytes();
    // Index every independently fetchable section, relative to `base`.
    let abs = |r: std::ops::Range<usize>| -> SectionLoc {
        SectionLoc {
            off: base + r.start as u64,
            len: (r.end - r.start) as u64,
            crc: crc32(&bytes[r]),
        }
    };
    let l1 = abs(archive.l1_range());
    let plan = archive.plan();
    let mut blocks = Vec::with_capacity(archive.num_levels() as usize - 1);
    for level in &plan.levels[1..] {
        let level_blocks: Vec<SectionLoc> =
            (0..level.blocks.len()).map(|i| abs(archive.block_range(level.index, i))).collect();
        blocks.push(level_blocks);
    }
    let payload = SectionLoc { off: base, len: bytes.len() as u64, crc: crc32(bytes) };
    (
        EntryRecord {
            name: name.to_string(),
            codec: stz_backend::id::STZ,
            payload,
            detail: EntryDetail::Stz(StzDetail { header: archive.header().clone(), l1, blocks }),
        },
        bytes,
    )
}

/// Validate and index one foreign-codec archive as a single payload
/// section at `base`. See [`index_pack_entry`].
pub fn index_foreign_archive<'e>(
    name: &str,
    foreign: &'e ForeignArchive,
    base: u64,
) -> Result<(EntryRecord, &'e [u8])> {
    if foreign.codec == stz_backend::id::STZ {
        return Err(StreamError::unsupported(
            "codec id 0 (stz) entries must be added as indexed archives, not foreign blobs",
        ));
    }
    if foreign.type_tag > 1 {
        return Err(StreamError::unsupported(format!("element type tag {}", foreign.type_tag)));
    }
    if !(foreign.eb > 0.0 && foreign.eb.is_finite()) {
        return Err(StreamError::corrupt(format!("invalid error bound {}", foreign.eb)));
    }
    // Mirror the reader's dims cap so the writer can never emit a
    // container its own reader rejects.
    if foreign.dims.len() as u64 > stz_sz3::stream::MAX_POINTS {
        return Err(StreamError::corrupt(format!(
            "dims {:?} exceed the container point cap",
            foreign.dims
        )));
    }
    let payload =
        SectionLoc { off: base, len: foreign.bytes.len() as u64, crc: crc32(&foreign.bytes) };
    Ok((
        EntryRecord {
            name: name.to_string(),
            codec: foreign.codec,
            payload,
            detail: EntryDetail::Foreign(ForeignDetail {
                type_tag: foreign.type_tag,
                dims: foreign.dims,
                eb: foreign.eb,
            }),
        },
        &foreign.bytes,
    ))
}

/// Streams archives into a container with bounded memory.
///
/// Entries are written strictly forward — payload bytes go to the sink in
/// 64 KiB pieces and are never buffered whole — while the
/// writer accumulates only the per-entry index records (a few hundred bytes
/// each). Packing a long time-step sequence therefore needs memory
/// proportional to *one* archive (the one currently being added), not the
/// dataset: compress a step, [`add_archive`](ContainerWriter::add_archive)
/// it, drop it, repeat.
///
/// [`finish`](ContainerWriter::finish) writes the footer index and trailer;
/// a container without a trailer (writer crashed mid-stream) is rejected by
/// the reader.
///
/// To overlap compression with writing, see
/// [`pack_pipelined`](crate::pack_pipelined), which drives a
/// `ContainerWriter` from a pool of compression workers while preserving
/// the exact bytes of a sequential pack.
#[derive(Debug)]
pub struct ContainerWriter<W: Write> {
    out: W,
    /// Absolute offset of the next byte to be written.
    pos: u64,
    entries: Vec<EntryRecord>,
}

impl<W: Write> ContainerWriter<W> {
    /// Start a container on `out` (writes the 8-byte file header).
    pub fn new(mut out: W) -> Result<Self> {
        out.write_all(&CONTAINER_MAGIC)?;
        out.write_all(&[CONTAINER_VERSION, 0, 0, 0])?;
        Ok(ContainerWriter { out, pos: crate::format::HEADER_LEN, entries: Vec::new() })
    }

    /// Number of entries added so far.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Stream `bytes` to the sink in bounded chunks (the index record
    /// already carries their CRC).
    fn write_payload(&mut self, bytes: &[u8]) -> Result<()> {
        for chunk in bytes.chunks(COPY_CHUNK) {
            self.out.write_all(chunk)?;
        }
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Append one native STZ archive as entry `name`.
    ///
    /// The archive's section layout (level-1 stream, per-level sub-block
    /// streams) is indexed and checksummed from its existing layout
    /// accessors (via [`index_stz_archive`]); the payload bytes are copied
    /// through verbatim, so a container entry decompresses bit-identically
    /// to the archive it came from.
    pub fn add_archive<T: Scalar>(&mut self, name: &str, archive: &StzArchive<T>) -> Result<()> {
        let (record, bytes) = index_stz_archive(name, archive, self.pos);
        self.write_payload(bytes)?;
        self.entries.push(record);
        Ok(())
    }

    /// Append one foreign-codec archive as entry `name`.
    ///
    /// The payload is copied through verbatim and indexed as a single
    /// section (via [`index_foreign_archive`]); metadata (`dims`, element
    /// type, error bound) is duplicated into the footer. Native STZ
    /// archives must go through
    /// [`add_archive`](ContainerWriter::add_archive) instead, which indexes
    /// their sections for streamed queries.
    pub fn add_foreign(&mut self, name: &str, foreign: &ForeignArchive) -> Result<()> {
        let (record, bytes) = index_foreign_archive(name, foreign, self.pos)?;
        self.write_payload(bytes)?;
        self.entries.push(record);
        Ok(())
    }

    /// Append one [`PackEntry`] (native or foreign) as entry `name`.
    pub fn add_entry<T: Scalar>(&mut self, name: &str, entry: &PackEntry<T>) -> Result<()> {
        match entry {
            PackEntry::Stz(archive) => self.add_archive(name, archive),
            PackEntry::Foreign(foreign) => self.add_foreign(name, foreign),
        }
    }

    /// Write the footer and trailer, returning the sink.
    pub fn finish(mut self) -> Result<W> {
        let footer = encode_footer(&self.entries);
        let footer_off = self.pos;
        self.out.write_all(&footer)?;
        let trailer = encode_trailer(footer_off, footer.len() as u64, crc32(&footer));
        self.out.write_all(&trailer)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Pack archives into a container file at `path` (single-shot convenience;
/// for bounded-memory packing of many entries, drive a [`ContainerWriter`]
/// directly and drop each archive after adding it).
pub fn pack_to_file<T: Scalar>(
    path: impl AsRef<Path>,
    entries: &[(&str, &StzArchive<T>)],
) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = ContainerWriter::new(std::io::BufWriter::new(file))?;
    for (name, archive) in entries {
        w.add_archive(name, archive)?;
    }
    w.finish()?;
    Ok(())
}

/// Pack archives into an in-memory container image.
pub fn pack_to_vec<T: Scalar>(entries: &[(&str, &StzArchive<T>)]) -> Result<Vec<u8>> {
    let mut w = ContainerWriter::new(Vec::new())?;
    for (name, archive) in entries {
        w.add_archive(name, archive)?;
    }
    w.finish()
}
