//! Out-of-core container reader.

use crate::byte_source::{ByteSource, FileSource};
use crate::crc::crc32;
use crate::error::{to_codec, Result, StreamError};
use crate::format::{
    parse_footer_bounded, parse_gen_slot, parse_trailer, EntryRecord, GenSlot, SectionLoc,
    StzDetail, CONTAINER_MAGIC, CONTAINER_VERSION, GEN_SLOT_LEN, GEN_SLOT_OFFSETS, HEADER_LEN,
    MIN_CONTAINER_VERSION, MUTABLE_CONTAINER_VERSION, MUTABLE_DATA_START, TRAILER_LEN,
};
use std::borrow::Cow;
use std::marker::PhantomData;
use std::path::Path;
use stz_backend::BackendScalar;
use stz_codec::CodecError;
use stz_core::archive::ArchiveHeader;
use stz_core::random_access::AccessBreakdown;
use stz_core::{ProgressiveDecoder, SectionSource, StzArchive};
use stz_field::{Dims, Field, Region, Scalar};

/// A container opened over any [`ByteSource`].
///
/// Opening reads two small ranges — the fixed trailer, then the footer index
/// — and *nothing else*: payload bytes are fetched lazily, per section, by
/// the queries served through [`EntryReader`]. Every fetched section is
/// CRC-verified before it is decoded.
#[derive(Debug)]
pub struct ContainerReader<S: ByteSource> {
    source: S,
    entries: Vec<EntryRecord>,
    /// Container format version from the file header.
    version: u8,
    /// Committed generation number (always 1 for write-once v1/v2 files).
    generation: u64,
    /// First byte of the payload region ([`HEADER_LEN`] for v1/v2,
    /// [`MUTABLE_DATA_START`] for v3).
    data_start: u64,
    /// Absolute offset of this generation's footer: the exclusive upper
    /// bound of every payload section.
    footer_off: u64,
    /// Total committed bytes; anything past this is uncommitted staging
    /// (v3) and invisible to the reader.
    committed_len: u64,
}

impl ContainerReader<FileSource> {
    /// Open a container file from disk.
    pub fn open_path(path: impl AsRef<Path>) -> Result<Self> {
        ContainerReader::open(FileSource::open(path)?)
    }
}

impl<S: ByteSource> ContainerReader<S> {
    /// Open a container over `source`: validate the header, locate and
    /// verify the footer, and parse the entry index. All format versions
    /// are accepted — write-once v1/v2 (trailer at EOF) and mutable v3
    /// (alternating generation slots after the header).
    pub fn open(source: S) -> Result<Self> {
        let file_len = source.len();
        if file_len < HEADER_LEN + TRAILER_LEN {
            return Err(StreamError::corrupt(format!(
                "file of {file_len} bytes is too short to be a container"
            )));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        source.read_exact_at(0, &mut header)?;
        if header[0..4] != CONTAINER_MAGIC {
            return Err(StreamError::corrupt("bad container magic"));
        }
        let version = header[4];
        if version == MUTABLE_CONTAINER_VERSION {
            return Self::open_mutable(source, file_len);
        }
        if !(MIN_CONTAINER_VERSION..=CONTAINER_VERSION).contains(&version) {
            return Err(StreamError::unsupported(format!("container format version {version}")));
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        source.read_exact_at(file_len - TRAILER_LEN, &mut trailer)?;
        let (footer_off, footer_len, footer_crc) = parse_trailer(&trailer, file_len)?;
        let mut footer = vec![0u8; footer_len as usize];
        source.read_exact_at(footer_off, &mut footer)?;
        if crc32(&footer) != footer_crc {
            return Err(StreamError::corrupt("footer checksum mismatch"));
        }
        let entries = parse_footer_bounded(&footer, HEADER_LEN, file_len - TRAILER_LEN, version)?;
        Ok(ContainerReader {
            source,
            entries,
            version,
            generation: 1,
            data_start: HEADER_LEN,
            footer_off,
            committed_len: file_len,
        })
    }

    /// Open a mutable (v3) container: read both generation slots, pick the
    /// valid one with the highest generation, and parse the footer it
    /// points to. Both slots torn or implausible means no committed
    /// generation survived — a cleanly detected torn container, reported
    /// as corrupt rather than silently serving partial data.
    fn open_mutable(source: S, file_len: u64) -> Result<Self> {
        let slot = Self::read_gen_slots(&source, file_len)?.ok_or_else(|| {
            StreamError::corrupt("torn mutable container: no valid generation slot")
        })?;
        let mut footer = vec![0u8; slot.footer_len as usize];
        source.read_exact_at(slot.footer_off, &mut footer)?;
        if crc32(&footer) != slot.footer_crc {
            return Err(StreamError::corrupt("footer checksum mismatch"));
        }
        let entries = parse_footer_bounded(
            &footer,
            MUTABLE_DATA_START,
            slot.footer_off,
            MUTABLE_CONTAINER_VERSION,
        )?;
        Ok(ContainerReader {
            source,
            entries,
            version: MUTABLE_CONTAINER_VERSION,
            generation: slot.generation,
            data_start: MUTABLE_DATA_START,
            footer_off: slot.footer_off,
            committed_len: slot.committed_len,
        })
    }

    /// Read both v3 generation slots and return the plausible one with
    /// the highest generation, or `None` when both are torn.
    pub(crate) fn read_gen_slots(source: &S, file_len: u64) -> Result<Option<GenSlot>> {
        if file_len < MUTABLE_DATA_START {
            return Err(StreamError::corrupt(format!(
                "file of {file_len} bytes is too short for a mutable container"
            )));
        }
        let mut best: Option<GenSlot> = None;
        for off in GEN_SLOT_OFFSETS {
            let mut raw = [0u8; GEN_SLOT_LEN as usize];
            source.read_exact_at(off, &mut raw)?;
            if let Some(slot) = parse_gen_slot(&raw) {
                if slot.plausible(file_len) && best.map_or(true, |b| slot.generation > b.generation)
                {
                    best = Some(slot);
                }
            }
        }
        Ok(best)
    }

    /// Number of entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Container format version from the file header.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Committed generation number this reader pinned at open. Write-once
    /// (v1/v2) containers are always generation 1; a mutable container
    /// advances by one per committed mutation batch.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total committed bytes of the pinned generation. For v3 this can be
    /// less than the file length (uncommitted staging past the tail); for
    /// v1/v2 it is the file length.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Payload bytes referenced by the pinned generation's index.
    pub fn live_payload_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.payload.len).sum()
    }

    /// Committed payload-region bytes *not* referenced by the pinned
    /// generation — superseded payloads and stale footers, reclaimable by
    /// compaction. Always 0 for write-once containers.
    pub fn dead_payload_bytes(&self) -> u64 {
        (self.footer_off - self.data_start).saturating_sub(self.live_payload_bytes())
    }

    /// The raw footer records backing this reader's index, in container
    /// order. The mutable-archive layer uses these to carry an open
    /// container's index into an upgrade or compaction rewrite.
    pub fn records(&self) -> &[EntryRecord] {
        &self.entries
    }

    /// Absolute offset of the pinned generation's footer (the exclusive
    /// upper bound of every payload section).
    pub fn footer_off(&self) -> u64 {
        self.footer_off
    }

    /// Metadata of every entry, in container order.
    pub fn entries(&self) -> impl Iterator<Item = EntryMeta<'_>> {
        self.entries.iter().map(EntryMeta::new)
    }

    /// Metadata of entry `index`.
    pub fn entry_meta(&self, index: usize) -> Option<EntryMeta<'_>> {
        self.entries.get(index).map(EntryMeta::new)
    }

    /// Index of the entry named `name`.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// A typed reader over entry `index`; fails if the entry's element type
    /// is not `T`.
    pub fn entry<T: Scalar>(&self, index: usize) -> Result<EntryReader<'_, T, S>> {
        let record = self.entries.get(index).ok_or_else(|| {
            StreamError::corrupt(format!(
                "entry index {index} out of range ({} entries)",
                self.entries.len()
            ))
        })?;
        if record.type_tag() != T::TYPE_TAG {
            return Err(StreamError::corrupt(format!(
                "entry {:?} element type tag {} does not match requested type",
                record.name,
                record.type_tag()
            )));
        }
        Ok(EntryReader {
            source: &self.source,
            record,
            stz: record.stz_detail().map(|detail| StzSections { source: &self.source, detail }),
            _marker: PhantomData,
        })
    }

    /// A typed reader over the entry named `name`.
    pub fn entry_by_name<T: Scalar>(&self, name: &str) -> Result<EntryReader<'_, T, S>> {
        let index = self
            .find(name)
            .ok_or_else(|| StreamError::corrupt(format!("no entry named {name:?}")))?;
        self.entry(index)
    }

    /// The underlying byte source (e.g. to inspect a
    /// [`CountingSource`](crate::byte_source::CountingSource)'s tallies).
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Consume the reader, returning the source.
    pub fn into_source(self) -> S {
        self.source
    }
}

/// Metadata view of one entry (no payload reads).
#[derive(Debug, Clone, Copy)]
pub struct EntryMeta<'a> {
    record: &'a EntryRecord,
}

impl<'a> EntryMeta<'a> {
    fn new(record: &'a EntryRecord) -> Self {
        EntryMeta { record }
    }

    /// View a raw footer record as entry metadata — how the mutable
    /// container's pending (not-yet-committed) index is described without
    /// a reader.
    pub fn from_record(record: &'a EntryRecord) -> Self {
        EntryMeta { record }
    }

    /// Entry name (e.g. a field name or time-step label).
    pub fn name(&self) -> &'a str {
        &self.record.name
    }

    /// Codec wire id of the entry's payload.
    pub fn codec_id(&self) -> u8 {
        self.record.codec
    }

    /// Registry name of the entry's codec, or `None` for a codec id this
    /// build does not know (the entry still indexes and fetches; only
    /// decoding it errors).
    pub fn codec_name(&self) -> Option<&'static str> {
        stz_backend::registry().by_id(self.record.codec).map(|c| c.name())
    }

    /// The entry's STZ archive parameters, if it is a native entry (read
    /// from the footer; no payload bytes are touched).
    pub fn header(&self) -> Option<&'a ArchiveHeader> {
        self.record.stz_detail().map(|d| &d.header)
    }

    /// Grid extents of the encoded field.
    pub fn dims(&self) -> Dims {
        self.record.dims()
    }

    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub fn type_tag(&self) -> u8 {
        self.record.type_tag()
    }

    /// Absolute point-wise error bound the entry was compressed with (the
    /// finest-level bound for STZ entries).
    pub fn error_bound(&self) -> f64 {
        self.record.eb()
    }

    /// Compressed payload size in bytes.
    pub fn compressed_len(&self) -> u64 {
        self.record.payload.len
    }

    /// CRC-32 of the whole compressed payload, as recorded in the index.
    pub fn payload_crc(&self) -> u32 {
        self.record.payload.crc
    }

    /// Number of independently fetchable sections the entry indexes: the
    /// level-1 stream plus one per sub-block for STZ entries, one
    /// monolithic payload for foreign codecs.
    pub fn section_count(&self) -> usize {
        match self.record.stz_detail() {
            Some(d) => 1 + d.blocks.iter().map(Vec::len).sum::<usize>(),
            None => 1,
        }
    }

    /// Compressed bytes needed to preview through level `k` (for foreign
    /// codecs, which have no partial levels, any `k ≥ 1` costs the whole
    /// payload).
    pub fn bytes_through_level(&self, k: u8) -> u64 {
        self.record.bytes_through_level(k)
    }
}

/// Fetch and CRC-verify one indexed section.
fn fetch_section<S: ByteSource>(source: &S, loc: &SectionLoc, what: &str) -> Result<Vec<u8>> {
    let len = usize::try_from(loc.len)
        .map_err(|_| StreamError::corrupt(format!("{what} section too large")))?;
    let mut buf = vec![0u8; len];
    source.read_exact_at(loc.off, &mut buf)?;
    if crc32(&buf) != loc.crc {
        return Err(StreamError::corrupt(format!(
            "{what} checksum mismatch at {}..{}",
            loc.off,
            loc.off + loc.len
        )));
    }
    Ok(buf)
}

/// [`SectionSource`] view of a native STZ entry: each
/// [`SectionSource::block_bytes`] call becomes one positioned read of
/// exactly that sub-block's range, CRC-verified. The type exists only for
/// STZ entries, so `stz-core`'s decode drivers can rely on the archive
/// parameters being present.
#[derive(Debug, Clone, Copy)]
pub struct StzSections<'a, S: ByteSource> {
    source: &'a S,
    detail: &'a StzDetail,
}

impl<S: ByteSource> SectionSource for StzSections<'_, S> {
    fn header(&self) -> &ArchiveHeader {
        &self.detail.header
    }

    fn l1_bytes(&self) -> stz_codec::Result<Cow<'_, [u8]>> {
        fetch_section(self.source, &self.detail.l1, "level-1").map(Cow::Owned).map_err(to_codec)
    }

    fn block_bytes(&self, level: u8, i: usize) -> stz_codec::Result<Cow<'_, [u8]>> {
        let loc = (level as usize)
            .checked_sub(2)
            .and_then(|k| self.detail.blocks.get(k))
            .and_then(|blocks| blocks.get(i))
            .ok_or_else(|| {
                CodecError::corrupt(format!("no sub-block {i} at level {level} in index"))
            })?;
        fetch_section(self.source, loc, "sub-block").map(Cow::Owned).map_err(to_codec)
    }

    fn bytes_through_level(&self, k: u8) -> usize {
        self.detail.bytes_through_level(k) as usize
    }
}

/// Typed, lazily fetching view of one container entry.
///
/// Native STZ entries serve the full streaming surface — progressive
/// previews, ROI decompression, incremental refinement — through
/// [`StzSections`], fetching only the byte ranges a query needs. Foreign
/// codec entries (format v2) decode through the
/// [`stz_backend`] registry: [`EntryReader::decompress`] fetches the whole
/// payload, and [`EntryReader::decompress_region`] falls back to a full
/// decode followed by a crop (foreign archives have no sub-block index).
/// Level previews and incremental refinement are STZ-only and return a
/// clean error for foreign entries, as does any entry whose codec id this
/// build does not know.
#[derive(Debug)]
pub struct EntryReader<'a, T: Scalar, S: ByteSource> {
    source: &'a S,
    record: &'a EntryRecord,
    /// Present iff the entry is a native STZ archive.
    stz: Option<StzSections<'a, S>>,
    _marker: PhantomData<fn() -> T>,
}

impl<'a, T: Scalar, S: ByteSource> EntryReader<'a, T, S> {
    /// The STZ section view, or a clean error naming the operation a
    /// foreign codec cannot serve.
    fn stz(&self, what: &str) -> Result<&StzSections<'a, S>> {
        self.stz.as_ref().ok_or_else(|| {
            StreamError::unsupported(format!(
                "{what} requires a native stz entry; entry {:?} uses codec {}",
                self.record.name,
                self.codec_label()
            ))
        })
    }

    /// Human-readable codec label (`"sz3"`, or `"id 9"` when unknown).
    fn codec_label(&self) -> String {
        match stz_backend::registry().by_id(self.record.codec) {
            Some(c) => c.name().to_string(),
            None => format!("id {}", self.record.codec),
        }
    }

    /// Entry name.
    pub fn name(&self) -> &str {
        &self.record.name
    }

    /// Codec wire id of the payload.
    pub fn codec_id(&self) -> u8 {
        self.record.codec
    }

    /// Grid extents of the encoded field.
    pub fn dims(&self) -> Dims {
        self.record.dims()
    }

    /// Compressed payload size in bytes.
    pub fn compressed_len(&self) -> u64 {
        self.record.payload.len
    }

    /// Compressed bytes needed to decompress levels `1..=k` (the
    /// progressive I/O cost; for foreign codecs any `k ≥ 1` costs the
    /// whole payload).
    pub fn bytes_through_level(&self, k: u8) -> u64 {
        self.record.bytes_through_level(k)
    }

    /// Fetch the whole payload, CRC-verified against the index (works for
    /// every codec).
    pub fn read_payload(&self) -> Result<Vec<u8>> {
        fetch_section(self.source, &self.record.payload, "payload")
    }
}

impl<T: BackendScalar, S: ByteSource> EntryReader<'_, T, S> {
    /// Decode the whole payload of a foreign entry via the codec registry.
    fn decompress_foreign(&self) -> Result<Field<T>> {
        let codec = stz_backend::registry().by_id(self.record.codec).ok_or_else(|| {
            StreamError::unsupported(format!(
                "entry {:?} uses codec id {}, which this build does not know",
                self.record.name, self.record.codec
            ))
        })?;
        let bytes = self.read_payload()?;
        let field = stz_backend::decompress::<T>(codec, &bytes).map_err(StreamError::Codec)?;
        if field.dims() != self.record.dims() {
            return Err(StreamError::corrupt(format!(
                "entry {:?} payload decodes to {:?}, index says {:?}",
                self.record.name,
                field.dims(),
                self.record.dims()
            )));
        }
        Ok(field)
    }

    /// Full decompression (reads the whole payload, section by section for
    /// STZ entries; in one fetch for foreign codecs).
    pub fn decompress(&self) -> Result<Field<T>> {
        match &self.stz {
            Some(sections) => {
                stz_core::source::decompress::<T, _>(sections, false).map_err(StreamError::Codec)
            }
            None => self.decompress_foreign(),
        }
    }

    /// Full decompression using the thread pool (foreign codecs decode
    /// serially — their archives are monolithic).
    pub fn decompress_parallel(&self) -> Result<Field<T>> {
        match &self.stz {
            Some(sections) => {
                stz_core::source::decompress::<T, _>(sections, true).map_err(StreamError::Codec)
            }
            None => self.decompress_foreign(),
        }
    }

    /// Progressive preview through level `k`, reading only levels `1..=k`
    /// (STZ entries only).
    pub fn decompress_level(&self, k: u8) -> Result<Field<T>> {
        stz_core::source::decompress_level::<T, _>(self.stz("level preview")?, k)
            .map_err(StreamError::Codec)
    }

    /// Random-access decompression of `region`.
    ///
    /// STZ entries read only the level-1 stream plus intersecting
    /// sub-blocks. Foreign entries have no sub-block index, so the whole
    /// payload is fetched, decoded, and cropped.
    pub fn decompress_region(&self, region: &Region) -> Result<Field<T>> {
        match &self.stz {
            Some(_) => self.decompress_region_with_breakdown(region).map(|(f, _)| f),
            None => {
                if !region.fits_in(self.record.dims()) {
                    return Err(StreamError::corrupt(format!(
                        "region {region:?} outside entry dims {:?}",
                        self.record.dims()
                    )));
                }
                Ok(self.decompress_foreign()?.extract_region(region))
            }
        }
    }

    /// Random-access decompression with per-stage timings (STZ entries
    /// only — foreign codecs have no staged access path to break down).
    pub fn decompress_region_with_breakdown(
        &self,
        region: &Region,
    ) -> Result<(Field<T>, AccessBreakdown)> {
        stz_core::source::decompress_region::<T, _>(self.stz("random access breakdown")?, region)
            .map_err(StreamError::Codec)
    }

    /// Incremental coarse-to-fine decoder over this entry (STZ entries
    /// only).
    pub fn progressive(&self) -> Result<ProgressiveDecoder<'_, T, StzSections<'_, S>>> {
        Ok(ProgressiveDecoder::new(self.stz("progressive refinement")?))
    }

    /// Fetch the whole payload and rebuild the resident [`StzArchive`]
    /// (verified against the entry's whole-payload checksum; STZ entries
    /// only — for foreign codecs use
    /// [`read_payload`](EntryReader::read_payload)).
    pub fn read_archive(&self) -> Result<StzArchive<T>> {
        self.stz("rebuilding a resident archive")?;
        let bytes = self.read_payload()?;
        StzArchive::from_bytes(bytes).map_err(StreamError::Codec)
    }
}
