//! Out-of-core container reader.

use crate::byte_source::{ByteSource, FileSource};
use crate::crc::crc32;
use crate::error::{to_codec, Result, StreamError};
use crate::format::{
    parse_footer, parse_trailer, EntryRecord, SectionLoc, CONTAINER_MAGIC, CONTAINER_VERSION,
    HEADER_LEN, TRAILER_LEN,
};
use std::borrow::Cow;
use std::marker::PhantomData;
use std::path::Path;
use stz_codec::CodecError;
use stz_core::archive::ArchiveHeader;
use stz_core::random_access::AccessBreakdown;
use stz_core::{ProgressiveDecoder, SectionSource, StzArchive};
use stz_field::{Dims, Field, Region, Scalar};

/// A container opened over any [`ByteSource`].
///
/// Opening reads two small ranges — the fixed trailer, then the footer index
/// — and *nothing else*: payload bytes are fetched lazily, per section, by
/// the queries served through [`EntryReader`]. Every fetched section is
/// CRC-verified before it is decoded.
#[derive(Debug)]
pub struct ContainerReader<S: ByteSource> {
    source: S,
    entries: Vec<EntryRecord>,
}

impl ContainerReader<FileSource> {
    /// Open a container file from disk.
    pub fn open_path(path: impl AsRef<Path>) -> Result<Self> {
        ContainerReader::open(FileSource::open(path)?)
    }
}

impl<S: ByteSource> ContainerReader<S> {
    /// Open a container over `source`: validate the header, locate and
    /// verify the footer, and parse the entry index.
    pub fn open(source: S) -> Result<Self> {
        let file_len = source.len();
        if file_len < HEADER_LEN + TRAILER_LEN {
            return Err(StreamError::corrupt(format!(
                "file of {file_len} bytes is too short to be a container"
            )));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        source.read_exact_at(0, &mut header)?;
        if header[0..4] != CONTAINER_MAGIC {
            return Err(StreamError::corrupt("bad container magic"));
        }
        if header[4] != CONTAINER_VERSION {
            return Err(StreamError::unsupported(format!(
                "container format version {}",
                header[4]
            )));
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        source.read_exact_at(file_len - TRAILER_LEN, &mut trailer)?;
        let (footer_off, footer_len, footer_crc) = parse_trailer(&trailer, file_len)?;
        let mut footer = vec![0u8; footer_len as usize];
        source.read_exact_at(footer_off, &mut footer)?;
        if crc32(&footer) != footer_crc {
            return Err(StreamError::corrupt("footer checksum mismatch"));
        }
        let entries = parse_footer(&footer, file_len)?;
        Ok(ContainerReader { source, entries })
    }

    /// Number of entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Metadata of every entry, in container order.
    pub fn entries(&self) -> impl Iterator<Item = EntryMeta<'_>> {
        self.entries.iter().map(EntryMeta::new)
    }

    /// Metadata of entry `index`.
    pub fn entry_meta(&self, index: usize) -> Option<EntryMeta<'_>> {
        self.entries.get(index).map(EntryMeta::new)
    }

    /// Index of the entry named `name`.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// A typed reader over entry `index`; fails if the entry's element type
    /// is not `T`.
    pub fn entry<T: Scalar>(&self, index: usize) -> Result<EntryReader<'_, T, S>> {
        let record = self.entries.get(index).ok_or_else(|| {
            StreamError::corrupt(format!(
                "entry index {index} out of range ({} entries)",
                self.entries.len()
            ))
        })?;
        if record.header.type_tag != T::TYPE_TAG {
            return Err(StreamError::corrupt(format!(
                "entry {:?} element type tag {} does not match requested type",
                record.name, record.header.type_tag
            )));
        }
        Ok(EntryReader { source: &self.source, record, _marker: PhantomData })
    }

    /// A typed reader over the entry named `name`.
    pub fn entry_by_name<T: Scalar>(&self, name: &str) -> Result<EntryReader<'_, T, S>> {
        let index = self
            .find(name)
            .ok_or_else(|| StreamError::corrupt(format!("no entry named {name:?}")))?;
        self.entry(index)
    }

    /// The underlying byte source (e.g. to inspect a
    /// [`CountingSource`](crate::byte_source::CountingSource)'s tallies).
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Consume the reader, returning the source.
    pub fn into_source(self) -> S {
        self.source
    }
}

/// Metadata view of one entry (no payload reads).
#[derive(Debug, Clone, Copy)]
pub struct EntryMeta<'a> {
    record: &'a EntryRecord,
}

impl<'a> EntryMeta<'a> {
    fn new(record: &'a EntryRecord) -> Self {
        EntryMeta { record }
    }

    /// Entry name (e.g. a field name or time-step label).
    pub fn name(&self) -> &'a str {
        &self.record.name
    }

    /// The entry's archive parameters (read from the footer; no payload
    /// bytes are touched).
    pub fn header(&self) -> &'a ArchiveHeader {
        &self.record.header
    }

    /// Grid extents of the encoded field.
    pub fn dims(&self) -> Dims {
        self.record.header.dims
    }

    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub fn type_tag(&self) -> u8 {
        self.record.header.type_tag
    }

    /// Compressed payload size in bytes.
    pub fn compressed_len(&self) -> u64 {
        self.record.payload.len
    }

    /// Compressed bytes needed to preview through level `k`.
    pub fn bytes_through_level(&self, k: u8) -> u64 {
        self.record.bytes_through_level(k)
    }
}

/// Typed, lazily fetching view of one container entry.
///
/// Implements [`SectionSource`], so `stz-core`'s full, progressive and
/// random-access decompression drivers run against it directly — each
/// [`SectionSource::block_bytes`] call becomes one positioned read of
/// exactly that sub-block's range, CRC-verified. The drivers already skip
/// blocks a query does not need, so the skipped bytes are never read from
/// the source at all.
#[derive(Debug)]
pub struct EntryReader<'a, T: Scalar, S: ByteSource> {
    source: &'a S,
    record: &'a EntryRecord,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Scalar, S: ByteSource> EntryReader<'_, T, S> {
    /// Fetch and CRC-verify one indexed section.
    fn fetch(&self, loc: &SectionLoc, what: &str) -> Result<Vec<u8>> {
        let len = usize::try_from(loc.len)
            .map_err(|_| StreamError::corrupt(format!("{what} section too large")))?;
        let mut buf = vec![0u8; len];
        self.source.read_exact_at(loc.off, &mut buf)?;
        if crc32(&buf) != loc.crc {
            return Err(StreamError::corrupt(format!(
                "{what} checksum mismatch at {}..{}",
                loc.off,
                loc.off + loc.len
            )));
        }
        Ok(buf)
    }

    /// Entry name.
    pub fn name(&self) -> &str {
        &self.record.name
    }

    /// Grid extents of the encoded field.
    pub fn dims(&self) -> Dims {
        self.record.header.dims
    }

    /// Compressed payload size in bytes.
    pub fn compressed_len(&self) -> u64 {
        self.record.payload.len
    }

    /// Full decompression (reads the whole payload, section by section).
    pub fn decompress(&self) -> Result<Field<T>> {
        stz_core::source::decompress::<T, Self>(self, false).map_err(StreamError::Codec)
    }

    /// Full decompression using the thread pool.
    pub fn decompress_parallel(&self) -> Result<Field<T>> {
        stz_core::source::decompress::<T, Self>(self, true).map_err(StreamError::Codec)
    }

    /// Progressive preview through level `k`, reading only levels `1..=k`.
    pub fn decompress_level(&self, k: u8) -> Result<Field<T>> {
        stz_core::source::decompress_level::<T, Self>(self, k).map_err(StreamError::Codec)
    }

    /// Random-access decompression of `region`, reading only the level-1
    /// stream plus intersecting sub-blocks.
    pub fn decompress_region(&self, region: &Region) -> Result<Field<T>> {
        self.decompress_region_with_breakdown(region).map(|(f, _)| f)
    }

    /// Random-access decompression with per-stage timings.
    pub fn decompress_region_with_breakdown(
        &self,
        region: &Region,
    ) -> Result<(Field<T>, AccessBreakdown)> {
        stz_core::source::decompress_region::<T, Self>(self, region).map_err(StreamError::Codec)
    }

    /// Incremental coarse-to-fine decoder over this entry.
    pub fn progressive(&self) -> ProgressiveDecoder<'_, T, Self> {
        ProgressiveDecoder::new(self)
    }

    /// Fetch the whole payload and rebuild the resident [`StzArchive`]
    /// (verified against the entry's whole-payload checksum).
    pub fn read_archive(&self) -> Result<StzArchive<T>> {
        let bytes = self.fetch(&self.record.payload, "payload")?;
        StzArchive::from_bytes(bytes).map_err(StreamError::Codec)
    }
}

impl<T: Scalar, S: ByteSource> SectionSource for EntryReader<'_, T, S> {
    fn header(&self) -> &ArchiveHeader {
        &self.record.header
    }

    fn l1_bytes(&self) -> stz_codec::Result<Cow<'_, [u8]>> {
        self.fetch(&self.record.l1, "level-1").map(Cow::Owned).map_err(to_codec)
    }

    fn block_bytes(&self, level: u8, i: usize) -> stz_codec::Result<Cow<'_, [u8]>> {
        let loc = (level as usize)
            .checked_sub(2)
            .and_then(|k| self.record.blocks.get(k))
            .and_then(|blocks| blocks.get(i))
            .ok_or_else(|| {
                CodecError::corrupt(format!("no sub-block {i} at level {level} in index"))
            })?;
        self.fetch(loc, "sub-block").map(Cow::Owned).map_err(to_codec)
    }

    fn bytes_through_level(&self, k: u8) -> usize {
        self.record.bytes_through_level(k) as usize
    }
}
