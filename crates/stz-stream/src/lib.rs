//! # stz-stream — out-of-core archive container + streaming I/O
//!
//! The STZ compressor's headline features are *streaming*: progressive
//! previews and random-access ROI decompression from a fraction of the
//! archive bytes. This crate turns those fractions into real disk I/O
//! savings with a seekable on-disk container:
//!
//! * [`ContainerWriter`] serializes one or more [`StzArchive`](stz_core::StzArchive)s (e.g. the
//!   fields of a time-step sequence) incrementally, with bounded memory,
//!   into a versioned format — magic + header, concatenated payloads, a
//!   footer index of every independently fetchable section (with per-section
//!   CRC-32), and a fixed trailer (see [`mod@format`] for the layout,
//!   `docs/FORMAT.md` for the normative spec).
//! * [`ContainerReader`] opens any [`ByteSource`] — a file
//!   ([`FileSource`]), a memory buffer ([`MemorySource`]), or an
//!   instrumented wrapper ([`CountingSource`]) — with two small reads, then
//!   serves `decompress`, `decompress_level`, `decompress_region` and
//!   progressive refinement through typed [`EntryReader`]s that fetch *only*
//!   the byte ranges a query needs.
//! * [`pack_pipelined`] overlaps compression and writing: entries compress
//!   on worker threads while the writer appends them in order, producing
//!   bytes identical to a sequential pack with memory bounded by a sliding
//!   window.
//!
//! The heavy lifting is shared with the in-memory path: `stz-core`'s decode
//! drivers are generic over [`stz_core::SectionSource`], implemented with
//! positioned reads by [`StzSections`] — the section view an [`EntryReader`]
//! exposes for native STZ entries. Disk-backed results are therefore
//! **bit-identical** to resident-archive results by construction — the same
//! driver runs over both — and the paper's decode-skipping logic doubles as
//! an I/O planner: a sub-block the query skips is a byte range the disk
//! never serves. Foreign-codec entries (container format v2 records a codec
//! id per entry) decode through the `stz-backend` registry instead, as one
//! whole-payload fetch.
//!
//! See `docs/ARCHITECTURE.md` for where this crate sits in the workspace.
//!
//! ## Quick start
//!
//! ```
//! use stz_core::{StzCompressor, StzConfig};
//! use stz_field::{Dims, Field, Region};
//! use stz_stream::{pack_to_vec, ContainerReader, MemorySource};
//!
//! let field = Field::from_fn(Dims::d3(24, 24, 24), |z, y, x| {
//!     ((z as f32) * 0.3).sin() + ((y as f32) * 0.2).cos() + x as f32 * 0.01
//! });
//! let archive = StzCompressor::new(StzConfig::three_level(1e-3))
//!     .compress(&field)
//!     .unwrap();
//!
//! // Pack (normally to a file via `pack_to_file` / `ContainerWriter`).
//! let image = pack_to_vec(&[("density", &archive)]).unwrap();
//!
//! // Reopen and query out-of-core.
//! let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
//! let entry = reader.entry_by_name::<f32>("density").unwrap();
//! let preview = entry.decompress_level(1).unwrap();          // ~1.6% of bytes
//! let roi = entry.decompress_region(&Region::d3(4..12, 4..12, 4..12)).unwrap();
//! assert_eq!(preview.dims(), Dims::d3(6, 6, 6));
//! assert_eq!(roi, archive.decompress_region(&Region::d3(4..12, 4..12, 4..12)).unwrap());
//! ```

#![warn(missing_docs)]

pub mod byte_source;
pub mod crc;
pub mod error;
pub mod format;
pub mod pipeline;
pub mod reader;
pub mod writer;

pub use byte_source::{ByteSource, CountingSource, FileSource, MemorySource};
pub use error::{Result, StreamError};
pub use pipeline::{pack_pipelined, run_pipelined};
pub use reader::{ContainerReader, EntryMeta, EntryReader, StzSections};
pub use writer::{
    index_foreign_archive, index_pack_entry, index_stz_archive, pack_to_file, pack_to_vec,
    ContainerWriter, ForeignArchive, PackEntry,
};

/// Sniff whether `bytes` begin with the container magic (vs. a bare
/// `StzArchive` stream or something else entirely).
pub fn is_container_prefix(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[0..4] == format::CONTAINER_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_core::{StzArchive, StzCompressor, StzConfig};
    use stz_field::{Dims, Field};

    fn archive(seed: f32) -> StzArchive<f32> {
        let f = Field::from_fn(Dims::d3(16, 16, 16), |z, y, x| {
            ((z as f32) * 0.2 + seed).sin() + ((y as f32) * 0.1).cos() + x as f32 * 0.01
        });
        StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap()
    }

    #[test]
    fn multi_entry_roundtrip_in_memory() {
        let (a, b) = (archive(0.0), archive(1.0));
        let image = pack_to_vec(&[("t0", &a), ("t1", &b)]).unwrap();
        assert!(is_container_prefix(&image));
        let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
        assert_eq!(reader.entry_count(), 2);
        assert_eq!(reader.find("t1"), Some(1));
        let names: Vec<&str> = reader.entries().map(|e| e.name()).collect();
        assert_eq!(names, ["t0", "t1"]);
        for (i, orig) in [&a, &b].into_iter().enumerate() {
            let entry = reader.entry::<f32>(i).unwrap();
            assert_eq!(entry.decompress().unwrap(), orig.decompress().unwrap());
            assert_eq!(
                entry.read_archive().unwrap().as_bytes(),
                orig.as_bytes(),
                "payload must round-trip bit-identically"
            );
        }
    }

    #[test]
    fn wrong_type_and_missing_entries_rejected() {
        let a = archive(0.5);
        let image = pack_to_vec(&[("x", &a)]).unwrap();
        let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
        assert!(reader.entry::<f64>(0).is_err());
        assert!(reader.entry::<f32>(1).is_err());
        assert!(reader.entry_by_name::<f32>("y").is_err());
        assert!(reader.entry_by_name::<f32>("x").is_ok());
    }
}
